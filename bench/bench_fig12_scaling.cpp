// Figure 12: (a) transponder count and (b) spectrum usage versus the
// bandwidth-capacity scale for 100G-WAN, RADWAN, and FlexWAN on the
// T-backbone, plus the maximum scale each scheme supports with the existing
// fiber plant ("N/M" in the paper are confidential absolutes; the shape and
// the ratios are the reproducible signal).  Also sweeps K (candidate paths)
// as the DESIGN.md ablation.
//
// Pass --threads N to size the execution engine (default: one thread per
// hardware thread; 1 = serial).  The scale x scheme grid and the
// max-supported-scale searches run as independent engine tasks; results are
// collected in index order, so output is byte-identical at every N.
// --metrics / --trace <file.json> write observability reports (obs/report.h)
// and --bench-json <file.json> (with --warmup/--reps) records per-case
// wall-clock + metrics-delta telemetry — none of them touch stdout.
#include <cstdio>

#include "benchlib/benchlib.h"
#include "engine/engine.h"
#include "obs/report.h"
#include "planning/heuristic.h"
#include "planning/metrics.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/table.h"

using namespace flexwan;

namespace {

const transponder::Catalog* kCatalogs[] = {
    &transponder::fixed_grid_100g(),
    &transponder::bvt_radwan(),
    &transponder::svt_flexwan(),
};

}  // namespace

int main(int argc, char** argv) {
  const engine::Engine engine(engine::threads_flag(argc, argv));
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  benchlib::Harness bench("fig12_scaling", report.bench_options(),
                          engine.thread_count());
  obs::announce_threads(engine.thread_count());
  const auto net = topology::make_tbackbone();
  std::printf("=== Figure 12: hardware cost vs bandwidth capacity scale ===\n");
  std::printf("topology %s: %d sites, %d fibers, %d IP links, %.0f Gbps\n\n",
              net.name.c_str(), net.optical.node_count(),
              net.optical.fiber_count(), net.ip.link_count(),
              net.ip.total_demand_gbps());

  // Every (scale, scheme) cell plans independently; fan the grid out.
  constexpr int kScales = 8;
  constexpr int kSchemes = 3;
  const auto rows = bench.run("scale_grid", [&] {
    return engine.parallel_map(
        static_cast<std::size_t>(kScales * kSchemes),
        [&](std::size_t cell) -> std::vector<std::string> {
          const double scale = 1.0 + static_cast<double>(cell / kSchemes);
          const auto* catalog = kCatalogs[cell % kSchemes];
          const topology::Network scaled{net.name, net.optical,
                                         net.ip.scaled(scale)};
          planning::HeuristicPlanner planner(*catalog, {});
          const auto plan = planner.plan(scaled);
          if (!plan) {
            return {TextTable::num(scale, 0), catalog->name(), "infeasible",
                    "-", "-"};
          }
          const auto m = planning::compute_metrics(*plan, scaled);
          return {TextTable::num(scale, 0), catalog->name(),
                  std::to_string(m.transponder_count),
                  TextTable::num(m.spectrum_usage_ghz, 0),
                  TextTable::num(m.max_fiber_utilization, 2)};
        });
  });
  TextTable table({"scale", "scheme", "transponders", "spectrum (GHz)",
                   "max fiber util"});
  for (const auto& row : rows) table.add_row(row);
  std::printf("%s\n", table.render().c_str());

  // Headline savings at scale 1 (paper: FlexWAN saves 85 % / 57 %
  // transponders and 67 % / 36 % spectrum vs 100G-WAN / RADWAN).
  const auto m = bench.run("headline_savings", [&] {
    return engine.parallel_map(std::size_t{3}, [&](std::size_t i) {
      planning::HeuristicPlanner planner(*kCatalogs[i], {});
      return planning::compute_metrics(*planner.plan(net), net);
    });
  });
  // Under --list the harness returns empty placeholders; never index them.
  if (m.size() == 3) {
    std::printf("FlexWAN saves %.0f%% transponders vs 100G-WAN (paper 85%%), "
                "%.0f%% vs RADWAN (paper 57%%)\n",
                100.0 * (1.0 - static_cast<double>(m[2].transponder_count) /
                                   m[0].transponder_count),
                100.0 * (1.0 - static_cast<double>(m[2].transponder_count) /
                                   m[1].transponder_count));
    std::printf(
        "FlexWAN reduces spectrum %.0f%% vs 100G-WAN (paper 67%%), "
        "%.0f%% vs RADWAN (paper 36%%)\n",
        100.0 * (1.0 - m[2].spectrum_usage_ghz / m[0].spectrum_usage_ghz),
        100.0 * (1.0 - m[2].spectrum_usage_ghz / m[1].spectrum_usage_ghz));
  }

  // Max supported scale (paper: 3x / 5x / 8x).
  std::printf("\nmax supported capacity scale (paper: 100G-WAN 3x, RADWAN 5x, "
              "FlexWAN 8x):\n");
  const auto max_scales = bench.run("max_scale_search", [&] {
    return engine.parallel_map(std::size_t{3}, [&](std::size_t i) {
      planning::HeuristicPlanner planner(*kCatalogs[i], {});
      return planning::max_supported_scale(net, planner, 12.0, 0.5);
    });
  });
  for (std::size_t i = 0; i < max_scales.size(); ++i) {
    std::printf("  %-9s %.1fx\n", kCatalogs[i]->name().c_str(), max_scales[i]);
  }

  // Ablation: K candidate paths vs FlexWAN's max scale.
  std::printf("\nablation: K (KSP candidates) vs FlexWAN max scale\n");
  const int ks[] = {1, 2, 3, 4, 6};
  const auto k_scales = bench.run("k_ablation", [&] {
    return engine.parallel_map(std::size_t{5}, [&](std::size_t i) {
      planning::PlannerConfig config;
      config.k_paths = ks[i];
      planning::HeuristicPlanner planner(transponder::svt_flexwan(), config);
      return planning::max_supported_scale(net, planner, 12.0, 0.5);
    });
  });
  for (std::size_t i = 0; i < k_scales.size(); ++i) {
    std::printf("  K=%d -> %.1fx\n", ks[i], k_scales[i]);
  }
  return 0;
}
