// Figure 12: (a) transponder count and (b) spectrum usage versus the
// bandwidth-capacity scale for 100G-WAN, RADWAN, and FlexWAN on the
// T-backbone, plus the maximum scale each scheme supports with the existing
// fiber plant ("N/M" in the paper are confidential absolutes; the shape and
// the ratios are the reproducible signal).  Also sweeps K (candidate paths)
// as the DESIGN.md ablation.
#include <cstdio>

#include "planning/heuristic.h"
#include "planning/metrics.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/table.h"

using namespace flexwan;

namespace {

const transponder::Catalog* kCatalogs[] = {
    &transponder::fixed_grid_100g(),
    &transponder::bvt_radwan(),
    &transponder::svt_flexwan(),
};

}  // namespace

int main() {
  const auto net = topology::make_tbackbone();
  std::printf("=== Figure 12: hardware cost vs bandwidth capacity scale ===\n");
  std::printf("topology %s: %d sites, %d fibers, %d IP links, %.0f Gbps\n\n",
              net.name.c_str(), net.optical.node_count(),
              net.optical.fiber_count(), net.ip.link_count(),
              net.ip.total_demand_gbps());

  TextTable table({"scale", "scheme", "transponders", "spectrum (GHz)",
                   "max fiber util"});
  for (double scale = 1.0; scale <= 8.0; scale += 1.0) {
    const topology::Network scaled{net.name, net.optical,
                                   net.ip.scaled(scale)};
    for (const auto* catalog : kCatalogs) {
      planning::HeuristicPlanner planner(*catalog, {});
      const auto plan = planner.plan(scaled);
      if (!plan) {
        table.add_row({TextTable::num(scale, 0), catalog->name(),
                       "infeasible", "-", "-"});
        continue;
      }
      const auto m = planning::compute_metrics(*plan, scaled);
      table.add_row({TextTable::num(scale, 0), catalog->name(),
                     std::to_string(m.transponder_count),
                     TextTable::num(m.spectrum_usage_ghz, 0),
                     TextTable::num(m.max_fiber_utilization, 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Headline savings at scale 1 (paper: FlexWAN saves 85 % / 57 %
  // transponders and 67 % / 36 % spectrum vs 100G-WAN / RADWAN).
  planning::PlanMetrics m[3];
  for (int i = 0; i < 3; ++i) {
    planning::HeuristicPlanner planner(*kCatalogs[i], {});
    m[i] = planning::compute_metrics(*planner.plan(net), net);
  }
  std::printf("FlexWAN saves %.0f%% transponders vs 100G-WAN (paper 85%%), "
              "%.0f%% vs RADWAN (paper 57%%)\n",
              100.0 * (1.0 - static_cast<double>(m[2].transponder_count) /
                                 m[0].transponder_count),
              100.0 * (1.0 - static_cast<double>(m[2].transponder_count) /
                                 m[1].transponder_count));
  std::printf("FlexWAN reduces spectrum %.0f%% vs 100G-WAN (paper 67%%), "
              "%.0f%% vs RADWAN (paper 36%%)\n",
              100.0 * (1.0 - m[2].spectrum_usage_ghz / m[0].spectrum_usage_ghz),
              100.0 * (1.0 - m[2].spectrum_usage_ghz / m[1].spectrum_usage_ghz));

  // Max supported scale (paper: 3x / 5x / 8x).
  std::printf("\nmax supported capacity scale (paper: 100G-WAN 3x, RADWAN 5x, "
              "FlexWAN 8x):\n");
  for (const auto* catalog : kCatalogs) {
    planning::HeuristicPlanner planner(*catalog, {});
    std::printf("  %-9s %.1fx\n", catalog->name().c_str(),
                planning::max_supported_scale(net, planner, 12.0, 0.5));
  }

  // Ablation: K candidate paths vs FlexWAN's max scale.
  std::printf("\nablation: K (KSP candidates) vs FlexWAN max scale\n");
  for (int k : {1, 2, 3, 4, 6}) {
    planning::PlannerConfig config;
    config.k_paths = k;
    planning::HeuristicPlanner planner(transponder::svt_flexwan(), config);
    std::printf("  K=%d -> %.1fx\n", k,
                planning::max_supported_scale(net, planner, 12.0, 0.5));
  }
  return 0;
}
