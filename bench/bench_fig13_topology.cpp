// Figure 13: impact of network topology.  (a) capacity-weighted optical
// path length distribution on the T-backbone and Cernet; (b) FlexWAN's
// reduced cost and improved link spectral efficiency over 100G-WAN and
// RADWAN on both topologies.  The paper's observation: gains grow on
// topologies with shorter optical paths.
//
// --bench-json <file> (with --warmup/--reps) records wall-clock telemetry
// through the benchlib harness; stdout is byte-identical either way.
#include <cstdio>
#include <vector>

#include "benchlib/benchlib.h"
#include "obs/report.h"
#include "planning/heuristic.h"
#include "planning/metrics.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/stats.h"
#include "util/table.h"

using namespace flexwan;

int main(int argc, char** argv) {
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  benchlib::Harness bench("fig13_topology", report.bench_options());
  const topology::Network nets[] = {topology::make_tbackbone(),
                                    topology::make_cernet()};

  std::printf("=== Figure 13(a): capacity-weighted path length CDF ===\n");
  TextTable cdf({"length (km)", "T-backbone", "Cernet"});
  const auto flex_metrics = bench.run("flexwan_plans", [&] {
    std::vector<Expected<planning::PlanMetrics>> metrics;
    for (const auto& net : nets) {
      planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
      const auto plan = planner.plan(net);
      if (!plan) {
        metrics.push_back(plan.error());
        continue;
      }
      metrics.push_back(planning::compute_metrics(*plan, net));
    }
    return metrics;
  });
  std::vector<double> lengths[2];
  std::vector<double> weights[2];
  // Under --list the harness returns an empty placeholder; never index it.
  for (std::size_t i = 0; i < flex_metrics.size(); ++i) {
    if (!flex_metrics[i]) {
      std::printf("planning failed on %s: %s\n", nets[i].name.c_str(),
                  flex_metrics[i].error().message.c_str());
      return 1;
    }
    lengths[i] = flex_metrics[i]->path_lengths_km;
    weights[i] = flex_metrics[i]->path_length_weights_gbps;
  }
  for (double x : {100.0, 200.0, 400.0, 700.0, 1000.0, 1500.0, 2000.0,
                   3000.0}) {
    cdf.add_row(
        {TextTable::num(x, 0),
         TextTable::num(100.0 * weighted_cdf_at(lengths[0], weights[0], x), 0) +
             "%",
         TextTable::num(100.0 * weighted_cdf_at(lengths[1], weights[1], x), 0) +
             "%"});
  }
  std::printf("%s\n", cdf.render().c_str());

  std::printf("=== Figure 13(b): FlexWAN gains per topology ===\n");
  const auto gain_rows = bench.run("baseline_gains", [&] {
    std::vector<std::vector<std::string>> rows;
    for (const auto& net : nets) {
      planning::HeuristicPlanner flex(transponder::svt_flexwan(), {});
      const auto pf = flex.plan(net);
      if (!pf) continue;
      const auto mf = planning::compute_metrics(*pf, net);
      for (const auto* baseline :
           {&transponder::fixed_grid_100g(), &transponder::bvt_radwan()}) {
        planning::HeuristicPlanner planner(*baseline, {});
        const auto pb = planner.plan(net);
        if (!pb) {
          rows.push_back({net.name, baseline->name(), "infeasible", "-", "-"});
          continue;
        }
        const auto mb = planning::compute_metrics(*pb, net);
        rows.push_back(
            {net.name, baseline->name(),
             TextTable::num(100.0 * (1.0 - static_cast<double>(
                                               mf.transponder_count) /
                                               mb.transponder_count),
                            0) +
                 "%",
             TextTable::num(
                 100.0 * (1.0 - mf.spectrum_usage_ghz / mb.spectrum_usage_ghz),
                 0) +
                 "%",
             TextTable::num(100.0 * (mf.mean_spectral_efficiency /
                                         mb.mean_spectral_efficiency -
                                     1.0),
                            0) +
                 "%"});
      }
    }
    return rows;
  });
  TextTable gains({"topology", "baseline", "transponders saved",
                   "spectrum saved", "SE improved"});
  for (const auto& row : gain_rows) gains.add_row(row);
  std::printf("%s", gains.render().c_str());
  std::printf(
      "paper: up to 85%% transponders / 67%% spectrum saved and up to 215%%\n"
      "SE improvement, with larger gains on the shorter-path T-backbone.\n");
  return 0;
}
