// Figure 14: (a) the CDF of gap = optical reach - fiber path length and
// (b) the CDF of link spectral efficiency, per scheme on the T-backbone.
// FlexWAN's wavelengths are modulated close to their path's limit (small
// gaps) and pack the most bits per Hz.
//
// --bench-json <file> (with --warmup/--reps) records wall-clock telemetry
// through the benchlib harness; stdout is byte-identical either way.
#include <cstdio>
#include <vector>

#include "benchlib/benchlib.h"
#include "obs/report.h"
#include "planning/heuristic.h"
#include "planning/metrics.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/stats.h"
#include "util/table.h"

using namespace flexwan;

int main(int argc, char** argv) {
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  benchlib::Harness bench("fig14_gap_sle", report.bench_options());
  const auto net = topology::make_tbackbone();
  const transponder::Catalog* catalogs[] = {&transponder::fixed_grid_100g(),
                                            &transponder::bvt_radwan(),
                                            &transponder::svt_flexwan()};
  const auto planned = bench.run("plan_all_schemes", [&] {
    std::vector<Expected<planning::PlanMetrics>> out;
    for (const auto* catalog : catalogs) {
      planning::HeuristicPlanner planner(*catalog, {});
      const auto plan = planner.plan(net);
      if (!plan) {
        out.push_back(plan.error());
        continue;
      }
      out.push_back(planning::compute_metrics(*plan, net));
    }
    return out;
  });
  // Under --list the harness returns an empty placeholder; never index it
  // (default PlanMetrics keep the CDF helpers on their empty-input path).
  planning::PlanMetrics metrics[3];
  for (std::size_t i = 0; i < planned.size(); ++i) {
    if (!planned[i]) {
      std::printf("planning failed for %s\n", catalogs[i]->name().c_str());
      return 1;
    }
    metrics[i] = *planned[i];
  }

  std::printf("=== Figure 14(a): CDF of gap = reach - path length ===\n");
  TextTable gap({"gap (km)", "100G-WAN", "RADWAN", "FlexWAN"});
  for (double x : {50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 3000.0}) {
    std::vector<std::string> row{TextTable::num(x, 0)};
    for (int i = 0; i < 3; ++i) {
      row.push_back(
          TextTable::num(100.0 * cdf_at(metrics[i].reach_gaps_km, x), 0) + "%");
    }
    gap.add_row(std::move(row));
  }
  std::printf("%s", gap.render().c_str());
  std::printf("paper: ~90%% of FlexWAN gaps < 100 km; here %.0f%%.  80%% of\n"
              "100G-WAN gaps > 1000 km; here %.0f%%.\n\n",
              100.0 * cdf_at(metrics[2].reach_gaps_km, 100.0),
              100.0 * (1.0 - cdf_at(metrics[0].reach_gaps_km, 1000.0)));

  std::printf("=== Figure 14(b): CDF of link spectral efficiency ===\n");
  TextTable sle({"SE (b/s/Hz)", "100G-WAN", "RADWAN", "FlexWAN"});
  for (double x : {1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 7.5}) {
    std::vector<std::string> row{TextTable::num(x, 1)};
    for (int i = 0; i < 3; ++i) {
      row.push_back(TextTable::num(
                        100.0 * cdf_at(metrics[i].spectral_efficiencies, x),
                        0) +
                    "%");
    }
    sle.add_row(std::move(row));
  }
  std::printf("%s", sle.render().c_str());
  std::printf("mean SE: 100G-WAN %.2f, RADWAN %.2f, FlexWAN %.2f b/s/Hz\n",
              metrics[0].mean_spectral_efficiency,
              metrics[1].mean_spectral_efficiency,
              metrics[2].mean_spectral_efficiency);
  return 0;
}
