// Figure 15: (a) the distribution of gaps between restored and original
// optical paths and (b) the mean restoration capability versus capacity
// scale for the three schemes.  §8's headline: in the overloaded (5x)
// backbone FlexWAN revives ~15 % more capacity than RADWAN.
//
// Pass --threads N to size the execution engine (default: one thread per
// hardware thread; 1 = serial).  Output is byte-identical at every N.
// --metrics / --trace <file.json> write observability reports (obs/report.h)
// and --bench-json <file.json> (with --warmup/--reps) records per-case
// wall-clock + metrics-delta telemetry — none of them touch stdout.
#include <cstdio>
#include <vector>

#include "benchlib/benchlib.h"
#include "engine/engine.h"
#include "obs/report.h"
#include "planning/heuristic.h"
#include "planning/metrics.h"
#include "restoration/metrics.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/stats.h"
#include "util/table.h"

using namespace flexwan;

int main(int argc, char** argv) {
  const engine::Engine engine(engine::threads_flag(argc, argv));
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  benchlib::Harness bench("fig15_restoration", report.bench_options(),
                          engine.thread_count());
  const auto net = topology::make_tbackbone();
  const auto scenarios =
      restoration::standard_scenario_set(net.optical, 12, 5);
  // Thread count goes to stderr so stdout stays byte-identical at every N.
  obs::announce_threads(engine.thread_count());
  std::printf("scenario set: %d single-fiber cuts + %d probabilistic = %zu\n\n",
              net.optical.fiber_count(),
              static_cast<int>(scenarios.size()) - net.optical.fiber_count(),
              scenarios.size());

  // (a) restored vs original path gaps, FlexWAN at scale 1.
  {
    const auto m = bench.run("flexwan_path_gaps", [&] {
      planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
      const auto plan = planner.plan(net, engine);
      restoration::Restorer restorer(transponder::svt_flexwan());
      return restoration::evaluate_scenarios(net, *plan, restorer, scenarios,
                                             engine);
    });
    std::printf("=== Figure 15(a): restored path - original path (km) ===\n");
    TextTable gap({"gap (km)", "CDF"});
    for (double x : {0.0, 100.0, 250.0, 500.0, 1000.0, 1500.0, 2500.0}) {
      gap.add_row({TextTable::num(x, 0),
                   TextTable::num(100.0 * cdf_at(m.path_gaps_km, x), 0) + "%"});
    }
    std::printf("%s", gap.render().c_str());
    int longer = 0;
    for (double s : m.path_stretch) {
      if (s > 1.0) ++longer;
    }
    const auto stretch = summarize(m.path_stretch);
    std::printf("restored longer than original: %.0f%% (paper: 90%%); max "
                "stretch %.1fx (paper: >10x extremes)\n\n",
                m.path_stretch.empty()
                    ? 0.0
                    : 100.0 * longer / static_cast<double>(m.path_stretch.size()),
                stretch.max);
  }

  // (b) mean restoration capability vs scale.
  std::printf("=== Figure 15(b): mean restoration capability vs scale ===\n");
  const transponder::Catalog* catalogs[] = {&transponder::fixed_grid_100g(),
                                            &transponder::bvt_radwan(),
                                            &transponder::svt_flexwan()};
  // The paper's overloaded point is 5x on its production backbone; on the
  // synthetic stand-in we use RADWAN's own feasibility limit, where its
  // spectrum is just as exhausted.
  const double overload = bench.run("overload_probe", [&] {
    planning::HeuristicPlanner rad_probe(transponder::bvt_radwan(), {});
    return planning::max_supported_scale(net, rad_probe, 10.0, 0.5);
  });
  std::vector<double> scales;
  for (double s = 1.0; s + 1e-9 < overload; s += 1.0) scales.push_back(s);
  scales.push_back(overload);

  struct SweepResult {
    std::vector<std::vector<std::string>> rows;
    double flex_over = 0.0;
    double rad_over = 0.0;
  };
  const auto sweep = bench.run("capability_vs_scale", [&]() -> SweepResult {
    SweepResult result;
    for (double scale : scales) {
      const topology::Network scaled{net.name, net.optical,
                                     net.ip.scaled(scale)};
      std::vector<std::string> row{TextTable::num(scale, 1)};
      for (const auto* catalog : catalogs) {
        planning::HeuristicPlanner planner(*catalog, {});
        const auto plan = planner.plan(scaled, engine);
        if (!plan) {
          row.push_back("infeasible");
          continue;
        }
        restoration::Restorer restorer(*catalog);
        const auto m = restoration::evaluate_scenarios(scaled, *plan, restorer,
                                                       scenarios, engine);
        row.push_back(TextTable::num(m.mean_capability, 3));
        if (scale == overload && catalog == &transponder::svt_flexwan()) {
          result.flex_over = m.mean_capability;
        }
        if (scale == overload && catalog == &transponder::bvt_radwan()) {
          result.rad_over = m.mean_capability;
        }
      }
      result.rows.push_back(std::move(row));
    }
    return result;
  });
  TextTable cap({"scale", "100G-WAN", "RADWAN", "FlexWAN"});
  for (const auto& row : sweep.rows) cap.add_row(row);
  std::printf("%s", cap.render().c_str());
  if (sweep.rad_over > 0.0) {
    std::printf("overloaded %.1fx: FlexWAN revives %.1f%% more capacity than "
                "RADWAN (paper: +15%% at its 5x overload point)\n",
                overload, 100.0 * (sweep.flex_over / sweep.rad_over - 1.0));
  }
  std::printf("paper: baselines restore nearly everything when underloaded\n"
              "(spare reach redundancy) but fall behind FlexWAN when the\n"
              "spectrum fills up.\n");
  return 0;
}
