// Figure 16: the distribution of restoration capability in the underloaded
// (1x) and overloaded (5x) backbone, including FlexWAN+ — FlexWAN with half
// of the transponders it saved (vs RADWAN) redeployed per link as extra
// restoration spares.
//
// Pass --threads N to size the execution engine (default: one thread per
// hardware thread; 1 = serial).  Output is byte-identical at every N.
// --metrics / --trace <file.json> write observability reports (obs/report.h)
// and --bench-json <file.json> (with --warmup/--reps) records per-case
// wall-clock + metrics-delta telemetry — none of them touch stdout.
#include <cstdio>
#include <vector>

#include "benchlib/benchlib.h"
#include "engine/engine.h"
#include "obs/report.h"
#include "planning/heuristic.h"
#include "planning/metrics.h"
#include "restoration/metrics.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/stats.h"
#include "util/table.h"

using namespace flexwan;

int main(int argc, char** argv) {
  const engine::Engine engine(engine::threads_flag(argc, argv));
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  benchlib::Harness bench("fig16_flexwanplus", report.bench_options(),
                          engine.thread_count());
  obs::announce_threads(engine.thread_count());
  const auto base = topology::make_tbackbone();
  const auto scenarios =
      restoration::standard_scenario_set(base.optical, 12, 5);

  // "Overloaded" = the largest scale at which RADWAN can still plan (the
  // paper uses 5x on its production backbone; the synthetic stand-in's
  // limit differs, but the regime — RADWAN out of spare spectrum — is the
  // same).
  const double overload = bench.run("overload_probe", [&] {
    planning::HeuristicPlanner rad_probe(transponder::bvt_radwan(), {});
    return planning::max_supported_scale(base, rad_probe, 10.0, 0.5);
  });

  struct ScaleResult {
    bool feasible = false;
    restoration::ScenarioSetMetrics rad, flex, plus;
    int extra_total = 0;
  };
  const char* case_names[] = {"scale_underloaded", "scale_overloaded"};
  const double scale_points[] = {1.0, overload};
  for (int s = 0; s < 2; ++s) {
    const double scale = scale_points[s];
    const topology::Network net{base.name, base.optical,
                                base.ip.scaled(scale)};
    std::printf("=== Figure 16(%s): capability CDF at scale %.1fx (%s) ===\n",
                scale == 1.0 ? "a" : "b", scale,
                scale == 1.0 ? "underloaded" : "overloaded");

    const auto result = bench.run(case_names[s], [&]() -> ScaleResult {
      ScaleResult out;
      planning::HeuristicPlanner flex(transponder::svt_flexwan(), {});
      planning::HeuristicPlanner rad(transponder::bvt_radwan(), {});
      const auto pf = flex.plan(net, engine);
      const auto pr = rad.plan(net, engine);
      if (!pf || !pr) return out;
      out.feasible = true;
      const auto extras = restoration::flexwan_plus_spares(*pf, *pr);
      for (const auto& [link, n] : extras) out.extra_total += n;

      restoration::Restorer flex_restorer(transponder::svt_flexwan());
      restoration::Restorer rad_restorer(transponder::bvt_radwan());
      out.rad = restoration::evaluate_scenarios(net, *pr, rad_restorer,
                                                scenarios, engine);
      out.flex = restoration::evaluate_scenarios(net, *pf, flex_restorer,
                                                 scenarios, engine);
      out.plus = restoration::evaluate_scenarios(net, *pf, flex_restorer,
                                                 scenarios, engine, extras);
      return out;
    });
    if (!result.feasible) {
      std::printf("planning infeasible at this scale\n");
      continue;
    }

    TextTable table({"capability <=", "RADWAN", "FlexWAN", "FlexWAN+"});
    for (double x : {0.5, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0}) {
      table.add_row(
          {TextTable::num(x, 2),
           TextTable::num(100.0 * cdf_at(result.rad.capabilities, x), 0) + "%",
           TextTable::num(100.0 * cdf_at(result.flex.capabilities, x), 0) + "%",
           TextTable::num(100.0 * cdf_at(result.plus.capabilities, x), 0) +
               "%"});
    }
    std::printf("%s", table.render().c_str());
    std::printf("mean capability: RADWAN %.3f, FlexWAN %.3f, FlexWAN+ %.3f "
                "(%d extra spares)\n\n",
                result.rad.mean_capability, result.flex.mean_capability,
                result.plus.mean_capability, result.extra_total);
  }
  std::printf(
      "paper: FlexWAN+ beats RADWAN even underloaded — the redeployed\n"
      "spares absorb the degradation from longer restoration paths.\n");
  return 0;
}
