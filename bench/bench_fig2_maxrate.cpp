// Figure 2(b): the maximum data rate supported by the RADWAN BVT and the
// FlexWAN SVT as a function of the traveling distance.  The gap at short
// distances is the paper's core motivation.
//
// --bench-json <file> (with --warmup/--reps) records wall-clock telemetry
// through the benchlib harness; stdout is byte-identical either way.
#include <array>
#include <cstdio>
#include <vector>

#include "benchlib/benchlib.h"
#include "obs/report.h"
#include "transponder/catalog.h"
#include "util/table.h"

using namespace flexwan;

int main(int argc, char** argv) {
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  benchlib::Harness bench("fig2_maxrate", report.bench_options());
  const auto& bvt = transponder::bvt_radwan();
  const auto& svt = transponder::svt_flexwan();

  const double distances[] = {100.0, 200.0,  300.0,  500.0,  800.0, 1100.0,
                              1400.0, 1900.0, 2000.0, 3000.0, 5000.0};
  // Per distance: {distance, BVT rate, SVT rate}.
  const auto rates = bench.run("max_rate_sweep", [&] {
    std::vector<std::array<double, 3>> rows;
    for (double d : distances) {
      const auto b = bvt.max_rate_mode(d);
      const auto s = svt.max_rate_mode(d);
      rows.push_back({d, b ? b->data_rate_gbps : 0.0,
                      s ? s->data_rate_gbps : 0.0});
    }
    return rows;
  });

  std::printf("=== Figure 2(b): max data rate vs distance, BVT vs SVT ===\n");
  TextTable table({"distance (km)", "BVT (Gbps)", "SVT (Gbps)", "SVT gain"});
  for (const auto& [d, br, sr] : rates) {
    table.add_row({TextTable::num(d, 0), TextTable::num(br, 0),
                   TextTable::num(sr, 0),
                   br > 0 ? TextTable::num(sr / br, 2) + "x" : "-"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "paper: SVT reaches 800 Gbps on short paths where the BVT caps at\n"
      "300 Gbps — a 2.67x gap that motivates spacing-variable hardware.\n");
  return 0;
}
