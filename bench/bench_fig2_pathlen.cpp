// Figure 2(a): the distribution of optical path lengths in the production
// WAN.  Prints the empirical CDF of the shortest optical path of every IP
// link on the synthetic T-backbone; the paper's headline is that ~50 % of
// paths are shorter than 200 km while the tail passes 2000 km.
//
// --bench-json <file> (with --warmup/--reps) records wall-clock telemetry
// through the benchlib harness; --metrics/--trace write obs reports.  All
// telemetry goes to files/stderr — stdout is byte-identical either way.
#include <cstdio>
#include <vector>

#include "benchlib/benchlib.h"
#include "obs/report.h"
#include "topology/builders.h"
#include "topology/ksp.h"
#include "util/stats.h"
#include "util/table.h"

using namespace flexwan;

int main(int argc, char** argv) {
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  benchlib::Harness bench("fig2_pathlen", report.bench_options());
  const auto net = topology::make_tbackbone();

  const auto lengths = bench.run("shortest_paths", [&] {
    std::vector<double> lengths;
    for (const auto& link : net.ip.links()) {
      const auto path =
          topology::shortest_path(net.optical, link.src, link.dst);
      if (path) lengths.push_back(path->length_km);
    }
    return lengths;
  });

  std::printf("=== Figure 2(a): optical path length distribution (%s) ===\n",
              net.name.c_str());
  TextTable table({"path length (km)", "CDF"});
  for (double x : {100.0, 200.0, 400.0, 600.0, 800.0, 1000.0, 1500.0, 2000.0,
                   2500.0}) {
    table.add_row({TextTable::num(x, 0),
                   TextTable::num(100.0 * cdf_at(lengths, x), 0) + "%"});
  }
  std::printf("%s", table.render().c_str());

  const auto s = summarize(lengths);
  std::printf(
      "paths: %zu  min %.0f km  median %.0f km  p90 %.0f km  max %.0f km\n",
      s.count, s.min, s.median, s.p90, s.max);
  std::printf("paper: ~50%% of optical paths are below 200 km; here: %.0f%%\n",
              100.0 * cdf_at(lengths, 200.0));
  return 0;
}
