// Figure 3: hardware cost of provisioning 800 Gbps of WAN capacity at
// different optical path lengths — (a) minimum transponder pairs and
// (b) spectrum usage, BVT vs SVT.  Uses the same per-path optimizer the
// planner runs (the DP over Table 2 formats).
//
// --bench-json <file> (with --warmup/--reps) records wall-clock telemetry
// through the benchlib harness; stdout is byte-identical either way.
#include <cstdio>
#include <vector>

#include "benchlib/benchlib.h"
#include "obs/report.h"
#include "planning/heuristic.h"
#include "transponder/catalog.h"
#include "util/table.h"

using namespace flexwan;

namespace {

struct Cost {
  int transponders = 0;
  double spectrum_ghz = 0.0;
};

Cost cost_for(const transponder::Catalog& catalog, double distance_km) {
  const auto set = planning::best_mode_set(catalog, distance_km, 800, 0.001);
  Cost c;
  if (!set) return c;  // unreachable: reported as 0 (paper stops the x-axis)
  c.transponders = static_cast<int>(set->modes.size());
  for (const auto& m : set->modes) c.spectrum_ghz += m.spacing_ghz;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  benchlib::Harness bench("fig3_cost800g", report.bench_options());
  const auto& bvt = transponder::bvt_radwan();
  const auto& svt = transponder::svt_flexwan();

  const double distances[] = {100.0, 200.0,  300.0,  600.0,
                              900.0, 1200.0, 1500.0, 1800.0};
  struct Row {
    double distance_km;
    Cost bvt_cost;
    Cost svt_cost;
  };
  const auto rows = bench.run("dp_cost_sweep", [&] {
    std::vector<Row> rows;
    for (double d : distances) {
      rows.push_back({d, cost_for(bvt, d), cost_for(svt, d)});
    }
    return rows;
  });

  std::printf(
      "=== Figure 3: hardware cost to provision 800 Gbps vs path length "
      "===\n");
  TextTable table({"length (km)", "BVT pairs", "SVT pairs", "BVT GHz",
                   "SVT GHz"});
  for (const auto& r : rows) {
    table.add_row({TextTable::num(r.distance_km, 0),
                   std::to_string(r.bvt_cost.transponders),
                   std::to_string(r.svt_cost.transponders),
                   TextTable::num(r.bvt_cost.spectrum_ghz, 1),
                   TextTable::num(r.svt_cost.spectrum_ghz, 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "paper: below 300 km one SVT pair (<=150 GHz) replaces three BVT\n"
      "pairs (225 GHz); at 1800 km SVT needs half the BVT transponders.\n");
  return 0;
}
