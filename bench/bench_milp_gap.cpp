// Ablation: the exact Algorithm 1 MIP (in-repo branch-and-bound) versus the
// scalable heuristic on validation-sized networks, plus the epsilon sweep
// that trades transponder count against spectrum usage in the objective.
// The paper solves the MIP with Gurobi at a <0.1 % gap; this bench shows
// the decomposition heuristic stays within one transponder of our exact
// solver where the exact solver is tractable.
//
// --bench-json <file> (with --warmup/--reps) records wall-clock telemetry
// through the benchlib harness (case bodies re-seed their own Rng, so every
// repetition sees identical instances); stdout is byte-identical either way.
#include <cstdio>
#include <vector>

#include "benchlib/benchlib.h"
#include "obs/report.h"
#include "planning/exact.h"
#include "planning/heuristic.h"
#include "planning/metrics.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/rng.h"
#include "util/table.h"

using namespace flexwan;

namespace {

// Reduced SVT catalog for exact solves: five representative Table 2 rows.
// The full 36-format table at C-band width produces thousands of binaries
// per link — tractable for Gurobi, not for a teaching-grade dense B&B.
const transponder::Catalog& mini_svt() {
  static const transponder::Catalog catalog("FlexWAN-mini", [] {
    std::vector<transponder::Mode> modes;
    for (const auto& m : transponder::svt_flexwan().modes()) {
      if ((m.data_rate_gbps == 100 && m.spacing_ghz == 50) ||
          (m.data_rate_gbps == 200 && m.spacing_ghz == 75) ||
          (m.data_rate_gbps == 400 && m.spacing_ghz == 87.5) ||
          (m.data_rate_gbps == 400 && m.spacing_ghz == 112.5) ||
          (m.data_rate_gbps == 600 && m.spacing_ghz == 87.5)) {
        modes.push_back(m);
      }
    }
    return modes;
  }());
  return catalog;
}

}  // namespace

int main(int argc, char** argv) {
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  benchlib::Harness bench("milp_gap", report.bench_options());

  std::printf("=== Ablation: exact MIP vs heuristic planner ===\n");
  std::printf("(reduced 5-format SVT catalog, 16-pixel band: the largest\n"
              "instances our dense-tableau branch-and-bound proves optimal)\n");
  const auto exact_rows = bench.run("exact_vs_heuristic", [&] {
    // The Rng lives inside the case so every repetition replays the same
    // six random instances.
    Rng rng(2024);
    std::vector<std::vector<std::string>> rows;
    for (int trial = 0; trial < 6; ++trial) {
      topology::RandomBackboneParams params;
      params.nodes = 4 + trial % 3;
      params.ip_links = 2;
      params.max_fiber_km = 500;
      params.min_demand_gbps = 100;
      params.max_demand_gbps = 600;
      const auto net = topology::random_backbone(params, rng);

      planning::ExactPlannerConfig exact_config;
      exact_config.band_pixels = 16;
      exact_config.k_paths = 2;
      exact_config.mip.max_nodes = 20000;
      const auto exact =
          planning::solve_exact_plan(net, mini_svt(), exact_config);
      planning::PlannerConfig heur_config;
      heur_config.band_pixels = 16;
      heur_config.k_paths = 2;
      planning::HeuristicPlanner planner(mini_svt(), heur_config);
      const auto heuristic = planner.plan(net);

      rows.push_back(
          {"random" + std::to_string(trial),
           std::to_string(net.ip.link_count()),
           exact ? std::to_string(exact->plan.transponder_count()) : "-",
           heuristic ? std::to_string(heuristic->transponder_count()) : "-",
           exact ? TextTable::num(exact->objective, 3) : "-",
           exact ? std::to_string(exact->nodes_explored) : "-",
           exact ? (exact->status == milp::MipStatus::kOptimal ? "optimal"
                                                               : "node-limit")
                 : exact.error().code});
    }
    return rows;
  });
  TextTable table({"net", "links", "exact txp", "heur txp", "exact obj",
                   "nodes", "status"});
  for (const auto& row : exact_rows) table.add_row(row);
  std::printf("%s\n", table.render().c_str());

  std::printf("=== Ablation: epsilon sweep (objective balance, §5) ===\n");
  const auto net = topology::make_tbackbone();
  const auto eps_rows = bench.run("epsilon_sweep", [&] {
    std::vector<std::vector<std::string>> rows;
    for (double e : {0.0, 0.0001, 0.001, 0.01, 0.1}) {
      planning::PlannerConfig config;
      config.epsilon = e;
      planning::HeuristicPlanner planner(transponder::svt_flexwan(), config);
      const auto plan = planner.plan(net);
      if (!plan) continue;
      rows.push_back({TextTable::num(e, 4),
                      std::to_string(plan->transponder_count()),
                      TextTable::num(plan->spectrum_usage_ghz(), 0)});
    }
    return rows;
  });
  TextTable eps({"epsilon", "transponders", "spectrum (GHz)"});
  for (const auto& row : eps_rows) eps.add_row(row);
  std::printf("%s", eps.render().c_str());
  std::printf("epsilon > 0 breaks transponder-count ties toward narrower\n"
              "channels; very large epsilon trades extra transponders for\n"
              "spectrum.\n");
  return 0;
}
