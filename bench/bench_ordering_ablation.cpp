// Ablation (DESIGN.md): spectrum-assignment link ordering and exact vs
// heuristic restoration.
//
// Part 1 — the planner assigns spectrum link by link; the order decides who
// gets the clean low pixels and who fights fragmentation.  Compares
// most-constrained-first (default) against longest-path-first and arbitrary
// order by the maximum demand scale each sustains.
//
// Part 2 — the §8 restoration heuristic against the exact branch-and-bound
// formulation on ring scenarios, reporting the optimality gap.
//
// --bench-json <file> (with --warmup/--reps) records wall-clock telemetry
// through the benchlib harness; stdout is byte-identical either way.
#include <cstdio>
#include <vector>

#include "benchlib/benchlib.h"
#include "obs/report.h"
#include "planning/heuristic.h"
#include "planning/metrics.h"
#include "restoration/exact.h"
#include "restoration/metrics.h"
#include "restoration/restorer.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/table.h"

using namespace flexwan;

namespace {

topology::Network ring_net(double demand_gbps, double side_km) {
  topology::Network net;
  net.name = "ring";
  for (int i = 0; i < 4; ++i) net.optical.add_node("n" + std::to_string(i));
  net.optical.add_fiber(0, 1, side_km);
  net.optical.add_fiber(1, 2, side_km);
  net.optical.add_fiber(2, 3, side_km);
  net.optical.add_fiber(3, 0, side_km);
  net.ip.add_link(0, 1, demand_gbps);
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  benchlib::Harness bench("ordering_ablation", report.bench_options());

  std::printf("=== Ablation: spectrum-assignment link ordering ===\n");
  const auto net = topology::make_tbackbone();
  const auto ordering_rows = bench.run("link_ordering", [&] {
    const struct {
      planning::LinkOrdering ordering;
      const char* name;
    } orderings[] = {
        {planning::LinkOrdering::kMostConstrainedFirst, "most-constrained"},
        {planning::LinkOrdering::kLongestPathFirst, "longest-path"},
        {planning::LinkOrdering::kArbitrary, "arbitrary"},
    };
    std::vector<std::vector<std::string>> rows;
    for (const auto& o : orderings) {
      planning::PlannerConfig config;
      config.ordering = o.ordering;
      planning::HeuristicPlanner planner(transponder::svt_flexwan(), config);
      const auto plan = planner.plan(net);
      if (!plan) {
        rows.push_back({o.name, "infeasible", "-", "-"});
        continue;
      }
      rows.push_back(
          {o.name, std::to_string(plan->transponder_count()),
           TextTable::num(plan->spectrum_usage_ghz(), 0),
           TextTable::num(
               planning::max_supported_scale(net, planner, 12.0, 0.5), 1) +
               "x"});
    }
    return rows;
  });
  TextTable table({"ordering", "txp @1x", "GHz @1x", "max scale"});
  for (const auto& row : ordering_rows) table.add_row(row);
  std::printf("%s", table.render().c_str());
  std::printf("the 1x costs match (ordering changes packing, not formats);\n"
              "the max scale is where ordering pays off.\n\n");

  std::printf("=== Ablation: exact vs heuristic restoration ===\n");
  const auto rest_rows = bench.run("exact_restoration", [&] {
    std::vector<std::vector<std::string>> rows;
    for (const auto& [demand, side] :
         std::initializer_list<std::pair<double, double>>{
             {400, 300}, {600, 400}, {800, 300}, {1000, 300}, {1600, 300}}) {
      auto ring = ring_net(demand, side);
      planning::PlannerConfig config;
      config.band_pixels = 48;
      planning::HeuristicPlanner planner(transponder::svt_flexwan(), config);
      const auto plan = planner.plan(ring);
      if (!plan) continue;
      const restoration::FailureScenario scenario{{0}, 1.0};
      restoration::Restorer heuristic(transponder::svt_flexwan(), {2});
      const auto h = heuristic.restore(ring, *plan, scenario);
      restoration::ExactRestorerConfig exact_config;
      exact_config.k_paths = 2;
      const auto e = restoration::solve_exact_restoration(
          ring, *plan, scenario, transponder::svt_flexwan(), exact_config);
      if (!e) continue;
      const double gap =
          e->outcome.restored_gbps > 0
              ? (e->outcome.restored_gbps - h.restored_gbps) /
                    e->outcome.restored_gbps
              : 0.0;
      rows.push_back({TextTable::num(demand, 0), TextTable::num(side, 0),
                      TextTable::num(h.affected_gbps, 0),
                      TextTable::num(h.restored_gbps, 0),
                      TextTable::num(e->outcome.restored_gbps, 0),
                      TextTable::num(100.0 * gap, 1) + "%",
                      std::to_string(e->nodes_explored)});
    }
    return rows;
  });
  TextTable rest({"demand", "side km", "affected", "heuristic", "exact",
                  "gap", "B&B nodes"});
  for (const auto& row : rest_rows) rest.add_row(row);
  std::printf("%s", rest.render().c_str());
  std::printf("(negative gap = the heuristic's partial-credit accounting\n"
              "revived payload the MIP's constraint (7) cannot count)\n\n");

  // Part 3 — protection-spectrum reservation: withholding pixels from
  // planning costs supported scale but buys restoration capability (§8's
  // savings-vs-resilience balance as a spectrum policy).
  std::printf("=== Ablation: protection-spectrum reservation ===\n");
  const topology::Network loaded{net.name, net.optical, net.ip.scaled(5.0)};
  const auto scenarios = restoration::single_fiber_cuts(net.optical);
  const auto prot_rows = bench.run("protection_reservation", [&] {
    std::vector<std::vector<std::string>> rows;
    for (int reserved : {0, 24, 48, 96}) {
      planning::PlannerConfig config;
      config.reserved_pixels = reserved;
      planning::HeuristicPlanner planner(transponder::svt_flexwan(), config);
      const double scale =
          planning::max_supported_scale(net, planner, 12.0, 0.5);
      const auto plan = planner.plan(loaded);
      std::string capability = "infeasible";
      if (plan) {
        restoration::Restorer restorer(transponder::svt_flexwan(), {});
        const auto m = restoration::evaluate_scenarios(loaded, *plan, restorer,
                                                       scenarios);
        capability = TextTable::num(m.mean_capability, 3);
      }
      rows.push_back({TextTable::num(reserved * 12.5, 0),
                      TextTable::num(scale, 1) + "x", capability});
    }
    return rows;
  });
  TextTable prot({"reserved (GHz)", "max scale", "capability @5x"});
  for (const auto& row : prot_rows) prot.add_row(row);
  std::printf("%s", prot.render().c_str());
  std::printf(
      "negative result: reservation costs supported scale but barely moves\n"
      "restoration capability — the restorer's binding constraints here are\n"
      "spare transponders and residual-path existence, not spectrum (the cut\n"
      "itself frees the affected wavelengths' pixels).  FlexWAN+'s extra\n"
      "transponders (Fig. 16) attack the actual bottleneck.\n");
  return 0;
}
