// Runtime microbenchmarks of the core algorithms: KSP, the per-path DP,
// the full heuristic planner, restoration, the simplex, and the calibrated
// phy sweep.  The paper runs its MIP "within hours" offline; the practical
// value of the heuristic is that whole-backbone planning lands in
// milliseconds.
//
// Wall-clock telemetry comes from the benchlib harness: run with
// --bench-json <file.json> (plus --warmup/--reps) to record per-case
// timing statistics and metric deltas; per-case medians also land on
// stderr.  stdout carries only the deterministic result summaries, so it
// is byte-identical whether the harness is on or off.
#include <cstdio>
#include <string>
#include <vector>

#include "benchlib/benchlib.h"
#include "milp/branch_and_bound.h"
#include "obs/report.h"
#include "phy/calibration.h"
#include "planning/heuristic.h"
#include "planning/metrics.h"
#include "restoration/metrics.h"
#include "topology/builders.h"
#include "topology/ksp.h"
#include "transponder/catalog.h"
#include "util/table.h"

using namespace flexwan;

namespace {

milp::Model knapsack(int n, int mult) {
  milp::Model m;
  m.set_direction(milp::Direction::kMaximize);
  for (int i = 0; i < n; ++i) {
    m.add_binary("x" + std::to_string(i), 1.0 + (i * mult) % 7);
  }
  std::vector<milp::Term> terms;
  for (int i = 0; i < n; ++i) terms.push_back(milp::Term{i, 1.0 + i % 3});
  m.add_constraint(std::move(terms), milp::Sense::kLe, n / 2.0);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  benchlib::Harness bench("runtime", report.bench_options());
  TextTable table({"case", "result"});

  std::printf("=== Runtime microbenchmarks (timings: --bench-json) ===\n");

  const auto net = topology::make_tbackbone();
  for (int k : {1, 3, 6}) {
    const auto paths = bench.run("ksp_tbackbone_k" + std::to_string(k), [&] {
      std::size_t total = 0;
      for (const auto& link : net.ip.links()) {
        total +=
            topology::k_shortest_paths(net.optical, link.src, link.dst, k)
                .size();
      }
      return total;
    });
    table.add_row({"ksp_tbackbone_k" + std::to_string(k),
                   std::to_string(paths) + " paths"});
  }

  for (int demand : {800, 3200, 12800}) {
    const auto modes =
        bench.run("best_mode_set_" + std::to_string(demand), [&] {
          const auto set = planning::best_mode_set(
              transponder::svt_flexwan(), 700.0, demand, 0.001);
          return set ? set->modes.size() : std::size_t{0};
        });
    table.add_row({"best_mode_set_" + std::to_string(demand),
                   std::to_string(modes) + " modes"});
  }

  for (int scale : {1, 4}) {
    const auto txp =
        bench.run("plan_tbackbone_" + std::to_string(scale) + "x", [&] {
          const topology::Network scaled{
              net.name, net.optical,
              net.ip.scaled(static_cast<double>(scale))};
          planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
          const auto plan = planner.plan(scaled);
          return plan ? plan->transponder_count() : -1;
        });
    table.add_row({"plan_tbackbone_" + std::to_string(scale) + "x",
                   std::to_string(txp) + " txp"});
  }

  {
    const auto txp = bench.run("plan_cernet", [&] {
      planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
      const auto plan = planner.plan(topology::make_cernet());
      return plan ? plan->transponder_count() : -1;
    });
    table.add_row({"plan_cernet", std::to_string(txp) + " txp"});
  }

  {
    planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
    const auto plan = planner.plan(net);
    const auto scenarios = restoration::single_fiber_cuts(net.optical);
    const auto capability = bench.run("restore_all_single_cuts", [&] {
      restoration::Restorer restorer(transponder::svt_flexwan());
      return restoration::evaluate_scenarios(net, plan.value(), restorer,
                                             scenarios)
          .mean_capability;
    });
    table.add_row({"restore_all_single_cuts",
                   TextTable::num(capability, 3) + " mean capability"});
  }

  for (int n : {16, 64}) {
    const auto obj =
        bench.run("simplex_knapsack_" + std::to_string(n), [&] {
          const auto m = knapsack(n, 1);
          const auto sol = milp::solve_lp_relaxation(m);
          return sol.status == milp::LpStatus::kOptimal ? sol.objective : -1.0;
        });
    table.add_row({"simplex_knapsack_" + std::to_string(n),
                   "LP obj " + TextTable::num(obj, 2)});
  }

  for (int n : {10, 14}) {
    const auto obj = bench.run("mip_knapsack_" + std::to_string(n), [&] {
      const auto m = knapsack(n, 13);
      const auto sol = milp::solve_mip(m);
      return sol.status == milp::MipStatus::kOptimal ? sol.objective : -1.0;
    });
    table.add_row({"mip_knapsack_" + std::to_string(n),
                   "MIP obj " + TextTable::num(obj, 2)});
  }

  {
    const auto& catalog = transponder::svt_flexwan();
    const auto model = phy::calibrate(catalog);
    const auto total = bench.run("phy_reach_sweep", [&] {
      double sum = 0.0;
      for (const auto& mode : catalog.modes()) {
        sum += model.predicted_reach_km(mode);
      }
      return sum;
    });
    table.add_row(
        {"phy_reach_sweep", TextTable::num(total, 0) + " km total reach"});
  }

  std::printf("%s", table.render().c_str());
  return 0;
}
