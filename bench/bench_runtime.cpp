// Runtime microbenchmarks (google-benchmark) of the core algorithms: KSP,
// the per-path DP, the full heuristic planner, restoration, the simplex,
// and the calibrated phy sweep.  The paper runs its MIP "within hours"
// offline; the practical value of the heuristic is that whole-backbone
// planning lands in milliseconds.
#include <benchmark/benchmark.h>

#include "milp/branch_and_bound.h"
#include "phy/calibration.h"
#include "planning/heuristic.h"
#include "planning/metrics.h"
#include "restoration/metrics.h"
#include "topology/builders.h"
#include "topology/ksp.h"
#include "transponder/catalog.h"

using namespace flexwan;

namespace {

void BM_KspTbackbone(benchmark::State& state) {
  const auto net = topology::make_tbackbone();
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (const auto& link : net.ip.links()) {
      benchmark::DoNotOptimize(
          topology::k_shortest_paths(net.optical, link.src, link.dst, k));
    }
  }
}
BENCHMARK(BM_KspTbackbone)->Arg(1)->Arg(3)->Arg(6);

void BM_BestModeSet(benchmark::State& state) {
  const auto& catalog = transponder::svt_flexwan();
  const double demand = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        planning::best_mode_set(catalog, 700.0, demand, 0.001));
  }
}
BENCHMARK(BM_BestModeSet)->Arg(800)->Arg(3200)->Arg(12800);

void BM_PlanTbackbone(benchmark::State& state) {
  const auto net = topology::make_tbackbone();
  const topology::Network scaled{
      net.name, net.optical,
      net.ip.scaled(static_cast<double>(state.range(0)))};
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(scaled));
  }
}
BENCHMARK(BM_PlanTbackbone)->Arg(1)->Arg(4);

void BM_PlanCernet(benchmark::State& state) {
  const auto net = topology::make_cernet();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(net));
  }
}
BENCHMARK(BM_PlanCernet);

void BM_RestoreAllSingleCuts(benchmark::State& state) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  restoration::Restorer restorer(transponder::svt_flexwan());
  const auto scenarios = restoration::single_fiber_cuts(net.optical);
  for (auto _ : state) {
    benchmark::DoNotOptimize(restoration::evaluate_scenarios(
        net, plan.value(), restorer, scenarios));
  }
}
BENCHMARK(BM_RestoreAllSingleCuts);

void BM_SimplexKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  milp::Model m;
  m.set_direction(milp::Direction::kMaximize);
  for (int i = 0; i < n; ++i) {
    m.add_binary("x" + std::to_string(i), 1.0 + i % 7);
  }
  std::vector<milp::Term> terms;
  for (int i = 0; i < n; ++i) terms.push_back(milp::Term{i, 1.0 + i % 3});
  m.add_constraint(std::move(terms), milp::Sense::kLe, n / 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(milp::solve_lp_relaxation(m));
  }
}
BENCHMARK(BM_SimplexKnapsack)->Arg(16)->Arg(64);

void BM_MipKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  milp::Model m;
  m.set_direction(milp::Direction::kMaximize);
  for (int i = 0; i < n; ++i) {
    m.add_binary("x" + std::to_string(i), 1.0 + (i * 13) % 7);
  }
  std::vector<milp::Term> terms;
  for (int i = 0; i < n; ++i) terms.push_back(milp::Term{i, 1.0 + i % 3});
  m.add_constraint(std::move(terms), milp::Sense::kLe, n / 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(milp::solve_mip(m));
  }
}
BENCHMARK(BM_MipKnapsack)->Arg(10)->Arg(14);

void BM_PhyReachSweep(benchmark::State& state) {
  const auto& catalog = transponder::svt_flexwan();
  const auto model = phy::calibrate(catalog);
  for (auto _ : state) {
    for (const auto& mode : catalog.modes()) {
      benchmark::DoNotOptimize(model.predicted_reach_km(mode));
    }
  }
}
BENCHMARK(BM_PhyReachSweep);

}  // namespace
