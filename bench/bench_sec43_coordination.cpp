// §4.3 / Figure 5: spectrum issues under distributed per-vendor control
// versus FlexWAN's centralized controller, on identical provisioning.
// The centralized controller configures the same spectrum on every device
// along each path (channel consistency) from a holistic view (conflict
// freedom); per-vendor controllers assign spectrum from vendor-local views
// over legacy fixed-grid OLS gear, producing both Fig. 5 failure classes.
#include <cstdio>

#include "controller/centralized.h"
#include "controller/distributed.h"
#include "controller/fleet.h"
#include "planning/heuristic.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/table.h"

using namespace flexwan;

int main() {
  std::printf("=== §4.3: centralized vs distributed optical control ===\n");
  TextTable table({"topology", "control", "wavelengths", "inconsistencies",
                   "conflicts", "RPCs"});
  for (const auto& net :
       {topology::make_tbackbone(), topology::make_cernet()}) {
    planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
    const auto plan = planner.plan(net);
    if (!plan) continue;

    // FlexWAN: centralized controller + spectrum-sliced (pixel-wise) OLS.
    controller::Fleet central(net, *plan,
                              controller::VendorAssignment::kPerRegionMixed,
                              /*pixel_wise_ols=*/true);
    controller::CentralizedController cc(net);
    const auto cs = cc.deploy(central);
    const auto ca = controller::audit_fleet(central, net);
    table.add_row({net.name, "centralized",
                   std::to_string(ca.wavelengths),
                   std::to_string(ca.inconsistencies),
                   std::to_string(ca.conflicts),
                   cs ? std::to_string(cs->config_rpcs) : "-"});

    // Pre-FlexWAN: three vendor controllers, legacy fixed-grid OLS.
    controller::Fleet distributed(
        net, *plan, controller::VendorAssignment::kPerRegionMixed,
        /*pixel_wise_ols=*/false);
    controller::DistributedControllers dc(net);
    const auto ds = dc.deploy(distributed);
    const auto da = controller::audit_fleet(distributed, net);
    table.add_row({net.name, "per-vendor",
                   std::to_string(da.wavelengths),
                   std::to_string(da.inconsistencies),
                   std::to_string(da.conflicts),
                   ds ? std::to_string(ds->config_rpcs) : "-"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "paper: two years of production with the centralized controller saw\n"
      "*zero* spectrum inconsistency and conflict issues.\n");
  return 0;
}
