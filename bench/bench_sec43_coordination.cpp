// §4.3 / Figure 5: spectrum issues under distributed per-vendor control
// versus FlexWAN's centralized controller, on identical provisioning.
// The centralized controller configures the same spectrum on every device
// along each path (channel consistency) from a holistic view (conflict
// freedom); per-vendor controllers assign spectrum from vendor-local views
// over legacy fixed-grid OLS gear, producing both Fig. 5 failure classes.
//
// --bench-json <file> (with --warmup/--reps) records wall-clock telemetry
// through the benchlib harness; stdout is byte-identical either way.
#include <cstdio>
#include <optional>
#include <vector>

#include "benchlib/benchlib.h"
#include "controller/centralized.h"
#include "controller/distributed.h"
#include "controller/fleet.h"
#include "obs/report.h"
#include "planning/heuristic.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/table.h"

using namespace flexwan;

namespace {

struct DeployOutcome {
  std::string topology;
  int wavelengths = 0;
  int inconsistencies = 0;
  int conflicts = 0;
  std::optional<int> config_rpcs;
};

}  // namespace

int main(int argc, char** argv) {
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  benchlib::Harness bench("sec43_coordination", report.bench_options());

  std::printf("=== §4.3: centralized vs distributed optical control ===\n");
  TextTable table({"topology", "control", "wavelengths", "inconsistencies",
                   "conflicts", "RPCs"});
  const topology::Network nets[] = {topology::make_tbackbone(),
                                    topology::make_cernet()};
  const char* case_names[][2] = {{"tbackbone_centralized",
                                  "tbackbone_per_vendor"},
                                 {"cernet_centralized",
                                  "cernet_per_vendor"}};
  for (int n = 0; n < 2; ++n) {
    const auto& net = nets[n];
    planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
    const auto plan = planner.plan(net);
    if (!plan) continue;

    // FlexWAN: centralized controller + spectrum-sliced (pixel-wise) OLS.
    const auto central = bench.run(case_names[n][0], [&]() -> DeployOutcome {
      controller::Fleet fleet(net, *plan,
                              controller::VendorAssignment::kPerRegionMixed,
                              /*pixel_wise_ols=*/true);
      controller::CentralizedController cc(net);
      const auto cs = cc.deploy(fleet);
      const auto audit = controller::audit_fleet(fleet, net);
      return {net.name, audit.wavelengths, audit.inconsistencies,
              audit.conflicts,
              cs ? std::optional<int>(cs->config_rpcs) : std::nullopt};
    });
    table.add_row({central.topology, "centralized",
                   std::to_string(central.wavelengths),
                   std::to_string(central.inconsistencies),
                   std::to_string(central.conflicts),
                   central.config_rpcs ? std::to_string(*central.config_rpcs)
                                       : "-"});

    // Pre-FlexWAN: three vendor controllers, legacy fixed-grid OLS.
    const auto vendor = bench.run(case_names[n][1], [&]() -> DeployOutcome {
      controller::Fleet fleet(net, *plan,
                              controller::VendorAssignment::kPerRegionMixed,
                              /*pixel_wise_ols=*/false);
      controller::DistributedControllers dc(net);
      const auto ds = dc.deploy(fleet);
      const auto audit = controller::audit_fleet(fleet, net);
      return {net.name, audit.wavelengths, audit.inconsistencies,
              audit.conflicts,
              ds ? std::optional<int>(ds->config_rpcs) : std::nullopt};
    });
    table.add_row({vendor.topology, "per-vendor",
                   std::to_string(vendor.wavelengths),
                   std::to_string(vendor.inconsistencies),
                   std::to_string(vendor.conflicts),
                   vendor.config_rpcs ? std::to_string(*vendor.config_rpcs)
                                      : "-"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "paper: two years of production with the centralized controller saw\n"
      "*zero* spectrum inconsistency and conflict issues.\n");
  return 0;
}
