// Throughput of the flexwand control-plane service (src/server): scripted
// replay over mixed read/write workloads, the parallel read fan-out, and
// the group-commit batching path.  Requests/sec comes from the benchlib
// wall-clock statistics (--bench-json; request counts are in the table, so
// rate = requests / median); commit-batch sizes are deterministic and land
// on stdout.
//
// Every case rebuilds its Service inside the timed body from the same
// topology and replays the same script, so the measured work — and the
// work profile perf_diff gates exactly — is identical run to run.
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>

#include "benchlib/benchlib.h"
#include "engine/engine.h"
#include "obs/report.h"
#include "server/replay.h"
#include "server/service.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/table.h"

using namespace flexwan;

namespace {

// plan, then interleaved reads and coalescible mutation runs — the daemon's
// steady-state shape.
std::string mixed_script(int rounds) {
  std::string script = "{\"id\": 1, \"method\": \"plan\"}\n";
  std::uint64_t id = 2;
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < 4; ++i) {
      script += "{\"id\": " + std::to_string(id++) +
                ", \"method\": \"query_plan\"}\n";
    }
    for (int i = 0; i < 4; ++i) {
      script += "{\"id\": " + std::to_string(id++) +
                ", \"method\": \"extend\", \"params\": {\"link_id\": " +
                std::to_string((r * 4 + i) % 8) + ", \"gbps\": 100}}\n";
    }
    script += "{\"id\": " + std::to_string(id++) +
              ", \"method\": \"drill\", \"params\": {\"fibers\": [" +
              std::to_string(r % 4) + "]}}\n";
  }
  return script;
}

// A pure read fan-out after one plan: every request after the first runs
// against the same immutable snapshot on the engine's thread pool.
std::string read_script(int reads) {
  std::string script = "{\"id\": 1, \"method\": \"plan\"}\n";
  for (int i = 0; i < reads; ++i) {
    script += "{\"id\": " + std::to_string(i + 2) +
              ", \"method\": \"query_plan\"}\n";
  }
  return script;
}

// One long coalescible extend run: replay folds the whole run into a single
// commit window, the widest batch the service produces.
std::string extend_burst_script(int extends) {
  std::string script = "{\"id\": 1, \"method\": \"plan\"}\n";
  for (int i = 0; i < extends; ++i) {
    script += "{\"id\": " + std::to_string(i + 2) +
              ", \"method\": \"extend\", \"params\": {\"link_id\": " +
              std::to_string(i % 8) + ", \"gbps\": 100}}\n";
  }
  return script;
}

struct ReplayStats {
  std::size_t requests = 0;
  std::size_t ok = 0;
  std::size_t windows = 0;
  std::uint64_t final_version = 0;
  double mean_batch = 0.0;
};

ReplayStats replay(const engine::Engine& engine,
                   std::span<const server::Request> requests) {
  server::Service service(topology::make_cernet(),
                          transponder::svt_flexwan(), engine);
  const server::ScriptResult result =
      server::run_script(service, requests);
  ReplayStats stats;
  stats.requests = result.responses.size();
  for (const auto& response : result.responses) stats.ok += response.ok;
  stats.windows = result.windows;
  stats.final_version = service.state_version();
  stats.mean_batch =
      result.windows == 0
          ? 0.0
          : static_cast<double>(result.mutation_count) /
                static_cast<double>(result.windows);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const engine::Engine engine(engine::threads_flag(argc, argv));
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  benchlib::Harness bench("server_throughput", report.bench_options());
  TextTable table({"case", "requests", "ok", "windows", "mean batch"});

  std::printf("=== flexwand service throughput (timings: --bench-json) ===\n");

  const auto run_case = [&](const std::string& name,
                            const std::string& script) {
    const auto requests = server::parse_script(script);
    if (!requests) {
      std::fprintf(stderr, "bench_server_throughput: %s\n",
                   requests.error().message.c_str());
      return 1;
    }
    const ReplayStats stats = bench.run(name, [&] {
      return replay(engine, requests.value());
    });
    table.add_row({name, std::to_string(stats.requests),
                   std::to_string(stats.ok), std::to_string(stats.windows),
                   TextTable::num(stats.mean_batch, 2)});
    return 0;
  };

  if (run_case("replay_mixed_10r", mixed_script(10)) != 0) return 1;
  if (run_case("replay_reads_64", read_script(64)) != 0) return 1;
  if (run_case("replay_extend_burst_32", extend_burst_script(32)) != 0) {
    return 1;
  }

  std::printf("%s", table.render().c_str());
  return 0;
}
