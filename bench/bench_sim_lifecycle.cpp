// Lifecycle simulation throughput: how fast the digital twin replays a
// multi-year failure/repair/growth timeline against a deployed plan, and
// what availability the three transponder generations deliver under the
// same event schedule.  Not a paper figure — this is the ROADMAP's
// "production-scale, long-horizon" workload built on PRs 1-4.
//
// Pass --threads N to size the execution engine (trials fan out per
// thread); output is byte-identical at every N.  --metrics / --trace
// <file.json> write observability reports and --bench-json <file.json>
// (with --warmup/--reps) records per-case wall-clock + metrics-delta
// telemetry (BENCH_sim_lifecycle.json in CI) — none of them touch stdout.
#include <cstdio>
#include <string>
#include <vector>

#include "benchlib/benchlib.h"
#include "engine/engine.h"
#include "obs/report.h"
#include "planning/heuristic.h"
#include "sim/simulator.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/table.h"

using namespace flexwan;

int main(int argc, char** argv) {
  const engine::Engine engine(engine::threads_flag(argc, argv));
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  benchlib::Harness bench("sim_lifecycle", report.bench_options(),
                          engine.thread_count());
  const auto net = topology::make_tbackbone();
  obs::announce_threads(engine.thread_count());

  sim::LifecycleConfig config;
  config.timeline.horizon_days = 2 * 365.0;
  config.timeline.cut_rate_per_1000km_per_year = 3.0;  // eventful twin
  config.timeline.mttr_mean_hours = 24.0;
  config.timeline.growth_interval_days = 180.0;
  config.growth_fraction = 0.04;
  config.trials = 6;
  config.seed = 11;

  // Timeline generation alone: the seed-schedule fan-out cost.
  const auto event_total = bench.run("timeline_build", [&] {
    std::size_t total = 0;
    for (int trial = 0; trial < 64; ++trial) {
      total += sim::build_timeline(
                   net.optical, config.timeline,
                   sim::mix_seed(config.seed,
                                 static_cast<std::uint64_t>(trial)))
                   .size();
    }
    return total;
  });
  std::printf("timeline: %zu events across 64 two-year trials (seed %llu)\n\n",
              event_total, static_cast<unsigned long long>(config.seed));

  std::printf("=== lifecycle availability, %d trials x 2 years ===\n",
              config.trials);
  const transponder::Catalog* catalogs[] = {&transponder::fixed_grid_100g(),
                                            &transponder::bvt_radwan(),
                                            &transponder::svt_flexwan()};
  TextTable table({"scheme", "availability", "lost Gbps-min", "capability",
                   "cuts"});
  for (const auto* catalog : catalogs) {
    planning::HeuristicPlanner planner(*catalog, {});
    const auto plan = planner.plan(net, engine);
    if (!plan) {
      table.add_row({catalog->name(), "infeasible", "-", "-", "-"});
      continue;
    }
    const auto sim = bench.run("lifecycle_" + catalog->name(), [&] {
      return sim::run_lifecycle(net, *plan, *catalog, config, engine);
    });
    if (!sim) {
      std::fprintf(stderr, "simulation failed (%s): %s\n",
                   sim.error().code.c_str(), sim.error().message.c_str());
      return 1;
    }
    table.add_row({catalog->name(), TextTable::num(sim->mean_availability, 6),
                   TextTable::num(sim->mean_lost_gbps_minutes, 1),
                   TextTable::num(sim->mean_capability, 3),
                   std::to_string(sim->total_cuts)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("same seeded timelines for every scheme: availability differences\n"
              "are restoration capability, not luck.\n");
  return 0;
}
