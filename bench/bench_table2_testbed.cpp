// Table 2 / Figure 11: the production-level testbed experiment (§6).
// The centralized controller sets the SVT's format, fiber bundles are added
// until the post-FEC BER turns positive, and the last error-free length is
// the measured optical reach.  Here the testbed rig is the simulated device
// chain driven by the calibrated physical-layer model; the table compares
// the sweep's measured reach to the paper's Table 2 row by row.
//
// --bench-json <file> (with --warmup/--reps) records wall-clock telemetry
// through the benchlib harness; stdout is byte-identical either way.
#include <cstdio>

#include "benchlib/benchlib.h"
#include "hardware/testbed.h"
#include "obs/report.h"
#include "phy/calibration.h"
#include "transponder/catalog.h"
#include "util/table.h"

using namespace flexwan;

int main(int argc, char** argv) {
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  benchlib::Harness bench("table2_testbed", report.bench_options());
  const auto& catalog = transponder::svt_flexwan();
  const auto model = phy::calibrate(catalog);

  std::printf("=== Table 2 / Fig. 11: SVT reach per format (testbed sweep) ===\n");
  std::printf("plant: %.0f km spans, %.1f dB/km, NF %.0f dB, launch %.0f dBm\n",
              model.plant().span_km, model.plant().attenuation_db_per_km,
              model.plant().amp_noise_figure_db,
              model.plant().launch_power_dbm);

  const auto rows = bench.run("reach_sweep", [&] {
    hardware::Testbed testbed(model);
    return testbed.measure_catalog(catalog);
  });

  TextTable table({"rate (Gbps)", "spacing (GHz)", "paper reach (km)",
                   "measured (km)", "error", "sweep steps"});
  double total_err = 0.0;
  double max_err = 0.0;
  for (const auto& r : rows) {
    const double err = std::abs(r.measured_reach_km - r.table_reach_km) /
                       r.table_reach_km;
    total_err += err;
    max_err = std::max(max_err, err);
    table.add_row({TextTable::num(r.mode.data_rate_gbps, 0),
                   TextTable::num(r.mode.spacing_ghz, 1),
                   TextTable::num(r.table_reach_km, 0),
                   TextTable::num(r.measured_reach_km, 0),
                   TextTable::num(err * 100.0, 0) + "%",
                   std::to_string(r.sweep_steps)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("mean reach error %.1f%%, max %.1f%% over %zu formats\n",
              100.0 * total_err / static_cast<double>(rows.size()),
              100.0 * max_err, rows.size());
  return 0;
}
