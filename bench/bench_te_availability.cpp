// Extension experiment: IP-layer traffic availability under fiber cuts.
//
// The paper argues (§3.3, §8) that revived optical capacity directly
// reduces traffic loss.  This bench quantifies it end-to-end: a traffic
// matrix is routed over the IP capacities each scheme provisions; every
// single-fiber cut is applied with (a) no optical restoration and (b) the
// §8 restoration plan; the table reports mean served traffic.
// Pass --threads N to size the execution engine (default: one thread per
// hardware thread; 1 = serial).  Output is byte-identical at every N.
// --metrics / --trace <file.json> write observability reports (obs/report.h)
// and --bench-json <file.json> (with --warmup/--reps) records per-case
// wall-clock + metrics-delta telemetry — none of them touch stdout.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "benchlib/benchlib.h"
#include "engine/engine.h"
#include "obs/report.h"
#include "planning/heuristic.h"
#include "restoration/restorer.h"
#include "te/routing.h"
#include "te/traffic.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/rng.h"
#include "util/table.h"

using namespace flexwan;

int main(int argc, char** argv) {
  const engine::Engine engine(engine::threads_flag(argc, argv));
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  benchlib::Harness bench("te_availability", report.bench_options(),
                          engine.thread_count());
  obs::announce_threads(engine.thread_count());
  const auto base = topology::make_tbackbone();
  const topology::Network net{base.name, base.optical, base.ip.scaled(2.0)};
  const auto scenarios = restoration::single_fiber_cuts(net.optical);

  std::printf("=== Extension: traffic availability under cuts (2x demand scale) ===\n");
  TextTable table({"scheme", "healthy", "cut, no restoration",
                   "cut + restoration", "restoration gain"});
  for (const auto* catalog :
       {&transponder::fixed_grid_100g(), &transponder::bvt_radwan(),
        &transponder::svt_flexwan()}) {
    const auto row = bench.run(
        "availability_" + catalog->name(),
        [&]() -> std::vector<std::string> {
          planning::HeuristicPlanner planner(*catalog, {});
          const auto plan = planner.plan(net, engine);
          if (!plan) {
            return {catalog->name(), "plan infeasible", "-", "-", "-"};
          }
          // Re-seeded per repetition so every rep routes the same matrix.
          Rng rng(17);
          const auto matrix = te::random_traffic(net, *plan, 0.7, rng, 48);
          const auto healthy = te::route_traffic(
              net, te::capacities_from_plan(net, *plan), matrix);
          if (!healthy) return {};

          // Each scenario's restore + two MCF routings are independent; fan
          // them out and reduce the availability sums in scenario order.
          restoration::Restorer restorer(*catalog);
          const auto per_scenario = engine.parallel_map(
              scenarios.size(),
              [&](std::size_t i) -> std::pair<double, double> {
                const auto& scenario = scenarios[i];
                const auto degraded = te::route_traffic(
                    net, te::degraded_capacities(net, *plan, scenario),
                    matrix);
                const auto outcome = restorer.restore(net, *plan, scenario);
                const auto restored = te::route_traffic(
                    net,
                    te::restored_capacities(net, *plan, scenario, outcome),
                    matrix);
                return {degraded ? degraded->availability() : 0.0,
                        restored ? restored->availability() : 0.0};
              });
          double degraded_sum = 0.0;
          double restored_sum = 0.0;
          for (const auto& [degraded, restored] : per_scenario) {
            degraded_sum += degraded;
            restored_sum += restored;
          }
          const double n = static_cast<double>(scenarios.size());
          return {catalog->name(),
                  TextTable::num(100.0 * healthy->availability(), 1) + "%",
                  TextTable::num(100.0 * degraded_sum / n, 1) + "%",
                  TextTable::num(100.0 * restored_sum / n, 1) + "%",
                  "+" +
                      TextTable::num(
                          100.0 * (restored_sum - degraded_sum) / n, 1) +
                      "pp"};
        });
    if (!row.empty()) table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "optical restoration converts directly into served IP traffic; the\n"
      "scheme with the most spare spectrum recovers the most (paper §8).\n");
  return 0;
}
