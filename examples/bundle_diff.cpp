// bundle_diff — the evidence-bundle gate: compare two bundle directories
// (obs/bundle.h) field by field.
//
//   bundle_diff <baseline-dir> <candidate-dir>
//               [--thresholds f.json] [--out dir]
//
// Loads both bundles (run.json + metrics.json + events.jsonl, schema
// checked; profile.json and timeseries.jsonl when present), flattens them
// to dotted numeric fields (run.json results, metrics counters/gauges,
// histogram count/sum/p50/p90/p99, per-category event counts, profile.*
// work nodes, timeseries.samples / timeseries.reason.<reason> row counts,
// and timeseries.health.* resilience indicators — availability dip,
// worst/P99 sim-time time-to-recover, episode counts, fragmentation drift —
// recomputed from the stored trajectory), and checks each field's relative
// change against per-field thresholds:
//
//   --thresholds f.json   {"default": 0.05,
//                          "fields": {"results.availability.mean": 0.0001}}
//                         (default tolerance without the flag: 0.10)
//   --out dir             additionally write diff.json and diff.md there
//
// The human-readable diff always goes to stdout.  Exit codes are stable so
// CI can gate on them, same convention as perf_diff:
//   0  every field within tolerance (self-compare always lands here),
//   1  at least one violation (beyond tolerance, or a vanished field),
//   2  usage errors, missing/malformed bundles, bad thresholds.
// A field present only in the candidate is informational ("new") — new
// telemetry never fails the gate; a vanished field does (it can hide a
// regression), mirroring perf_diff's vanished-case rule.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/bundle.h"

using namespace flexwan;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bundle_diff <baseline-dir> <candidate-dir> "
               "[--thresholds f.json] [--out dir]\n"
               "  thresholds: {\"default\": F, \"fields\": {\"<field>\": F}} "
               "— allowed relative change per field (default 0.10)\n");
  return 2;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << contents;
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string thresholds_path;
  std::string out_dir;
  std::vector<const char*> dirs;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string* target = nullptr;
    std::size_t eq_len = 0;
    if (std::strcmp(arg, "--thresholds") == 0) {
      target = &thresholds_path;
    } else if (std::strncmp(arg, "--thresholds=", 13) == 0) {
      target = &thresholds_path;
      eq_len = 13;
    } else if (std::strcmp(arg, "--out") == 0) {
      target = &out_dir;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      target = &out_dir;
      eq_len = 6;
    } else {
      dirs.push_back(arg);
      continue;
    }
    if (eq_len > 0) {
      *target = arg + eq_len;
    } else {
      if (i + 1 >= argc) return usage();
      *target = argv[++i];
    }
    if (target->empty()) return usage();
  }
  if (dirs.size() != 2) return usage();

  obs::BundleThresholds thresholds;
  if (!thresholds_path.empty()) {
    auto loaded = obs::load_thresholds_file(thresholds_path);
    if (!loaded) {
      std::fprintf(stderr, "bundle_diff: %s\n",
                   loaded.error().message.c_str());
      return 2;
    }
    thresholds = std::move(loaded.value());
  }

  const auto baseline = obs::load_bundle(dirs[0]);
  if (!baseline) {
    std::fprintf(stderr, "bundle_diff: %s\n",
                 baseline.error().message.c_str());
    return 2;
  }
  const auto candidate = obs::load_bundle(dirs[1]);
  if (!candidate) {
    std::fprintf(stderr, "bundle_diff: %s\n",
                 candidate.error().message.c_str());
    return 2;
  }

  const auto comparison =
      obs::compare_bundles(*baseline, *candidate, thresholds);
  if (!comparison) {
    std::fprintf(stderr, "bundle_diff: %s\n",
                 comparison.error().message.c_str());
    return 2;
  }

  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const std::filesystem::path base(out_dir);
    if (ec ||
        !write_file((base / "diff.json").string(),
                    comparison->to_diff_json()) ||
        !write_file((base / "diff.md").string(), comparison->to_diff_md())) {
      std::fprintf(stderr, "bundle_diff: cannot write diff outputs to %s\n",
                   out_dir.c_str());
      return 2;
    }
  }

  std::printf("%s", comparison->to_diff_md().c_str());
  return comparison->violations > 0 ? 1 : 0;
}
