// Capacity planning for a growing backbone: the workload the paper's
// intro motivates.  An operator holds the Cernet footprint, expects traffic
// to double every planning cycle, and wants to know which transponder
// generation carries the growth on the existing fiber plant — and what the
// next bottleneck will be.
// Flags: the shared obs surface (--metrics f, --trace f, --bundle dir).
// --bundle captures each generation's plan size and growth headroom as
// gateable results.
#include <algorithm>
#include <cstdio>

#include "obs/bundle.h"
#include "obs/report.h"
#include "planning/heuristic.h"
#include "planning/metrics.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/table.h"

using namespace flexwan;

int main(int argc, char** argv) {
  obs::RunReport report = obs::report_from_flags(argc, argv);
  obs::Bundle bundle;
  bundle.dir = report.bundle_dir();
  bundle.tool = "capacity_planning";
  const auto net = topology::make_cernet();
  std::printf("Cernet footprint: %d sites, %d fiber routes, %d IP links, "
              "%.1f Tbps of demand\n\n",
              net.optical.node_count(), net.optical.fiber_count(),
              net.ip.link_count(), net.ip.total_demand_gbps() / 1000.0);

  const transponder::Catalog* generations[] = {
      &transponder::fixed_grid_100g(), &transponder::bvt_radwan(),
      &transponder::svt_flexwan()};

  // How many doubling cycles does each generation survive?
  TextTable table({"generation", "txp @1x", "GHz @1x", "mean SE",
                   "max scale", "growth cycles"});
  for (const auto* catalog : generations) {
    planning::HeuristicPlanner planner(*catalog, {});
    const auto plan = planner.plan(net);
    if (!plan) {
      table.add_row({catalog->name(), "infeasible", "-", "-", "-", "-"});
      continue;
    }
    const auto m = planning::compute_metrics(*plan, net);
    const double max_scale =
        planning::max_supported_scale(net, planner, 16.0, 0.5);
    int cycles = 0;
    for (double s = 2.0; s <= max_scale + 1e-9; s *= 2.0) ++cycles;
    table.add_row({catalog->name(), std::to_string(m.transponder_count),
                   TextTable::num(m.spectrum_usage_ghz, 0),
                   TextTable::num(m.mean_spectral_efficiency, 2),
                   TextTable::num(max_scale, 1) + "x",
                   std::to_string(cycles)});
    const std::string prefix = "plan." + catalog->name() + ".";
    bundle.results.emplace_back(prefix + "transponders",
                                static_cast<double>(m.transponder_count));
    bundle.results.emplace_back(prefix + "spectrum_ghz",
                                m.spectrum_usage_ghz);
    bundle.results.emplace_back(prefix + "mean_spectral_efficiency",
                                m.mean_spectral_efficiency);
    bundle.results.emplace_back(prefix + "max_scale", max_scale);
    bundle.results.emplace_back(prefix + "growth_cycles",
                                static_cast<double>(cycles));
  }
  std::printf("%s\n", table.render().c_str());

  // Where does FlexWAN's spectrum go?  Fiber-by-fiber utilisation at the
  // highest common scale shows the next fiber to build.
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const double max_scale = planning::max_supported_scale(net, planner, 16.0, 0.5);
  const topology::Network loaded{net.name, net.optical,
                                 net.ip.scaled(max_scale)};
  const auto plan = planner.plan(loaded);
  if (plan) {
    std::printf("FlexWAN at its %.1fx limit — five busiest fiber routes:\n",
                max_scale);
    std::vector<std::pair<double, topology::FiberId>> load;
    for (topology::FiberId f = 0; f < loaded.optical.fiber_count(); ++f) {
      const auto& occ = plan->fiber_occupancy(f);
      load.emplace_back(
          static_cast<double>(occ.used_pixels()) / occ.pixels(), f);
    }
    std::sort(load.rbegin(), load.rend());
    for (int i = 0; i < 5 && i < static_cast<int>(load.size()); ++i) {
      const auto& fiber = loaded.optical.fiber(load[static_cast<std::size_t>(i)].second);
      std::printf("  %s - %s: %.0f%% of the C-band in use\n",
                  loaded.optical.node(fiber.a).name.c_str(),
                  loaded.optical.node(fiber.b).name.c_str(),
                  100.0 * load[static_cast<std::size_t>(i)].first);
    }
    std::printf("(the top route is where new fiber buys the next 2x)\n");
    if (!load.empty()) {
      bundle.results.emplace_back("busiest_route.utilization", load[0].first);
    }
  }

  if (!bundle.dir.empty()) {
    bundle.provenance = obs::make_bundle_provenance(1);
    bundle.config.emplace_back("network", obs::json::Value(net.name));
    bundle.config.emplace_back(
        "demand_gbps", obs::json::Value(net.ip.total_demand_gbps()));
    const auto written = bundle.write();
    if (!written) {
      std::fprintf(stderr, "capacity_planning: bundle: %s\n",
                   written.error().message.c_str());
      return 1;
    }
    std::fprintf(stderr, "evidence bundle: %s\n", bundle.dir.c_str());
  }
  return 0;
}
