// A failure drill across the whole T-backbone: cut every fiber in turn,
// compare how much capacity each transponder generation revives, and print
// the worst cuts — the §8 evaluation as an operator tool.
//
// Flags: the shared obs surface (--metrics f, --trace f, --bundle dir).
// --bundle records the per-generation capability numbers as gateable
// results alongside the work profile of the drill itself.
#include <algorithm>
#include <cstdio>

#include "obs/bundle.h"
#include "obs/report.h"
#include "planning/heuristic.h"
#include "restoration/metrics.h"
#include "restoration/restorer.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/table.h"

using namespace flexwan;

int main(int argc, char** argv) {
  obs::RunReport report = obs::report_from_flags(argc, argv);
  obs::Bundle bundle;
  bundle.dir = report.bundle_dir();
  bundle.tool = "fiber_cut_drill";
  // An overloaded backbone (3x demand) is where restoration gets hard.
  const auto base = topology::make_tbackbone();
  const topology::Network net{base.name, base.optical, base.ip.scaled(3.0)};
  const auto scenarios = restoration::single_fiber_cuts(net.optical);
  std::printf("drill: %zu single-fiber cut scenarios on %s at 3x demand\n\n",
              scenarios.size(), net.name.c_str());

  TextTable table({"generation", "mean capability", "worst", "cuts w/ loss"});
  std::vector<double> flex_caps;
  for (const auto* catalog :
       {&transponder::fixed_grid_100g(), &transponder::bvt_radwan(),
        &transponder::svt_flexwan()}) {
    planning::HeuristicPlanner planner(*catalog, {});
    const auto plan = planner.plan(net);
    if (!plan) {
      table.add_row({catalog->name(), "plan infeasible at 3x", "-", "-"});
      continue;
    }
    restoration::Restorer restorer(*catalog);
    const auto m =
        restoration::evaluate_scenarios(net, *plan, restorer, scenarios);
    double worst = 1.0;
    for (double c : m.capabilities) worst = std::min(worst, c);
    table.add_row({catalog->name(), TextTable::num(m.mean_capability, 3),
                   TextTable::num(worst, 3),
                   std::to_string(m.scenarios_with_loss) + "/" +
                       std::to_string(m.capabilities.size())});
    const std::string prefix = "capability." + catalog->name() + ".";
    bundle.results.emplace_back(prefix + "mean", m.mean_capability);
    bundle.results.emplace_back(prefix + "worst", worst);
    bundle.results.emplace_back(
        prefix + "cuts_with_loss",
        static_cast<double>(m.scenarios_with_loss));
    if (catalog == &transponder::svt_flexwan()) flex_caps = m.capabilities;
  }
  std::printf("%s\n", table.render().c_str());

  // Rank the most damaging cuts for FlexWAN: where to buy protection.
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  if (plan) {
    restoration::Restorer restorer(transponder::svt_flexwan());
    std::printf("five most damaging cuts under FlexWAN:\n");
    std::vector<std::pair<double, topology::FiberId>> ranked;
    for (const auto& s : scenarios) {
      const auto outcome = restorer.restore(net, *plan, s);
      ranked.emplace_back(outcome.capability(), s.cut_fibers[0]);
    }
    std::sort(ranked.begin(), ranked.end());
    for (int i = 0; i < 5 && i < static_cast<int>(ranked.size()); ++i) {
      const auto& fiber =
          net.optical.fiber(ranked[static_cast<std::size_t>(i)].second);
      std::printf("  %s - %s (%.0f km): %.0f%% revived\n",
                  net.optical.node(fiber.a).name.c_str(),
                  net.optical.node(fiber.b).name.c_str(), fiber.length_km,
                  100.0 * ranked[static_cast<std::size_t>(i)].first);
    }
    if (!ranked.empty()) {
      bundle.results.emplace_back("worst_cut.capability", ranked[0].first);
    }
  }

  if (!bundle.dir.empty()) {
    bundle.provenance = obs::make_bundle_provenance(1);
    bundle.config.emplace_back("network", obs::json::Value(net.name));
    bundle.config.emplace_back("demand_scale", obs::json::Value(3.0));
    bundle.config.emplace_back(
        "scenarios", obs::json::Value(static_cast<double>(scenarios.size())));
    const auto written = bundle.write();
    if (!written) {
      std::fprintf(stderr, "fiber_cut_drill: bundle: %s\n",
                   written.error().message.c_str());
      return 1;
    }
    std::fprintf(stderr, "evidence bundle: %s\n", bundle.dir.c_str());
  }
  return 0;
}
