// flexwand: the FlexWAN control-plane daemon (src/server).
//
//   flexwand --script reqs.jsonl      deterministic scripted replay
//   flexwand --serve                  length-prefixed request/response loop
//                                     on stdin/stdout (flexwand_client)
//            [--network tbackbone|cernet] [--scheme flexwan|radwan|100g]
//            [--save-plan f]          write the final committed plan
//            [--threads N] [--metrics f.json] [--trace f.json]
//            [--bundle dir]           evidence bundle (run.json,
//                                     events.jsonl, metrics.json,
//                                     summary.md); byte-identical at every
//                                     --threads value (modulo run.json's
//                                     "threads" field)
//
// The daemon owns the authoritative Network/Plan state behind snapshot
// isolation (server/service.h): reads run in parallel against immutable
// snapshots, mutations serialize through a single-writer commit log with
// monotonic state versions, and adjacent compatible extends/restores
// coalesce into one commit window.
//
// Replay mode prints one response document per request line to stdout in
// script order; those bytes — and the --save-plan file, and the bundle
// artifacts — are byte-identical at every --threads value, which CI's
// server-determinism job enforces at 1 vs 8.  Serve mode handles one framed
// request at a time, so it is trivially deterministic per request stream.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "engine/engine.h"
#include "obs/bundle.h"
#include "obs/report.h"
#include "planning/plan_io.h"
#include "server/replay.h"
#include "server/service.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/cli.h"

using namespace flexwan;

namespace {

constexpr const char* kUsage =
    "usage: flexwand (--script reqs.jsonl | --serve)\n"
    "                [--network tbackbone|cernet] "
    "[--scheme flexwan|radwan|100g]\n"
    "                [--save-plan f] [--threads N] [--metrics f] "
    "[--trace f]\n"
    "                [--bundle dir]\n";

// Serve mode: one framed request in, one framed response out, until EOF.
// Requests are handled strictly in arrival order on this thread; the
// Service still goes through the same snapshot/commit machinery, so state
// versions and the commit log match what a replay of the same sequence
// produces.
int serve(server::Service& service) {
  for (;;) {
    auto framed = server::read_frame(std::cin);
    if (!framed) {
      std::fprintf(stderr, "flexwand: %s\n",
                   framed.error().message.c_str());
      return 1;
    }
    if (!framed.value().has_value()) return 0;  // clean EOF
    const auto request = server::parse_request(*framed.value());
    if (!request) {
      const server::Response response = server::Response::failure(
          0, service.state_version(), request.error().code,
          request.error().message);
      server::write_frame(std::cout, response.to_json());
      continue;
    }
    const server::Response response = service.execute(request.value());
    server::write_frame(std::cout, response.to_json());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const engine::Engine engine(engine::threads_flag(argc, argv));
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  const util::cli::Cli cli{argv[0], kUsage};

  std::string network = "tbackbone";
  std::string scheme = "flexwan";
  std::string script_path;
  std::string save_plan_path;
  bool serve_mode = false;

  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--network") == 0) {
      network = cli.require_value("--network", value());
    } else if (std::strcmp(argv[i], "--scheme") == 0) {
      scheme = cli.require_value("--scheme", value());
    } else if (std::strcmp(argv[i], "--script") == 0) {
      script_path = cli.require_value("--script", value());
    } else if (std::strcmp(argv[i], "--save-plan") == 0) {
      save_plan_path = cli.require_value("--save-plan", value());
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve_mode = true;
    } else {
      cli.reject(std::string("unknown flag '") + argv[i] + "'");
    }
  }
  if (script_path.empty() == !serve_mode) {
    cli.reject("exactly one of --script or --serve is required");
  }
  if (network != "cernet" && network != "tbackbone") {
    cli.reject("--network: unknown network '" + network + "'");
  }
  if (scheme != "radwan" && scheme != "100g" && scheme != "flexwan") {
    cli.reject("--scheme: unknown scheme '" + scheme + "'");
  }

  topology::Network net = network == "cernet" ? topology::make_cernet()
                                              : topology::make_tbackbone();
  const transponder::Catalog& catalog =
      scheme == "radwan" ? transponder::bvt_radwan()
      : scheme == "100g" ? transponder::fixed_grid_100g()
                         : transponder::svt_flexwan();

  server::Service service(std::move(net), catalog, engine);

  if (serve_mode) return serve(service);

  std::ifstream file(script_path);
  if (!file) {
    std::fprintf(stderr, "flexwand: cannot open %s\n", script_path.c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto requests = server::parse_script(buffer.str());
  if (!requests) {
    std::fprintf(stderr, "flexwand: %s: %s\n", script_path.c_str(),
                 requests.error().message.c_str());
    return 1;
  }

  obs::announce_threads(engine.thread_count());
  const server::ScriptResult result =
      server::run_script(service, requests.value());

  // stdout carries exactly the response documents — the byte-compared
  // replay artifact.  Everything narrative goes to stderr.
  const std::string responses = result.to_jsonl();
  std::fwrite(responses.data(), 1, responses.size(), stdout);

  const auto commits = service.commit_log();
  std::fprintf(stderr,
               "flexwand: %zu request(s): %zu read(s), %zu mutation(s) in "
               "%zu window(s); final version %llu, max queue depth %zu\n",
               requests.value().size(), result.read_count,
               result.mutation_count, result.windows,
               static_cast<unsigned long long>(service.state_version()),
               service.max_queue_depth());

  if (!save_plan_path.empty()) {
    const auto plan = service.plan_snapshot();
    if (plan == nullptr) {
      std::fprintf(stderr,
                   "flexwand: --save-plan: no plan was committed\n");
      return 1;
    }
    std::ofstream out(save_plan_path, std::ios::binary);
    out << planning::save_plan(*plan);
    if (!out) {
      std::fprintf(stderr, "flexwand: cannot write %s\n",
                   save_plan_path.c_str());
      return 1;
    }
  }

  if (!report.bundle_dir().empty()) {
    obs::Bundle bundle;
    bundle.dir = report.bundle_dir();
    bundle.tool = "flexwand";
    bundle.provenance = obs::make_bundle_provenance(engine.thread_count());
    using obs::json::Value;
    bundle.config.emplace_back("network", Value(network));
    bundle.config.emplace_back("scheme", Value(scheme));
    bundle.config.emplace_back("script", Value(script_path));
    bundle.results.emplace_back(
        "requests.total", static_cast<double>(requests.value().size()));
    bundle.results.emplace_back("requests.reads",
                                static_cast<double>(result.read_count));
    bundle.results.emplace_back(
        "requests.mutations", static_cast<double>(result.mutation_count));
    bundle.results.emplace_back("commit.windows",
                                static_cast<double>(result.windows));
    bundle.results.emplace_back("commit.log_size",
                                static_cast<double>(commits.size()));
    bundle.results.emplace_back(
        "state.version", static_cast<double>(service.state_version()));
    bundle.results.emplace_back(
        "queue.depth.max", static_cast<double>(service.max_queue_depth()));
    std::size_t ok = 0;
    for (const auto& response : result.responses) ok += response.ok ? 1 : 0;
    bundle.results.emplace_back("responses.ok", static_cast<double>(ok));
    bundle.results.emplace_back(
        "responses.error",
        static_cast<double>(result.responses.size() - ok));
    std::ostringstream body;
    body << "## Commit log\n\n| version | method | window | applied "
            "|\n|---|---|---|---|\n";
    for (const auto& commit : commits) {
      body << "| " << commit.version << " | " << commit.method << " | "
           << commit.window_size << " | " << commit.request_ids.size()
           << " |\n";
    }
    bundle.summary_body_md = body.str();
    const auto written = bundle.write();
    if (!written) {
      std::fprintf(stderr, "flexwand: bundle: %s\n",
                   written.error().message.c_str());
      return 1;
    }
    std::fprintf(stderr, "evidence bundle: %s\n",
                 report.bundle_dir().c_str());
  }
  return 0;
}
