// flexwand_client: drive a flexwand daemon over its framed stdin/stdout
// protocol.
//
//   flexwand_client --daemon ./flexwand [--network N] [--scheme S]
//       reads request documents (JSONL) from stdin, frames each to a
//       spawned `flexwand --serve` process, and prints one response
//       document per line to stdout.
//   flexwand_client --emit-script
//       prints the canned mixed read/write request script the quickstart
//       and CI's server-determinism job replay.
//
// The client validates each request locally before sending (a malformed
// line aborts with the parse error rather than feeding the daemon garbage)
// and exchanges strictly one request/response pair at a time, so the
// response order is the request order.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "util/cli.h"

using namespace flexwan;

namespace {

constexpr const char* kUsage =
    "usage: flexwand_client --daemon <path-to-flexwand>\n"
    "                       [--network tbackbone|cernet]\n"
    "                       [--scheme flexwan|radwan|100g]\n"
    "       flexwand_client --emit-script\n";

// A mixed workload exercising every method: plan, concurrent-able reads,
// a coalescible extend run, restores, defrag, and both controller flavors.
constexpr const char* kScript = R"({"id": 1, "method": "ping"}
{"id": 2, "method": "plan"}
{"id": 3, "method": "query_plan"}
{"id": 4, "method": "ping"}
{"id": 5, "method": "extend", "params": {"link_id": 0, "gbps": 100}}
{"id": 6, "method": "extend", "params": {"link_id": 1, "gbps": 200}}
{"id": 7, "method": "extend", "params": {"link_id": 2, "gbps": 100}}
{"id": 8, "method": "query_plan"}
{"id": 9, "method": "drill", "params": {"fibers": [0, 1, 2, 3]}}
{"id": 10, "method": "restore", "params": {"fiber": 1}}
{"id": 11, "method": "restore", "params": {"fiber": 4}}
{"id": 12, "method": "defrag"}
{"id": 13, "method": "deploy", "params": {"controller": "centralized"}}
{"id": 14, "method": "deploy", "params": {"controller": "distributed"}}
{"id": 15, "method": "availability"}
{"id": 16, "method": "query_plan"}
{"id": 17, "method": "extend", "params": {"link": "no-such-link", "gbps": 50}}
{"id": 18, "method": "frobnicate"}
)";

// Framing over raw fds (the protocol.h stream helpers need std::iostreams;
// a pipe to a child process is more naturally driven fd-level).
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n <= 0) return false;
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_frame_fd(int fd, const std::string& payload) {
  const std::string framed = server::frame(payload);
  return write_all(fd, framed.data(), framed.size());
}

// Reads one "<len>\n<payload>" frame; empty optional-style flag via the
// return: false = EOF or error (message on stderr).
bool read_frame_fd(int fd, std::string& payload) {
  std::string prefix;
  char c = 0;
  for (;;) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) {
      if (!prefix.empty()) {
        std::fprintf(stderr, "flexwand_client: EOF inside frame prefix\n");
      }
      return false;
    }
    if (c == '\n') break;
    if (c < '0' || c > '9' || prefix.size() >= 9) {
      std::fprintf(stderr, "flexwand_client: malformed frame prefix\n");
      return false;
    }
    prefix += c;
  }
  if (prefix.empty()) {
    std::fprintf(stderr, "flexwand_client: empty frame prefix\n");
    return false;
  }
  const std::size_t length = std::stoul(prefix);
  if (length > server::kMaxFrameBytes) {
    std::fprintf(stderr, "flexwand_client: oversized frame\n");
    return false;
  }
  payload.resize(length);
  std::size_t got = 0;
  while (got < length) {
    const ssize_t n = ::read(fd, payload.data() + got, length - got);
    if (n <= 0) {
      std::fprintf(stderr, "flexwand_client: truncated frame payload\n");
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::cli::Cli cli{argv[0], kUsage};

  std::string daemon_path;
  std::string network = "tbackbone";
  std::string scheme = "flexwan";
  bool emit_script = false;

  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--daemon") == 0) {
      daemon_path = cli.require_value("--daemon", value());
    } else if (std::strcmp(argv[i], "--network") == 0) {
      network = cli.require_value("--network", value());
    } else if (std::strcmp(argv[i], "--scheme") == 0) {
      scheme = cli.require_value("--scheme", value());
    } else if (std::strcmp(argv[i], "--emit-script") == 0) {
      emit_script = true;
    } else {
      cli.reject(std::string("unknown flag '") + argv[i] + "'");
    }
  }
  if (emit_script) {
    std::printf("%s", kScript);
    return 0;
  }
  if (daemon_path.empty()) {
    cli.reject("--daemon is required (or use --emit-script)");
  }

  // to_daemon[1] -> child stdin; from_daemon[0] <- child stdout.
  int to_daemon[2];
  int from_daemon[2];
  if (::pipe(to_daemon) != 0 || ::pipe(from_daemon) != 0) {
    std::perror("flexwand_client: pipe");
    return 1;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("flexwand_client: fork");
    return 1;
  }
  if (pid == 0) {
    ::dup2(to_daemon[0], STDIN_FILENO);
    ::dup2(from_daemon[1], STDOUT_FILENO);
    ::close(to_daemon[0]);
    ::close(to_daemon[1]);
    ::close(from_daemon[0]);
    ::close(from_daemon[1]);
    std::vector<char*> child_argv;
    child_argv.push_back(const_cast<char*>(daemon_path.c_str()));
    child_argv.push_back(const_cast<char*>("--serve"));
    child_argv.push_back(const_cast<char*>("--network"));
    child_argv.push_back(const_cast<char*>(network.c_str()));
    child_argv.push_back(const_cast<char*>("--scheme"));
    child_argv.push_back(const_cast<char*>(scheme.c_str()));
    child_argv.push_back(nullptr);
    ::execv(daemon_path.c_str(), child_argv.data());
    std::perror("flexwand_client: execv");
    _exit(127);
  }
  ::close(to_daemon[0]);
  ::close(from_daemon[1]);

  int failures = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto request = server::parse_request(line);
    if (!request) {
      std::fprintf(stderr, "flexwand_client: %s\n",
                   request.error().message.c_str());
      failures = 1;
      break;
    }
    if (!write_frame_fd(to_daemon[1], line)) {
      std::fprintf(stderr, "flexwand_client: daemon pipe closed\n");
      failures = 1;
      break;
    }
    std::string payload;
    if (!read_frame_fd(from_daemon[0], payload)) {
      failures = 1;
      break;
    }
    std::printf("%s\n", payload.c_str());
  }
  ::close(to_daemon[1]);
  ::close(from_daemon[0]);

  int status = 0;
  ::waitpid(pid, &status, 0);
  if (failures != 0) return 1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : 1;
}
