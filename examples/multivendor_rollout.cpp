// Multi-vendor rollout: introduce a new vendor into a running backbone and
// show why the standard device model matters (§4.3, §9).  The same planned
// wavelength is configured on devices from all three vendors — each with a
// different native dialect — through one standard document; then the same
// provisioning is attempted with uncoordinated per-vendor controllers over
// legacy fixed-grid OLS gear, reproducing the Fig. 5 failure classes.
// Flags: the shared obs surface (--metrics f, --trace f, --bundle dir).
// --bundle records both control models' audit results so a controller
// change that introduces inconsistencies fails the bundle gate.
#include <cstdio>

#include "controller/centralized.h"
#include "controller/distributed.h"
#include "controller/fleet.h"
#include "devmodel/vendors.h"
#include "obs/bundle.h"
#include "obs/report.h"
#include "planning/heuristic.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

using namespace flexwan;

int main(int argc, char** argv) {
  obs::RunReport report = obs::report_from_flags(argc, argv);
  // One standard-model document, three vendor dialects.
  const auto& catalog = transponder::svt_flexwan();
  const auto mode = *catalog.narrowest_mode(600, 400);
  const auto doc = devmodel::make_transponder_config(
      "10.0.0.1", mode, spectrum::Range{0, mode.pixels()});
  std::printf("standard document for %s:\n%s\n", mode.describe().c_str(),
              doc.serialize().c_str());
  for (const auto& vendor : devmodel::known_vendors()) {
    std::printf("%s native: %s\n", vendor.c_str(),
                devmodel::adapter_for(vendor).native_syntax(doc).c_str());
  }

  // Roll the whole Cernet plan out through both control models.
  const auto net = topology::make_cernet();
  planning::HeuristicPlanner planner(catalog, {});
  const auto plan = planner.plan(net);
  if (!plan) {
    std::printf("planning failed: %s\n", plan.error().message.c_str());
    return 1;
  }
  std::printf("\nrollout: %d wavelengths across %d sites, 3 vendors\n",
              plan->transponder_count(), net.optical.node_count());

  controller::Fleet central(net, *plan,
                            controller::VendorAssignment::kPerRegionMixed,
                            /*pixel_wise_ols=*/true);
  controller::CentralizedController cc(net);
  const auto cstats = cc.deploy(central);
  const auto caudit = controller::audit_fleet(central, net);
  std::printf("centralized + spectrum-sliced OLS: %d RPCs, "
              "%d inconsistencies, %d conflicts\n",
              cstats ? cstats->config_rpcs : -1, caudit.inconsistencies,
              caudit.conflicts);

  controller::Fleet legacy(net, *plan,
                           controller::VendorAssignment::kPerRegionMixed,
                           /*pixel_wise_ols=*/false);
  controller::DistributedControllers dc(net);
  const auto dstats = dc.deploy(legacy);
  const auto daudit = controller::audit_fleet(legacy, net);
  std::printf("per-vendor + legacy fixed-grid OLS:  %d RPCs, "
              "%d inconsistencies, %d conflicts",
              dstats ? dstats->config_rpcs : -1, daudit.inconsistencies,
              daudit.conflicts);
  if (dstats) {
    std::printf(" (%d passbands clipped to a rigid grid)",
                dstats->grid_clipped_passbands);
  }
  std::printf("\n\nthe centralized controller's holistic view is what keeps "
              "the audit clean.\n");

  if (!report.bundle_dir().empty()) {
    obs::Bundle bundle;
    bundle.dir = report.bundle_dir();
    bundle.tool = "multivendor_rollout";
    bundle.provenance = obs::make_bundle_provenance(1);
    bundle.config.emplace_back("network", obs::json::Value(net.name));
    bundle.config.emplace_back("vendor_assignment",
                               obs::json::Value("per_region_mixed"));
    bundle.results.emplace_back(
        "plan.wavelengths", static_cast<double>(plan->transponder_count()));
    bundle.results.emplace_back(
        "centralized.config_rpcs",
        static_cast<double>(cstats ? cstats->config_rpcs : -1));
    bundle.results.emplace_back(
        "centralized.inconsistencies",
        static_cast<double>(caudit.inconsistencies));
    bundle.results.emplace_back("centralized.conflicts",
                                static_cast<double>(caudit.conflicts));
    bundle.results.emplace_back(
        "distributed.config_rpcs",
        static_cast<double>(dstats ? dstats->config_rpcs : -1));
    bundle.results.emplace_back(
        "distributed.inconsistencies",
        static_cast<double>(daudit.inconsistencies));
    bundle.results.emplace_back("distributed.conflicts",
                                static_cast<double>(daudit.conflicts));
    bundle.results.emplace_back(
        "distributed.grid_clipped_passbands",
        static_cast<double>(dstats ? dstats->grid_clipped_passbands : 0));
    const auto written = bundle.write();
    if (!written) {
      std::fprintf(stderr, "multivendor_rollout: bundle: %s\n",
                   written.error().message.c_str());
      return 1;
    }
    std::fprintf(stderr, "evidence bundle: %s\n", bundle.dir.c_str());
  }
  return 0;
}
