// Multi-vendor rollout: introduce a new vendor into a running backbone and
// show why the standard device model matters (§4.3, §9).  The same planned
// wavelength is configured on devices from all three vendors — each with a
// different native dialect — through one standard document; then the same
// provisioning is attempted with uncoordinated per-vendor controllers over
// legacy fixed-grid OLS gear, reproducing the Fig. 5 failure classes.
#include <cstdio>

#include "controller/centralized.h"
#include "controller/distributed.h"
#include "controller/fleet.h"
#include "devmodel/vendors.h"
#include "planning/heuristic.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

using namespace flexwan;

int main() {
  // One standard-model document, three vendor dialects.
  const auto& catalog = transponder::svt_flexwan();
  const auto mode = *catalog.narrowest_mode(600, 400);
  const auto doc = devmodel::make_transponder_config(
      "10.0.0.1", mode, spectrum::Range{0, mode.pixels()});
  std::printf("standard document for %s:\n%s\n", mode.describe().c_str(),
              doc.serialize().c_str());
  for (const auto& vendor : devmodel::known_vendors()) {
    std::printf("%s native: %s\n", vendor.c_str(),
                devmodel::adapter_for(vendor).native_syntax(doc).c_str());
  }

  // Roll the whole Cernet plan out through both control models.
  const auto net = topology::make_cernet();
  planning::HeuristicPlanner planner(catalog, {});
  const auto plan = planner.plan(net);
  if (!plan) {
    std::printf("planning failed: %s\n", plan.error().message.c_str());
    return 1;
  }
  std::printf("\nrollout: %d wavelengths across %d sites, 3 vendors\n",
              plan->transponder_count(), net.optical.node_count());

  controller::Fleet central(net, *plan,
                            controller::VendorAssignment::kPerRegionMixed,
                            /*pixel_wise_ols=*/true);
  controller::CentralizedController cc(net);
  const auto cstats = cc.deploy(central);
  const auto caudit = controller::audit_fleet(central, net);
  std::printf("centralized + spectrum-sliced OLS: %d RPCs, "
              "%d inconsistencies, %d conflicts\n",
              cstats ? cstats->config_rpcs : -1, caudit.inconsistencies,
              caudit.conflicts);

  controller::Fleet legacy(net, *plan,
                           controller::VendorAssignment::kPerRegionMixed,
                           /*pixel_wise_ols=*/false);
  controller::DistributedControllers dc(net);
  const auto dstats = dc.deploy(legacy);
  const auto daudit = controller::audit_fleet(legacy, net);
  std::printf("per-vendor + legacy fixed-grid OLS:  %d RPCs, "
              "%d inconsistencies, %d conflicts",
              dstats ? dstats->config_rpcs : -1, daudit.inconsistencies,
              daudit.conflicts);
  if (dstats) {
    std::printf(" (%d passbands clipped to a rigid grid)",
                dstats->grid_clipped_passbands);
  }
  std::printf("\n\nthe centralized controller's holistic view is what keeps "
              "the audit clean.\n");
  return 0;
}
