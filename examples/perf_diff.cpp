// perf_diff — the perf-regression gate over two BENCH_*.json files.
//
//   perf_diff <baseline.json> <candidate.json> [--threshold F]
//
// Loads both files (benchlib/compare.h), compares case-by-case on median
// wall time, prints a readable table, and exits:
//   0  no regressions (self-compare always lands here),
//   1  at least one regression or vanished case,
//   2  usage / parse / schema errors.
// The threshold is a fraction of the baseline median (default 0.10 =
// ±10 %); see DESIGN.md "Benchmark telemetry" for the gate policy.
//
// New-case policy: a case present only in the candidate is NEW COVERAGE,
// not a failure — it is listed as "new", counted in the verdict line
// ("N new case(s) not gated"), and the tool still exits 0 when new cases
// are the only difference.  Rationale: a gate that punishes adding a bench
// case discourages exactly the coverage growth it exists to protect; the
// vanished-case rule (exit 1) already catches the inverse, where a case
// disappears and could hide a regression.
//
// Work-profile policy: when both files carry per-case "work_profile"
// sections, those deterministic counters are gated EXACTLY (no threshold)
// — a changed or vanished field is exit 1 with the node named, while a
// field only in the candidate is new instrumentation and stays exit 0.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "benchlib/compare.h"

using namespace flexwan;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: perf_diff <baseline.json> <candidate.json> "
               "[--threshold F]\n"
               "  F: allowed median wall-time change as a fraction "
               "(default 0.10 = +-10%%)\n");
  return 2;
}

// Strict threshold parse: a finite decimal fraction in (0, 10].
bool parse_threshold(const char* value, double* out) {
  if (value == nullptr || *value == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE) return false;
  if (!(parsed > 0.0) || parsed > 10.0) return false;
  *out = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.10;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--threshold") == 0) {
      if (i + 1 >= argc) return usage();
      value = argv[++i];
    } else if (std::strncmp(arg, "--threshold=", 12) == 0) {
      value = arg + 12;
    } else {
      files.push_back(arg);
      continue;
    }
    if (!parse_threshold(value, &threshold)) {
      std::fprintf(stderr, "perf_diff: invalid --threshold value '%s'\n",
                   value);
      return 2;
    }
  }
  if (files.size() != 2) return usage();

  const auto baseline = benchlib::load_bench_report_file(files[0]);
  if (!baseline) {
    std::fprintf(stderr, "perf_diff: %s\n", baseline.error().message.c_str());
    return 2;
  }
  const auto candidate = benchlib::load_bench_report_file(files[1]);
  if (!candidate) {
    std::fprintf(stderr, "perf_diff: %s\n", candidate.error().message.c_str());
    return 2;
  }

  const auto comparison =
      benchlib::compare_reports(*baseline, *candidate, threshold);
  if (!comparison) {
    std::fprintf(stderr, "perf_diff: %s\n",
                 comparison.error().message.c_str());
    return 2;
  }
  std::printf("%s", comparison->render().c_str());
  return comparison->failures() > 0 ? 1 : 0;
}
