// plan_tool: bring-your-own-topology planning CLI.
//
//   plan_tool <network-file> [scheme]      scheme: flexwan|radwan|100g,
//                                          or @<catalog-file> to plan with a
//                                          custom transponder spec sheet
//   plan_tool --sample                     print a sample network file
//   plan_tool --sample-catalog             print a sample catalog file
//
// --threads N sizes the parallel execution engine (default: one thread per
// hardware thread; 1 recovers serial execution).  The plan and the
// restoration drill are byte-identical at every N.
//
// --metrics <file.json> writes a structured metrics report (counters,
// gauges, latency histograms) on exit; --trace <file.json> writes a Chrome
// trace (load it at https://ui.perfetto.dev or chrome://tracing).  Both go
// to files, so stdout stays byte-identical with or without them.
//
// --bundle <dir> writes an evidence bundle (obs/bundle.h): run.json with
// the resolved inputs and headline plan/restoration numbers, events.jsonl,
// metrics.json, summary.md.  Deterministic at every --threads value.
//
// Reads a network description (see topology/io.h for the format), plans it
// with the chosen transponder generation, and reports the wavelengths, the
// cost metrics, the restoration drill over all single-fiber cuts, and a
// graphviz rendering of the topology.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "engine/engine.h"
#include "obs/bundle.h"
#include "obs/report.h"
#include "planning/heuristic.h"
#include "planning/metrics.h"
#include "restoration/metrics.h"
#include "topology/io.h"
#include "transponder/catalog.h"
#include "transponder/catalog_io.h"
#include "util/cli.h"
#include "util/table.h"

using namespace flexwan;

namespace {

constexpr const char* kUsage =
    "usage: plan_tool <network-file> [flexwan|radwan|100g|@catalog-file]\n"
    "                 [--threads N] [--metrics file.json] "
    "[--trace file.json]\n"
    "                 [--bundle dir]\n"
    "       plan_tool --sample\n"
    "       plan_tool --sample-catalog\n";

constexpr const char* kSample = R"(network sample
node west
node hub
node east
node south
fiber west hub 180
fiber hub east 220
fiber west south 400
fiber south east 450
link west east 600 west-east
link west hub 800 west-hub
)";

constexpr const char* kSampleCatalog = R"(catalog custom-svt
mode 100 50 3000
mode 200 75 2000
mode 400 100 1500
mode 600 112.5 700
mode 800 150 300
)";

// Owns a loaded custom catalog so the returned reference stays valid.
std::optional<transponder::Catalog> g_custom_catalog;

const transponder::Catalog& pick_catalog(const char* scheme) {
  if (scheme == nullptr || std::strcmp(scheme, "flexwan") == 0) {
    return transponder::svt_flexwan();
  }
  if (std::strcmp(scheme, "radwan") == 0) return transponder::bvt_radwan();
  if (std::strcmp(scheme, "100g") == 0) return transponder::fixed_grid_100g();
  if (scheme[0] == '@') {
    std::ifstream file(scheme + 1);
    if (!file) {
      std::fprintf(stderr, "cannot open catalog %s\n", scheme + 1);
      std::exit(2);
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto catalog = transponder::load_catalog(buffer.str());
    if (!catalog) {
      std::fprintf(stderr, "catalog parse error: %s\n",
                   catalog.error().message.c_str());
      std::exit(1);
    }
    g_custom_catalog.emplace(std::move(catalog.value()));
    return *g_custom_catalog;
  }
  std::fprintf(stderr,
               "unknown scheme %s (flexwan|radwan|100g|@catalog-file)\n",
               scheme);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const engine::Engine engine(engine::threads_flag(argc, argv));
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  const util::cli::Cli cli{argv[0], kUsage};

  // --threads/--metrics/--trace/--bundle were consumed above; everything
  // left must be a known mode flag or one of the two positionals.  A
  // mistyped flag is rejected, never silently treated as a network file.
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sample") == 0) {
      std::printf("%s", kSample);
      return 0;
    }
    if (std::strcmp(argv[i], "--sample-catalog") == 0) {
      std::printf("%s", kSampleCatalog);
      return 0;
    }
    if (argv[i][0] == '-' && argv[i][1] == '-') {
      cli.reject(std::string("unknown flag '") + argv[i] + "'");
    }
    positional.push_back(argv[i]);
  }
  if (positional.empty()) cli.usage();
  if (positional.size() > 2) {
    cli.reject(std::string("unexpected argument '") + positional[2] + "'");
  }

  std::ifstream file(positional[0]);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", positional[0]);
    return 2;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto net = topology::load_network(buffer.str());
  if (!net) {
    std::fprintf(stderr, "parse error: %s\n", net.error().message.c_str());
    return 1;
  }
  const auto& catalog =
      pick_catalog(positional.size() > 1 ? positional[1] : nullptr);

  std::printf("network %s: %d sites, %d fibers, %d IP links, %.0f Gbps\n\n",
              net->name.c_str(), net->optical.node_count(),
              net->optical.fiber_count(), net->ip.link_count(),
              net->ip.total_demand_gbps());

  planning::HeuristicPlanner planner(catalog, {});
  const auto plan = planner.plan(*net, engine);
  if (!plan) {
    std::fprintf(stderr, "planning failed (%s): %s\n",
                 plan.error().code.c_str(), plan.error().message.c_str());
    return 1;
  }

  TextTable waves({"link", "path (km)", "format", "pixels"});
  for (const auto& lp : plan->links()) {
    for (const auto& wl : lp.wavelengths) {
      waves.add_row(
          {net->ip.link(lp.link).name,
           TextTable::num(
               lp.paths[static_cast<std::size_t>(wl.path_index)].length_km, 0),
           wl.mode.describe(), spectrum::to_string(wl.range)});
    }
  }
  std::printf("%s\n", waves.render().c_str());

  const auto m = planning::compute_metrics(*plan, *net);
  std::printf("%s plan: %d transponder pairs, %.0f GHz, mean SE %.2f "
              "b/s/Hz, busiest fiber %.0f%% full\n",
              catalog.name().c_str(), m.transponder_count,
              m.spectrum_usage_ghz, m.mean_spectral_efficiency,
              100.0 * m.max_fiber_utilization);
  std::printf("max demand scale on this fiber plant: %.1fx\n\n",
              planning::max_supported_scale(*net, planner, 16.0, 0.5));

  restoration::Restorer restorer(catalog);
  const auto scenarios = restoration::single_fiber_cuts(net->optical);
  const auto rm = restoration::evaluate_scenarios(*net, *plan, restorer,
                                                  scenarios, engine);
  std::printf("restoration drill (%zu cuts): mean capability %.1f%%, "
              "%d cut(s) lose capacity\n\n",
              scenarios.size(), 100.0 * rm.mean_capability,
              rm.scenarios_with_loss);

  std::printf("graphviz:\n%s", topology::to_dot(*net).c_str());

  if (!report.bundle_dir().empty()) {
    obs::Bundle bundle;
    bundle.dir = report.bundle_dir();
    bundle.tool = "plan_tool";
    bundle.provenance = obs::make_bundle_provenance(engine.thread_count());
    using obs::json::Value;
    bundle.config.emplace_back("network_file",
                               Value(std::string(positional[0])));
    bundle.config.emplace_back("network", Value(net->name));
    bundle.config.emplace_back("scheme", Value(catalog.name()));
    bundle.results.emplace_back(
        "plan.transponder_pairs", static_cast<double>(m.transponder_count));
    bundle.results.emplace_back("plan.spectrum_usage_ghz",
                                m.spectrum_usage_ghz);
    bundle.results.emplace_back("plan.mean_spectral_efficiency",
                                m.mean_spectral_efficiency);
    bundle.results.emplace_back("plan.max_fiber_utilization",
                                m.max_fiber_utilization);
    bundle.results.emplace_back("restoration.mean_capability",
                                rm.mean_capability);
    bundle.results.emplace_back(
        "restoration.scenarios_with_loss",
        static_cast<double>(rm.scenarios_with_loss));
    bundle.results.emplace_back("restoration.scenarios",
                                static_cast<double>(scenarios.size()));
    const auto written = bundle.write();
    if (!written) {
      std::fprintf(stderr, "plan_tool: bundle: %s\n",
                   written.error().message.c_str());
      return 1;
    }
    std::fprintf(stderr, "evidence bundle: %s\n", bundle.dir.c_str());
  }
  return 0;
}
