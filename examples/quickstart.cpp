// Quickstart: the complete FlexWAN lifecycle on a small backbone in ~50
// lines — build a topology, plan capacity, deploy through the centralized
// controller, cut a fiber, watch the telemetry alarm, and restore.
//
// Flags: the shared obs surface (--metrics f, --trace f, --bundle dir).
// With --bundle the run's headline numbers land in an evidence bundle
// (run.json, metrics.json, events.jsonl, profile.json, summary.md) that
// bundle_diff can gate against a stored baseline.
#include <cstdio>

#include "core/flexwan.h"
#include "obs/bundle.h"
#include "obs/report.h"
#include "topology/builders.h"

using namespace flexwan;

int main(int argc, char** argv) {
  obs::RunReport report = obs::report_from_flags(argc, argv);
  // 1. A 4-site ring with one 400 Gbps IP link between sites A and B.
  topology::Network net;
  net.name = "quickstart-ring";
  const auto a = net.optical.add_node("siteA");
  const auto b = net.optical.add_node("siteB");
  const auto c = net.optical.add_node("siteC");
  const auto d = net.optical.add_node("siteD");
  const auto direct = net.optical.add_fiber(a, b, 300);  // primary route
  net.optical.add_fiber(b, c, 350);
  net.optical.add_fiber(c, d, 350);
  net.optical.add_fiber(d, a, 300);
  net.ip.add_link(a, b, 400, "A-B");

  // 2. Plan with FlexWAN's spacing-variable transponders.
  core::Session session(net, core::Scheme::kFlexWan);
  const auto plan = session.plan();
  if (!plan) {
    std::printf("planning failed: %s\n", plan.error().message.c_str());
    return 1;
  }
  std::printf("planned %d transponder pair(s), %.1f GHz of spectrum\n",
              (*plan)->transponder_count(), (*plan)->spectrum_usage_ghz());
  for (const auto& lp : (*plan)->links()) {
    for (const auto& wl : lp.wavelengths) {
      std::printf("  %s on %.0f km path, pixels %s\n",
                  wl.mode.describe().c_str(),
                  lp.paths[static_cast<std::size_t>(wl.path_index)].length_km,
                  spectrum::to_string(wl.range).c_str());
    }
  }

  // 3. Deploy: the centralized controller configures every device.
  const auto audit = session.deploy();
  if (!audit) {
    std::printf("deploy failed: %s\n", audit.error().message.c_str());
    return 1;
  }
  std::printf("deployed; audit: %d inconsistencies, %d conflicts\n",
              audit->inconsistencies, audit->conflicts);

  // 4. Cut the primary fiber; the one-second data stream raises the alarm.
  const auto alarm = session.simulate_fiber_cut(direct);
  if (!alarm) {
    std::printf("no alarm: %s\n", alarm.error().message.c_str());
    return 1;
  }
  std::printf("fiber %d cut detected (rx power dropped %.0f dB)\n",
              alarm->fiber, alarm->power_drop_db);

  // 5. Restore onto the 1000 km detour — the SVT widens its channel to
  //    keep the data rate on the longer path.
  const auto outcome = session.restore(alarm->fiber);
  if (!outcome) {
    std::printf("restoration failed: %s\n", outcome.error().message.c_str());
    return 1;
  }
  std::printf("restored %.0f of %.0f Gbps (capability %.0f%%)\n",
              outcome->restored_gbps, outcome->affected_gbps,
              100.0 * outcome->capability());
  for (const auto& rw : outcome->wavelengths) {
    std::printf("  %s rerouted over %.0f km (was %.0f km)\n",
                rw.mode.describe().c_str(), rw.path.length_km,
                rw.original_path_km);
  }

  if (!report.bundle_dir().empty()) {
    obs::Bundle bundle;
    bundle.dir = report.bundle_dir();
    bundle.tool = "quickstart";
    bundle.provenance = obs::make_bundle_provenance(1);
    bundle.config.emplace_back("network", obs::json::Value(net.name));
    bundle.config.emplace_back("scheme", obs::json::Value("flexwan"));
    bundle.results.emplace_back(
        "plan.transponder_pairs",
        static_cast<double>((*plan)->transponder_count()));
    bundle.results.emplace_back("plan.spectrum_ghz",
                                (*plan)->spectrum_usage_ghz());
    bundle.results.emplace_back("audit.inconsistencies",
                                static_cast<double>(audit->inconsistencies));
    bundle.results.emplace_back("audit.conflicts",
                                static_cast<double>(audit->conflicts));
    bundle.results.emplace_back("restore.affected_gbps",
                                outcome->affected_gbps);
    bundle.results.emplace_back("restore.restored_gbps",
                                outcome->restored_gbps);
    bundle.results.emplace_back("restore.capability", outcome->capability());
    const auto written = bundle.write();
    if (!written) {
      std::fprintf(stderr, "quickstart: bundle: %s\n",
                   written.error().message.c_str());
      return 1;
    }
    std::fprintf(stderr, "evidence bundle: %s\n", bundle.dir.c_str());
  }
  return 0;
}
