// sim_tool: long-horizon availability study (digital-twin lifecycle).
//
//   sim_tool [--network tbackbone|cernet] [--scheme flexwan|radwan|100g]
//            [--years Y] [--trials M] [--seed S]
//            [--cut-rate R]      fiber cuts per 1000 km per year
//            [--mttr-hours H]    mean repair time (lognormal)
//            [--growth-days D]   demand-growth calendar spacing (0 = off)
//            [--growth-pct P]    % of original demand added per growth event
//            [--no-defrag]       skip opportunistic defragmentation
//            [--verify-incremental]  re-solve every event from scratch and
//                                    fail on any divergence (oracle parity)
//            [--sample-interval D]   sim-days between "interval" rows of the
//                                    time-series trajectory (0 = event-keyed
//                                    rows only; sampling itself is on exactly
//                                    when --bundle / --bench-json is)
//            [--threads N] [--metrics f.json] [--trace f.json]
//            [--bundle dir]      write an evidence bundle (run.json,
//                                events.jsonl, metrics.json, summary.md,
//                                timeseries.jsonl);
//                                byte-identical at every --threads value
//                                (modulo run.json's "threads" field)
//
// Plans the chosen network, then replays M seeded event timelines (Poisson
// fiber cuts, MTTR repairs, periodic demand growth) against the deployed
// plan and reports the availability the traffic experienced: per-trial
// availability and lost Gbps-minutes, the restoration-capability
// trajectory, and per-link downtime.  The report is byte-identical at every
// --threads value (trials fan out on the engine, aggregation is
// trial-index-ordered) — CI's sim-determinism job byte-compares 1 vs 8.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "obs/bundle.h"
#include "obs/report.h"
#include "obs/timeseries.h"
#include "planning/heuristic.h"
#include "sim/simulator.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/cli.h"
#include "util/table.h"

using namespace flexwan;

namespace {

// Strict flag handling (reject typos and out-of-range values, exit 2 with
// usage) comes from util/cli.h, shared with plan_tool and flexwand.
constexpr const char* kUsage =
    "usage: sim_tool [--network tbackbone|cernet] "
    "[--scheme flexwan|radwan|100g]\n"
    "                [--years Y] [--trials M] [--seed S] [--cut-rate R]\n"
    "                [--mttr-hours H] [--growth-days D] [--growth-pct P]\n"
    "                [--no-defrag] [--verify-incremental] "
    "[--sample-interval D]\n"
    "                [--threads N] [--metrics f] [--trace f] [--bundle dir]\n";

}  // namespace

int main(int argc, char** argv) {
  const engine::Engine engine(engine::threads_flag(argc, argv));
  const obs::RunReport report = obs::report_from_flags(argc, argv);
  const util::cli::Cli cli{argv[0], kUsage};

  std::string network = "tbackbone";
  std::string scheme = "flexwan";
  sim::LifecycleConfig config;
  config.trials = 4;
  config.seed = 1;
  double years = 1.0;
  double growth_pct = 5.0;

  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--network") == 0) {
      network = cli.require_value("--network", value());
    } else if (std::strcmp(argv[i], "--scheme") == 0) {
      scheme = cli.require_value("--scheme", value());
    } else if (std::strcmp(argv[i], "--years") == 0) {
      years = cli.parse_double("--years", value(), 0.0, 1000.0);
    } else if (std::strcmp(argv[i], "--trials") == 0) {
      config.trials =
          static_cast<int>(cli.parse_int("--trials", value(), 0, 1000000));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = static_cast<std::uint64_t>(cli.parse_int(
          "--seed", value(), 0, std::numeric_limits<long long>::max()));
    } else if (std::strcmp(argv[i], "--cut-rate") == 0) {
      config.timeline.cut_rate_per_1000km_per_year =
          cli.parse_double("--cut-rate", value(), 0.0, 10000.0);
    } else if (std::strcmp(argv[i], "--mttr-hours") == 0) {
      config.timeline.mttr_mean_hours =
          cli.parse_double("--mttr-hours", value(), 0.0, 1.0e6);
    } else if (std::strcmp(argv[i], "--growth-days") == 0) {
      config.timeline.growth_interval_days =
          cli.parse_double("--growth-days", value(), 0.0, 1.0e6);
    } else if (std::strcmp(argv[i], "--growth-pct") == 0) {
      growth_pct = cli.parse_double("--growth-pct", value(), 0.0, 1000.0);
    } else if (std::strcmp(argv[i], "--sample-interval") == 0) {
      config.sample_interval_days =
          cli.parse_double("--sample-interval", value(), 0.0, 1.0e6);
    } else if (std::strcmp(argv[i], "--no-defrag") == 0) {
      config.defrag_on_growth = false;
    } else if (std::strcmp(argv[i], "--verify-incremental") == 0) {
      config.restorer.verify_incremental = true;
    } else {
      cli.reject(std::string("unknown flag '") + argv[i] + "'");
    }
  }
  config.timeline.horizon_days = years * 365.0;
  config.growth_fraction = growth_pct / 100.0;

  if (network != "cernet" && network != "tbackbone") {
    cli.reject("--network: unknown network '" + network + "'");
  }
  if (scheme != "radwan" && scheme != "100g" && scheme != "flexwan") {
    cli.reject("--scheme: unknown scheme '" + scheme + "'");
  }
  const auto net = network == "cernet" ? topology::make_cernet()
                                       : topology::make_tbackbone();
  const transponder::Catalog& catalog =
      scheme == "radwan" ? transponder::bvt_radwan()
      : scheme == "100g" ? transponder::fixed_grid_100g()
                         : transponder::svt_flexwan();

  obs::announce_threads(engine.thread_count());
  std::printf("lifecycle: %s / %s, %d trial(s) x %.2f year(s), seed %llu\n",
              net.name.c_str(), catalog.name().c_str(), config.trials, years,
              static_cast<unsigned long long>(config.seed));
  std::printf("timeline: %.2f cuts/1000km/yr, MTTR %.1f h (sigma %.2f), "
              "growth %.1f%% every %.0f days%s\n\n",
              config.timeline.cut_rate_per_1000km_per_year,
              config.timeline.mttr_mean_hours, config.timeline.mttr_sigma,
              growth_pct, config.timeline.growth_interval_days,
              config.defrag_on_growth ? " (+defrag)" : "");

  planning::HeuristicPlanner planner(catalog, {});
  const auto plan = planner.plan(net, engine);
  if (!plan) {
    std::fprintf(stderr, "planning failed (%s): %s\n",
                 plan.error().code.c_str(), plan.error().message.c_str());
    return 1;
  }
  double provisioned = 0.0;
  for (const auto& lp : plan->links()) provisioned += lp.provisioned_gbps();
  std::printf("deployed plan: %d transponder pairs, %.0f Gbps provisioned\n\n",
              plan->transponder_count(), provisioned);

  const auto sim = sim::run_lifecycle(net, *plan, catalog, config, engine);
  if (!sim) {
    std::fprintf(stderr, "simulation failed (%s): %s\n",
                 sim.error().code.c_str(), sim.error().message.c_str());
    return 1;
  }

  TextTable trials({"trial", "cuts", "repairs", "growth", "availability",
                    "lost Gbps-min", "min capability"});
  for (const auto& t : sim->trials) {
    trials.add_row({std::to_string(t.trial), std::to_string(t.cuts),
                    std::to_string(t.repairs),
                    std::to_string(t.growth_events),
                    TextTable::num(t.availability, 6),
                    TextTable::num(t.lost_gbps_minutes, 1),
                    TextTable::num(t.min_capability, 3)});
  }
  std::printf("%s\n", trials.render().c_str());

  std::printf("availability: mean %.6f, min %.6f over %zu trial(s)\n",
              sim->mean_availability, sim->min_availability,
              sim->trials.size());
  std::printf("lost traffic: mean %.1f Gbps-minutes per trial\n",
              sim->mean_lost_gbps_minutes);
  std::size_t capability_samples = 0;
  for (const auto& t : sim->trials) {
    capability_samples += t.capability_trajectory.size();
  }
  std::printf("restoration capability: mean %.3f over %zu restoration(s)\n",
              sim->mean_capability, capability_samples);
  double added = 0.0;
  int blocked = 0;
  for (const auto& t : sim->trials) {
    added += t.capacity_added_gbps;
    blocked += t.growth_blocked;
  }
  if (sim->total_growth_events > 0) {
    std::printf("growth: %.0f Gbps added across trials, %d extension(s) "
                "blocked on spectrum\n",
                added, blocked);
  }

  // Worst links by mean degraded minutes (ties by link id; both
  // deterministic).
  std::vector<std::pair<topology::LinkId, double>> worst(
      sim->mean_link_downtime_minutes.begin(),
      sim->mean_link_downtime_minutes.end());
  std::sort(worst.begin(), worst.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (!worst.empty()) {
    std::printf("\ntop link downtime (mean minutes/trial):\n");
    TextTable down({"link", "degraded min"});
    const std::size_t top = std::min<std::size_t>(5, worst.size());
    for (std::size_t i = 0; i < top; ++i) {
      down.add_row({net.ip.link(worst[i].first).name,
                    TextTable::num(worst[i].second, 1)});
    }
    std::printf("%s", down.render().c_str());
  }

  if (!report.bundle_dir().empty()) {
    obs::Bundle bundle;
    bundle.dir = report.bundle_dir();
    bundle.tool = "sim_tool";
    bundle.provenance = obs::make_bundle_provenance(engine.thread_count());
    using obs::json::Value;
    bundle.config.emplace_back("network", Value(network));
    bundle.config.emplace_back("scheme", Value(scheme));
    bundle.config.emplace_back("years", Value(years));
    bundle.config.emplace_back(
        "trials", Value(static_cast<double>(config.trials)));
    bundle.config.emplace_back("seed",
                               Value(static_cast<double>(config.seed)));
    bundle.config.emplace_back(
        "cut_rate_per_1000km_per_year",
        Value(config.timeline.cut_rate_per_1000km_per_year));
    bundle.config.emplace_back("mttr_hours",
                               Value(config.timeline.mttr_mean_hours));
    bundle.config.emplace_back(
        "growth_interval_days",
        Value(config.timeline.growth_interval_days));
    bundle.config.emplace_back("growth_pct", Value(growth_pct));
    bundle.config.emplace_back("defrag_on_growth",
                               Value(config.defrag_on_growth));
    bundle.config.emplace_back("verify_incremental",
                               Value(config.restorer.verify_incremental));
    bundle.config.emplace_back("sample_interval_days",
                               Value(config.sample_interval_days));
    bundle.results.emplace_back("availability.mean", sim->mean_availability);
    bundle.results.emplace_back("availability.min", sim->min_availability);
    bundle.results.emplace_back("lost_gbps_minutes.mean",
                                sim->mean_lost_gbps_minutes);
    bundle.results.emplace_back("capability.mean", sim->mean_capability);
    bundle.results.emplace_back("cuts.total",
                                static_cast<double>(sim->total_cuts));
    bundle.results.emplace_back("repairs.total",
                                static_cast<double>(sim->total_repairs));
    bundle.results.emplace_back(
        "growth_events.total",
        static_cast<double>(sim->total_growth_events));
    bundle.results.emplace_back("growth.capacity_added_gbps", added);
    bundle.results.emplace_back("growth.blocked",
                                static_cast<double>(blocked));
    bundle.results.emplace_back("plan.provisioned_gbps", provisioned);
    bundle.results.emplace_back(
        "plan.transponder_pairs",
        static_cast<double>(plan->transponder_count()));
    for (std::size_t i = 0; i < std::min<std::size_t>(5, worst.size()); ++i) {
      bundle.results.emplace_back(
          "link_downtime_minutes." + net.ip.link(worst[i].first).name,
          worst[i].second);
    }
    // Headline health indicators derived from the sim-time trajectory the
    // trials just spliced into the global TimeSeries.  Published as
    // "health.*" results so they headline run.json/summary.md; bundle_diff
    // additionally recomputes them from timeseries.jsonl under
    // "timeseries.health.*" (the two must agree — both call derive_health).
    const obs::HealthIndicators health =
        obs::derive_health(obs::TimeSeries::instance().samples());
    for (const auto& [name, v] : obs::flatten_health(health, "health.")) {
      bundle.results.emplace_back(name, v);
    }
    std::ostringstream body;
    body << "## Trials\n\n| trial | availability | lost Gbps-min | "
            "restorations |\n|---|---|---|---|\n";
    for (const auto& t : sim->trials) {
      body << "| " << t.trial << " | "
           << obs::json::number_to_string(t.availability) << " | "
           << obs::json::number_to_string(t.lost_gbps_minutes) << " | "
           << t.restorations << " |\n";
    }
    body << "\n## Health\n\n| indicator | value |\n|---|---|\n";
    for (const auto& [name, v] : obs::flatten_health(health, "")) {
      body << "| " << name << " | " << obs::json::number_to_string(v)
           << " |\n";
    }
    if (!worst.empty()) {
      body << "\n## Worst links by downtime\n\n"
              "| link | mean degraded min/trial |\n|---|---|\n";
      const std::size_t top = std::min<std::size_t>(5, worst.size());
      for (std::size_t i = 0; i < top; ++i) {
        body << "| " << net.ip.link(worst[i].first).name << " | "
             << obs::json::number_to_string(worst[i].second) << " |\n";
      }
    }
    bundle.summary_body_md = body.str();
    const auto written = bundle.write();
    if (!written) {
      std::fprintf(stderr, "sim_tool: bundle: %s\n",
                   written.error().message.c_str());
      return 1;
    }
    std::fprintf(stderr, "evidence bundle: %s\n", bundle.dir.c_str());
  }
  return 0;
}
