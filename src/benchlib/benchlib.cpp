#include "benchlib/benchlib.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <span>
#include <sstream>

#include "obs/bundle.h"
#include "obs/json.h"
#include "obs/timeseries.h"
#include "obs/workprof.h"

// Build provenance is injected by src/benchlib/CMakeLists.txt; the
// fallbacks keep non-CMake builds (e.g. IDE single-file checks) compiling.
#ifndef FLEXWAN_BUILD_TYPE
#define FLEXWAN_BUILD_TYPE "unknown"
#endif
#ifndef FLEXWAN_COMPILER
#define FLEXWAN_COMPILER "unknown"
#endif
#ifndef FLEXWAN_CXX_FLAGS
#define FLEXWAN_CXX_FLAGS ""
#endif

namespace flexwan::benchlib {

namespace json = obs::json;

TimingStats compute_stats(const std::vector<double>& wall_us) {
  TimingStats stats;
  if (wall_us.empty()) return stats;
  const auto n = static_cast<double>(wall_us.size());
  std::vector<double> sorted = wall_us;
  std::sort(sorted.begin(), sorted.end());
  stats.min_us = sorted.front();
  const std::size_t mid = sorted.size() / 2;
  stats.median_us = sorted.size() % 2 == 1
                        ? sorted[mid]
                        : 0.5 * (sorted[mid - 1] + sorted[mid]);
  double sum = 0.0;
  for (double v : sorted) sum += v;
  stats.mean_us = sum / n;
  double var = 0.0;
  for (double v : sorted) var += (v - stats.mean_us) * (v - stats.mean_us);
  stats.stddev_us = std::sqrt(var / n);
  return stats;
}

Provenance make_provenance(int threads) {
  Provenance p;
  p.threads = threads;
  p.build_type = FLEXWAN_BUILD_TYPE;
  p.compiler = FLEXWAN_COMPILER;
  p.cxx_flags = FLEXWAN_CXX_FLAGS;
  // Opaque per-process token: wall time mixed with the pid (splitmix64),
  // rendered as hex.  No hostname, user, or path material goes in.
  std::uint64_t seed =
      static_cast<std::uint64_t>(
          std::chrono::system_clock::now().time_since_epoch().count()) ^
      (static_cast<std::uint64_t>(::getpid()) << 32);
  seed += 0x9e3779b97f4a7c15ull;
  seed = (seed ^ (seed >> 30)) * 0xbf58476d1ce4e5b9ull;
  seed = (seed ^ (seed >> 27)) * 0x94d049bb133111ebull;
  seed ^= seed >> 31;
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(seed));
  p.run_id = buf;
  return p;
}

Harness::Harness(std::string bench_name, obs::BenchOptions options,
                 int threads)
    : name_(std::move(bench_name)),
      options_(std::move(options)),
      provenance_(make_provenance(threads)) {
  if (options_.list) {
    // Keep the real stdout for the case names, then route the bench's own
    // table printing (which still runs between run() calls) to /dev/null
    // so the listing is exactly one case name per line.
    list_fd_ = ::dup(STDOUT_FILENO);
    if (list_fd_ >= 0) {
      std::fflush(stdout);
      if (std::freopen("/dev/null", "w", stdout) == nullptr) {
        // Couldn't null stdout: fall back to interleaved output rather
        // than losing the listing entirely.
      }
    } else {
      list_fd_ = STDOUT_FILENO;
    }
  }
}

Harness::~Harness() {
  if (options_.list) {
    // A listing run never writes telemetry; exit 0 regardless of what the
    // bench's post-run printing code would have returned.
    std::fflush(nullptr);
    std::exit(0);
  }
  if (!enabled()) return;
  if (!options_.json_path.empty()) {
    const auto result = write();
    if (!result) {
      std::fprintf(stderr, "benchlib: %s\n", result.error().message.c_str());
    }
  }
  if (!options_.bundle_dir.empty()) {
    const auto result = write_bundle();
    if (!result) {
      std::fprintf(stderr, "benchlib: %s\n", result.error().message.c_str());
    }
  }
}

void Harness::list_case(const std::string& case_name) {
  ::dprintf(list_fd_ >= 0 ? list_fd_ : STDOUT_FILENO, "%s\n",
            case_name.c_str());
}

std::map<std::string, std::uint64_t> Harness::capture_work() {
  if (!obs::workprof_enabled()) return {};
  return obs::workprof::WorkProfile::instance().flatten();
}

std::size_t Harness::capture_timeseries_size() {
  if (!obs::timeseries_enabled()) return 0;
  return obs::TimeSeries::instance().size();
}

void Harness::finish_case(CaseResult record,
                          const obs::MetricsSnapshot& before,
                          const std::map<std::string, std::uint64_t>& work_before,
                          std::size_t timeseries_before) {
  record.stats = compute_stats(record.wall_us);
  record.delta = obs::snapshot_delta(before, obs::Registry::instance().snapshot());
  // Attributed work is monotonic, so the per-case delta is a subtraction
  // keyed like the snapshots; keys absent before count from zero, and
  // unmoved nodes drop out (mirroring snapshot_delta's semantics).
  for (const auto& [key, after] : capture_work()) {
    const auto it = work_before.find(key);
    const std::uint64_t prior = it == work_before.end() ? 0 : it->second;
    if (after != prior) record.work_profile[key] = after - prior;
  }
  // Health indicators over exactly the rows this case's measured reps
  // spliced into the global trace (the watermark is taken after warmup, so
  // warmup rows are excluded).  derive_health's segment rule handles
  // repeated reps: each rep restarts t_days, opening a fresh segment.
  if (obs::timeseries_enabled()) {
    const auto rows = obs::TimeSeries::instance().samples();
    if (rows.size() > timeseries_before) {
      const auto health = obs::derive_health(
          std::span<const obs::TimeSample>(rows).subspan(timeseries_before));
      for (const auto& [key, value] : obs::flatten_health(health, "")) {
        record.health[key] = value;
      }
    }
  }
  std::fprintf(stderr,
               "bench[%s] %s: median %.1f us  mean %.1f us  stddev %.1f us  "
               "(reps %d, warmup %d)\n",
               name_.c_str(), record.name.c_str(), record.stats.median_us,
               record.stats.mean_us, record.stats.stddev_us, record.reps,
               record.warmup);
  results_.push_back(std::move(record));
}

namespace {

void append_metrics(std::ostringstream& out, const obs::MetricsSnapshot& m) {
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : m.counters) {
    out << (first ? "" : ", ") << '"' << json::escape(name) << "\": " << v;
    first = false;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : m.gauges) {
    out << (first ? "" : ", ") << '"' << json::escape(name)
        << "\": " << json::number_to_string(v);
    first = false;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : m.histograms) {
    out << (first ? "" : ", ") << '"' << json::escape(name)
        << "\": {\"count\": " << h.count
        << ", \"sum\": " << json::number_to_string(h.sum) << "}";
    first = false;
  }
  out << "}}";
}

}  // namespace

std::string Harness::to_json() const {
  std::ostringstream out;
  out << "{\n  \"schema_version\": " << kBenchSchemaVersion << ",\n"
      << "  \"bench\": \"" << json::escape(name_) << "\",\n"
      << "  \"warmup\": " << options_.warmup << ",\n"
      << "  \"reps\": " << options_.reps << ",\n"
      << "  \"provenance\": {"
      << "\"threads\": " << provenance_.threads
      << ", \"build_type\": \"" << json::escape(provenance_.build_type)
      << "\", \"compiler\": \"" << json::escape(provenance_.compiler)
      << "\", \"cxx_flags\": \"" << json::escape(provenance_.cxx_flags)
      << "\", \"run_id\": \"" << json::escape(provenance_.run_id) << "\"},\n"
      << "  \"cases\": [";
  bool first_case = true;
  for (const auto& c : results_) {
    out << (first_case ? "" : ",") << "\n    {\"name\": \""
        << json::escape(c.name) << "\", \"warmup\": " << c.warmup
        << ", \"reps\": " << c.reps << ",\n     \"wall_us\": [";
    for (std::size_t i = 0; i < c.wall_us.size(); ++i) {
      out << (i == 0 ? "" : ", ") << json::number_to_string(c.wall_us[i]);
    }
    out << "],\n     \"wall_stats_us\": {\"min\": "
        << json::number_to_string(c.stats.min_us)
        << ", \"median\": " << json::number_to_string(c.stats.median_us)
        << ", \"mean\": " << json::number_to_string(c.stats.mean_us)
        << ", \"stddev\": " << json::number_to_string(c.stats.stddev_us)
        << "},\n     \"metrics\": ";
    append_metrics(out, c.delta);
    out << ",\n     \"work_profile\": {";
    bool first_work = true;
    for (const auto& [key, value] : c.work_profile) {
      out << (first_work ? "" : ", ") << '"' << json::escape(key)
          << "\": " << value;
      first_work = false;
    }
    out << "},\n     \"health\": {";
    bool first_health = true;
    for (const auto& [key, value] : c.health) {
      out << (first_health ? "" : ", ") << '"' << json::escape(key)
          << "\": " << json::number_to_string(value);
      first_health = false;
    }
    out << "}}";
    first_case = false;
  }
  out << "\n  ]\n}\n";
  return out.str();
}

Expected<bool> Harness::write_bundle() const {
  if (options_.bundle_dir.empty()) {
    return Error::make("no_path", "bundle directory not configured");
  }
  obs::Bundle bundle;
  bundle.dir = options_.bundle_dir;
  bundle.tool = name_;
  bundle.provenance = obs::make_bundle_provenance(provenance_.threads);
  bundle.config.emplace_back(
      "warmup", json::Value(static_cast<double>(options_.warmup)));
  bundle.config.emplace_back(
      "reps", json::Value(static_cast<double>(options_.reps)));
  std::ostringstream body;
  body << "## Cases\n\n| case | median us | mean us | stddev us | reps "
          "|\n|---|---|---|---|---|\n";
  for (const auto& c : results_) {
    const std::string prefix = "case." + c.name + ".";
    bundle.results.emplace_back(prefix + "median_us", c.stats.median_us);
    bundle.results.emplace_back(prefix + "mean_us", c.stats.mean_us);
    bundle.results.emplace_back(prefix + "min_us", c.stats.min_us);
    body << "| " << c.name << " | "
         << json::number_to_string(c.stats.median_us) << " | "
         << json::number_to_string(c.stats.mean_us) << " | "
         << json::number_to_string(c.stats.stddev_us) << " | " << c.reps
         << " |\n";
  }
  bundle.summary_body_md = body.str();
  return bundle.write();
}

Expected<bool> Harness::write() const {
  if (options_.json_path.empty()) {
    return Error::make("no_path", "bench json path not configured");
  }
  std::ofstream out(options_.json_path, std::ios::trunc);
  if (!out) {
    return Error::make("io_error",
                       "cannot open " + options_.json_path + " for writing");
  }
  out << to_json();
  out.flush();
  if (!out) {
    return Error::make("io_error", "short write to " + options_.json_path);
  }
  return true;
}

}  // namespace flexwan::benchlib
