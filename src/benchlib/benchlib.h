// Benchmark telemetry harness (layered on src/obs).
//
// The 14 bench_* binaries print paper-figure tables; this harness turns
// them into *instruments* that also record machine-readable evidence: each
// named case runs `--warmup` discarded repetitions plus `--reps` measured
// ones, records per-rep wall time (min/median/mean/stddev) and the case's
// own metrics deltas (obs::Registry::snapshot() diffs, so a case reports
// its simplex pivots or KSP calls rather than process-lifetime totals),
// and the whole run lands in a schema-versioned BENCH_<name>.json when
// `--bench-json <path>` is given.
//
// The determinism contract is inherited from src/obs: the harness never
// writes to stdout.  Telemetry goes to the JSON file and a per-case
// summary line on stderr.  When the harness is disabled (no --bench-json)
// run() degrades to calling the body exactly once and returning its value
// — byte-for-byte the pre-harness behavior.  Case bodies must therefore
// be pure computations over their inputs (no printing, no shared mutable
// state): with reps > 1 the body runs several times and only the final
// repetition's return value reaches the caller's printing code.
#pragma once

#include <chrono>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/report.h"
#include "util/expected.h"

namespace flexwan::benchlib {

// Bumped whenever the BENCH_*.json layout changes incompatibly;
// perf_diff refuses to compare files with mismatched versions.
inline constexpr int kBenchSchemaVersion = 1;

// Wall-time summary over the measured repetitions, in microseconds.
struct TimingStats {
  double min_us = 0.0;
  double median_us = 0.0;
  double mean_us = 0.0;
  double stddev_us = 0.0;  // population stddev; 0 for a single rep
};

TimingStats compute_stats(const std::vector<double>& wall_us);

// One completed case: timing per rep plus the metrics the case itself
// produced (deltas over the measured reps — totals across all `reps`
// repetitions, not per-rep averages).
struct CaseResult {
  std::string name;
  int warmup = 0;
  int reps = 1;
  std::vector<double> wall_us;
  TimingStats stats;
  obs::MetricsSnapshot delta;
  // Work-profile delta over the measured reps (obs/workprof.h flatten
  // keys), recorded when the profiler is on (--bench-json enables it).
  // Deterministic, so perf_diff gates these exactly while wall stats keep
  // their noise tolerance.
  std::map<std::string, std::uint64_t> work_profile;
  // Derived resilience indicators (obs/timeseries.h flatten_health keys,
  // no prefix) over the time-series rows the case's measured reps recorded.
  // Empty when the sampler is off or the case sampled nothing; like
  // work_profile, simulation-derived and therefore deterministic.
  std::map<std::string, double> health;
};

// Where the numbers came from.  Deliberately hostname-free (BENCH files
// are meant to be attached to PRs): the run id only disambiguates runs,
// it does not identify machines.
struct Provenance {
  int threads = 1;
  std::string build_type;   // CMAKE_BUILD_TYPE
  std::string compiler;     // "<id> <version>"
  std::string cxx_flags;    // base + build-type optimization flags
  std::string run_id;       // opaque hex token, fresh per process
};

Provenance make_provenance(int threads);

class Harness {
 public:
  // `options` normally comes from obs::report_from_flags(...).bench_options();
  // `threads` is recorded as provenance only.
  Harness(std::string bench_name, obs::BenchOptions options, int threads = 1);

  // Writes the BENCH json on scope exit (enabled harnesses only); write
  // failures go to stderr, never thrown.
  ~Harness();

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  bool enabled() const { return options_.enabled(); }
  const std::string& name() const { return name_; }
  const obs::BenchOptions& options() const { return options_; }
  const std::vector<CaseResult>& results() const { return results_; }

  // Runs one named case.  Disabled: calls fn once, records nothing.
  // Enabled: `warmup` discarded runs, then `reps` timed runs bracketed by
  // registry snapshots; returns the final repetition's value.
  // List mode (--list): prints the case name to the saved stdout and skips
  // the body, returning a value-initialized placeholder when the return
  // type allows it (the bench's own table printing is routed to /dev/null,
  // so stdout carries exactly one case name per line; the destructor exits
  // 0).  A non-default-constructible return type forces the body to run —
  // the name is still listed.
  template <typename Fn>
  auto run(const std::string& case_name, Fn&& fn) -> decltype(fn()) {
    using Result = decltype(fn());
    if (options_.list) {
      list_case(case_name);
      if constexpr (std::is_void_v<Result>) {
        return;
      } else if constexpr (std::is_default_constructible_v<Result>) {
        return Result{};
      } else {
        return fn();
      }
    }
    if (!enabled()) return fn();
    for (int i = 0; i < options_.warmup; ++i) static_cast<void>(fn());
    CaseResult record;
    record.name = case_name;
    record.warmup = options_.warmup;
    record.reps = options_.reps;
    record.wall_us.reserve(static_cast<std::size_t>(options_.reps));
    const obs::MetricsSnapshot before = obs::Registry::instance().snapshot();
    const auto work_before = capture_work();
    const std::size_t timeseries_before = capture_timeseries_size();
    if constexpr (std::is_void_v<Result>) {
      for (int rep = 0; rep < options_.reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        record.wall_us.push_back(elapsed_us(t0));
      }
      finish_case(std::move(record), before, work_before, timeseries_before);
    } else {
      std::optional<Result> result;
      for (int rep = 0; rep < options_.reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        result.emplace(fn());
        record.wall_us.push_back(elapsed_us(t0));
      }
      finish_case(std::move(record), before, work_before, timeseries_before);
      return std::move(*result);
    }
  }

  // The full BENCH document (schema kBenchSchemaVersion; layout spec in
  // DESIGN.md "Benchmark telemetry").
  std::string to_json() const;

  // Writes to_json() to the configured path now.  The destructor writes
  // again unless release() is called (idempotent, like obs::RunReport).
  Expected<bool> write() const;

  // Writes an evidence bundle (obs/bundle.h) to options_.bundle_dir: the
  // per-case wall stats become dotted results ("case.<name>.median_us",
  // ...) so bundle_diff can gate them, and the case table lands in
  // summary.md.  Wall numbers are inherently run-dependent — bench bundles
  // are compared with tolerances, unlike the byte-identical sim bundles.
  Expected<bool> write_bundle() const;

  void release() {
    options_.json_path.clear();
    options_.bundle_dir.clear();
  }

 private:
  static double elapsed_us(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
  }

  // Stats + metrics delta + stderr summary, then stores the record.
  void finish_case(CaseResult record, const obs::MetricsSnapshot& before,
                   const std::map<std::string, std::uint64_t>& work_before,
                   std::size_t timeseries_before);

  // Flattened work-profile snapshot (empty when the profiler is off).
  static std::map<std::string, std::uint64_t> capture_work();

  // Global TimeSeries row count (0 when the sampler is off): the watermark
  // that scopes derive_health to the rows a case's measured reps added.
  static std::size_t capture_timeseries_size();

  // Writes one case name to the saved real-stdout fd (list mode).
  void list_case(const std::string& case_name);

  std::string name_;
  obs::BenchOptions options_;
  Provenance provenance_;
  std::vector<CaseResult> results_;
  int list_fd_ = -1;  // dup of the real stdout while stdout is nulled
};

}  // namespace flexwan::benchlib
