#include "benchlib/compare.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "benchlib/benchlib.h"
#include "obs/json.h"
#include "util/table.h"

namespace flexwan::benchlib {

namespace json = obs::json;

namespace {

Error malformed(const std::string& what) {
  return Error::make("bad_bench_report", what);
}

}  // namespace

Expected<BenchReport> load_bench_report(const std::string& json_text) {
  auto parsed = json::parse(json_text);
  if (!parsed) return parsed.error();
  const json::Value& doc = parsed.value();
  if (!doc.is_object()) return malformed("document is not an object");

  BenchReport report;
  const json::Value* version = doc.find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return malformed("missing schema_version");
  }
  report.schema_version = static_cast<int>(version->as_number());
  if (report.schema_version != kBenchSchemaVersion) {
    return malformed("unsupported schema_version " +
                     std::to_string(report.schema_version) + " (want " +
                     std::to_string(kBenchSchemaVersion) + ")");
  }
  const json::Value* bench = doc.find("bench");
  if (bench == nullptr || !bench->is_string()) {
    return malformed("missing bench name");
  }
  report.bench = bench->as_string();

  const json::Value* cases = doc.find("cases");
  if (cases == nullptr || !cases->is_array()) {
    return malformed("missing cases array");
  }
  for (const json::Value& entry : cases->as_array()) {
    const json::Value* name = entry.find("name");
    const json::Value* stats = entry.find("wall_stats_us");
    if (name == nullptr || !name->is_string() || stats == nullptr) {
      return malformed("case missing name or wall_stats_us");
    }
    const json::Value* median = stats->find("median");
    const json::Value* mean = stats->find("mean");
    if (median == nullptr || !median->is_number() || mean == nullptr ||
        !mean->is_number()) {
      return malformed("case '" + name->as_string() +
                       "' missing median/mean");
    }
    BenchReport::Case c;
    c.name = name->as_string();
    c.median_us = median->as_number();
    c.mean_us = mean->as_number();
    const json::Value* reps = entry.find("reps");
    if (reps != nullptr && reps->is_number()) {
      c.reps = static_cast<int>(reps->as_number());
    }
    // Optional deterministic work-profile section.  Older BENCH files
    // (same schema version, pre-profiler harness) simply lack the key;
    // has_work_profile stays false and the exact gate skips the case.
    const json::Value* work = entry.find("work_profile");
    if (work != nullptr) {
      if (!work->is_object()) {
        return malformed("case '" + c.name +
                         "' work_profile is not an object");
      }
      c.has_work_profile = true;
      for (const auto& [key, value] : work->as_object()) {
        if (!value.is_number() || value.as_number() < 0.0) {
          return malformed("case '" + c.name + "' work_profile field '" +
                           key + "' is not a non-negative number");
        }
        c.work_profile[key] = static_cast<std::uint64_t>(value.as_number());
      }
    }
    report.cases.push_back(std::move(c));
  }
  return report;
}

Expected<BenchReport> load_bench_report_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error::make("io_error", "cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto report = load_bench_report(buffer.str());
  if (!report) {
    return Error::make(report.error().code,
                       path + ": " + report.error().message);
  }
  return report;
}

const char* case_status_name(CaseStatus status) {
  switch (status) {
    case CaseStatus::kOk: return "ok";
    case CaseStatus::kRegression: return "REGRESSION";
    case CaseStatus::kImprovement: return "improvement";
    case CaseStatus::kOnlyBaseline: return "VANISHED";
    case CaseStatus::kOnlyCandidate: return "new";
  }
  return "?";
}

Expected<ComparisonReport> compare_reports(const BenchReport& baseline,
                                           const BenchReport& candidate,
                                           double threshold) {
  if (!std::isfinite(threshold) || threshold <= 0.0 || threshold > 10.0) {
    return Error::make("bad_threshold",
                       "threshold must be a finite fraction in (0, 10]");
  }
  if (baseline.bench != candidate.bench) {
    return Error::make("bench_mismatch", "baseline is '" + baseline.bench +
                                             "' but candidate is '" +
                                             candidate.bench + "'");
  }

  ComparisonReport out;
  out.bench = baseline.bench;
  out.threshold = threshold;

  std::map<std::string, const BenchReport::Case*> candidate_by_name;
  for (const auto& c : candidate.cases) candidate_by_name[c.name] = &c;

  std::map<std::string, bool> seen_in_baseline;
  for (const auto& base : baseline.cases) {
    seen_in_baseline[base.name] = true;
    CaseComparison cmp;
    cmp.name = base.name;
    cmp.baseline_median_us = base.median_us;
    const auto it = candidate_by_name.find(base.name);
    if (it == candidate_by_name.end()) {
      cmp.status = CaseStatus::kOnlyBaseline;
      ++out.vanished;
    } else {
      cmp.candidate_median_us = it->second->median_us;
      cmp.ratio = base.median_us > 0.0
                      ? cmp.candidate_median_us / base.median_us
                      : (cmp.candidate_median_us > 0.0 ? HUGE_VAL : 1.0);
      if (cmp.candidate_median_us > base.median_us * (1.0 + threshold)) {
        cmp.status = CaseStatus::kRegression;
        ++out.regressions;
      } else if (cmp.candidate_median_us < base.median_us * (1.0 - threshold)) {
        cmp.status = CaseStatus::kImprovement;
        ++out.improvements;
      }
      // Exact work-profile gate, only when both sides recorded the section.
      // Counters are deterministic, so no tolerance applies: every delta is
      // an algorithmic change the author either intended (re-baseline) or
      // introduced by accident (this is the catch).
      if (base.has_work_profile && it->second->has_work_profile) {
        const auto& cand_work = it->second->work_profile;
        for (const auto& [field, base_value] : base.work_profile) {
          const auto wit = cand_work.find(field);
          WorkDiff diff;
          diff.case_name = base.name;
          diff.field = field;
          diff.baseline = base_value;
          if (wit == cand_work.end()) {
            diff.kind = WorkDiff::Kind::kOnlyBaseline;
          } else if (wit->second != base_value) {
            diff.kind = WorkDiff::Kind::kChanged;
            diff.candidate = wit->second;
          } else {
            continue;
          }
          ++out.work_mismatches;
          out.work_diffs.push_back(std::move(diff));
        }
        for (const auto& [field, cand_value] : cand_work) {
          if (base.work_profile.count(field) != 0) continue;
          WorkDiff diff;
          diff.case_name = base.name;
          diff.field = field;
          diff.kind = WorkDiff::Kind::kOnlyCandidate;
          diff.candidate = cand_value;
          ++out.work_new_fields;
          out.work_diffs.push_back(std::move(diff));
        }
      }
    }
    out.cases.push_back(std::move(cmp));
  }
  for (const auto& c : candidate.cases) {
    if (seen_in_baseline.count(c.name) != 0) continue;
    CaseComparison cmp;
    cmp.name = c.name;
    cmp.status = CaseStatus::kOnlyCandidate;
    cmp.candidate_median_us = c.median_us;
    ++out.new_cases;
    out.cases.push_back(std::move(cmp));
  }
  return out;
}

std::string ComparisonReport::render() const {
  TextTable table({"case", "baseline (us)", "candidate (us)", "delta",
                   "status"});
  for (const auto& c : cases) {
    std::string delta = "-";
    if (c.status != CaseStatus::kOnlyBaseline &&
        c.status != CaseStatus::kOnlyCandidate && c.ratio > 0.0 &&
        std::isfinite(c.ratio)) {
      const double pct = 100.0 * (c.ratio - 1.0);
      delta = (pct >= 0.0 ? "+" : "") + TextTable::num(pct, 1) + "%";
    }
    table.add_row(
        {c.name,
         c.status == CaseStatus::kOnlyCandidate
             ? "-"
             : TextTable::num(c.baseline_median_us, 1),
         c.status == CaseStatus::kOnlyBaseline
             ? "-"
             : TextTable::num(c.candidate_median_us, 1),
         delta, case_status_name(c.status)});
  }
  std::ostringstream out;
  out << "bench '" << bench << "' vs baseline (threshold +-"
      << TextTable::num(100.0 * threshold, 0) << "% on median wall time)\n"
      << table.render();
  // Exact work-profile diffs: every failing field is named so the author
  // can see *which* node's work moved, not just that something did.
  if (!work_diffs.empty()) {
    out << "work profile (exact gate):\n";
    for (const auto& d : work_diffs) {
      switch (d.kind) {
        case WorkDiff::Kind::kChanged:
          out << "  WORK CHANGED " << d.case_name << " " << d.field << ": "
              << d.baseline << " -> " << d.candidate << "\n";
          break;
        case WorkDiff::Kind::kOnlyBaseline:
          out << "  WORK VANISHED " << d.case_name << " " << d.field << ": "
              << d.baseline << " -> (absent)\n";
          break;
        case WorkDiff::Kind::kOnlyCandidate:
          out << "  work new " << d.case_name << " " << d.field << ": "
              << d.candidate << " (not gated)\n";
          break;
      }
    }
  }
  // New cases are called out in both verdicts so "exit 0 with new cases"
  // reads as a deliberate policy, not an oversight.
  if (failures() > 0) {
    out << "FAIL: " << regressions << " regression(s), " << vanished
        << " vanished case(s)";
    if (work_mismatches > 0) {
      out << ", " << work_mismatches << " work-profile mismatch(es)";
    }
    if (new_cases > 0) out << ", " << new_cases << " new case(s)";
    out << "\n";
  } else {
    out << "OK: no regressions (" << improvements << " improvement(s)";
    if (new_cases > 0) {
      out << ", " << new_cases << " new case(s) not gated";
    }
    if (work_new_fields > 0) {
      out << ", " << work_new_fields << " new work field(s) not gated";
    }
    out << ")\n";
  }
  return out.str();
}

}  // namespace flexwan::benchlib
