// The perf-regression gate: load two BENCH_*.json files (emitted by
// benchlib::Harness) and compare them case by case on median wall time.
//
// Policy (DESIGN.md "Benchmark telemetry"):
//   * candidate median >  baseline median * (1 + threshold)  -> regression
//   * candidate median <  baseline median * (1 - threshold)  -> improvement
//   * a case present in the baseline but missing from the candidate is a
//     gate failure too (a deleted case can hide a regression);
//   * a case only in the candidate is informational (new coverage): it is
//     counted in `new_cases`, rendered as "new" with an explicit callout in
//     the verdict line, and NEVER fails the gate — perf_diff exits 0 when
//     the only differences are new cases.
// The default threshold is 0.10 (±10 %).  `failures()` counts regressions
// plus vanished cases; the perf_diff tool exits non-zero when it is > 0.
//
// Work-profile section (DESIGN.md "Work-attribution profiling"): when a
// case carries a "work_profile" object on BOTH sides, its attributed-work
// counters are compared EXACTLY — they are deterministic, so any delta is
// a real algorithmic change, not noise.  A changed value or a key present
// only in the baseline is a gate failure (named in the rendered diff); a
// key only in the candidate is new instrumentation and stays informational,
// matching the new-case policy above.  Cases where either side lacks the
// section are skipped (older BENCH files predate the profiler).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/expected.h"

namespace flexwan::benchlib {

// The slice of a BENCH json document the gate needs.
struct BenchReport {
  int schema_version = 0;
  std::string bench;
  struct Case {
    std::string name;
    int reps = 0;
    double median_us = 0.0;
    double mean_us = 0.0;
    // Deterministic attributed-work counters ("work_profile" in the JSON).
    // has_work_profile distinguishes an empty section from a pre-profiler
    // file that lacks the key entirely (the latter is never gated).
    bool has_work_profile = false;
    std::map<std::string, std::uint64_t> work_profile;
  };
  std::vector<Case> cases;
};

// Parses a BENCH_*.json document (via obs/json.h).  Rejects documents
// whose schema_version is not kBenchSchemaVersion or that lack the
// required fields.
Expected<BenchReport> load_bench_report(const std::string& json_text);

// Convenience: read + parse a file.
Expected<BenchReport> load_bench_report_file(const std::string& path);

enum class CaseStatus {
  kOk,            // within ±threshold
  kRegression,    // candidate slower than baseline beyond threshold
  kImprovement,   // candidate faster than baseline beyond threshold
  kOnlyBaseline,  // case vanished from the candidate (gate failure)
  kOnlyCandidate  // new case, informational
};

const char* case_status_name(CaseStatus status);

struct CaseComparison {
  std::string name;
  CaseStatus status = CaseStatus::kOk;
  double baseline_median_us = 0.0;
  double candidate_median_us = 0.0;
  double ratio = 0.0;  // candidate / baseline; 0 when either side is absent
};

// One exact-gate difference in a case's work-profile section.
struct WorkDiff {
  enum class Kind {
    kChanged,       // both sides have the key, values differ (failure)
    kOnlyBaseline,  // key vanished from the candidate (failure)
    kOnlyCandidate  // new instrumentation (informational)
  };
  std::string case_name;
  std::string field;  // flattened key, e.g. "(root);planner.plan;topo.ksp.calls"
  Kind kind = Kind::kChanged;
  std::uint64_t baseline = 0;
  std::uint64_t candidate = 0;
};

struct ComparisonReport {
  std::string bench;
  double threshold = 0.10;
  std::vector<CaseComparison> cases;  // baseline order, then new cases

  int regressions = 0;     // kRegression count
  int vanished = 0;        // kOnlyBaseline count
  int improvements = 0;    // kImprovement count
  int new_cases = 0;       // kOnlyCandidate count (informational, never fails)

  // Exact work-profile gate: deterministic counters, zero tolerance.
  std::vector<WorkDiff> work_diffs;  // per case: failures, then new fields
  int work_mismatches = 0;   // kChanged + kOnlyBaseline (gate failures)
  int work_new_fields = 0;   // kOnlyCandidate (informational)

  int failures() const { return regressions + vanished + work_mismatches; }

  // Human-readable comparison table plus a one-line verdict.
  std::string render() const;
};

// Compares case-by-case on median wall time.  Errors when the two reports
// describe different benches (comparing fig12 against fig15 is never
// meaningful) or the threshold is not a finite value in (0, 10].
Expected<ComparisonReport> compare_reports(const BenchReport& baseline,
                                           const BenchReport& candidate,
                                           double threshold = 0.10);

}  // namespace flexwan::benchlib
