#include "controller/centralized.h"

namespace flexwan::controller {

CentralizedController::CentralizedController(const topology::Network& net)
    : net_(&net) {}

Expected<DeploymentStats> CentralizedController::deploy(Fleet& fleet) const {
  DeploymentStats stats;
  auto& netconf = fleet.netconf();
  const auto& deployed = fleet.deployed();
  for (std::size_t i = 0; i < deployed.size(); ++i) {
    const auto& dw = deployed[i];
    const auto& mode = dw.wavelength.mode;
    const auto& range = dw.wavelength.range;

    // Transponder pair: identical channel configuration at both ends.
    for (const std::string& ip : {dw.tx_ip, dw.rx_ip}) {
      const auto doc = devmodel::make_transponder_config(ip, mode, range);
      ++stats.config_rpcs;
      const auto r = netconf.edit_config(doc);
      if (!r) {
        ++stats.failed_rpcs;
        return Error::make("deploy_failed",
                           ip + ": " + r.error().message);
      }
    }
    // Every WSS filter port along the light path (add, per-hop egress
    // degree, drop): a passband equal to the channel.
    for (const auto& target : dw.wss_targets) {
      const auto doc = devmodel::make_wss_config(target.device->info().ip,
                                                 target.port, range);
      ++stats.config_rpcs;
      const auto r = netconf.edit_config(doc);
      if (!r) {
        ++stats.failed_rpcs;
        return Error::make("deploy_failed", target.device->info().ip + ": " +
                                                r.error().message);
      }
    }
    ++stats.wavelengths_configured;
  }
  return stats;
}

}  // namespace flexwan::controller
