// The centralized optical controller (paper §4.3-§4.4).
//
// Holds the holistic network view and configures every device along each
// wavelength's optical path with the *same* spectrum parameters through the
// vendor-agnostic standard device model: the transponder pair gets the
// channel, every traversed site's WSS gets an identical passband.  Channel
// consistency and conflict-freedom hold by construction — the audit after
// deployment confirms zero issues, the paper's §4.3 production result.
#pragma once

#include "controller/fleet.h"

namespace flexwan::controller {

struct DeploymentStats {
  int wavelengths_configured = 0;
  int config_rpcs = 0;
  int failed_rpcs = 0;
};

class CentralizedController {
 public:
  explicit CentralizedController(const topology::Network& net);

  // Pushes the plan's configuration to every device of the fleet.
  Expected<DeploymentStats> deploy(Fleet& fleet) const;

 private:
  const topology::Network* net_;
};

}  // namespace flexwan::controller
