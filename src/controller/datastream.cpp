#include "controller/datastream.h"

#include <algorithm>

namespace flexwan::controller {

DataStream::DataStream(std::size_t history_per_series)
    : history_(history_per_series) {}

void DataStream::ingest(TelemetrySample sample) {
  auto& series = series_[{sample.device_ip, sample.key}];
  series.samples.push_back(std::move(sample));
  while (series.samples.size() > history_) {
    series.samples.pop_front();
  }
}

std::optional<double> DataStream::latest(const std::string& ip,
                                         const std::string& key) const {
  const auto it = series_.find({ip, key});
  if (it == series_.end() || it->second.samples.empty()) return std::nullopt;
  return it->second.samples.back().value;
}

void DataStream::watch_fiber(topology::FiberId f, std::string rx_device_ip) {
  watched_fibers_[f] = std::move(rx_device_ip);
}

std::vector<FiberCutAlarm> DataStream::detect_cuts(double threshold_db) const {
  std::vector<FiberCutAlarm> alarms;
  for (const auto& [fiber, ip] : watched_fibers_) {
    const auto it = series_.find({ip, "rx-power-dbm"});
    if (it == series_.end() || it->second.samples.size() < 2) continue;
    const auto& samples = it->second.samples;
    const double peak =
        std::max_element(samples.begin(), samples.end(),
                         [](const auto& a, const auto& b) {
                           return a.value < b.value;
                         })
            ->value;
    const auto& last = samples.back();
    if (peak - last.value > threshold_db) {
      alarms.push_back(FiberCutAlarm{fiber, last.timestamp_s,
                                     peak - last.value});
    }
  }
  return alarms;
}

void DataStream::watch_transponder(std::string rx_ip) {
  watched_transponders_.push_back(std::move(rx_ip));
}

std::vector<DegradationAlarm> DataStream::detect_degradations(
    double ber_threshold) const {
  std::vector<DegradationAlarm> alarms;
  for (const auto& ip : watched_transponders_) {
    const auto it = series_.find({ip, "rx-ber"});
    if (it == series_.end() || it->second.samples.empty()) continue;
    const auto& last = it->second.samples.back();
    if (last.value > ber_threshold) {
      alarms.push_back(DegradationAlarm{ip, last.timestamp_s, last.value});
    }
  }
  return alarms;
}

}  // namespace flexwan::controller
