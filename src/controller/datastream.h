// Data-stream module (paper §4.4): one-second-granularity collection of
// optical-layer telemetry, and real-time fiber-cut detection from the
// transmitted/received power at the two terminal devices of each fiber.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "topology/graph.h"

namespace flexwan::controller {

// One telemetry sample from one device.
struct TelemetrySample {
  std::string device_ip;
  std::string key;       // e.g. "rx-power-dbm"
  double value = 0.0;
  long timestamp_s = 0;
};

// A detected optical event.
struct FiberCutAlarm {
  topology::FiberId fiber = -1;
  long detected_at_s = 0;
  double power_drop_db = 0.0;
};

// A wavelength whose received signal degraded before outright failure —
// the ephemeral events the one-second collection granularity exists to
// catch (§4.4; OpTel [7]).
struct DegradationAlarm {
  std::string device_ip;  // receiving transponder
  long detected_at_s = 0;
  double rx_ber = 0.0;
};

// The online telemetry store: a bounded ring per (device, key) series, plus
// the fiber-cut detector the Optical TopoMgr subscribes to.
class DataStream {
 public:
  explicit DataStream(std::size_t history_per_series = 64);

  void ingest(TelemetrySample sample);

  // Latest value of a series, if any samples exist.
  std::optional<double> latest(const std::string& ip,
                               const std::string& key) const;

  // Registers the rx-power series watched for fiber `f`: the receiving
  // terminal device at the far end of the fiber.
  void watch_fiber(topology::FiberId f, std::string rx_device_ip);

  // A fiber is declared cut when its watched rx power drops by more than
  // `threshold_db` relative to the series' historical maximum.
  std::vector<FiberCutAlarm> detect_cuts(double threshold_db = 20.0) const;

  // Registers a receiving transponder whose "rx-ber" series is watched.
  void watch_transponder(std::string rx_ip);

  // Transponders whose latest post-FEC BER exceeds `ber_threshold`: the
  // signal still arrives (the fiber is not cut) but no longer decodes
  // error-free — re-modulation or re-routing is needed.
  std::vector<DegradationAlarm> detect_degradations(
      double ber_threshold = 0.0) const;

  std::size_t series_count() const { return series_.size(); }

 private:
  struct Series {
    std::deque<TelemetrySample> samples;
  };
  std::size_t history_;
  std::map<std::pair<std::string, std::string>, Series> series_;
  std::map<topology::FiberId, std::string> watched_fibers_;
  std::vector<std::string> watched_transponders_;
};

}  // namespace flexwan::controller
