#include "controller/distributed.h"

#include <map>
#include <vector>

#include "spectrum/occupancy.h"

namespace flexwan::controller {

namespace {

// Rounds a passband request inward to a legacy grid: start up, end down.
// Returns an empty range when the grid swallows the channel entirely.
spectrum::Range clip_to_grid(const spectrum::Range& request, int quantum) {
  if (quantum <= 1) return request;
  const int start = ((request.first + quantum - 1) / quantum) * quantum;
  const int end = (request.end() / quantum) * quantum;
  return spectrum::Range{start, std::max(0, end - start)};
}

}  // namespace

DistributedControllers::DistributedControllers(const topology::Network& net)
    : net_(&net) {}

Expected<DistributedStats> DistributedControllers::deploy(Fleet& fleet) const {
  DistributedStats stats;
  auto& netconf = fleet.netconf();
  auto& deployed = fleet.wavelengths();

  // Group wavelengths by owning vendor (the vendor of their IP link).
  std::map<std::string, std::vector<std::size_t>> by_vendor;
  for (std::size_t i = 0; i < deployed.size(); ++i) {
    by_vendor[fleet.link_vendor(deployed[i].wavelength.link)].push_back(i);
  }
  stats.vendor_controllers = static_cast<int>(by_vendor.size());

  for (auto& [vendor, indices] : by_vendor) {
    // The vendor controller's *local* spectrum view: only its wavelengths.
    std::vector<spectrum::Occupancy> local_view(
        static_cast<std::size_t>(net_->optical.fiber_count()),
        spectrum::Occupancy(spectrum::kCBandPixels));

    for (std::size_t i : indices) {
      auto& dw = deployed[i];
      const auto& mode = dw.wavelength.mode;
      // Vendor-local first-fit: ignorant of other vendors' assignments.
      const auto fit =
          planning::common_first_fit(local_view, dw.path, mode.pixels());
      if (!fit) continue;  // local spectrum exhausted: wavelength dark
      for (topology::FiberId f : dw.path.fibers) {
        auto r = local_view[static_cast<std::size_t>(f)].reserve(*fit);
        (void)r;
      }
      dw.wavelength.range = *fit;  // what this vendor actually configured

      for (const std::string& ip : {dw.tx_ip, dw.rx_ip}) {
        const auto doc = devmodel::make_transponder_config(ip, mode, *fit);
        ++stats.config_rpcs;
        const auto r = netconf.edit_config(doc);
        if (!r) {
          return Error::make("deploy_failed", ip + ": " + r.error().message);
        }
      }
      for (const auto& target : dw.wss_targets) {
        auto& wss = *target.device;
        // Legacy fixed-grid sites cannot represent off-grid passbands; the
        // work order gets clipped inward to whatever the equipment accepts.
        spectrum::Range pb = *fit;
        if (wss.grid_quantum_pixels() > 1) {
          pb = clip_to_grid(pb, wss.grid_quantum_pixels());
          if (pb != *fit) ++stats.grid_clipped_passbands;
        }
        if (pb.count <= 0) continue;  // channel vanished on this grid
        const auto doc =
            devmodel::make_wss_config(wss.info().ip, target.port, pb);
        ++stats.config_rpcs;
        const auto r = netconf.edit_config(doc);
        if (!r) {
          return Error::make("deploy_failed",
                             wss.info().ip + ": " + r.error().message);
        }
      }
      ++stats.wavelengths_configured;
    }
  }
  return stats;
}

}  // namespace flexwan::controller
