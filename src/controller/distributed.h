// The distributed, per-vendor control baseline (paper §3.4 Challenge 1).
//
// Before FlexWAN, each vendor ran its own controller over its own devices
// with no holistic view.  Two realistic failure modes follow:
//
//  * Channel conflict — each vendor controller assigns spectrum for its own
//    links by first-fit over *its own* wavelengths only; wavelengths of
//    different vendors sharing a fiber can land on overlapping pixels.
//  * Channel inconsistency — a wavelength traverses optical sites owned by
//    other vendors whose legacy WSS equipment only places passbands on its
//    native rigid grid: vendorB rounds the request inward to its 75 GHz
//    grid (clipping the channel), vendorC to its 50 GHz grid.  A clipped
//    passband no longer covers the signal.
//
// The deployment succeeds RPC-wise — the devices accept everything they are
// given — but the post-deployment audit reports the spectrum issues the
// centralized controller eliminates (§4.3).
#pragma once

#include "controller/fleet.h"

namespace flexwan::controller {

struct DistributedStats {
  int vendor_controllers = 0;
  int wavelengths_configured = 0;
  int config_rpcs = 0;
  int grid_clipped_passbands = 0;  // inward-rounded by legacy equipment
};

class DistributedControllers {
 public:
  explicit DistributedControllers(const topology::Network& net);

  // Each vendor controller configures its own links' wavelengths
  // independently, assigning spectrum with a vendor-local view.
  Expected<DistributedStats> deploy(Fleet& fleet) const;

 private:
  const topology::Network* net_;
};

}  // namespace flexwan::controller
