#include "controller/fleet.h"

#include <map>

namespace flexwan::controller {

namespace {

const transponder::Catalog& catalog_for_scheme(const std::string& scheme) {
  if (scheme == "RADWAN") return transponder::bvt_radwan();
  if (scheme == "100G-WAN") return transponder::fixed_grid_100g();
  return transponder::svt_flexwan();
}

// Legacy fixed-grid quantum of a vendor's OLS equipment (pixels).
int legacy_grid_quantum(const std::string& vendor) {
  if (vendor == "vendorB") return 6;  // 75 GHz grid
  if (vendor == "vendorC") return 4;  // 50 GHz grid
  return 1;                            // vendorA ships pixel-wise LCoS
}

std::string vendor_at(VendorAssignment assignment, int index) {
  if (assignment == VendorAssignment::kSingleVendor) return "vendorA";
  const auto& vendors = devmodel::known_vendors();
  return vendors[static_cast<std::size_t>(index) % vendors.size()];
}

}  // namespace

Fleet::Fleet(const topology::Network& net, const planning::Plan& plan,
             VendorAssignment assignment, bool pixel_wise_ols) {
  const auto& catalog = catalog_for_scheme(plan.scheme());
  const bool spacing_variable = plan.scheme() == "FlexWAN";
  const double fixed_spacing = plan.scheme() == "100G-WAN" ? 50.0 : 75.0;

  // ROADM anatomy per site: one add/drop WSS plus a line-degree WSS per
  // attached fiber, each with enough filter ports for every wavelength.
  const int ports = plan.transponder_count() + 4;
  for (topology::NodeId n = 0; n < net.optical.node_count(); ++n) {
    const std::string vendor = vendor_at(assignment, n);
    const int quantum = pixel_wise_ols ? 1 : legacy_grid_quantum(vendor);
    const std::string model = quantum == 1 ? "WSS-LCoS" : "WSS-FixGrid";
    add_drop_index_.push_back(wss_.size());
    wss_.emplace_back(
        hardware::DeviceInfo{"10.1." + std::to_string(n) + ".1", vendor,
                             model + "-AD"},
        ports, quantum);
    auto r = netconf_.register_device(&wss_.back());
    (void)r;  // IPs are unique by construction
    int degree = 2;  // .1 is the add/drop; degrees start at .2
    for (topology::FiberId f : net.optical.incident(n)) {
      degree_index_[{n, f}] = wss_.size();
      wss_.emplace_back(
          hardware::DeviceInfo{"10.1." + std::to_string(n) + "." +
                                   std::to_string(degree++),
                               vendor, model + "-DEG"},
          ports, quantum);
      auto rd = netconf_.register_device(&wss_.back());
      (void)rd;
    }
  }

  // Vendor per IP link (that vendor supplies the link's transponders).
  link_vendors_.resize(static_cast<std::size_t>(net.ip.link_count()));
  for (topology::LinkId l = 0; l < net.ip.link_count(); ++l) {
    link_vendors_[static_cast<std::size_t>(l)] = vendor_at(assignment, l);
  }

  // Transponder pair per planned wavelength; filter ports allocated along
  // each light path: add WSS, per-hop egress degree WSS, drop WSS.
  std::vector<int> next_port(wss_.size(), 0);
  int index = 0;
  for (const auto& lp : plan.links()) {
    for (const auto& wl : lp.wavelengths) {
      const auto& path = lp.paths[static_cast<std::size_t>(wl.path_index)];
      const std::string vendor =
          link_vendors_[static_cast<std::size_t>(lp.link)];
      DeployedWavelength dw;
      dw.wavelength = wl;
      dw.path = path;
      dw.tx_ip = "10.2." + std::to_string(index) + ".1";
      dw.rx_ip = "10.2." + std::to_string(index) + ".2";
      const hardware::TransponderDevice::Capabilities caps{
          &catalog, spacing_variable, fixed_spacing};
      transponders_.emplace_back(
          hardware::DeviceInfo{dw.tx_ip, vendor, catalog.name() + "-TXP"},
          caps);
      dw.tx = &transponders_.back();
      transponders_.emplace_back(
          hardware::DeviceInfo{dw.rx_ip, vendor, catalog.name() + "-TXP"},
          caps);
      dw.rx = &transponders_.back();
      auto r1 = netconf_.register_device(dw.tx);
      auto r2 = netconf_.register_device(dw.rx);
      (void)r1;
      (void)r2;

      auto claim = [&](std::size_t device_index,
                       topology::NodeId node) {
        dw.wss_targets.push_back(
            WssTarget{&wss_[device_index],
                      next_port[device_index]++, node});
      };
      if (!path.fibers.empty()) {
        claim(add_drop_index_[static_cast<std::size_t>(path.nodes.front())],
              path.nodes.front());
        for (std::size_t h = 0; h < path.fibers.size(); ++h) {
          claim(degree_index_.at({path.nodes[h], path.fibers[h]}),
                path.nodes[h]);
        }
        claim(add_drop_index_[static_cast<std::size_t>(path.nodes.back())],
              path.nodes.back());
      }
      wavelengths_.push_back(std::move(dw));
      ++index;
    }
  }
}

hardware::WssDevice& Fleet::add_drop_wss(topology::NodeId node) {
  return wss_[add_drop_index_[static_cast<std::size_t>(node)]];
}

const hardware::WssDevice& Fleet::add_drop_wss(topology::NodeId node) const {
  return wss_[add_drop_index_[static_cast<std::size_t>(node)]];
}

hardware::WssDevice& Fleet::degree_wss(topology::NodeId node,
                                       topology::FiberId fiber) {
  return wss_[degree_index_.at({node, fiber})];
}

const hardware::WssDevice& Fleet::degree_wss(topology::NodeId node,
                                             topology::FiberId fiber) const {
  return wss_[degree_index_.at({node, fiber})];
}

AuditReport audit_fleet(const Fleet& fleet, const topology::Network& net) {
  AuditReport report;
  const auto& deployed = fleet.deployed();
  report.wavelengths = static_cast<int>(deployed.size());

  // Channel consistency: the spectrum each transmitter actually emits must
  // be covered by the passband of *its own filter port* at every WSS on the
  // light path (Fig. 9a) — per-port, so a same-spectrum wavelength on
  // another port cannot mask a misconfiguration.
  for (const auto& dw : deployed) {
    if (dw.tx == nullptr || !dw.tx->configured()) {
      ++report.unconfigured;
      continue;
    }
    const spectrum::Range emitted = dw.tx->range();
    for (const auto& target : dw.wss_targets) {
      const auto pb = target.device->passband(target.port);
      if (!pb || !pb->covers(emitted)) {
        ++report.inconsistencies;
        break;
      }
    }
  }

  // Channel conflict: emitted spectra overlapping in a shared fiber (Fig. 9b).
  std::map<topology::FiberId, std::vector<spectrum::Range>> per_fiber;
  for (const auto& dw : deployed) {
    if (dw.tx == nullptr || !dw.tx->configured()) continue;
    for (topology::FiberId f : dw.path.fibers) {
      per_fiber[f].push_back(dw.tx->range());
    }
  }
  for (const auto& [fiber, ranges] : per_fiber) {
    for (std::size_t a = 0; a < ranges.size(); ++a) {
      for (std::size_t b = a + 1; b < ranges.size(); ++b) {
        if (ranges[a].overlaps(ranges[b])) ++report.conflicts;
      }
    }
  }
  (void)net;
  return report;
}

}  // namespace flexwan::controller
