// The optical fleet: every simulated device of a deployed backbone.
//
// Materializes the hardware a plan implies — a transponder pair per
// wavelength and, at each ROADM site, an add/drop WSS plus one line-degree
// WSS per attached fiber (the broadcast-and-select ROADM anatomy: what
// enters a fiber is filtered by that degree's WSS, paper Fig. 1/8).
// Assigns vendors, registers all devices with the NETCONF service, and
// offers the spectrum audit the paper runs in production (§4.3: "zero
// spectrum inconsistency and conflict").
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "devmodel/netconf.h"
#include "hardware/devices.h"
#include "planning/plan.h"
#include "topology/builders.h"

namespace flexwan::controller {

// How the fleet assigns vendors to devices: production backbones mix
// vendors (vendor diversity prevents monopolies and concurrent failures, §9).
enum class VendorAssignment {
  kSingleVendor,   // everything vendorA
  kPerRegionMixed, // round-robin vendors across optical sites and links
};

// One WSS filter port a wavelength needs configured: its config target.
struct WssTarget {
  hardware::WssDevice* device = nullptr;
  int port = -1;
  topology::NodeId node = -1;  // site the device sits at
};

// One deployed wavelength and the device identities serving it.
struct DeployedWavelength {
  planning::Wavelength wavelength;
  topology::Path path;   // resolved optical path
  std::string tx_ip;
  std::string rx_ip;
  hardware::TransponderDevice* tx = nullptr;
  hardware::TransponderDevice* rx = nullptr;
  // Ordered WSS filter ports along the light path: the add WSS at the
  // source, the egress line-degree WSS feeding each fiber, and the drop WSS
  // at the destination.  The centralized controller configures exactly
  // these; the audit and the link simulation check exactly these.
  std::vector<WssTarget> wss_targets;
};

// Owns all simulated devices for one deployment.  Device objects live in
// deques so registered pointers stay stable.
class Fleet {
 public:
  // Builds devices for `plan` on `net`.  `pixel_wise_ols` selects FlexWAN's
  // spectrum-sliced OLS (grid quantum 1) for every WSS; when false, each
  // vendor's WSS keeps its legacy grid quantum (vendorB 75 GHz, vendorC
  // 50 GHz) — the pre-FlexWAN world the distributed baseline operates in.
  Fleet(const topology::Network& net, const planning::Plan& plan,
        VendorAssignment assignment, bool pixel_wise_ols);

  devmodel::NetconfService& netconf() { return netconf_; }
  const devmodel::NetconfService& netconf() const { return netconf_; }

  std::vector<DeployedWavelength>& wavelengths() { return wavelengths_; }
  const std::vector<DeployedWavelength>& deployed() const {
    return wavelengths_;
  }

  // Add/drop WSS at an optical site.
  hardware::WssDevice& add_drop_wss(topology::NodeId node);
  const hardware::WssDevice& add_drop_wss(topology::NodeId node) const;

  // Line-degree WSS feeding `fiber` at `node` (node must touch the fiber).
  hardware::WssDevice& degree_wss(topology::NodeId node,
                                  topology::FiberId fiber);
  const hardware::WssDevice& degree_wss(topology::NodeId node,
                                        topology::FiberId fiber) const;

  // Vendor owning an IP link's transponders (by the link's id).
  const std::string& link_vendor(topology::LinkId link) const {
    return link_vendors_[static_cast<std::size_t>(link)];
  }

  int transponder_count() const {
    return static_cast<int>(transponders_.size());
  }
  int wss_count() const { return static_cast<int>(wss_.size()); }

 private:
  std::deque<hardware::TransponderDevice> transponders_;
  std::deque<hardware::WssDevice> wss_;
  // Device indices: add/drop per node, line degree per (node, fiber).
  std::vector<std::size_t> add_drop_index_;
  std::map<std::pair<topology::NodeId, topology::FiberId>, std::size_t>
      degree_index_;
  std::vector<std::string> link_vendors_;
  std::vector<DeployedWavelength> wavelengths_;
  devmodel::NetconfService netconf_;
};

// Result of the production spectrum audit.
struct AuditReport {
  int wavelengths = 0;
  int inconsistencies = 0;  // a filter port fails to cover the channel
  int conflicts = 0;        // two channels overlap in one fiber
  int unconfigured = 0;     // transponders never configured
  bool clean() const {
    return inconsistencies == 0 && conflicts == 0 && unconfigured == 0;
  }
};

// Audits the fleet's *device state* (not the plan): what spectrum did each
// transponder actually get, and does each of its WSS filter ports cover it?
AuditReport audit_fleet(const Fleet& fleet,
                        const topology::Network& net);

}  // namespace flexwan::controller
