#include "controller/operations.h"

#include <vector>

#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "planning/plan.h"
#include "spectrum/occupancy.h"

namespace flexwan::controller {

namespace {

// Rebuilds per-fiber occupancy from the fleet's deployed wavelengths,
// optionally ignoring one wavelength (the one being re-tuned).
std::vector<spectrum::Occupancy> occupancy_from_fleet(
    const Fleet& fleet, const topology::Network& net,
    std::size_t ignore_index) {
  std::vector<spectrum::Occupancy> fibers(
      static_cast<std::size_t>(net.optical.fiber_count()),
      spectrum::Occupancy(spectrum::kCBandPixels));
  const auto& deployed = fleet.deployed();
  for (std::size_t i = 0; i < deployed.size(); ++i) {
    if (i == ignore_index) continue;
    for (topology::FiberId f : deployed[i].path.fibers) {
      auto r = fibers[static_cast<std::size_t>(f)].reserve(
          deployed[i].wavelength.range);
      (void)r;  // a deployed plan is conflict-free by construction
    }
  }
  return fibers;
}

}  // namespace

Expected<EvolutionResult> evolve_channel(Fleet& fleet,
                                         const topology::Network& net,
                                         std::size_t index,
                                         const transponder::Mode& new_mode) {
  OBS_SPAN("controller.evolve_channel");
  OBS_COUNTER_ADD("controller.evolve.calls", 1);
  if (index >= fleet.deployed().size()) {
    return Error::make("bad_index", "no deployed wavelength " +
                                        std::to_string(index));
  }
  auto& dw = fleet.wavelengths()[index];
  EvolutionResult result;
  result.old_mode = dw.wavelength.mode;
  result.old_range = dw.wavelength.range;
  result.new_mode = new_mode;

  // Find room for the wider channel with every *other* wavelength pinned.
  const auto fibers = occupancy_from_fleet(fleet, net, index);
  const auto fit =
      planning::common_first_fit(fibers, dw.path, new_mode.pixels());
  if (!fit) {
    return Error::make("no_spectrum",
                       "no contiguous block of " +
                           std::to_string(new_mode.pixels()) +
                           " pixels on the path");
  }
  result.new_range = *fit;

  // Reconfigure the transponder pair, then every WSS filter port on the
  // light path — the same code path as a fresh deployment, which is the
  // point: evolution is just configuration.
  auto& netconf = fleet.netconf();
  for (const std::string& ip : {dw.tx_ip, dw.rx_ip}) {
    const auto r = netconf.edit_config(
        devmodel::make_transponder_config(ip, new_mode, *fit));
    if (!r) return r.error();
    ++result.reconfigured_devices;
  }
  for (const auto& target : dw.wss_targets) {
    const auto r = netconf.edit_config(devmodel::make_wss_config(
        target.device->info().ip, target.port, *fit));
    if (!r) return r.error();
    ++result.reconfigured_devices;
  }
  dw.wavelength.mode = new_mode;
  dw.wavelength.range = *fit;
  OBS_COUNTER_ADD("controller.evolve.reconfigured_devices",
                  result.reconfigured_devices);
  return result;
}

namespace {

// The wavelength's first WSS target at `node`, or null.
const WssTarget* target_at(const Fleet& fleet, std::size_t index,
                           topology::NodeId node) {
  for (const auto& target : fleet.deployed()[index].wss_targets) {
    if (target.node == node) return &target;
  }
  return nullptr;
}

}  // namespace

Expected<bool> inject_misconnection(Fleet& fleet, std::size_t index,
                                    topology::NodeId node, int wrong_port) {
  if (index >= fleet.deployed().size()) {
    return Error::make("bad_index", "no deployed wavelength " +
                                        std::to_string(index));
  }
  const WssTarget* target = target_at(fleet, index, node);
  if (target == nullptr) {
    return Error::make("not_on_path", "wavelength does not traverse node " +
                                          std::to_string(node));
  }
  // The fibre pair now lands on `wrong_port`; whatever passband the right
  // port held no longer filters this signal.
  auto cleared = target->device->clear_passband(target->port);
  if (!cleared) return cleared;
  // The wrong port keeps its previous (unset or foreign) passband, so the
  // signal is clipped — exactly the audit's inconsistency condition.
  (void)wrong_port;
  return true;
}

Expected<bool> recover_misconnection(Fleet& fleet, std::size_t index,
                                     topology::NodeId node, int wrong_port) {
  if (index >= fleet.deployed().size()) {
    return Error::make("bad_index", "no deployed wavelength " +
                                        std::to_string(index));
  }
  const WssTarget* target = target_at(fleet, index, node);
  if (target == nullptr) {
    return Error::make("not_on_path", "wavelength does not traverse node " +
                                          std::to_string(node));
  }
  auto& dw = fleet.wavelengths()[index];
  // Zero-touch: push the wavelength's spectrum onto the port the cable
  // actually landed on, and track that port as the wavelength's target from
  // now on.  No site visit, one NETCONF RPC.
  const auto r = fleet.netconf().edit_config(devmodel::make_wss_config(
      target->device->info().ip, wrong_port, dw.wavelength.range));
  if (!r) return r;
  for (auto& t : dw.wss_targets) {
    if (&t == target) {
      t.port = wrong_port;
      break;
    }
  }
  return true;
}

ControllerCluster::ControllerCluster(const topology::Network& net,
                                     int replicas)
    : net_(&net), replicas_(replicas) {}

Expected<ReplicatedDeployment> ControllerCluster::deploy(
    Fleet& fleet, const std::vector<int>& fail_after_rpcs) const {
  OBS_SPAN("controller.deploy");
  ReplicatedDeployment result;
  CentralizedController controller(*net_);
  for (int replica = 0; replica < replicas_; ++replica) {
    ++result.attempts;
    OBS_COUNTER_ADD("controller.deploy.attempts", 1);
    const int budget =
        static_cast<std::size_t>(replica) < fail_after_rpcs.size()
            ? fail_after_rpcs[static_cast<std::size_t>(replica)]
            : -1;  // this leader survives
    if (budget < 0) {
      const auto stats = controller.deploy(fleet);
      if (!stats) return stats.error();
      result.total_rpcs += stats->config_rpcs;
      OBS_COUNTER_ADD("controller.deploy.rpcs", stats->config_rpcs);
      result.completed = true;
      if (obs::events_enabled()) {
        obs::emit_event(obs::make_event("controller", obs::Severity::kInfo,
                                        "controller.deploy.done")
                            .with("attempts", result.attempts)
                            .with("failovers", result.failovers)
                            .with("rpcs", result.total_rpcs));
      }
      return result;
    }
    // Leader crashes after `budget` RPCs: replay the deployment partially.
    // edit_config is idempotent, so the half-applied state is harmless — the
    // next leader simply starts over.
    int issued = 0;
    auto& netconf = fleet.netconf();
    for (std::size_t i = 0; i < fleet.deployed().size() && issued < budget;
         ++i) {
      const auto& dw = fleet.deployed()[i];
      for (const std::string& ip : {dw.tx_ip, dw.rx_ip}) {
        if (issued >= budget) break;
        auto r = netconf.edit_config(devmodel::make_transponder_config(
            ip, dw.wavelength.mode, dw.wavelength.range));
        if (!r) return r.error();
        ++issued;
      }
      for (const auto& target : dw.wss_targets) {
        if (issued >= budget) break;
        auto r = netconf.edit_config(devmodel::make_wss_config(
            target.device->info().ip, target.port, dw.wavelength.range));
        if (!r) return r.error();
        ++issued;
      }
    }
    result.total_rpcs += issued;
    OBS_COUNTER_ADD("controller.deploy.rpcs", issued);
    ++result.failovers;
    // Failovers are the control plane's retries: a standby replaying the
    // deployment a dead leader left half-finished.
    OBS_COUNTER_ADD("controller.deploy.failovers", 1);
    if (obs::events_enabled()) {
      obs::emit_event(obs::make_event("controller", obs::Severity::kWarn,
                                      "controller.deploy.failover")
                          .with("replica", replica)
                          .with("rpcs_before_crash", issued));
    }
  }
  if (obs::events_enabled()) {
    obs::emit_event(obs::make_event("controller", obs::Severity::kError,
                                    "controller.deploy.exhausted")
                        .with("replicas", replicas_));
  }
  return Error::make("cluster_exhausted",
                     "every controller replica failed mid-deployment");
}

}  // namespace flexwan::controller
