// Operational procedures from two years of production experience (§9):
//
//  * Smooth optical backbone evolution — migrate a live wavelength to a
//    wider channel spacing (e.g. when adopting more aggressive transponders)
//    by re-tuning the SVT and re-slicing the OLS passbands, instead of
//    replacing every fixed-grid box in the line system.
//  * Zero-touch misconnection recovery — when a transponder is cabled into
//    the wrong MUX filter port, reconfigure that port's passband to the
//    wavelength's spectrum instead of rolling a truck.
//  * Control-plane fault tolerance (§4.4) — the controller runs as
//    geo-redundant replicas; configuration is idempotent, so a standby can
//    replay a deployment that a failed leader left half-finished.
#pragma once

#include "controller/centralized.h"
#include "controller/fleet.h"

namespace flexwan::controller {

// --- smooth evolution -------------------------------------------------------

struct EvolutionResult {
  transponder::Mode old_mode;
  transponder::Mode new_mode;
  spectrum::Range old_range;
  spectrum::Range new_range;
  int reconfigured_devices = 0;
};

// Re-tunes deployed wavelength `index` to `new_mode`: finds a contiguous
// spectrum block free on every fiber of its path (considering all other
// deployed wavelengths), then reconfigures the transponder pair and every
// traversed WSS through NETCONF.  Fails with "no_spectrum" when the new
// spacing does not fit, or with the device's error when the hardware cannot
// realise the mode (e.g. a rigid BVT).  The paper's point: on FlexWAN this
// is a pure software operation.
Expected<EvolutionResult> evolve_channel(Fleet& fleet,
                                         const topology::Network& net,
                                         std::size_t index,
                                         const transponder::Mode& new_mode);

// --- misconnection recovery -------------------------------------------------

// Simulates the §9 misconnection: wavelength `index`'s signal enters filter
// port `wrong_port` at `node` instead of its allocated port (the allocated
// port's passband is cleared — nothing points at the fibre pair any more).
// After this, the fleet audit reports a channel inconsistency.
Expected<bool> inject_misconnection(Fleet& fleet, std::size_t index,
                                    topology::NodeId node, int wrong_port);

// Zero-touch recovery: configure `wrong_port`'s passband to the wavelength's
// spectrum through NETCONF — possible precisely because the spectrum-sliced
// OLS supports any spectrum on any port.  The audit is clean again.
Expected<bool> recover_misconnection(Fleet& fleet, std::size_t index,
                                     topology::NodeId node, int wrong_port);

// --- replicated control plane ------------------------------------------------

struct ReplicatedDeployment {
  int attempts = 0;           // leaders that started the deployment
  int failovers = 0;          // leaders that died mid-push
  int total_rpcs = 0;         // across all attempts (replays included)
  bool completed = false;
};

// A cluster of controller replicas deployed in geo-disjoint regions.  The
// leader pushes configuration; if it crashes mid-deployment a standby takes
// over and replays from the start — correctness rests on edit-config being
// idempotent, which the standard device model guarantees.
class ControllerCluster {
 public:
  ControllerCluster(const topology::Network& net, int replicas);

  int replica_count() const { return replicas_; }

  // Deploys `fleet`'s plan.  `fail_after_rpcs` lists, per successive leader,
  // how many RPCs it survives before crashing (empty / exhausted = leader
  // completes).  Fails with "cluster_exhausted" when every replica dies.
  Expected<ReplicatedDeployment> deploy(
      Fleet& fleet, const std::vector<int>& fail_after_rpcs = {}) const;

 private:
  const topology::Network* net_;
  int replicas_;
};

}  // namespace flexwan::controller
