#include "core/flexwan.h"

namespace flexwan::core {

const transponder::Catalog& catalog_for(Scheme scheme) {
  switch (scheme) {
    case Scheme::kFixed100G: return transponder::fixed_grid_100g();
    case Scheme::kRadwan: return transponder::bvt_radwan();
    case Scheme::kFlexWan: return transponder::svt_flexwan();
  }
  return transponder::svt_flexwan();
}

Session::Session(topology::Network net, Scheme scheme, SessionOptions options)
    : net_(std::move(net)),
      scheme_(scheme),
      options_(options),
      engine_(options.threads),
      planner_(catalog_for(scheme), options.planner),
      restorer_(catalog_for(scheme), options.restorer) {}

Expected<const planning::Plan*> Session::plan() {
  auto result = planner_.plan(net_, engine_);
  if (!result) return result.error();
  plan_.emplace(std::move(result.value()));
  // Deployment and telemetry state belong to the previous plan.
  fleet_.reset();
  return Expected<const planning::Plan*>(&*plan_);
}

Expected<planning::PlanMetrics> Session::metrics() const {
  if (!plan_) return Error::make("no_plan", "call plan() first");
  return planning::compute_metrics(*plan_, net_);
}

Expected<controller::AuditReport> Session::deploy() {
  if (!plan_) return Error::make("no_plan", "call plan() first");
  fleet_ = std::make_unique<controller::Fleet>(
      net_, *plan_, options_.vendors, /*pixel_wise_ols=*/true);
  controller::CentralizedController controller(net_);
  auto stats = controller.deploy(*fleet_);
  if (!stats) return stats.error();

  // Baseline telemetry: every fiber healthy, nominal rx power.
  for (topology::FiberId f = 0; f < net_.optical.fiber_count(); ++f) {
    const std::string rx_ip = "10.3." + std::to_string(f) + ".2";
    datastream_.watch_fiber(f, rx_ip);
    datastream_.ingest(
        controller::TelemetrySample{rx_ip, "rx-power-dbm", -2.0, clock_s_});
  }
  ++clock_s_;
  return controller::audit_fleet(*fleet_, net_);
}

Expected<controller::FiberCutAlarm> Session::simulate_fiber_cut(
    topology::FiberId f) {
  if (!fleet_) return Error::make("not_deployed", "call deploy() first");
  if (f < 0 || f >= net_.optical.fiber_count()) {
    return Error::make("bad_fiber", "no fiber " + std::to_string(f));
  }
  // The cut collapses the received power at the fiber's far terminal; the
  // one-second collector picks it up on the next tick.
  const std::string rx_ip = "10.3." + std::to_string(f) + ".2";
  datastream_.ingest(
      controller::TelemetrySample{rx_ip, "rx-power-dbm", -40.0, clock_s_});
  ++clock_s_;
  const auto alarms = datastream_.detect_cuts();
  for (const auto& alarm : alarms) {
    if (alarm.fiber == f) return alarm;
  }
  return Error::make("not_detected", "cut on fiber " + std::to_string(f) +
                                         " produced no alarm");
}

Expected<controller::EvolutionResult> Session::evolve_channel(
    std::size_t index, const transponder::Mode& new_mode) {
  if (!fleet_) return Error::make("not_deployed", "call deploy() first");
  return controller::evolve_channel(*fleet_, net_, index, new_mode);
}

Expected<planning::ExtensionResult> Session::extend(topology::LinkId link,
                                                    double extra_gbps) {
  if (!plan_) return Error::make("no_plan", "call plan() first");
  auto result = planning::extend_plan(*plan_, net_, link, extra_gbps,
                                      options_.planner);
  if (result) fleet_.reset();  // deployment no longer matches the plan
  return result;
}

Expected<planning::DefragResult> Session::defragment_spectrum() {
  if (!plan_) return Error::make("no_plan", "call plan() first");
  auto result = planning::defragment(*plan_);
  if (result) fleet_.reset();
  return result;
}

Expected<restoration::Outcome> Session::restore(topology::FiberId f) const {
  if (!plan_) return Error::make("no_plan", "call plan() first");
  const restoration::FailureScenario scenario{{f}, 1.0};
  return restorer_.restore(net_, *plan_, scenario);
}

Expected<restoration::ScenarioSetMetrics> Session::restoration_drill(
    const std::vector<restoration::FailureScenario>& scenarios) const {
  if (!plan_) return Error::make("no_plan", "call plan() first");
  return restoration::evaluate_scenarios(net_, *plan_, restorer_, scenarios,
                                         engine_);
}

}  // namespace flexwan::core
