// FlexWAN public façade — the entry point downstream users program against.
//
// A Session owns one network and one transponder generation (100G-WAN /
// RADWAN / FlexWAN), and walks the paper's lifecycle:
//
//   Session s(net, Scheme::kFlexWan);
//   auto plan    = s.plan();               // Algorithm 1 (§5)
//   auto deploy  = s.deploy();             // centralized control (§4)
//   auto cut     = s.simulate_fiber_cut(f);// telemetry + detection (§4.4)
//   auto outcome = s.restore(cut->fiber);  // optical restoration (§8)
//
// Every step is also available à la carte from the individual libraries;
// the façade wires the defaults the paper evaluates with.
#pragma once

#include <memory>
#include <optional>

#include "controller/centralized.h"
#include "controller/datastream.h"
#include "controller/fleet.h"
#include "controller/operations.h"
#include "engine/engine.h"
#include "planning/heuristic.h"
#include "planning/incremental.h"
#include "planning/metrics.h"
#include "restoration/metrics.h"
#include "restoration/restorer.h"

namespace flexwan::core {

// The three backbone generations of the paper's evaluation.
enum class Scheme { kFixed100G, kRadwan, kFlexWan };

const transponder::Catalog& catalog_for(Scheme scheme);

struct SessionOptions {
  planning::PlannerConfig planner;
  restoration::RestorerConfig restorer;
  controller::VendorAssignment vendors =
      controller::VendorAssignment::kPerRegionMixed;
  // Worker threads for planning and restoration sweeps (0 = one per
  // hardware thread, 1 = serial).  Any value yields byte-identical results
  // — the engine reduces in index order (see engine/engine.h).
  int threads = 0;
};

class Session {
 public:
  Session(topology::Network net, Scheme scheme, SessionOptions options = {});

  const topology::Network& network() const { return net_; }
  Scheme scheme() const { return scheme_; }

  // Runs network planning; the plan is cached for later stages.
  Expected<const planning::Plan*> plan();

  // Plan metrics (requires a successful plan()).
  Expected<planning::PlanMetrics> metrics() const;

  // Materializes the device fleet and pushes configuration through the
  // centralized controller, then audits.  Requires plan().
  Expected<controller::AuditReport> deploy();

  // Injects a fiber cut: terminal rx power collapses in the data stream and
  // the detector raises the alarm, which is returned.  Requires deploy().
  Expected<controller::FiberCutAlarm> simulate_fiber_cut(topology::FiberId f);

  // Runs optical restoration for a (detected or given) cut.  Requires plan().
  Expected<restoration::Outcome> restore(topology::FiberId f) const;

  // Restoration drill: sweeps a whole failure-scenario set concurrently on
  // the session engine and aggregates (Figs. 15/16).  Requires plan().
  Expected<restoration::ScenarioSetMetrics> restoration_drill(
      const std::vector<restoration::FailureScenario>& scenarios) const;

  // Incrementally provisions extra capacity on one IP link without
  // re-planning (planning runs infrequently, §4.4).  Invalidates any
  // existing deployment — the new wavelengths still need configuration.
  Expected<planning::ExtensionResult> extend(topology::LinkId link,
                                             double extra_gbps);

  // Compacts the plan's spectrum (hitless defragmentation); invalidates any
  // existing deployment.
  Expected<planning::DefragResult> defragment_spectrum();

  // Live channel evolution (§9): re-tune deployed wavelength `index` to a
  // wider/narrower mode through the controller.  Requires deploy().
  Expected<controller::EvolutionResult> evolve_channel(
      std::size_t index, const transponder::Mode& new_mode);

  const planning::Plan* current_plan() const {
    return plan_ ? &*plan_ : nullptr;
  }
  const controller::Fleet* fleet() const { return fleet_.get(); }
  controller::DataStream& datastream() { return datastream_; }
  const engine::Engine& engine() const { return engine_; }

 private:
  topology::Network net_;
  Scheme scheme_;
  SessionOptions options_;
  engine::Engine engine_;
  planning::HeuristicPlanner planner_;
  restoration::Restorer restorer_;
  std::optional<planning::Plan> plan_;
  std::unique_ptr<controller::Fleet> fleet_;
  controller::DataStream datastream_;
  long clock_s_ = 0;
};

}  // namespace flexwan::core
