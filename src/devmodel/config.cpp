#include "devmodel/config.h"

#include <charconv>
#include <sstream>

namespace flexwan::devmodel {

std::string to_string(DeviceKind k) {
  switch (k) {
    case DeviceKind::kTransponder: return "transponder";
    case DeviceKind::kWss: return "wss";
  }
  return "?";
}

ConfigDocument::ConfigDocument(std::string target_ip, DeviceKind kind)
    : target_ip_(std::move(target_ip)), kind_(kind) {}

void ConfigDocument::set(const std::string& path, std::string value) {
  entries_[path] = std::move(value);
}

void ConfigDocument::set_number(const std::string& path, double value) {
  std::ostringstream os;
  os << value;
  entries_[path] = os.str();
}

std::optional<std::string> ConfigDocument::get(const std::string& path) const {
  const auto it = entries_.find(path);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

Expected<double> ConfigDocument::get_number(const std::string& path) const {
  const auto v = get(path);
  if (!v) return Error::make("missing_leaf", "no leaf at " + path);
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    return Error::make("bad_leaf", path + " is not numeric: " + *v);
  }
}

std::string ConfigDocument::serialize() const {
  std::ostringstream os;
  os << "<config device=\"" << target_ip_ << "\" model=\""
     << to_string(kind_) << "\">\n";
  for (const auto& [path, value] : entries_) {
    os << "  <leaf path=\"" << path << "\">" << value << "</leaf>\n";
  }
  os << "</config>\n";
  return os.str();
}

ConfigDocument make_transponder_config(const std::string& ip,
                                       const transponder::Mode& mode,
                                       const spectrum::Range& range) {
  ConfigDocument doc(ip, DeviceKind::kTransponder);
  doc.set_number("data-rate-gbps", mode.data_rate_gbps);
  doc.set_number("channel-spacing-ghz", mode.spacing_ghz);
  doc.set_number("optical-reach-km", mode.reach_km);
  doc.set("dsp/modulation", transponder::to_string(mode.modulation));
  doc.set_number("fec/overhead", mode.fec_overhead);
  doc.set_number("dsp/baud-gbd", mode.baud_gbd);
  doc.set_number("spectrum/start-pixel", range.first);
  doc.set_number("spectrum/pixel-count", range.count);
  return doc;
}

ConfigDocument make_wss_config(const std::string& ip, int port,
                               const spectrum::Range& range) {
  ConfigDocument doc(ip, DeviceKind::kWss);
  const std::string prefix = "filter-port/" + std::to_string(port) + "/";
  doc.set_number("port", port);
  doc.set_number(prefix + "start-pixel", range.first);
  doc.set_number(prefix + "pixel-count", range.count);
  return doc;
}

Expected<transponder::Mode> parse_transponder_mode(const ConfigDocument& doc) {
  transponder::Mode mode;
  auto rate = doc.get_number("data-rate-gbps");
  if (!rate) return rate.error();
  auto spacing = doc.get_number("channel-spacing-ghz");
  if (!spacing) return spacing.error();
  auto reach = doc.get_number("optical-reach-km");
  if (!reach) return reach.error();
  auto fec = doc.get_number("fec/overhead");
  if (!fec) return fec.error();
  auto baud = doc.get_number("dsp/baud-gbd");
  if (!baud) return baud.error();
  mode.data_rate_gbps = *rate;
  mode.spacing_ghz = *spacing;
  mode.reach_km = *reach;
  mode.fec_overhead = *fec;
  mode.baud_gbd = *baud;
  const auto modulation = doc.get("dsp/modulation");
  using transponder::Modulation;
  if (modulation) {
    if (*modulation == "BPSK") mode.modulation = Modulation::kBpsk;
    else if (*modulation == "QPSK") mode.modulation = Modulation::kQpsk;
    else if (*modulation == "8QAM") mode.modulation = Modulation::k8Qam;
    else if (*modulation == "16QAM") mode.modulation = Modulation::k16Qam;
    else if (*modulation == "PCS-16QAM") mode.modulation = Modulation::kPcs16Qam;
    else if (*modulation == "PCS-64QAM") mode.modulation = Modulation::kPcs64Qam;
    else return Error::make("bad_leaf", "unknown modulation " + *modulation);
  }
  return mode;
}

Expected<spectrum::Range> parse_spectrum_range(const ConfigDocument& doc,
                                               const std::string& prefix) {
  auto start = doc.get_number(prefix + "start-pixel");
  if (!start) return start.error();
  auto count = doc.get_number(prefix + "pixel-count");
  if (!count) return count.error();
  return spectrum::Range{static_cast<int>(*start), static_cast<int>(*count)};
}

}  // namespace flexwan::devmodel
