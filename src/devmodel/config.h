// Standard device model and configuration documents (paper §4.3, §4.4).
//
// FlexWAN abstracts heterogeneous multi-vendor devices behind one standard
// device model: every transponder is a {fec, dsp, eom} component group,
// every WSS a set of filter ports, regardless of vendor.  The centralized
// controller emits *standard* configuration documents (the YANG file of the
// DevMgr); per-vendor adapters (vendors.h) translate them to each vendor's
// native parameters.  A document is a flat path -> value map, which is all
// the fidelity the control semantics here need.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "spectrum/grid.h"
#include "transponder/mode.h"
#include "util/expected.h"

namespace flexwan::devmodel {

// Device classes of the standard model.
enum class DeviceKind { kTransponder, kWss };

std::string to_string(DeviceKind k);

// A YANG-file stand-in: ordered path -> value pairs plus the target device.
class ConfigDocument {
 public:
  ConfigDocument(std::string target_ip, DeviceKind kind);

  const std::string& target_ip() const { return target_ip_; }
  DeviceKind kind() const { return kind_; }

  void set(const std::string& path, std::string value);
  void set_number(const std::string& path, double value);
  std::optional<std::string> get(const std::string& path) const;
  Expected<double> get_number(const std::string& path) const;

  const std::map<std::string, std::string>& entries() const { return entries_; }

  // Renders an XML-ish <config> body for logs / golden tests.
  std::string serialize() const;

 private:
  std::string target_ip_;
  DeviceKind kind_;
  std::map<std::string, std::string> entries_;
};

// Builders for the two intents the controller issues (standard model paths).
//
// Transponder: data-rate-gbps, channel-spacing-ghz, modulation, fec-overhead,
// baud-gbd, spectrum/start-pixel, spectrum/pixel-count.
ConfigDocument make_transponder_config(const std::string& ip,
                                       const transponder::Mode& mode,
                                       const spectrum::Range& range);

// WSS: filter-port/<n>/start-pixel, filter-port/<n>/pixel-count.
ConfigDocument make_wss_config(const std::string& ip, int port,
                               const spectrum::Range& range);

// Parses the standard paths back out of a document (the adapter side).
Expected<transponder::Mode> parse_transponder_mode(const ConfigDocument& doc);
Expected<spectrum::Range> parse_spectrum_range(const ConfigDocument& doc,
                                               const std::string& prefix);

}  // namespace flexwan::devmodel
