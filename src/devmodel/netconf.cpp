#include "devmodel/netconf.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flexwan::devmodel {

namespace {

template <typename Device>
Expected<bool> register_impl(std::map<std::string, DeviceRef>& devices,
                             Device* device) {
  const std::string& ip = device->info().ip;
  if (devices.contains(ip)) {
    return Error::make("duplicate_ip", ip + " already registered");
  }
  devices.emplace(ip, device);
  return true;
}

}  // namespace

Expected<bool> NetconfService::register_device(
    hardware::TransponderDevice* device) {
  return register_impl(devices_, device);
}

Expected<bool> NetconfService::register_device(hardware::WssDevice* device) {
  return register_impl(devices_, device);
}

Expected<bool> NetconfService::edit_config(const ConfigDocument& doc) {
  ++rpc_count_;
  OBS_SPAN("controller.netconf.edit_config");
  OBS_COUNTER_ADD("controller.netconf.edit_config", 1);
  const auto it = devices_.find(doc.target_ip());
  if (it == devices_.end()) {
    OBS_COUNTER_ADD("controller.netconf.errors", 1);
    return Error::make("unknown_device", doc.target_ip() + " not registered");
  }
  // Per-vendor latency: the adapter translation is the vendor-specific part
  // of the RPC, so the histogram is keyed by the device's vendor string
  // (dynamic name — resolved through the registry, not a cached macro).
  // Timing-gated: wall-derived samples stay out of bundle-only runs.
  const bool timing = obs::timing_enabled();
  const double start_us = timing ? obs::now_us() : 0.0;
  auto result = std::visit(
      [&](auto* device) -> Expected<bool> {
        const VendorAdapter& adapter = adapter_for(device->info().vendor);
        using D = std::remove_pointer_t<decltype(device)>;
        if constexpr (std::is_same_v<D, hardware::TransponderDevice>) {
          if (doc.kind() != DeviceKind::kTransponder) {
            return Error::make("kind_mismatch",
                               doc.target_ip() + " is a transponder");
          }
          return adapter.configure_transponder(*device, doc);
        } else {
          if (doc.kind() != DeviceKind::kWss) {
            return Error::make("kind_mismatch", doc.target_ip() + " is a WSS");
          }
          return adapter.configure_wss(*device, doc);
        }
      },
      it->second);
  if (timing) {
    const std::string vendor = std::visit(
        [](auto* device) { return device->info().vendor; }, it->second);
    obs::Registry::instance()
        .histogram("controller.netconf.edit_config.us." + vendor,
                   obs::default_latency_bounds_us())
        ->observe(obs::now_us() - start_us);
  }
  if (!result) OBS_COUNTER_ADD("controller.netconf.errors", 1);
  return result;
}

Expected<double> NetconfService::get_telemetry(const std::string& ip,
                                               const std::string& leaf) const {
  const auto it = devices_.find(ip);
  if (it == devices_.end()) {
    return Error::make("unknown_device", ip + " not registered");
  }
  if (const auto* const* txp =
          std::get_if<hardware::TransponderDevice*>(&it->second)) {
    if (leaf == "rx-ber") return (*txp)->rx_ber();
  }
  return Error::make("unknown_leaf", ip + " has no leaf " + leaf);
}

}  // namespace flexwan::devmodel
