// NETCONF-like configuration transport simulation (paper §4.4 DevMgr).
//
// The DevMgr locates every optical device by its management IP and pushes a
// YANG configuration document over NETCONF.  Here the registry maps IPs to
// simulated devices; edit_config() routes a standard document through the
// owning vendor's adapter.  RPC accounting lets benches report controller
// workload.
#pragma once

#include <map>
#include <string>
#include <variant>

#include "devmodel/config.h"
#include "devmodel/vendors.h"
#include "hardware/devices.h"

namespace flexwan::devmodel {

// A registry entry: a non-owning pointer to one simulated device.
using DeviceRef =
    std::variant<hardware::TransponderDevice*, hardware::WssDevice*>;

class NetconfService {
 public:
  // Registers a device under its management IP.  The device must outlive
  // the service.
  Expected<bool> register_device(hardware::TransponderDevice* device);
  Expected<bool> register_device(hardware::WssDevice* device);

  // <edit-config>: routes the document to the target device through its
  // vendor adapter.  Fails with "unknown_device" for unregistered IPs and
  // propagates adapter / device errors.
  Expected<bool> edit_config(const ConfigDocument& doc);

  // <get>: reads one telemetry leaf ("rx-ber" for transponders).
  Expected<double> get_telemetry(const std::string& ip,
                                 const std::string& leaf) const;

  int rpc_count() const { return rpc_count_; }
  int device_count() const { return static_cast<int>(devices_.size()); }

 private:
  std::map<std::string, DeviceRef> devices_;
  int rpc_count_ = 0;
};

}  // namespace flexwan::devmodel
