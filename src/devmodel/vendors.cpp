#include "devmodel/vendors.h"

#include <sstream>
#include <stdexcept>

namespace flexwan::devmodel {

Expected<bool> VendorAdapter::configure_transponder(
    hardware::TransponderDevice& device, const ConfigDocument& doc) const {
  auto mode = parse_transponder_mode(doc);
  if (!mode) return mode.error();
  auto range = parse_spectrum_range(doc, "spectrum/");
  if (!range) return range.error();
  return device.configure(*mode, *range);
}

Expected<bool> VendorAdapter::configure_wss(hardware::WssDevice& device,
                                            const ConfigDocument& doc) const {
  auto port = doc.get_number("port");
  if (!port) return port.error();
  const std::string prefix =
      "filter-port/" + std::to_string(static_cast<int>(*port)) + "/";
  auto range = parse_spectrum_range(doc, prefix);
  if (!range) return range.error();
  return device.set_passband(static_cast<int>(*port), *range);
}

namespace {

class VendorA final : public VendorAdapter {
 public:
  std::string vendor() const override { return "vendorA"; }

  std::string native_syntax(const ConfigDocument& doc) const override {
    std::ostringstream os;
    if (doc.kind() == DeviceKind::kTransponder) {
      os << "set och rate=" << *doc.get("data-rate-gbps") << "g"
         << " spacing=" << *doc.get("channel-spacing-ghz") << "ghz"
         << " mod=" << doc.get("dsp/modulation").value_or("?")
         << " pixels=" << *doc.get("spectrum/start-pixel") << "+"
         << *doc.get("spectrum/pixel-count");
    } else {
      const std::string port = doc.get("port").value_or("0");
      os << "set wss port " << port << " passband pixels="
         << *doc.get("filter-port/" + port + "/start-pixel") << "+"
         << *doc.get("filter-port/" + port + "/pixel-count");
    }
    return os.str();
  }
};

class VendorB final : public VendorAdapter {
 public:
  std::string vendor() const override { return "vendorB"; }

  std::string native_syntax(const ConfigDocument& doc) const override {
    std::ostringstream os;
    if (doc.kind() == DeviceKind::kTransponder) {
      const double rate = std::stod(*doc.get("data-rate-gbps"));
      const double spacing = std::stod(*doc.get("channel-spacing-ghz"));
      os << "och-config rate-mbps " << static_cast<long>(rate * 1000.0)
         << " spacing-mhz " << static_cast<long>(spacing * 1000.0)
         << " fec-percent "
         << static_cast<int>(std::stod(*doc.get("fec/overhead")) * 100.0);
    } else {
      const std::string port = doc.get("port").value_or("0");
      const double start =
          std::stod(*doc.get("filter-port/" + port + "/start-pixel"));
      const double count =
          std::stod(*doc.get("filter-port/" + port + "/pixel-count"));
      os << "wss-port " << port << " passband-mhz "
         << static_cast<long>(start * 12500.0) << " width-mhz "
         << static_cast<long>(count * 12500.0);
    }
    return os.str();
  }
};

class VendorC final : public VendorAdapter {
 public:
  std::string vendor() const override { return "vendorC"; }

  std::string native_syntax(const ConfigDocument& doc) const override {
    std::ostringstream os;
    if (doc.kind() == DeviceKind::kTransponder) {
      const int start = static_cast<int>(
          std::stod(*doc.get("spectrum/start-pixel")));
      const int count = static_cast<int>(
          std::stod(*doc.get("spectrum/pixel-count")));
      // Inclusive-end slice convention: "slice a:b" covers pixels a..b.
      os << "txp mode " << doc.get("dsp/modulation").value_or("?") << "/"
         << *doc.get("dsp/baud-gbd") << "gbd slice " << start << ":"
         << start + count - 1;
    } else {
      const std::string port = doc.get("port").value_or("0");
      const int start = static_cast<int>(
          std::stod(*doc.get("filter-port/" + port + "/start-pixel")));
      const int count = static_cast<int>(
          std::stod(*doc.get("filter-port/" + port + "/pixel-count")));
      os << "filter " << port << " slice " << start << ":"
         << start + count - 1;
    }
    return os.str();
  }
};

}  // namespace

const VendorAdapter& adapter_for(const std::string& vendor) {
  static const VendorA a;
  static const VendorB b;
  static const VendorC c;
  if (vendor == "vendorA") return a;
  if (vendor == "vendorB") return b;
  if (vendor == "vendorC") return c;
  throw std::invalid_argument("unknown vendor: " + vendor);
}

const std::vector<std::string>& known_vendors() {
  static const std::vector<std::string> vendors = {"vendorA", "vendorB",
                                                   "vendorC"};
  return vendors;
}

}  // namespace flexwan::devmodel
