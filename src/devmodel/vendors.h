// Vendor adapters (paper §4.3, §9 "vendor-agnostic optical backbone").
//
// Every vendor exposes different native parameters: one speaks GHz floats,
// another MHz integers, a third raw pixel indices with an inclusive-end
// convention.  FlexWAN's controller never sees any of that — it emits
// standard-model documents, and the per-vendor adapter translates.  Adding a
// vendor adds one adapter; controller complexity stays constant (§9).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "devmodel/config.h"
#include "hardware/devices.h"

namespace flexwan::devmodel {

// Translates standard-model documents into native device configuration.
class VendorAdapter {
 public:
  virtual ~VendorAdapter() = default;

  virtual std::string vendor() const = 0;

  // Applies a standard transponder document to the device.
  virtual Expected<bool> configure_transponder(
      hardware::TransponderDevice& device, const ConfigDocument& doc) const;

  // Applies a standard WSS document to the device.
  virtual Expected<bool> configure_wss(hardware::WssDevice& device,
                                       const ConfigDocument& doc) const;

  // Renders the vendor's native CLI/API representation of the document —
  // exercised by tests to show the dialects really differ while the device
  // outcome stays identical.
  virtual std::string native_syntax(const ConfigDocument& doc) const = 0;
};

// vendorA: GHz floats, zero-based pixels ("set och rate=400g spacing=112.5ghz").
// vendorB: MHz integers ("och-config rate-mbps 400000 spacing-mhz 112500").
// vendorC: pixel slices with inclusive end ("slice 8:16" for pixels 8..16).
const VendorAdapter& adapter_for(const std::string& vendor);

// All known vendor names, for device assignment in simulations.
const std::vector<std::string>& known_vendors();

}  // namespace flexwan::devmodel
