#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>

#include "obs/metrics.h"
#include "util/cli.h"
#include "obs/trace.h"
#include "obs/workprof.h"

namespace flexwan::engine {

namespace {

// Set while a pool worker (or any thread inside a parallel_for body) is
// running, so nested parallel_for calls degrade to inline serial loops
// instead of deadlocking on a saturated pool.
thread_local bool tls_in_parallel_body = false;

}  // namespace

// One parallel_for invocation.  Participants (the caller plus any workers
// that pick the job up) share an atomic index cursor; the job owns a copy of
// the body so a worker arriving after the caller returned touches only
// state kept alive by the shared_ptr.
struct Engine::Job {
  std::function<void(std::size_t)> fn;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};

  std::mutex mu;
  std::condition_variable done;
  int active = 0;  // participants currently draining
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
  double enqueue_us = -1.0;  // set when metrics are on; -1 = not recorded

  // Work-profile base path captured from the submitting thread (nullptr
  // when profiling is off): every participant runs the job's tasks under a
  // context rooted here, so the merged tree is identical whether a task
  // ran inline on the caller or on any worker (obs/workprof.h).
  std::shared_ptr<const std::vector<std::string>> workprof_base;

  void enter() {
    std::lock_guard<std::mutex> lock(mu);
    ++active;
  }

  void leave() {
    {
      std::lock_guard<std::mutex> lock(mu);
      --active;
    }
    done.notify_all();
  }

  void drain() {
    const bool was_nested = tls_in_parallel_body;
    tls_in_parallel_body = true;
    // One clock read per participant, not per index: the queue-wait sample
    // and the busy-time window bracket the whole drain.  Gated on timing,
    // not metrics: both are wall-derived, so they must stay out of the
    // registry in the deterministic bundle-only mode (obs/metrics.h).
    const bool timing = obs::timing_enabled();
    double start_us = 0.0;
    if (timing) {
      start_us = obs::now_us();
      if (enqueue_us >= 0.0) {
        OBS_HISTOGRAM_OBSERVE("engine.job.queue_wait.us",
                              start_us - enqueue_us);
      }
    }
    // drain exists only on the parallel path, so its span must not push a
    // work-profile frame; instead each participant accumulates under the
    // submitter's captured base path and merges on exit (a participant
    // that executed nothing merges an empty fragment — a no-op).
    OBS_SPAN_UNTRACKED("engine.drain");
    std::optional<obs::workprof::ScopedWorkContext> prof_scope;
    if (workprof_base != nullptr) prof_scope.emplace(workprof_base);
    std::size_t executed = 0;
    while (!cancelled.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        fn(i);
        ++executed;
      } catch (...) {
        cancelled.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu);
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
      }
    }
    // tasks_executed is deterministic work accounting (counted in bundles);
    // busy_us is wall time (timing only, and never attributed to the work
    // profile — see OBS_COUNTER_ADD_UNTRACKED).
    OBS_COUNTER_ADD("engine.tasks_executed", executed);
    if (timing) {
      OBS_COUNTER_ADD_UNTRACKED(
          "engine.worker.busy_us",
          static_cast<std::uint64_t>(obs::now_us() - start_us));
    }
    tls_in_parallel_body = was_nested;
  }

  bool exhausted() const {
    return cancelled.load(std::memory_order_relaxed) ||
           next.load(std::memory_order_relaxed) >= n;
  }
};

Engine::Engine(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  thread_count_ = std::max(1, threads);
  OBS_GAUGE_SET("engine.threads", thread_count_);
  workers_.reserve(static_cast<std::size_t>(thread_count_ - 1));
  for (int i = 0; i < thread_count_ - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

const Engine& Engine::serial() {
  static const Engine instance(1);
  return instance;
}

void Engine::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stopping_ || !jobs_.empty(); });
    if (stopping_) return;
    auto job = jobs_.front();
    lock.unlock();
    job->enter();
    job->drain();
    job->leave();
    lock.lock();
    // Retire the job once its cursor is spent so later waits don't spin.
    if (job->exhausted()) {
      const auto it = std::find(jobs_.begin(), jobs_.end(), job);
      if (it != jobs_.end()) jobs_.erase(it);
    }
  }
}

void Engine::parallel_for(std::size_t n,
                          const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  OBS_SPAN("engine.parallel_for");
  OBS_COUNTER_ADD("engine.parallel_for.calls", 1);
  if (thread_count_ <= 1 || n == 1 || tls_in_parallel_body) {
    // Serial path: identical to the historical loop, including eager
    // propagation of the first exception.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    OBS_COUNTER_ADD("engine.tasks_executed", n);
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->n = n;
  if (obs::timing_enabled()) job->enqueue_us = obs::now_us();
  if (obs::workprof_enabled()) {
    job->workprof_base = std::make_shared<const std::vector<std::string>>(
        obs::workprof::current_path());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(job);
  }
  work_cv_.notify_all();

  job->enter();
  job->drain();
  job->leave();

  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->done.wait(lock, [&] { return job->active == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = std::find(jobs_.begin(), jobs_.end(), job);
    if (it != jobs_.end()) jobs_.erase(it);
  }
  if (job->error) std::rethrow_exception(job->error);
}

Expected<int> parse_thread_count(const char* value) {
  // The generic range parser owns the rejection semantics (util/cli.h);
  // this wrapper only brands the error with the flag name.
  const auto parsed =
      util::cli::parse_int_in_range(value, 0, kMaxThreadsFlag);
  if (!parsed) {
    return Error::make("bad_threads",
                       "--threads: " + parsed.error().message);
  }
  return static_cast<int>(parsed.value());
}

int threads_flag(int& argc, char** argv, int fallback) {
  int threads = fallback;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--threads requires a value\n");
        std::exit(2);
      }
      value = argv[++i];
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      value = arg + 10;
    } else {
      argv[out++] = argv[i];
      continue;
    }
    const auto parsed = parse_thread_count(value);
    if (!parsed) {
      std::fprintf(stderr, "%s\n", parsed.error().message.c_str());
      std::exit(2);
    }
    threads = parsed.value();
  }
  argc = out;
  return threads;
}

}  // namespace flexwan::engine
