// Deterministic parallel execution engine.
//
// FlexWAN's hot fan-outs — per-link mode-set DP in the planner, the
// all-failure-scenario restoration sweeps, the capacity-scale benches — are
// embarrassingly parallel over read-only inputs, but the repo's guarantee is
// that every run is byte-identical (seeded RNG, stable orderings).  The
// Engine preserves that guarantee under parallelism through one contract:
//
//   * work is distributed by *index*: parallel_for(n, fn) applies fn(i) for
//     i in [0, n) on a fixed-size thread pool (plus the calling thread);
//   * results are collected by *index*: parallel_map writes fn(i) into
//     slot i and returns the vector in index order, so any reduction over
//     the result sees exactly the order the serial loop would produce;
//   * an Engine with thread_count() == 1 runs the loop inline — serial
//     execution is the identity configuration, not a separate code path.
//
// Execution order across threads is nondeterministic; anything order-
// dependent must therefore live in the (index-ordered) reduction, never in
// the loop body's side effects.  Bodies must treat shared inputs as
// read-only.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "util/expected.h"

namespace flexwan::engine {

class Engine {
 public:
  // `threads` <= 0 picks std::thread::hardware_concurrency().  The count
  // includes the calling thread: Engine(4) runs loop bodies on the caller
  // plus 3 pool workers; Engine(1) starts no workers at all.
  explicit Engine(int threads = 0);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  int thread_count() const { return thread_count_; }

  // A process-wide single-threaded engine: callers that take an Engine
  // reference can default to this to get today's serial behavior.
  static const Engine& serial();

  // Applies fn(i) for every i in [0, n).  Blocks until all indices ran.
  // A body that throws cancels the remaining unclaimed indices and the
  // lowest-index captured exception is rethrown to the caller.  Nested
  // calls (a body invoking parallel_for on any Engine) run inline serially.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn) const;

  // parallel_for that collects fn(i) into slot i and returns the results
  // in index order — the deterministic-reduction primitive.
  template <typename Fn>
  auto parallel_map(std::size_t n, Fn&& fn) const
      -> std::vector<decltype(fn(std::size_t{}))> {
    using T = decltype(fn(std::size_t{}));
    std::vector<std::optional<T>> slots(n);
    parallel_for(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<T> out;
    out.reserve(n);
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

 private:
  struct Job;

  void worker_loop();

  int thread_count_ = 1;
  mutable std::mutex mu_;
  mutable std::condition_variable work_cv_;
  mutable std::deque<std::shared_ptr<Job>> jobs_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// Upper bound accepted by the --threads flag; far above any real machine,
// it exists so an overflowing strtol result can never truncate into a
// silently-wrong small thread count.
inline constexpr int kMaxThreadsFlag = 4096;

// Parses one --threads value: a base-10 integer in [0, kMaxThreadsFlag].
// Rejects empty, non-numeric, trailing-garbage, negative, and out-of-range
// input (including strtol overflow, which previously truncated silently).
Expected<int> parse_thread_count(const char* value);

// Extracts a "--threads N" / "--threads=N" flag from argv (compacting the
// remaining arguments and decrementing argc), so every bench and example
// exposes the same knob.  Returns `fallback` when the flag is absent and
// exits with an error message on a malformed value (see
// parse_thread_count).  N = 0 means hardware_concurrency, matching
// Engine's constructor.
int threads_flag(int& argc, char** argv, int fallback = 0);

}  // namespace flexwan::engine
