#include "hardware/devices.h"

#include <cmath>

namespace flexwan::hardware {

TransponderDevice::TransponderDevice(DeviceInfo info, Capabilities caps)
    : info_(std::move(info)), caps_(caps) {}

Expected<bool> TransponderDevice::configure(const transponder::Mode& mode,
                                            const spectrum::Range& range) {
  if (caps_.catalog != nullptr) {
    // The FEC module / DSP must offer the requested combination.
    bool supported = false;
    for (const auto& m : caps_.catalog->modes()) {
      if (m.data_rate_gbps == mode.data_rate_gbps &&
          m.spacing_ghz == mode.spacing_ghz) {
        supported = true;
        break;
      }
    }
    if (!supported) {
      return Error::make("unsupported_mode",
                         info_.ip + ": DSP/FEC cannot realise " +
                             mode.describe());
    }
  }
  if (!caps_.spacing_variable &&
      std::abs(mode.spacing_ghz - caps_.fixed_spacing_ghz) > 1e-9) {
    return Error::make("fixed_spacing",
                       info_.ip + ": EOM is fixed at " +
                           std::to_string(caps_.fixed_spacing_ghz) + " GHz");
  }
  if (!range.valid() || range.count != mode.pixels()) {
    return Error::make("bad_range",
                       info_.ip + ": range does not match channel spacing");
  }
  mode_ = mode;
  range_ = range;
  configured_ = true;
  return true;
}

Expected<OpticalSignal> TransponderDevice::transmit() const {
  if (!configured_) {
    return Error::make("not_configured", info_.ip + ": transponder idle");
  }
  OpticalSignal s;
  s.range = range_;
  s.mode = mode_;
  s.source_ip = info_.ip;
  return s;
}

WssDevice::WssDevice(DeviceInfo info, int port_count, int grid_quantum_pixels)
    : info_(std::move(info)),
      ports_(static_cast<std::size_t>(port_count)),
      grid_quantum_(grid_quantum_pixels) {}

Expected<bool> WssDevice::set_passband(int port, const spectrum::Range& range) {
  if (port < 0 || port >= port_count()) {
    return Error::make("bad_port", info_.ip + ": no filter port " +
                                       std::to_string(port));
  }
  if (!range.valid()) {
    return Error::make("bad_range", info_.ip + ": invalid passband");
  }
  if (grid_quantum_ > 1 &&
      (range.first % grid_quantum_ != 0 || range.count % grid_quantum_ != 0)) {
    return Error::make("grid_misaligned",
                       info_.ip + ": fixed-grid WSS cannot place " +
                           spectrum::to_string(range));
  }
  ports_[static_cast<std::size_t>(port)] = range;
  return true;
}

Expected<bool> WssDevice::clear_passband(int port) {
  if (port < 0 || port >= port_count()) {
    return Error::make("bad_port", info_.ip + ": no filter port " +
                                       std::to_string(port));
  }
  ports_[static_cast<std::size_t>(port)].reset();
  return true;
}

std::optional<spectrum::Range> WssDevice::passband(int port) const {
  if (port < 0 || port >= port_count()) return std::nullopt;
  return ports_[static_cast<std::size_t>(port)];
}

bool WssDevice::passes(const spectrum::Range& signal) const {
  for (const auto& pb : ports_) {
    if (pb && pb->covers(signal)) return true;
  }
  return false;
}

}  // namespace flexwan::hardware
