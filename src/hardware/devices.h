// Simulated optical hardware devices.
//
// These classes mirror the paper's device anatomy (Figs. 1, 7, 8):
//  * TransponderDevice — control unit + FEC module + DSP + EOM.  A BVT's
//    components are rigid (fixed FEC, fixed channel spacing in the EOM); an
//    SVT's are adjustable.  The control unit only accepts configuration
//    parameters the installed components support, which is exactly how the
//    hardware distinction manifests to the controller.
//  * WssDevice — an LCoS pixel-wise wavelength-selective switch: per filter
//    port, a passband made of continuous pixels (§4.2).  Fixed-grid devices
//    are modelled by a grid quantum the passband must align to.
//  * AmplifierDevice / FiberSegment — the line plant between sites.
// Every device carries a management IP and a vendor tag; the controller
// addresses devices by IP (§4.4 DevMgr).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "spectrum/grid.h"
#include "transponder/catalog.h"
#include "util/expected.h"

namespace flexwan::hardware {

// Management identity shared by every device.
struct DeviceInfo {
  std::string ip;      // management address the controller dials
  std::string vendor;  // e.g. "vendorA"
  std::string model;
};

// What travels in the fiber: a wavelength with its spectrum and format.
struct OpticalSignal {
  spectrum::Range range;        // occupied pixels
  transponder::Mode mode;       // modulation / FEC / baud configuration
  std::string source_ip;        // transmitting transponder
  double distance_km = 0.0;     // accumulated fiber distance
  bool dropped = false;         // lost at a filter (channel inconsistency)
  std::string drop_reason;
};

// A transponder (Fig. 7): hardware capabilities constrain configuration.
class TransponderDevice {
 public:
  // Capabilities of the installed components.  An SVT supports every
  // catalog spacing; a BVT's EOM accepts exactly one channel spacing.
  struct Capabilities {
    const transponder::Catalog* catalog = nullptr;  // supported modes
    bool spacing_variable = false;                  // EOM adjustable?
    double fixed_spacing_ghz = 75.0;                // when not adjustable
  };

  TransponderDevice(DeviceInfo info, Capabilities caps);

  const DeviceInfo& info() const { return info_; }
  const Capabilities& capabilities() const { return caps_; }

  // Control-unit entry point (§4.2): accepts (mode, spectrum) if the FEC
  // module / DSP / EOM can realise them.  Fails with "unsupported_mode" or
  // "fixed_spacing" otherwise.
  Expected<bool> configure(const transponder::Mode& mode,
                           const spectrum::Range& range);

  bool configured() const { return configured_; }
  const transponder::Mode& mode() const { return mode_; }
  const spectrum::Range& range() const { return range_; }

  // Generates the wavelength this transponder is configured for.
  Expected<OpticalSignal> transmit() const;

  // Received-signal state, set by link simulation; exposed as telemetry.
  void set_rx_ber(double ber) { rx_ber_ = ber; }
  double rx_ber() const { return rx_ber_; }

 private:
  DeviceInfo info_;
  Capabilities caps_;
  bool configured_ = false;
  transponder::Mode mode_;
  spectrum::Range range_;
  double rx_ber_ = 0.0;
};

// A pixel-wise (or fixed-grid) WSS inside a MUX / ROADM (Fig. 8).
class WssDevice {
 public:
  // grid_quantum_pixels = 1 → pixel-wise (spectrum-sliced OLS);
  // e.g. 6 → rigid 75 GHz grid equipment that can only place passbands on
  // 75 GHz boundaries with 75 GHz width multiples.
  WssDevice(DeviceInfo info, int port_count, int grid_quantum_pixels = 1);

  const DeviceInfo& info() const { return info_; }
  int port_count() const { return static_cast<int>(ports_.size()); }
  int grid_quantum_pixels() const { return grid_quantum_; }

  // Configures the passband of a filter port.  Pixel-wise devices accept
  // any continuous range; fixed-grid devices reject unaligned ranges with
  // "grid_misaligned".
  Expected<bool> set_passband(int port, const spectrum::Range& range);
  Expected<bool> clear_passband(int port);
  std::optional<spectrum::Range> passband(int port) const;

  // True if some port's passband fully covers the signal's range — i.e. the
  // signal passes this optical site without clipping.
  bool passes(const spectrum::Range& signal) const;

 private:
  DeviceInfo info_;
  std::vector<std::optional<spectrum::Range>> ports_;
  int grid_quantum_ = 1;
};

// An EDFA line amplifier: one per span; counted by the link simulation to
// accumulate ASE noise.
struct AmplifierDevice {
  DeviceInfo info;
  double gain_db = 16.0;
  double noise_figure_db = 5.0;
};

// A span of fiber between amplifiers, carrying co-propagating signals.
struct FiberSegment {
  double length_km = 0.0;
  bool cut = false;  // set by failure injection; detected via power loss
};

}  // namespace flexwan::hardware
