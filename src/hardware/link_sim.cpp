#include "hardware/link_sim.h"

#include <map>

#include "phy/ber.h"

namespace flexwan::hardware {

LinkSim::LinkSim(const phy::CalibratedModel& model) : model_(&model) {}

int LinkSim::add_fiber(double length_km) {
  fibers_.push_back(FiberSegment{length_km, false});
  const int index = static_cast<int>(fibers_.size() - 1);
  // One EDFA per plant span, addressed like production line amplifiers.
  const int spans = phy::span_count(length_km, model_->plant());
  std::vector<AmplifierDevice> amps;
  amps.reserve(static_cast<std::size_t>(spans));
  const double span_loss_db = model_->plant().span_km *
                              model_->plant().attenuation_db_per_km;
  for (int s = 0; s < spans; ++s) {
    amps.push_back(AmplifierDevice{
        DeviceInfo{"10.4." + std::to_string(index) + "." + std::to_string(s),
                   "vendorA", "EDFA"},
        span_loss_db, model_->plant().amp_noise_figure_db});
  }
  amps_.push_back(std::move(amps));
  return index;
}

std::span<const AmplifierDevice> LinkSim::amplifiers(int fiber_index) const {
  return amps_[static_cast<std::size_t>(fiber_index)];
}

void LinkSim::cut_fiber(int index) {
  fibers_[static_cast<std::size_t>(index)].cut = true;
}

bool LinkSim::fiber_cut(int index) const {
  return fibers_[static_cast<std::size_t>(index)].cut;
}

std::vector<TransmissionResult> LinkSim::propagate(
    const std::vector<LightPath>& paths) const {
  std::vector<TransmissionResult> results(paths.size());

  // Pass 1: collect per-fiber occupancy to detect conflicts (two signals
  // overlapping in the same fiber corrupt each other, Fig. 5b).
  std::map<int, std::vector<std::pair<std::size_t, spectrum::Range>>>
      fiber_signals;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto signal = paths[i].tx->transmit();
    if (!signal) {
      results[i].failure = signal.error().code + "@" + paths[i].tx->info().ip;
      continue;
    }
    for (const auto& hop : paths[i].hops) {
      fiber_signals[hop.fiber_index].emplace_back(i, signal->range);
    }
  }
  std::vector<bool> conflicted(paths.size(), false);
  std::vector<std::string> conflict_at(paths.size());
  for (const auto& [fiber, sigs] : fiber_signals) {
    for (std::size_t a = 0; a < sigs.size(); ++a) {
      for (std::size_t b = a + 1; b < sigs.size(); ++b) {
        if (sigs[a].first != sigs[b].first &&
            sigs[a].second.overlaps(sigs[b].second)) {
          conflicted[sigs[a].first] = true;
          conflicted[sigs[b].first] = true;
          const std::string where = "conflict@fiber" + std::to_string(fiber);
          conflict_at[sigs[a].first] = where;
          conflict_at[sigs[b].first] = where;
        }
      }
    }
  }

  // Pass 2: walk each path hop by hop.
  for (std::size_t i = 0; i < paths.size(); ++i) {
    auto& result = results[i];
    if (!result.failure.empty()) continue;  // tx was idle
    const auto signal_or = paths[i].tx->transmit();
    OpticalSignal signal = signal_or.value();

    if (conflicted[i]) {
      result.failure = conflict_at[i];
      result.post_fec_ber = 0.5;  // overlapping carriers cannot be decoded
      if (paths[i].rx != nullptr) paths[i].rx->set_rx_ber(0.5);
      continue;
    }
    bool lost = false;
    for (const auto& hop : paths[i].hops) {
      // Channel inconsistency (Fig. 5a): the site must provide a passband
      // covering the signal's spectrum — on the specific patched port when
      // one is given — otherwise the signal is clipped.
      if (hop.site != nullptr) {
        bool passes;
        if (hop.port >= 0) {
          const auto pb = hop.site->passband(hop.port);
          passes = pb.has_value() && pb->covers(signal.range);
        } else {
          passes = hop.site->passes(signal.range);
        }
        if (!passes) {
          result.failure = "inconsistency@" + hop.site->info().ip;
          lost = true;
          break;
        }
      }
      if (fibers_[static_cast<std::size_t>(hop.fiber_index)].cut) {
        result.failure = "cut@fiber" + std::to_string(hop.fiber_index);
        lost = true;
        break;
      }
      signal.distance_km += hop.fiber_km;
      if (hop.fiber_km > 0.0) {
        result.amplifiers_traversed += static_cast<int>(
            amps_[static_cast<std::size_t>(hop.fiber_index)].size());
      }
    }
    if (lost) {
      result.post_fec_ber = 0.5;
      if (paths[i].rx != nullptr) paths[i].rx->set_rx_ber(0.5);
      continue;
    }
    result.distance_km = signal.distance_km;
    result.post_fec_ber = model_->post_fec_ber(signal.mode, signal.distance_km);
    result.delivered = result.post_fec_ber == 0.0;
    if (!result.delivered && result.failure.empty()) {
      result.failure = "snr_too_low";
    }
    if (paths[i].rx != nullptr) paths[i].rx->set_rx_ber(result.post_fec_ber);
  }
  return results;
}

}  // namespace flexwan::hardware
