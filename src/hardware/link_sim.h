// End-to-end optical link simulation.
//
// Propagates wavelengths from transmit transponders through the MUX and
// every ROADM site's WSS to the receiver, checking the two failure classes
// of Fig. 5 — channel inconsistency (a site's passband does not cover the
// signal: clipped, dropped) and channel conflict (two signals overlap in the
// same fiber: neither decodes) — and finally computing the post-FEC BER from
// the accumulated distance through the calibrated phy model.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "hardware/devices.h"
#include "phy/calibration.h"

namespace flexwan::hardware {

// One hop of a light path: the WSS at an optical site followed by the fiber
// segment toward the next site.
struct LinkHop {
  const WssDevice* site = nullptr;  // MUX or ROADM at the head of the hop
  int fiber_index = -1;             // index into LinkSim's shared fiber table
  double fiber_km = 0.0;
  // Filter port the signal is patched into; -1 means "any port of the
  // device may pass it" (broadcast-and-select without explicit patching).
  int port = -1;
};

// A light path under simulation: transmitter, hops, receiver.
struct LightPath {
  const TransponderDevice* tx = nullptr;
  TransponderDevice* rx = nullptr;  // rx_ber is written back here
  std::vector<LinkHop> hops;
};

// Result of propagating one light path.
struct TransmissionResult {
  bool delivered = false;
  double post_fec_ber = 0.5;
  double distance_km = 0.0;
  int amplifiers_traversed = 0;  // EDFAs the signal passed (ASE sources)
  std::string failure;  // "inconsistency@<ip>", "conflict@fiber<i>", ""
};

// Simulates a set of light paths sharing fibers.
class LinkSim {
 public:
  explicit LinkSim(const phy::CalibratedModel& model);

  // Registers a shared fiber; returns its index for LinkHop::fiber_index.
  // One EDFA (AmplifierDevice) is installed per plant span of the fiber —
  // the §6 testbed's "amplifier for each 50~100 km".
  int add_fiber(double length_km);
  void cut_fiber(int index);
  bool fiber_cut(int index) const;

  // The line amplifiers installed on one fiber.
  std::span<const AmplifierDevice> amplifiers(int fiber_index) const;

  // Propagates every light path, checking passbands per site, conflicts per
  // fiber, cuts, and finally the receiver BER.  Results are parallel to the
  // input order; rx transponders get their rx_ber set.
  std::vector<TransmissionResult> propagate(
      const std::vector<LightPath>& paths) const;

 private:
  const phy::CalibratedModel* model_;
  std::vector<FiberSegment> fibers_;
  std::vector<std::vector<AmplifierDevice>> amps_;  // parallel to fibers_
};

}  // namespace flexwan::hardware
