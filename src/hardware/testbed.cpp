#include "hardware/testbed.h"

#include "transponder/catalog.h"

namespace flexwan::hardware {

Testbed::Testbed(const phy::CalibratedModel& model, double bundle_km,
                 double max_km)
    : model_(&model), bundle_km_(bundle_km), max_km_(max_km) {}

TestbedMeasurement Testbed::measure(const transponder::Mode& mode) const {
  TestbedMeasurement m;
  m.mode = mode;
  m.table_reach_km = mode.reach_km;

  // Build the testbed rig: a pair of SVTs and two MUX WSS sites.
  const auto& catalog = transponder::svt_flexwan();
  TransponderDevice tx({"10.0.0.1", "vendorA", "SVT-800"},
                       {&catalog, /*spacing_variable=*/true, 0.0});
  TransponderDevice rx({"10.0.0.2", "vendorA", "SVT-800"},
                       {&catalog, /*spacing_variable=*/true, 0.0});
  WssDevice mux_a({"10.0.1.1", "vendorA", "MUX-LCoS"}, 4);
  WssDevice mux_b({"10.0.1.2", "vendorA", "MUX-LCoS"}, 4);

  // The controller configures the format and the matching passbands.
  const spectrum::Range range{0, mode.pixels()};
  if (!tx.configure(mode, range) || !rx.configure(mode, range) ||
      !mux_a.set_passband(0, range) || !mux_b.set_passband(0, range)) {
    return m;  // unconfigurable format: reach stays 0
  }

  // Sweep: add fiber bundles until the post-FEC BER turns positive (§6).
  for (double length = bundle_km_; length <= max_km_; length += bundle_km_) {
    LinkSim sim(*model_);
    const int fiber = sim.add_fiber(length);
    LightPath path;
    path.tx = &tx;
    path.rx = &rx;
    path.hops.push_back(LinkHop{&mux_a, fiber, length});
    // The far-end MUX filters the signal again before the receiver; model
    // it as a zero-length hop through the same fiber index (already free).
    const int tail = sim.add_fiber(1e-6);
    path.hops.push_back(LinkHop{&mux_b, tail, 0.0});

    const auto results = sim.propagate({path});
    ++m.sweep_steps;
    if (results.front().delivered) {
      m.measured_reach_km = length;
    } else {
      break;
    }
  }
  return m;
}

std::vector<TestbedMeasurement> Testbed::measure_catalog(
    const transponder::Catalog& catalog) const {
  std::vector<TestbedMeasurement> out;
  out.reserve(catalog.size());
  for (const auto& mode : catalog.modes()) {
    out.push_back(measure(mode));
  }
  return out;
}

}  // namespace flexwan::hardware
