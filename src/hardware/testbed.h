// Production-level testbed simulation (paper §6, Fig. 10).
//
// The paper measures SVT specifications on a vendor testbed: a pair of SVTs,
// MUXs, bundles of fiber with an amplifier every 50-100 km, and a controller
// that sets the modulation format and grows the fiber length until the
// post-FEC BER turns positive — the last error-free length is the measured
// optical reach of that format.  This class reproduces that experiment over
// the simulated devices and the calibrated phy model, regenerating Table 2.
#pragma once

#include <vector>

#include "hardware/link_sim.h"
#include "phy/calibration.h"
#include "transponder/catalog.h"

namespace flexwan::hardware {

// One measured row: format under test and the reach the sweep found.
struct TestbedMeasurement {
  transponder::Mode mode;          // format configured by the controller
  double measured_reach_km = 0.0;  // last fiber length with post-FEC BER 0
  double table_reach_km = 0.0;     // the catalog (Table 2) value
  int sweep_steps = 0;             // fiber bundles added during the sweep
};

class Testbed {
 public:
  // `bundle_km` is the length of one fiber bundle added per sweep step.
  Testbed(const phy::CalibratedModel& model, double bundle_km = 50.0,
          double max_km = 8000.0);

  // Runs the §6 experiment for one format: a pair of SVTs through MUX WSSs
  // and a growing chain of amplified fiber bundles.
  TestbedMeasurement measure(const transponder::Mode& mode) const;

  // Sweeps every mode of a catalog (regenerates Table 2).
  std::vector<TestbedMeasurement> measure_catalog(
      const transponder::Catalog& catalog) const;

 private:
  const phy::CalibratedModel* model_;
  double bundle_km_;
  double max_km_;
};

}  // namespace flexwan::hardware
