#include "milp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flexwan::milp {

namespace {

// A search node: the bound-change constraints accumulated on the path from
// the root, plus the parent relaxation bound used for best-first ordering.
struct Node {
  std::vector<Constraint> bounds;
  double bound = 0.0;  // parent's relaxation objective (original direction)
};

// Most fractional integer-typed variable, or -1 if the point is integral.
int pick_branch_var(const Model& model, const std::vector<double>& x,
                    double tol) {
  int best = -1;
  double best_score = tol;
  for (int i = 0; i < model.var_count(); ++i) {
    if (model.var(i).type == VarType::kContinuous) continue;
    const double v = x[static_cast<std::size_t>(i)];
    // Distance to the nearest integer: 0.5 is "most fractional".
    const double score = std::min(v - std::floor(v), std::ceil(v) - v);
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

}  // namespace

double MipSolution::gap() const {
  if (status == MipStatus::kOptimal) return 0.0;
  return std::abs(objective - best_bound) /
         std::max(1.0, std::abs(objective));
}

MipSolution solve_mip(const Model& model, const MipOptions& options) {
  OBS_SPAN("milp.bnb.solve");
  OBS_COUNTER_ADD("milp.bnb.calls", 1);
  MipSolution out;
  const bool maximize = model.direction() == Direction::kMaximize;
  // Normalize to minimization internally for bound comparisons.
  auto better = [&](double a, double b) { return maximize ? a > b : a < b; };

  double incumbent_obj =
      maximize ? -std::numeric_limits<double>::infinity()
               : std::numeric_limits<double>::infinity();
  std::vector<double> incumbent;

  auto node_cmp = [&](const Node& a, const Node& b) {
    // Best-first: explore the node with the most promising parent bound.
    return maximize ? a.bound < b.bound : a.bound > b.bound;
  };
  std::priority_queue<Node, std::vector<Node>, decltype(node_cmp)> open(
      node_cmp);
  open.push(Node{{}, maximize ? std::numeric_limits<double>::infinity()
                              : -std::numeric_limits<double>::infinity()});

  bool any_lp_solved = false;
  double best_open_bound = 0.0;
  while (!open.empty()) {
    if (out.nodes_explored >= options.max_nodes) break;
    Node node = open.top();
    open.pop();
    best_open_bound = node.bound;

    // Prune by bound (parent relaxation already worse than incumbent).
    if (!incumbent.empty() && !better(node.bound, incumbent_obj) &&
        node.bound != incumbent_obj) {
      continue;
    }

    const LpSolution relax =
        solve_lp_relaxation(model, node.bounds, options.lp);
    ++out.nodes_explored;
    // Registry twin of MipSolution::nodes_explored (kept for API compat).
    OBS_COUNTER_ADD("milp.bnb.nodes", 1);
    if (relax.status == LpStatus::kUnbounded && node.bounds.empty()) {
      out.status = MipStatus::kUnbounded;
      return out;
    }
    if (relax.status != LpStatus::kOptimal) continue;
    any_lp_solved = true;

    // Prune: relaxation no better than incumbent.
    if (!incumbent.empty() && !better(relax.objective, incumbent_obj)) {
      continue;
    }

    const int branch =
        pick_branch_var(model, relax.x, options.integrality_tolerance);
    if (branch < 0) {
      // Integral: new incumbent.
      if (incumbent.empty() || better(relax.objective, incumbent_obj)) {
        OBS_COUNTER_ADD("milp.bnb.incumbent_updates", 1);
        incumbent_obj = relax.objective;
        incumbent = relax.x;
        // Round integer variables exactly.
        for (int i = 0; i < model.var_count(); ++i) {
          if (model.var(i).type != VarType::kContinuous) {
            incumbent[static_cast<std::size_t>(i)] =
                std::round(incumbent[static_cast<std::size_t>(i)]);
          }
        }
      }
      continue;
    }

    const double v = relax.x[static_cast<std::size_t>(branch)];
    Node down = node;
    down.bound = relax.objective;
    down.bounds.push_back(
        Constraint{{Term{branch, 1.0}}, Sense::kLe, std::floor(v), "bb_dn"});
    Node up = node;
    up.bound = relax.objective;
    up.bounds.push_back(
        Constraint{{Term{branch, 1.0}}, Sense::kGe, std::ceil(v), "bb_up"});
    open.push(std::move(down));
    open.push(std::move(up));
  }

  if (incumbent.empty()) {
    out.status = any_lp_solved && out.nodes_explored >= options.max_nodes
                     ? MipStatus::kNodeLimit
                     : MipStatus::kInfeasible;
    return out;
  }
  out.x = std::move(incumbent);
  out.objective = incumbent_obj;
  out.best_bound = open.empty() ? incumbent_obj : best_open_bound;
  out.status = open.empty() || out.nodes_explored < options.max_nodes
                   ? MipStatus::kOptimal
                   : MipStatus::kNodeLimit;
  // When we drained the queue, the bound equals the incumbent.
  if (out.status == MipStatus::kOptimal) out.best_bound = incumbent_obj;
  return out;
}

}  // namespace flexwan::milp
