// Branch-and-bound MILP solver over the simplex LP relaxation.
//
// Best-first search: nodes are ordered by their relaxation bound, branching
// on the most-fractional integer variable.  Bound changes are expressed as
// extra constraints so the base model is never copied.  Sufficient for the
// validation-sized exact formulations of Algorithm 1 and the restoration
// program (the production-scale paths go through planning/heuristic.h).
#pragma once

#include <vector>

#include "milp/model.h"
#include "milp/simplex.h"

namespace flexwan::milp {

enum class MipStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kNodeLimit,   // best incumbent returned, optimality not proven
};

struct MipSolution {
  MipStatus status = MipStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
  int nodes_explored = 0;
  double best_bound = 0.0;  // proven bound on the optimum
  // Relative gap between incumbent and bound (0 when proven optimal).
  double gap() const;
};

struct MipOptions {
  int max_nodes = 200000;
  double integrality_tolerance = 1e-6;
  // Stop when |incumbent - bound| / max(1,|incumbent|) falls below this.
  double relative_gap = 1e-9;
  LpOptions lp;
};

MipSolution solve_mip(const Model& model, const MipOptions& options = {});

}  // namespace flexwan::milp
