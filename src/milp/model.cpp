#include "milp/model.h"

#include <cmath>
#include <stdexcept>

namespace flexwan::milp {

VarId Model::add_var(std::string name, VarType type, double lower,
                     double upper, double objective) {
  if (lower > upper) {
    throw std::invalid_argument("add_var: lower > upper for " + name);
  }
  vars_.push_back(Variable{std::move(name), type, lower, upper, objective});
  return static_cast<VarId>(vars_.size() - 1);
}

void Model::add_constraint(Constraint c) {
  for (const Term& t : c.terms) {
    if (t.var < 0 || t.var >= var_count()) {
      throw std::invalid_argument("add_constraint: unknown variable id");
    }
  }
  constraints_.push_back(std::move(c));
}

void Model::add_constraint(std::vector<Term> terms, Sense sense, double rhs,
                           std::string name) {
  add_constraint(Constraint{std::move(terms), sense, rhs, std::move(name)});
}

double Model::objective_value(const std::vector<double>& x) const {
  double v = 0.0;
  for (std::size_t i = 0; i < vars_.size() && i < x.size(); ++i) {
    v += vars_[i].objective * x[i];
  }
  return v;
}

bool Model::feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != vars_.size()) return false;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    const auto& v = vars_[i];
    if (x[i] < v.lower - tol || x[i] > v.upper + tol) return false;
    if (v.type != VarType::kContinuous &&
        std::abs(x[i] - std::round(x[i])) > tol) {
      return false;
    }
  }
  for (const auto& c : constraints_) {
    double lhs = 0.0;
    for (const Term& t : c.terms) lhs += t.coeff * x[static_cast<std::size_t>(t.var)];
    switch (c.sense) {
      case Sense::kLe:
        if (lhs > c.rhs + tol) return false;
        break;
      case Sense::kGe:
        if (lhs < c.rhs - tol) return false;
        break;
      case Sense::kEq:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace flexwan::milp
