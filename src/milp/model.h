// Mixed-integer linear programming modeling layer.
//
// The paper solves Algorithm 1 (planning) and the §8 restoration program
// with Gurobi; we have no solver bindings, so this module provides our own:
// a declarative model (variables, linear constraints, objective), a dense
// two-phase simplex for LP relaxations (simplex.h), and branch-and-bound for
// integrality (branch_and_bound.h).  It is exact — used to validate the
// scalable heuristic planner on small instances and for the ε-sweep ablation.
#pragma once

#include <string>
#include <vector>

#include "util/expected.h"

namespace flexwan::milp {

using VarId = int;

enum class VarType { kContinuous, kInteger, kBinary };

enum class Sense { kLe, kGe, kEq };

enum class Direction { kMinimize, kMaximize };

// A declared decision variable with simple bounds.
struct Variable {
  std::string name;
  VarType type = VarType::kContinuous;
  double lower = 0.0;
  double upper = 1e30;  // treated as +infinity
  double objective = 0.0;
};

// One term of a linear expression.
struct Term {
  VarId var = -1;
  double coeff = 0.0;
};

// A linear constraint  sum(terms) sense rhs.
struct Constraint {
  std::vector<Term> terms;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  std::string name;
};

// A declarative MILP model.
class Model {
 public:
  VarId add_var(std::string name, VarType type, double lower, double upper,
                double objective = 0.0);
  VarId add_binary(std::string name, double objective = 0.0) {
    return add_var(std::move(name), VarType::kBinary, 0.0, 1.0, objective);
  }
  VarId add_integer(std::string name, double lower, double upper,
                    double objective = 0.0) {
    return add_var(std::move(name), VarType::kInteger, lower, upper,
                   objective);
  }

  void add_constraint(Constraint c);
  void add_constraint(std::vector<Term> terms, Sense sense, double rhs,
                      std::string name = {});

  void set_direction(Direction d) { direction_ = d; }
  Direction direction() const { return direction_; }

  int var_count() const { return static_cast<int>(vars_.size()); }
  int constraint_count() const { return static_cast<int>(constraints_.size()); }
  const Variable& var(VarId id) const { return vars_[static_cast<std::size_t>(id)]; }
  Variable& var(VarId id) { return vars_[static_cast<std::size_t>(id)]; }
  const std::vector<Variable>& vars() const { return vars_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  // Evaluates the objective for an assignment (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  // Checks an assignment against every constraint and bound within `tol`.
  bool feasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> constraints_;
  Direction direction_ = Direction::kMinimize;
};

}  // namespace flexwan::milp
