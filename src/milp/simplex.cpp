#include "milp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flexwan::milp {

namespace {

constexpr double kInfinity = 1e29;

// Internal standard form:  minimize c^T y,  R y (sense) b with b >= 0, y >= 0.
struct StandardForm {
  int n = 0;                          // structural (shifted) variables
  std::vector<double> cost;           // size n
  std::vector<std::vector<double>> rows;
  std::vector<Sense> senses;
  std::vector<double> rhs;
  std::vector<double> shift;          // x_i = y_i + shift_i
  double objective_constant = 0.0;
  bool maximize = false;
};

StandardForm build_standard_form(const Model& model,
                                 const std::vector<Constraint>& extra) {
  StandardForm sf;
  sf.n = model.var_count();
  sf.maximize = model.direction() == Direction::kMaximize;
  sf.cost.resize(static_cast<std::size_t>(sf.n));
  sf.shift.resize(static_cast<std::size_t>(sf.n));
  for (int i = 0; i < sf.n; ++i) {
    const auto& v = model.var(i);
    sf.shift[static_cast<std::size_t>(i)] = v.lower;
    const double c = sf.maximize ? -v.objective : v.objective;
    sf.cost[static_cast<std::size_t>(i)] = c;
    sf.objective_constant += c * v.lower;
  }

  auto add_row = [&](const std::vector<Term>& terms, Sense sense, double rhs) {
    std::vector<double> row(static_cast<std::size_t>(sf.n), 0.0);
    double adjusted = rhs;
    for (const Term& t : terms) {
      row[static_cast<std::size_t>(t.var)] += t.coeff;
      adjusted -= t.coeff * sf.shift[static_cast<std::size_t>(t.var)];
    }
    if (adjusted < 0.0) {
      for (double& v : row) v = -v;
      adjusted = -adjusted;
      sense = sense == Sense::kLe ? Sense::kGe
              : sense == Sense::kGe ? Sense::kLe
                                    : Sense::kEq;
    }
    sf.rows.push_back(std::move(row));
    sf.senses.push_back(sense);
    sf.rhs.push_back(adjusted);
  };

  for (const auto& c : model.constraints()) add_row(c.terms, c.sense, c.rhs);
  for (const auto& c : extra) add_row(c.terms, c.sense, c.rhs);
  // Finite upper bounds become explicit rows on the shifted variable.
  for (int i = 0; i < sf.n; ++i) {
    const auto& v = model.var(i);
    if (v.upper < kInfinity) {
      add_row({Term{i, 1.0}}, Sense::kLe, v.upper);
    }
  }
  return sf;
}

// Dense tableau simplex engine.
class Tableau {
 public:
  Tableau(const StandardForm& sf, const LpOptions& options)
      : sf_(sf), options_(options) {
    const int m = static_cast<int>(sf.rows.size());
    // Columns: structural | slack/surplus | artificial | rhs.
    slack_start_ = sf.n;
    int slack_count = 0;
    for (Sense s : sf.senses) {
      if (s != Sense::kEq) ++slack_count;
    }
    art_start_ = slack_start_ + slack_count;
    cols_ = art_start_ + m;  // at most one artificial per row
    rhs_col_ = cols_;

    t_.assign(static_cast<std::size_t>(m),
              std::vector<double>(static_cast<std::size_t>(cols_ + 1), 0.0));
    basis_.assign(static_cast<std::size_t>(m), -1);
    deleted_.assign(static_cast<std::size_t>(m), false);
    artificial_.assign(static_cast<std::size_t>(cols_), false);

    int slack = slack_start_;
    int art = art_start_;
    for (int r = 0; r < m; ++r) {
      auto& row = t_[static_cast<std::size_t>(r)];
      for (int j = 0; j < sf.n; ++j) {
        row[static_cast<std::size_t>(j)] =
            sf.rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)];
      }
      row[static_cast<std::size_t>(rhs_col_)] =
          sf.rhs[static_cast<std::size_t>(r)];
      switch (sf.senses[static_cast<std::size_t>(r)]) {
        case Sense::kLe:
          row[static_cast<std::size_t>(slack)] = 1.0;
          basis_[static_cast<std::size_t>(r)] = slack++;
          break;
        case Sense::kGe:
          row[static_cast<std::size_t>(slack)] = -1.0;
          ++slack;
          row[static_cast<std::size_t>(art)] = 1.0;
          artificial_[static_cast<std::size_t>(art)] = true;
          basis_[static_cast<std::size_t>(r)] = art++;
          break;
        case Sense::kEq:
          row[static_cast<std::size_t>(art)] = 1.0;
          artificial_[static_cast<std::size_t>(art)] = true;
          basis_[static_cast<std::size_t>(r)] = art++;
          break;
      }
    }
  }

  LpSolution solve() {
    LpSolution out;
    // Phase 1: minimize the sum of artificial variables.
    std::vector<double> phase1(static_cast<std::size_t>(cols_), 0.0);
    for (int j = 0; j < cols_; ++j) {
      if (artificial_[static_cast<std::size_t>(j)]) {
        phase1[static_cast<std::size_t>(j)] = 1.0;
      }
    }
    if (!run(phase1, /*ban_artificials=*/false, out)) return out;
    if (objective_of(phase1) > 1e-6) {
      out.status = LpStatus::kInfeasible;
      return out;
    }
    expel_artificials();

    // Phase 2: minimize the real (standard-form) cost.
    std::vector<double> phase2(static_cast<std::size_t>(cols_), 0.0);
    for (int j = 0; j < sf_.n; ++j) {
      phase2[static_cast<std::size_t>(j)] = sf_.cost[static_cast<std::size_t>(j)];
    }
    if (!run(phase2, /*ban_artificials=*/true, out)) return out;

    out.status = LpStatus::kOptimal;
    out.x.assign(static_cast<std::size_t>(sf_.n), 0.0);
    for (std::size_t r = 0; r < basis_.size(); ++r) {
      if (deleted_[r]) continue;
      const int b = basis_[r];
      if (b >= 0 && b < sf_.n) {
        out.x[static_cast<std::size_t>(b)] =
            t_[r][static_cast<std::size_t>(rhs_col_)];
      }
    }
    // Un-shift and restore the original direction.
    double obj = sf_.objective_constant;
    for (int j = 0; j < sf_.n; ++j) {
      obj += sf_.cost[static_cast<std::size_t>(j)] *
             out.x[static_cast<std::size_t>(j)];
      out.x[static_cast<std::size_t>(j)] += sf_.shift[static_cast<std::size_t>(j)];
    }
    out.objective = sf_.maximize ? -obj : obj;
    out.iterations = iterations_;
    return out;
  }

 private:
  double objective_of(const std::vector<double>& cost) const {
    double v = 0.0;
    for (std::size_t r = 0; r < basis_.size(); ++r) {
      if (deleted_[r]) continue;
      const int b = basis_[r];
      if (b >= 0) {
        v += cost[static_cast<std::size_t>(b)] *
             t_[r][static_cast<std::size_t>(rhs_col_)];
      }
    }
    return v;
  }

  // Reduced cost of column j for the given cost vector: c_j - c_B^T A~_j.
  double reduced_cost(const std::vector<double>& cost, int j) const {
    double z = 0.0;
    for (std::size_t r = 0; r < basis_.size(); ++r) {
      if (deleted_[r]) continue;
      z += cost[static_cast<std::size_t>(basis_[r])] *
           t_[r][static_cast<std::size_t>(j)];
    }
    return cost[static_cast<std::size_t>(j)] - z;
  }

  void pivot(int row, int col) {
    auto& prow = t_[static_cast<std::size_t>(row)];
    const double p = prow[static_cast<std::size_t>(col)];
    for (double& v : prow) v /= p;
    for (std::size_t r = 0; r < t_.size(); ++r) {
      if (static_cast<int>(r) == row || deleted_[r]) continue;
      const double factor = t_[r][static_cast<std::size_t>(col)];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < t_[r].size(); ++j) {
        t_[r][j] -= factor * prow[j];
      }
      t_[r][static_cast<std::size_t>(col)] = 0.0;  // kill rounding residue
    }
    basis_[static_cast<std::size_t>(row)] = col;
    ++iterations_;
  }

  // Runs Bland-rule simplex for the given cost vector.  Returns false (and
  // fills `out.status`) on unboundedness or iteration limit.
  bool run(const std::vector<double>& cost, bool ban_artificials,
           LpSolution& out) {
    while (true) {
      if (iterations_ >= options_.max_iterations) {
        out.status = LpStatus::kIterationLimit;
        out.iterations = iterations_;
        return false;
      }
      // Bland: entering = lowest-index column with negative reduced cost.
      int entering = -1;
      for (int j = 0; j < cols_; ++j) {
        if (ban_artificials && artificial_[static_cast<std::size_t>(j)]) continue;
        if (reduced_cost(cost, j) < -options_.tolerance) {
          entering = j;
          break;
        }
      }
      if (entering < 0) return true;  // optimal
      // Ratio test; Bland tie-break on smallest basis index.
      int leaving = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < t_.size(); ++r) {
        if (deleted_[r]) continue;
        const double a = t_[r][static_cast<std::size_t>(entering)];
        if (a <= options_.tolerance) continue;
        const double ratio = t_[r][static_cast<std::size_t>(rhs_col_)] / a;
        if (ratio < best_ratio - 1e-12 ||
            (std::abs(ratio - best_ratio) <= 1e-12 &&
             (leaving < 0 ||
              basis_[r] < basis_[static_cast<std::size_t>(leaving)]))) {
          best_ratio = ratio;
          leaving = static_cast<int>(r);
        }
      }
      if (leaving < 0) {
        out.status = LpStatus::kUnbounded;
        out.iterations = iterations_;
        return false;
      }
      pivot(leaving, entering);
    }
  }

  // After phase 1, pivot zero-valued artificials out of the basis; rows that
  // cannot be pivoted are redundant and get deleted.
  void expel_artificials() {
    for (std::size_t r = 0; r < basis_.size(); ++r) {
      if (deleted_[r]) continue;
      const int b = basis_[r];
      if (b < 0 || !artificial_[static_cast<std::size_t>(b)]) continue;
      int col = -1;
      for (int j = 0; j < art_start_; ++j) {
        if (std::abs(t_[r][static_cast<std::size_t>(j)]) > 1e-9) {
          col = j;
          break;
        }
      }
      if (col >= 0) {
        pivot(static_cast<int>(r), col);
      } else {
        deleted_[r] = true;  // redundant row
      }
    }
  }

  const StandardForm& sf_;
  LpOptions options_;
  std::vector<std::vector<double>> t_;
  std::vector<int> basis_;
  std::vector<bool> deleted_;
  std::vector<bool> artificial_;
  int slack_start_ = 0;
  int art_start_ = 0;
  int cols_ = 0;
  int rhs_col_ = 0;
  int iterations_ = 0;
};

}  // namespace

LpSolution solve_lp_relaxation(const Model& model,
                               const std::vector<Constraint>& extra,
                               const LpOptions& options) {
  OBS_SPAN("milp.simplex.solve");
  const StandardForm sf = build_standard_form(model, extra);
  Tableau tableau(sf, options);
  LpSolution solution = tableau.solve();
  // Registry-backed twins of LpSolution::iterations: the struct field stays
  // (API compatibility) but now the totals also surface in run reports.
  OBS_COUNTER_ADD("milp.simplex.calls", 1);
  OBS_COUNTER_ADD("milp.simplex.pivots", solution.iterations);
  return solution;
}

}  // namespace flexwan::milp
