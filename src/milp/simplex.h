// Dense two-phase primal simplex.
//
// Solves   minimize c^T x   s.t.  A x {<=,>=,=} b,  0 <= x <= u
// Upper bounds are handled by appending explicit rows (models here are small
// — the exact formulations are only run on validation-sized networks, so a
// dense tableau with Bland's anti-cycling rule is the simple, robust choice).
#pragma once

#include <vector>

#include "milp/model.h"

namespace flexwan::milp {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;        // in the *original* model direction
  std::vector<double> x;         // one value per model variable
  int iterations = 0;
};

struct LpOptions {
  int max_iterations = 200000;
  double tolerance = 1e-8;
};

// Solves the LP relaxation of `model` (integrality dropped).  Optional
// `extra` constraints implement branch-and-bound bound changes without
// copying the model.
LpSolution solve_lp_relaxation(const Model& model,
                               const std::vector<Constraint>& extra = {},
                               const LpOptions& options = {});

}  // namespace flexwan::milp
