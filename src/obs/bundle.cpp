#include "obs/bundle.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/workprof.h"

// Injected by src/obs/CMakeLists.txt; fallbacks keep non-CMake builds
// compiling (e.g. IDE single-file checks).
#ifndef FLEXWAN_GIT_DESCRIBE
#define FLEXWAN_GIT_DESCRIBE "unknown"
#endif
#ifndef FLEXWAN_BUILD_TYPE
#define FLEXWAN_BUILD_TYPE "unknown"
#endif
#ifndef FLEXWAN_COMPILER
#define FLEXWAN_COMPILER "unknown"
#endif
#ifndef FLEXWAN_CXX_FLAGS
#define FLEXWAN_CXX_FLAGS ""
#endif

namespace flexwan::obs {

namespace {

Error bad_bundle(const std::string& what) {
  return Error::make("bad_bundle", what);
}

Expected<bool> write_text_file(const std::string& path,
                               const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Error::make("io_error", "cannot open " + path + " for writing");
  }
  out << contents;
  out.flush();
  if (!out) return Error::make("io_error", "short write to " + path);
  return true;
}

Expected<std::string> read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error::make("io_error", "cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

BundleProvenance make_bundle_provenance(int threads) {
  BundleProvenance p;
  p.git_describe = FLEXWAN_GIT_DESCRIBE;
  p.build_type = FLEXWAN_BUILD_TYPE;
  p.compiler = FLEXWAN_COMPILER;
  p.cxx_flags = FLEXWAN_CXX_FLAGS;
  p.threads = threads;
  return p;
}

std::string Bundle::run_json() const {
  std::ostringstream out;
  out << "{\n  \"schema_version\": " << kBundleSchemaVersion << ",\n"
      << "  \"tool\": \"" << json::escape(tool) << "\",\n"
      << "  \"config\": {";
  bool first = true;
  for (const auto& [key, value] : config) {
    out << (first ? "" : ",") << "\n    \"" << json::escape(key)
        << "\": " << json::to_string(value);
    first = false;
  }
  out << "\n  },\n  \"results\": {";
  first = true;
  for (const auto& [key, value] : results) {
    out << (first ? "" : ",") << "\n    \"" << json::escape(key)
        << "\": " << json::number_to_string(value);
    first = false;
  }
  out << "\n  },\n  \"provenance\": {\n"
      << "    \"git_describe\": \"" << json::escape(provenance.git_describe)
      << "\",\n"
      << "    \"build_type\": \"" << json::escape(provenance.build_type)
      << "\",\n"
      << "    \"compiler\": \"" << json::escape(provenance.compiler)
      << "\",\n"
      << "    \"cxx_flags\": \"" << json::escape(provenance.cxx_flags)
      << "\",\n"
      << "    \"threads\": " << provenance.threads << "\n"
      << "  }\n}\n";
  return out.str();
}

std::string Bundle::summary_md() const {
  std::ostringstream out;
  out << "# Evidence bundle: " << tool << "\n\n";
  // Headline the event-log health so a bad run is visible without opening
  // events.jsonl.  Counts come from the global log at render time — the
  // same records write() serializes.
  {
    std::size_t warns = 0;
    std::size_t errors = 0;
    std::map<std::string, std::size_t> by_category;
    const auto records = EventLog::instance().records();
    for (const auto& record : records) {
      if (record.severity == Severity::kWarn) ++warns;
      if (record.severity == Severity::kError) ++errors;
      ++by_category[record.category];
    }
    out << "**Events**: " << records.size() << " total, " << warns
        << " warn, " << errors << " error\n\n";
    // Per-category counts (name-sorted via the map) mirror the
    // events.<category> fields bundle_diff flattens, so summary.md and
    // diff.json name categories identically.
    if (!by_category.empty()) {
      out << "**Events by category**: ";
      bool first = true;
      for (const auto& [category, count] : by_category) {
        if (!first) out << ", ";
        out << category << " " << count;
        first = false;
      }
      out << "\n\n";
    }
  }
  if (!config.empty()) {
    out << "## Configuration\n\n";
    for (const auto& [key, value] : config) {
      out << "- `" << key << "`: " << json::to_string(value) << "\n";
    }
    out << "\n";
  }
  if (!results.empty()) {
    out << "## Results\n\n| field | value |\n|---|---|\n";
    for (const auto& [key, value] : results) {
      out << "| " << key << " | " << json::number_to_string(value) << " |\n";
    }
    out << "\n";
  }
  if (!summary_body_md.empty()) {
    out << summary_body_md;
    if (summary_body_md.back() != '\n') out << "\n";
  }
  return out.str();
}

Expected<bool> Bundle::write() const {
  if (dir.empty()) return Error::make("io_error", "bundle directory not set");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Error::make("io_error",
                       "cannot create " + dir + ": " + ec.message());
  }
  const std::filesystem::path base(dir);
  Expected<bool> result = true;
  const auto keep_first_error = [&](Expected<bool> r) {
    if (!r && result) result = r;
  };
  keep_first_error(write_text_file((base / "run.json").string(), run_json()));
  keep_first_error(write_text_file((base / "events.jsonl").string(),
                                   EventLog::instance().to_jsonl()));
  keep_first_error(
      write_text_file((base / "metrics.json").string(),
                      Registry::instance().to_json(
                          /*include_empty_histograms=*/false)));
  keep_first_error(
      write_text_file((base / "summary.md").string(), summary_md()));
  // The work profile is present exactly when the profiler is on (--bundle
  // turns it on); its exports flush the calling thread's pending context.
  if (workprof_enabled()) {
    auto& profile = workprof::WorkProfile::instance();
    keep_first_error(
        write_text_file((base / "profile.json").string(), profile.to_json()));
    keep_first_error(write_text_file((base / "profile.folded").string(),
                                     profile.to_folded()));
  }
  // Same rule for the sim-time trajectory: present exactly when the sampler
  // is on.  A run whose tool never samples (plan_tool, most benches) writes
  // an empty file — "sampled nothing" and "sampler off" stay
  // distinguishable on disk.
  if (timeseries_enabled()) {
    keep_first_error(write_text_file((base / "timeseries.jsonl").string(),
                                     TimeSeries::instance().to_jsonl()));
  }
  return result;
}

std::string normalize_run_json(const std::string& run_json_text) {
  // run.json is emitted one field per line; drop the provenance threads
  // line wherever it appears.
  std::istringstream in(run_json_text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"threads\":") != std::string::npos) continue;
    out << line << '\n';
  }
  return out.str();
}

Expected<BundleData> load_bundle(const std::string& dir) {
  BundleData data;
  data.dir = dir;
  const std::filesystem::path base(dir);

  auto run_text = read_text_file((base / "run.json").string());
  if (!run_text) return bad_bundle(run_text.error().message);
  auto run = json::parse(run_text.value());
  if (!run) {
    return bad_bundle(dir + "/run.json: " + run.error().message);
  }
  data.run = std::move(run.value());
  if (!data.run.is_object()) {
    return bad_bundle(dir + "/run.json: document is not an object");
  }
  const json::Value* version = data.run.find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return bad_bundle(dir + "/run.json: missing schema_version");
  }
  if (static_cast<int>(version->as_number()) != kBundleSchemaVersion) {
    return bad_bundle(dir + "/run.json: unsupported schema_version " +
                      std::to_string(static_cast<int>(version->as_number())) +
                      " (want " + std::to_string(kBundleSchemaVersion) + ")");
  }

  auto metrics_text = read_text_file((base / "metrics.json").string());
  if (!metrics_text) return bad_bundle(metrics_text.error().message);
  auto metrics = json::parse(metrics_text.value());
  if (!metrics) {
    return bad_bundle(dir + "/metrics.json: " + metrics.error().message);
  }
  data.metrics = std::move(metrics.value());

  auto events_text = read_text_file((base / "events.jsonl").string());
  if (!events_text) return bad_bundle(events_text.error().message);
  std::istringstream lines(events_text.value());
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto event = json::parse(line);
    if (!event) {
      return bad_bundle(dir + "/events.jsonl line " +
                        std::to_string(line_no) + ": " +
                        event.error().message);
    }
    data.events.push_back(std::move(event.value()));
  }

  // profile.json is optional: bundles predating work profiling (or captured
  // with the profiler off) simply have no profile fields to compare.
  const auto profile_path = (base / "profile.json").string();
  if (std::filesystem::exists(profile_path)) {
    auto profile_text = read_text_file(profile_path);
    if (!profile_text) return bad_bundle(profile_text.error().message);
    auto profile = json::parse(profile_text.value());
    if (!profile) {
      return bad_bundle(dir + "/profile.json: " + profile.error().message);
    }
    data.profile = std::move(profile.value());
  }

  // timeseries.jsonl is optional like profile.json: bundles predating the
  // sampler (or captured with it off) have no trajectory fields to compare.
  const auto timeseries_path = (base / "timeseries.jsonl").string();
  if (std::filesystem::exists(timeseries_path)) {
    auto ts_text = read_text_file(timeseries_path);
    if (!ts_text) return bad_bundle(ts_text.error().message);
    std::istringstream ts_lines(ts_text.value());
    std::string ts_line;
    int ts_line_no = 0;
    while (std::getline(ts_lines, ts_line)) {
      ++ts_line_no;
      if (ts_line.empty()) continue;
      auto sample = parse_sample(ts_line);
      if (!sample) {
        return bad_bundle(dir + "/timeseries.jsonl line " +
                          std::to_string(ts_line_no) + ": " +
                          sample.error().message);
      }
      data.timeseries.push_back(std::move(sample.value()));
    }
  }
  return data;
}

Expected<BundleThresholds> load_thresholds(const std::string& json_text) {
  auto parsed = json::parse(json_text);
  if (!parsed) return parsed.error();
  const json::Value& doc = parsed.value();
  if (!doc.is_object()) {
    return Error::make("bad_thresholds", "document is not an object");
  }
  BundleThresholds thresholds;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "default") {
      if (!value.is_number() || value.as_number() < 0.0) {
        return Error::make("bad_thresholds",
                           "'default' must be a non-negative number");
      }
      thresholds.default_tolerance = value.as_number();
    } else if (key == "profile_default") {
      if (!value.is_number() || value.as_number() < 0.0) {
        return Error::make("bad_thresholds",
                           "'profile_default' must be a non-negative number");
      }
      thresholds.profile_default_tolerance = value.as_number();
    } else if (key == "fields") {
      if (!value.is_object()) {
        return Error::make("bad_thresholds", "'fields' must be an object");
      }
      for (const auto& [field, tol] : value.as_object()) {
        if (!tol.is_number() || tol.as_number() < 0.0) {
          return Error::make("bad_thresholds",
                             "threshold for '" + field +
                                 "' must be a non-negative number");
        }
        thresholds.per_field[field] = tol.as_number();
      }
    } else {
      return Error::make("bad_thresholds", "unknown key '" + key + "'");
    }
  }
  return thresholds;
}

Expected<BundleThresholds> load_thresholds_file(const std::string& path) {
  auto text = read_text_file(path);
  if (!text) return text.error();
  auto thresholds = load_thresholds(text.value());
  if (!thresholds) {
    return Error::make(thresholds.error().code,
                       path + ": " + thresholds.error().message);
  }
  return thresholds;
}

const char* field_status_name(FieldStatus status) {
  switch (status) {
    case FieldStatus::kOk: return "ok";
    case FieldStatus::kViolation: return "VIOLATION";
    case FieldStatus::kOnlyBaseline: return "VANISHED";
    case FieldStatus::kOnlyCandidate: return "new";
  }
  return "?";
}

namespace {

// Depth-first flatten of numeric leaves into dotted paths.
void flatten_numeric(const json::Value& value, const std::string& prefix,
                     std::map<std::string, double>& out) {
  if (value.is_number()) {
    out[prefix] = value.as_number();
  } else if (value.is_object()) {
    for (const auto& [key, child] : value.as_object()) {
      flatten_numeric(child, prefix.empty() ? key : prefix + "." + key, out);
    }
  }
  // Arrays (histogram buckets) and strings are not comparison targets.
}

// The comparable field set of one bundle.
std::map<std::string, double> comparable_fields(const BundleData& data) {
  std::map<std::string, double> fields;
  if (const json::Value* results = data.run.find("results")) {
    flatten_numeric(*results, "results", fields);
  }
  for (const char* section : {"counters", "gauges"}) {
    if (const json::Value* v = data.metrics.find(section)) {
      flatten_numeric(*v, std::string("metrics.") + section, fields);
    }
  }
  if (const json::Value* hists = data.metrics.find("histograms")) {
    if (hists->is_object()) {
      for (const auto& [name, hist] : hists->as_object()) {
        for (const char* stat : {"count", "sum", "p50", "p90", "p99"}) {
          if (const json::Value* v = hist.find(stat)) {
            if (v->is_number()) {
              fields["metrics.histograms." + name + "." + stat] =
                  v->as_number();
            }
          }
        }
      }
    }
  }
  fields["events.total"] = static_cast<double>(data.events.size());
  for (const json::Value& event : data.events) {
    if (const json::Value* cat = event.find("cat")) {
      if (cat->is_string()) {
        fields["events." + cat->as_string()] += 1.0;
      }
    }
  }
  // Work-profile nodes: "profile.(root);<frame>;...;<counter>".  Gated
  // exactly by default (BundleThresholds::profile_default_tolerance).
  if (const json::Value* root = data.profile.find("root")) {
    workprof::flatten_json_tree(*root, "profile.", fields);
  }
  // Time-series trajectory: row counts plus resilience indicators
  // *recomputed* from the stored trace — not read from run.json — so the
  // gate holds even for bundles whose tool never published health results.
  // Skipped entirely when the bundle carries no trace, keeping pre-sampler
  // baselines comparable without phantom only-baseline violations.
  if (!data.timeseries.empty()) {
    fields["timeseries.samples"] = static_cast<double>(data.timeseries.size());
    for (const TimeSample& sample : data.timeseries) {
      fields["timeseries.reason." + sample.reason] += 1.0;
    }
    const HealthIndicators health = derive_health(data.timeseries);
    for (const auto& [name, value] : flatten_health(health, "timeseries.health.")) {
      fields[name] = value;
    }
  }
  return fields;
}

}  // namespace

Expected<BundleComparison> compare_bundles(
    const BundleData& baseline, const BundleData& candidate,
    const BundleThresholds& thresholds) {
  if (!std::isfinite(thresholds.default_tolerance) ||
      thresholds.default_tolerance < 0.0) {
    return Error::make("bad_thresholds",
                       "default tolerance must be a finite value >= 0");
  }
  BundleComparison out;
  out.baseline_dir = baseline.dir;
  out.candidate_dir = candidate.dir;

  const auto base_fields = comparable_fields(baseline);
  const auto cand_fields = comparable_fields(candidate);

  for (const auto& [field, base_value] : base_fields) {
    FieldDiff diff;
    diff.field = field;
    diff.baseline = base_value;
    diff.tolerance = thresholds.tolerance_for(field);
    const auto it = cand_fields.find(field);
    if (it == cand_fields.end()) {
      diff.status = FieldStatus::kOnlyBaseline;
      ++out.violations;
    } else {
      diff.candidate = it->second;
      const double delta = std::fabs(diff.candidate - diff.baseline);
      diff.rel_change =
          base_value != 0.0 ? delta / std::fabs(base_value) : delta;
      if (diff.rel_change > diff.tolerance) {
        diff.status = FieldStatus::kViolation;
        ++out.violations;
      }
    }
    out.fields.push_back(std::move(diff));
  }
  for (const auto& [field, cand_value] : cand_fields) {
    if (base_fields.count(field) != 0) continue;
    FieldDiff diff;
    diff.field = field;
    diff.status = FieldStatus::kOnlyCandidate;
    diff.candidate = cand_value;
    diff.tolerance = thresholds.tolerance_for(field);
    out.fields.push_back(std::move(diff));
  }
  // base_fields / cand_fields are sorted maps, but the only-candidate rows
  // were appended after the shared rows; restore global field order.
  std::sort(out.fields.begin(), out.fields.end(),
            [](const FieldDiff& a, const FieldDiff& b) {
              return a.field < b.field;
            });
  return out;
}

std::string BundleComparison::to_diff_json() const {
  std::ostringstream out;
  out << "{\n  \"schema_version\": " << kBundleSchemaVersion << ",\n"
      << "  \"baseline\": \"" << json::escape(baseline_dir) << "\",\n"
      << "  \"candidate\": \"" << json::escape(candidate_dir) << "\",\n"
      << "  \"violations\": " << violations << ",\n"
      << "  \"fields\": [";
  bool first = true;
  for (const FieldDiff& f : fields) {
    out << (first ? "" : ",") << "\n    {\"field\": \""
        << json::escape(f.field) << "\", \"status\": \""
        << field_status_name(f.status) << "\", \"baseline\": "
        << json::number_to_string(f.baseline) << ", \"candidate\": "
        << json::number_to_string(f.candidate) << ", \"rel_change\": "
        << json::number_to_string(f.rel_change) << ", \"tolerance\": "
        << json::number_to_string(f.tolerance) << "}";
    first = false;
  }
  out << "\n  ]\n}\n";
  return out.str();
}

std::string BundleComparison::to_diff_md() const {
  std::ostringstream out;
  out << "# Bundle diff\n\n- baseline: `" << baseline_dir
      << "`\n- candidate: `" << candidate_dir << "`\n- violations: **"
      << violations << "**\n\n"
      << "| field | baseline | candidate | rel change | tolerance | status "
         "|\n|---|---|---|---|---|---|\n";
  for (const FieldDiff& f : fields) {
    // Unchanged in-tolerance fields stay out of the table so the report
    // reads as "what moved", not a registry dump.
    if (f.status == FieldStatus::kOk && f.rel_change == 0.0) continue;
    out << "| " << f.field << " | "
        << (f.status == FieldStatus::kOnlyCandidate
                ? std::string("-")
                : json::number_to_string(f.baseline))
        << " | "
        << (f.status == FieldStatus::kOnlyBaseline
                ? std::string("-")
                : json::number_to_string(f.candidate))
        << " | " << json::number_to_string(f.rel_change) << " | "
        << json::number_to_string(f.tolerance) << " | "
        << field_status_name(f.status) << " |\n";
  }
  out << "\n" << (violations > 0 ? "**FAIL**" : "OK") << ": " << violations
      << " violation(s) across " << fields.size() << " field(s)\n";
  return out.str();
}

}  // namespace flexwan::obs
