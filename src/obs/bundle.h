// Evidence bundles: one directory per run, auditable and diffable.
//
// FlexWAN's claims (cost, availability, restoration latency) are only
// credible if every planning/sim/bench run leaves a record that a reviewer
// can replay and diff.  A bundle directory holds four artifacts:
//
//   run.json        full resolved config + headline results + provenance
//                   (git describe, build flags, thread count, schema version)
//   events.jsonl    the structured event log (eventlog.h), one record per line
//   metrics.json    the metrics registry snapshot with histogram quantiles
//   summary.md      a human-readable digest of the same numbers, headlined
//                   with the warn/error event counts
//   profile.json    the work-attribution tree (workprof.h) — written only
//   profile.folded  when the profiler is on, which --bundle turns on
//   timeseries.jsonl  sim-time trajectory rows (timeseries.h), one typed
//                   sample per line — written only when the time-series
//                   sampler is on, which --bundle turns on
//
// Determinism contract: with --bundle alone (timing off, see metrics.h)
// every artifact is byte-identical at any --threads value except the single
// "threads" provenance field in run.json — the one deliberately
// environment-dependent field, which normalize_run_json() strips before a
// byte compare (CI's evidence-bundle job does exactly that).  Wall-clock
// timestamps never enter a bundle.
//
// compare_bundles() is the "baseline capture → change → compare" gate: it
// flattens both bundles to dotted numeric fields (run.json results, metrics
// counters/gauges, histogram wall stats, per-category event counts) and
// checks each field's relative change against per-field thresholds.  The
// bundle_diff tool wraps it with stable exit codes: 0 clean, 1 threshold
// violation, 2 malformed/missing bundle — the same convention as perf_diff.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/timeseries.h"
#include "util/expected.h"

namespace flexwan::obs {

// Bumped on any incompatible change to run.json / events.jsonl / diff.json
// layout; consumers refuse to compare mismatched versions.  The bump policy
// is documented in DESIGN.md "Evidence bundles".
inline constexpr int kBundleSchemaVersion = 1;

// Build provenance recorded in run.json.  git_describe is captured at
// configure time (stale until the next CMake run — acceptable for an
// audit trail; the value never feeds any computation).  `threads` is the
// engine thread count: the only run.json field allowed to differ between
// otherwise-identical runs.
struct BundleProvenance {
  std::string git_describe;
  std::string build_type;
  std::string compiler;
  std::string cxx_flags;
  int threads = 1;
};

// Fills the build-time fields from the compile definitions injected by
// src/obs/CMakeLists.txt.
BundleProvenance make_bundle_provenance(int threads);

// One run's evidence, assembled by the tool that owns the run and written
// with write().  `config` and `results` keep insertion order (the caller
// lists fields in presentation order).
struct Bundle {
  std::string dir;   // output directory, created if missing
  std::string tool;  // "sim_tool", "plan_tool", "bench_fig12_scaling", ...
  std::vector<std::pair<std::string, json::Value>> config;
  std::vector<std::pair<std::string, double>> results;
  // Markdown appended below the generated summary.md header.
  std::string summary_body_md;
  BundleProvenance provenance;

  std::string run_json() const;
  std::string summary_md() const;

  // Writes run.json, events.jsonl (from the global EventLog), metrics.json
  // (registry snapshot, empty histograms omitted), and summary.md into
  // `dir`.  First error wins; all four files are still attempted.
  Expected<bool> write() const;
};

// Strips the "threads" provenance line so two runs of the same
// configuration at different thread counts byte-compare equal.
std::string normalize_run_json(const std::string& run_json_text);

// A bundle read back from disk, parsed but not interpreted.
struct BundleData {
  std::string dir;
  json::Value run;                 // run.json document
  json::Value metrics;             // metrics.json document
  std::vector<json::Value> events; // one parsed object per events.jsonl line
  // profile.json document; null when the bundle predates work profiling or
  // was captured with the profiler off (both load fine).
  json::Value profile;
  // One parsed row per timeseries.jsonl line; empty when the bundle
  // predates time-series telemetry or was captured with the sampler off.
  std::vector<TimeSample> timeseries;
};

// Loads and validates a bundle directory.  Fails ("bad_bundle") when a
// required file is missing or unparsable, or when run.json's schema_version
// is unsupported.
Expected<BundleData> load_bundle(const std::string& dir);

// Per-field tolerances for compare_bundles().  A field's tolerance is the
// allowed relative change |candidate - baseline| / |baseline| (absolute
// change when the baseline is 0); 0 means the field must match exactly.
// Work-profile fields ("profile.*", from profile.json) get their own
// default of 0 — exact match — because attributed work counters are
// deterministic: any drift is a real algorithmic change, not noise.
// Intentionally variable nodes can still be opened up via per_field.
struct BundleThresholds {
  double default_tolerance = 0.10;
  double profile_default_tolerance = 0.0;
  std::map<std::string, double> per_field;  // dotted field -> tolerance

  double tolerance_for(const std::string& field) const {
    const auto it = per_field.find(field);
    if (it != per_field.end()) return it->second;
    if (field.rfind("profile.", 0) == 0) return profile_default_tolerance;
    return default_tolerance;
  }
};

// Parses a thresholds document:
//   {"default": 0.05, "profile_default": 0.0,
//    "fields": {"results.availability.mean": 0.0001}}
// All keys optional; anything else is rejected.
Expected<BundleThresholds> load_thresholds(const std::string& json_text);
Expected<BundleThresholds> load_thresholds_file(const std::string& path);

enum class FieldStatus {
  kOk,             // within tolerance
  kViolation,      // change beyond tolerance (gate failure)
  kOnlyBaseline,   // field vanished from the candidate (gate failure)
  kOnlyCandidate   // new field, informational
};

const char* field_status_name(FieldStatus status);

struct FieldDiff {
  std::string field;  // dotted path, e.g. "results.availability.mean"
  FieldStatus status = FieldStatus::kOk;
  double baseline = 0.0;
  double candidate = 0.0;
  double rel_change = 0.0;  // |c - b| / |b|, absolute when b == 0
  double tolerance = 0.0;
};

struct BundleComparison {
  std::string baseline_dir;
  std::string candidate_dir;
  std::vector<FieldDiff> fields;  // sorted by field name
  int violations = 0;  // kViolation + kOnlyBaseline count

  std::string to_diff_json() const;
  std::string to_diff_md() const;
};

// Flattens both bundles to dotted numeric fields and diffs them:
//   results.*                     from run.json
//   metrics.counters.* / gauges.* from metrics.json
//   metrics.histograms.*.{count,sum,p50,p90,p99}
//   events.total / events.<category>  counted from events.jsonl
//   profile.(root);<frame>;...;<counter>  from profile.json, gated exactly
//                                         by default (see BundleThresholds)
//   timeseries.samples / timeseries.reason.<reason>  row counts from
//                                                    timeseries.jsonl
//   timeseries.health.*  resilience indicators recomputed from the stored
//                        trace (derive_health), so a bundle whose tool
//                        predates the run.json health results still gates
//                        dips / time-to-recover / fragmentation drift
// Policy mirrors perf_diff: a field that vanished from the candidate is a
// violation (it can hide a regression); a new field is informational —
// including new profile nodes, so adding instrumentation never fails a
// stored baseline; moved work always does (the old node's value changes).
Expected<BundleComparison> compare_bundles(const BundleData& baseline,
                                           const BundleData& candidate,
                                           const BundleThresholds& thresholds);

}  // namespace flexwan::obs
