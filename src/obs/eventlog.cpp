#include "obs/eventlog.h"

#include <sstream>

namespace flexwan::obs {

namespace {

// The calling thread's active buffer (nullptr = emit to the global log).
thread_local EventBuffer* tls_event_buffer = nullptr;

}  // namespace

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "?";
}

EventRecord&& EventRecord::with(std::string key, json::Value value) && {
  fields.emplace_back(std::move(key), std::move(value));
  return std::move(*this);
}
EventRecord&& EventRecord::with(std::string key, const std::string& value) && {
  return std::move(*this).with(std::move(key), json::Value(value));
}
EventRecord&& EventRecord::with(std::string key, const char* value) && {
  return std::move(*this).with(std::move(key), json::Value(std::string(value)));
}
EventRecord&& EventRecord::with(std::string key, double value) && {
  return std::move(*this).with(std::move(key), json::Value(value));
}
EventRecord&& EventRecord::with(std::string key, int value) && {
  return std::move(*this).with(std::move(key),
                               json::Value(static_cast<double>(value)));
}
EventRecord&& EventRecord::with(std::string key, long long value) && {
  return std::move(*this).with(std::move(key),
                               json::Value(static_cast<double>(value)));
}
EventRecord&& EventRecord::with(std::string key, std::size_t value) && {
  return std::move(*this).with(std::move(key),
                               json::Value(static_cast<double>(value)));
}
EventRecord&& EventRecord::with(std::string key, bool value) && {
  return std::move(*this).with(std::move(key), json::Value(value));
}

std::string EventRecord::to_jsonl() const {
  std::ostringstream out;
  out << "{\"seq\": " << seq;
  if (time_days >= 0.0) {
    out << ", \"t_days\": " << json::number_to_string(time_days);
  }
  out << ", \"cat\": \"" << json::escape(category) << "\""
      << ", \"sev\": \"" << severity_name(severity) << "\""
      << ", \"name\": \"" << json::escape(name) << "\""
      << ", \"fields\": {";
  bool first = true;
  for (const auto& [key, value] : fields) {
    out << (first ? "" : ", ") << "\"" << json::escape(key)
        << "\": " << json::to_string(value);
    first = false;
  }
  out << "}}";
  return out.str();
}

EventRecord make_event(std::string category, Severity severity,
                       std::string name, double time_days) {
  EventRecord record;
  record.category = std::move(category);
  record.severity = severity;
  record.name = std::move(name);
  record.time_days = time_days;
  return record;
}

void EventBuffer::emit(EventRecord record) {
  if (record.time_days < 0.0 && time_days_ >= 0.0) {
    record.time_days = time_days_;
  }
  records_.push_back(std::move(record));
}

EventLog& EventLog::instance() {
  static EventLog* const log = new EventLog();  // never destroyed
  return *log;
}

void EventLog::emit(EventRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.seq = next_seq_++;
  records_.push_back(std::move(record));
}

void EventLog::splice(EventBuffer&& buffer) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.reserve(records_.size() + buffer.records_.size());
  for (EventRecord& record : buffer.records_) {
    record.seq = next_seq_++;
    records_.push_back(std::move(record));
  }
  buffer.records_.clear();
}

std::vector<EventRecord> EventLog::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::string EventLog::to_jsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const EventRecord& record : records_) {
    out += record.to_jsonl();
    out += '\n';
  }
  return out;
}

void EventLog::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  next_seq_ = 1;
  min_severity_.store(static_cast<int>(Severity::kInfo),
                      std::memory_order_relaxed);
}

ScopedEventBuffer::ScopedEventBuffer(EventBuffer* buffer)
    : previous_(tls_event_buffer) {
  tls_event_buffer = buffer;
}

ScopedEventBuffer::~ScopedEventBuffer() { tls_event_buffer = previous_; }

void emit_event(EventRecord record) {
  if (!events_enabled()) return;
  if (record.severity < EventLog::instance().min_severity()) return;
  if (tls_event_buffer != nullptr) {
    tls_event_buffer->emit(std::move(record));
  } else {
    EventLog::instance().emit(std::move(record));
  }
}

}  // namespace flexwan::obs
