// Structured, append-only event log — the narrative half of an evidence
// bundle (bundle.h).
//
// Metrics answer "how much work happened"; the event log answers "what
// happened, in what order": every fiber cut, repair, growth tick,
// restoration apply/revert, planner stage, and controller deployment leaves
// one typed record.  Records land in events.jsonl, one JSON object per
// line, and the whole log is DETERMINISTIC: sequence numbers are dense and
// monotonic from 1, payloads carry only simulation-derived values (never
// wall-clock timestamps), and parallel sections write through per-task
// EventBuffers that the owner splices back in index order — so the file is
// byte-identical at every --threads value, like every other FlexWAN output.
//
// Emission follows the metrics rules (metrics.h): disabled call sites pay
// one relaxed load + branch (guard with events_enabled() before building a
// record), output never touches stdout, and severity filtering happens at
// emit time so a filtered run never buffers dropped records.
//
// Routing: emit_event() appends to the calling thread's active
// ScopedEventBuffer when one is installed (the sim installs one per trial),
// otherwise directly to the global EventLog under its mutex.  Serial code
// (planner stages, controller ops, the tools themselves) can emit straight
// to the global log; concurrent code MUST go through a buffer or the
// interleaving — and therefore the bundle bytes — becomes schedule-
// dependent.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace flexwan::obs {

enum class Severity { kInfo = 0, kWarn = 1, kError = 2 };

const char* severity_name(Severity severity);

// Sentinel for "no simulation time": the t_days key is omitted from the
// jsonl record.  Sim-loop emissions stamp the trial's current time via
// EventBuffer::set_time_days instead.
inline constexpr double kEventNoTime = -1.0;

// One structured event.  `fields` keeps insertion order (call sites list
// the most important field first); values reuse the obs JSON Value so any
// payload that serializes also round-trips through the parser.
struct EventRecord {
  std::uint64_t seq = 0;  // assigned by the global log; dense from 1
  double time_days = kEventNoTime;
  Severity severity = Severity::kInfo;
  std::string category;  // "sim", "restoration", "planner", "controller",
                         // "server"
  std::string name;      // dotted event name, e.g. "sim.cut"
  std::vector<std::pair<std::string, json::Value>> fields;

  // Fluent payload builder: make_event(...).with("fiber", 3).with(...).
  EventRecord&& with(std::string key, json::Value value) &&;
  EventRecord&& with(std::string key, const std::string& value) &&;
  EventRecord&& with(std::string key, const char* value) &&;
  EventRecord&& with(std::string key, double value) &&;
  EventRecord&& with(std::string key, int value) &&;
  EventRecord&& with(std::string key, long long value) &&;
  EventRecord&& with(std::string key, std::size_t value) &&;
  EventRecord&& with(std::string key, bool value) &&;

  // One JSON object, no trailing newline:
  //   {"seq": 7, "t_days": 1.5, "cat": "sim", "sev": "info",
  //    "name": "sim.cut", "fields": {...}}
  std::string to_jsonl() const;
};

EventRecord make_event(std::string category, Severity severity,
                       std::string name, double time_days = kEventNoTime);

// Unsynchronized per-task record buffer.  A parallel task (e.g. one sim
// trial) collects its events here; the owner splices buffers back into the
// global log in task-index order, which re-assigns dense sequence numbers.
class EventBuffer {
 public:
  // Records emitted with no explicit time inherit the buffer's current
  // time (the sim sets it once per timeline event).
  void set_time_days(double t) { time_days_ = t; }
  double time_days() const { return time_days_; }

  void emit(EventRecord record);

  const std::vector<EventRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

 private:
  friend class EventLog;
  std::vector<EventRecord> records_;
  double time_days_ = kEventNoTime;
};

// The process-wide log.  Appends take a mutex (emission sites are serial
// or buffered, so the lock is uncontended); min_severity is an atomic so
// the filter check stays lock-free.
class EventLog {
 public:
  static EventLog& instance();

  // Records strictly below this severity are dropped at emit time (both
  // direct and buffered emission).
  void set_min_severity(Severity s) {
    min_severity_.store(static_cast<int>(s), std::memory_order_relaxed);
  }
  Severity min_severity() const {
    return static_cast<Severity>(
        min_severity_.load(std::memory_order_relaxed));
  }

  // Assigns the next sequence number and appends.
  void emit(EventRecord record);

  // Appends every record of `buffer` (already severity-filtered at emit),
  // assigning dense sequence numbers in buffer order.  Call once per
  // parallel task, in task-index order.
  void splice(EventBuffer&& buffer);

  std::vector<EventRecord> records() const;
  std::size_t size() const;

  // Every record as one line, in sequence order, trailing newline included
  // (empty string when no events were recorded).
  std::string to_jsonl() const;

  // Drops all records and restarts sequence numbers at 1; the severity
  // filter resets to kInfo.  Tests and multi-phase tools use this.
  void reset();

 private:
  EventLog() = default;

  mutable std::mutex mu_;
  std::uint64_t next_seq_ = 1;
  std::atomic<int> min_severity_{static_cast<int>(Severity::kInfo)};
  std::vector<EventRecord> records_;
};

// Installs `buffer` as the calling thread's emission target for the scope
// (previous target restored on destruction, so scopes nest).
class ScopedEventBuffer {
 public:
  explicit ScopedEventBuffer(EventBuffer* buffer);
  ~ScopedEventBuffer();

  ScopedEventBuffer(const ScopedEventBuffer&) = delete;
  ScopedEventBuffer& operator=(const ScopedEventBuffer&) = delete;

 private:
  EventBuffer* previous_ = nullptr;
};

// Emission entry point: no-op when events are disabled, severity-filtered,
// routed to the thread's active buffer or the global log.  Call sites guard
// with events_enabled() before building the record so a disabled run never
// allocates payload strings.
void emit_event(EventRecord record);

}  // namespace flexwan::obs
