#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace flexwan::obs::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Expected<Value> parse_document() {
    skip_ws();
    auto value = parse_value();
    if (!value) return value;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON value");
    }
    return value;
  }

 private:
  // parse_object/parse_array bump depth_ *before* constructing the guard so
  // the over-limit check happens first; the guard only undoes the bump.
  struct DepthGuard {
    explicit DepthGuard(Parser* p) : parser(p) {}
    ~DepthGuard() { --parser->depth_; }
    Parser* parser;
  };

  Error fail(const std::string& what) const {
    return Error::make("json_parse",
                       what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Expected<Value> parse_value() {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s) return s.error();
        return Value(Value::Storage(std::move(s.value())));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return Value(Value::Storage(true));
        }
        return fail("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return Value(Value::Storage(false));
        }
        return fail("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return Value(Value::Storage(nullptr));
        }
        return fail("invalid literal");
      default: return parse_number();
    }
  }

  Expected<Value> parse_object() {
    if (++depth_ > kMaxNestingDepth) return fail("nesting too deep");
    const DepthGuard guard(this);
    ++pos_;  // '{'
    Object out;
    skip_ws();
    if (consume('}')) return Value(Value::Storage(std::move(out)));
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key string");
      }
      auto key = parse_string();
      if (!key) return key.error();
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_ws();
      auto value = parse_value();
      if (!value) return value;
      out.emplace(std::move(key.value()), std::move(value.value()));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Value(Value::Storage(std::move(out)));
      return fail("expected ',' or '}' in object");
    }
  }

  Expected<Value> parse_array() {
    if (++depth_ > kMaxNestingDepth) return fail("nesting too deep");
    const DepthGuard guard(this);
    ++pos_;  // '['
    Array out;
    skip_ws();
    if (consume(']')) return Value(Value::Storage(std::move(out)));
    while (true) {
      skip_ws();
      auto value = parse_value();
      if (!value) return value;
      out.push_back(std::move(value.value()));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Value(Value::Storage(std::move(out)));
      return fail("expected ',' or ']' in array");
    }
  }

  Expected<std::string> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("dangling escape");
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("invalid \\u escape digit");
            }
            pos_ += 4;
            // Report files only ever contain ASCII; encode BMP code points
            // as UTF-8 so the parser is still complete.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  Expected<Value> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number");
    return Value(Value::Storage(v));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Expected<Value> parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string number_to_string(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no Inf/NaN literals
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_string(const Value& value) {
  std::string out;
  if (value.is_null()) {
    out = "null";
  } else if (value.is_bool()) {
    out = value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    out = number_to_string(value.as_number());
  } else if (value.is_string()) {
    out = '"' + escape(value.as_string()) + '"';
  } else if (value.is_array()) {
    out = "[";
    bool first = true;
    for (const Value& v : value.as_array()) {
      if (!first) out += ", ";
      out += to_string(v);
      first = false;
    }
    out += "]";
  } else {
    out = "{";
    bool first = true;
    for (const auto& [key, v] : value.as_object()) {
      if (!first) out += ", ";
      out += '"' + escape(key) + "\": " + to_string(v);
      first = false;
    }
    out += "}";
  }
  return out;
}

}  // namespace flexwan::obs::json
