// Minimal JSON reader used to validate the observability outputs.
//
// The obs layer *emits* JSON (metrics reports, Chrome traces); tests and
// tools want to parse those files back to assert well-formedness and probe
// values.  This is a strict little recursive-descent parser over the JSON
// grammar — objects, arrays, strings (with escapes), numbers, true/false/
// null — returning an owning Value tree.  It is not a general-purpose JSON
// library: no comments, no trailing commas, no streaming.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/expected.h"

namespace flexwan::obs::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  Value() : storage_(nullptr) {}
  Value(Storage storage) : storage_(std::move(storage)) {}  // NOLINT(google-explicit-constructor)

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(storage_); }
  bool is_bool() const { return std::holds_alternative<bool>(storage_); }
  bool is_number() const { return std::holds_alternative<double>(storage_); }
  bool is_string() const { return std::holds_alternative<std::string>(storage_); }
  bool is_array() const { return std::holds_alternative<Array>(storage_); }
  bool is_object() const { return std::holds_alternative<Object>(storage_); }

  bool as_bool() const { return std::get<bool>(storage_); }
  double as_number() const { return std::get<double>(storage_); }
  const std::string& as_string() const { return std::get<std::string>(storage_); }
  const Array& as_array() const { return std::get<Array>(storage_); }
  const Object& as_object() const { return std::get<Object>(storage_); }

  // Object member access: null pointer when absent or not an object.
  const Value* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    const auto it = as_object().find(key);
    return it == as_object().end() ? nullptr : &it->second;
  }

 private:
  Storage storage_;
};

// Parses a complete JSON document (errors on trailing garbage).
Expected<Value> parse(std::string_view text);

}  // namespace flexwan::obs::json
