// Minimal JSON reader and writer helpers for the observability outputs.
//
// The obs layer *emits* JSON (metrics reports, Chrome traces, BENCH
// telemetry); tests and tools want to parse those files back to assert
// well-formedness and probe values.  This is a strict little recursive-
// descent parser over the JSON grammar — objects, arrays, strings (with
// escapes), numbers, true/false/null — returning an owning Value tree.
// It is not a general-purpose JSON library: no comments, no trailing
// commas, no streaming.  Nesting is bounded (kMaxNestingDepth) so a
// degenerate "[[[[…" document errors out instead of exhausting the stack.
//
// The writer side (number_to_string / escape) is shared by every JSON
// emitter in the repo so numeric round-trip behavior cannot drift between
// the metrics report and the bench telemetry.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/expected.h"

namespace flexwan::obs::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  Value() : storage_(nullptr) {}
  Value(Storage storage) : storage_(std::move(storage)) {}  // NOLINT(google-explicit-constructor)

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(storage_); }
  bool is_bool() const { return std::holds_alternative<bool>(storage_); }
  bool is_number() const { return std::holds_alternative<double>(storage_); }
  bool is_string() const { return std::holds_alternative<std::string>(storage_); }
  bool is_array() const { return std::holds_alternative<Array>(storage_); }
  bool is_object() const { return std::holds_alternative<Object>(storage_); }

  bool as_bool() const { return std::get<bool>(storage_); }
  double as_number() const { return std::get<double>(storage_); }
  const std::string& as_string() const { return std::get<std::string>(storage_); }
  const Array& as_array() const { return std::get<Array>(storage_); }
  const Object& as_object() const { return std::get<Object>(storage_); }

  // Object member access: null pointer when absent or not an object.
  const Value* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    const auto it = as_object().find(key);
    return it == as_object().end() ? nullptr : &it->second;
  }

 private:
  Storage storage_;
};

// Maximum object/array nesting the parser accepts.  Far above anything the
// obs emitters produce (their documents are <= 4 deep); it exists so a
// hostile or corrupted input fails with a parse error instead of a stack
// overflow.
inline constexpr int kMaxNestingDepth = 128;

// Parses a complete JSON document (errors on trailing garbage).
Expected<Value> parse(std::string_view text);

// Shortest decimal representation of `v` that strtod parses back to
// exactly `v` (tries %.15g, %.16g, %.17g — the old fixed %.9g dropped
// precision for counters >= ~2^30 and fractional gauges).  Trailing zeros
// are trimmed by %g; -0.0 keeps its sign.  Non-finite values (which no
// obs emitter produces) render as 0 to keep the output valid JSON.
std::string number_to_string(double v);

// Escapes `s` for inclusion inside a JSON string literal (quotes,
// backslashes, and control characters; everything else passes through).
std::string escape(const std::string& s);

// Compact single-line serialization of a Value tree: object keys in map
// (sorted) order, numbers through number_to_string, strings escaped — so a
// parse → to_string cycle is deterministic.  Used by the event log for
// payload fields and by bundle_diff for diff.json.
std::string to_string(const Value& value);

}  // namespace flexwan::obs::json
