#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

#include "obs/json.h"

namespace flexwan::obs {

namespace detail {
std::atomic<unsigned> g_enabled{0};
}  // namespace detail

namespace {

void set_bit(unsigned bit, bool on) {
  if (on) {
    detail::g_enabled.fetch_or(bit, std::memory_order_relaxed);
  } else {
    detail::g_enabled.fetch_and(~bit, std::memory_order_relaxed);
  }
}

// Exact round-trip serialization lives in obs/json.h, shared with every
// other emitter (the previous local %.9g dropped precision for counters
// >= ~2^30 and fractional gauges).
const auto& json_num = json::number_to_string;
const auto& json_escape = json::escape;

}  // namespace

void set_metrics_enabled(bool on) {
  set_bit(kMetricsBit, on);
  // Asking for metrics historically implied latency histograms too; the
  // deterministic counters-only mode is opted into by turning timing off
  // *after* this call (obs::report_from_flags does this for --bundle).
  if (on) set_bit(kTimingBit, true);
  if (!on) set_bit(kTimingBit, false);
}
void set_trace_enabled(bool on) { set_bit(kTraceBit, on); }
void set_events_enabled(bool on) { set_bit(kEventsBit, on); }
void set_timing_enabled(bool on) { set_bit(kTimingBit, on); }
// Counter attribution only fires on the metrics-enabled path, so callers
// that want a profile enable metrics too (report_from_flags does both).
void set_workprof_enabled(bool on) { set_bit(kWorkProfBit, on); }
void set_timeseries_enabled(bool on) { set_bit(kTimeSeriesBit, on); }

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void Histogram::observe(double v) {
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
  detail::atomic_min(min_, v);
  detail::atomic_max(max_, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

double Histogram::quantile(double q) const {
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // The rank-th smallest sample (1-based); q = 0 maps to the first.
  const double rank = std::max(1.0, q * static_cast<double>(total));
  double cumulative = 0.0;
  std::size_t b = 0;
  for (; b < counts.size(); ++b) {
    cumulative += static_cast<double>(counts[b]);
    if (cumulative >= rank) break;
  }
  if (b >= counts.size()) b = counts.size() - 1;
  const double in_bucket = static_cast<double>(counts[b]);
  const double before = cumulative - in_bucket;
  const double lower = b == 0 ? 0.0 : bounds_[b - 1];
  // The overflow bucket has no upper bound; the observed max caps it.
  const double upper = b < bounds_.size() ? bounds_[b] : max();
  double estimate = lower;
  if (in_bucket > 0.0 && upper > lower) {
    estimate = lower + (upper - lower) * ((rank - before) / in_bucket);
  }
  // Clamp to the observed range: interpolation can otherwise report values
  // no sample reached (e.g. p99 above the true max in a sparse bucket).
  estimate = std::max(estimate, min());
  estimate = std::min(estimate, max());
  return estimate;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

const std::vector<double>& default_latency_bounds_us() {
  static const std::vector<double> bounds = {
      1.0,    2.0,    5.0,    10.0,   20.0,   50.0,   100.0,  200.0,
      500.0,  1e3,    2e3,    5e3,    1e4,    2e4,    5e4,    1e5,
      2e5,    5e5,    1e6,    2e6,    5e6,    1e7};
  return bounds;
}

Registry& Registry::instance() {
  static Registry* const registry = new Registry();  // never destroyed
  return *registry;
}

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return slot.get();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = {h->count(), h->count() == 0 ? 0.0 : h->sum()};
  }
  return snap;
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, v] : after.counters) {
    const auto it = before.counters.find(name);
    const std::uint64_t base = it == before.counters.end() ? 0 : it->second;
    if (v != base) delta.counters[name] = v - base;
  }
  for (const auto& [name, v] : after.gauges) {
    const auto it = before.gauges.find(name);
    const double base = it == before.gauges.end() ? 0.0 : it->second;
    if (v != base) delta.gauges[name] = v - base;
  }
  for (const auto& [name, h] : after.histograms) {
    const auto it = before.histograms.find(name);
    const MetricsSnapshot::HistogramTotals base =
        it == before.histograms.end() ? MetricsSnapshot::HistogramTotals{}
                                      : it->second;
    if (h.count != base.count || h.sum != base.sum) {
      delta.histograms[name] = {h.count - base.count, h.sum - base.sum};
    }
  }
  return delta;
}

std::string Registry::to_json(bool include_empty_histograms) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": " << c->value();
    first = false;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": " << json_num(g->value());
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const auto counts = h->bucket_counts();
    const auto& bounds = h->upper_bounds();
    const bool empty = h->count() == 0;
    if (empty && !include_empty_histograms) continue;
    out << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": {"
        << "\"count\": " << h->count() << ", \"sum\": "
        << json_num(empty ? 0.0 : h->sum()) << ", \"min\": "
        << json_num(empty ? 0.0 : h->min()) << ", \"max\": "
        << json_num(empty ? 0.0 : h->max())
        << ", \"p50\": " << json_num(h->quantile(0.50))
        << ", \"p90\": " << json_num(h->quantile(0.90))
        << ", \"p99\": " << json_num(h->quantile(0.99))
        << ", \"buckets\": [";
    for (std::size_t b = 0; b < counts.size(); ++b) {
      out << (b == 0 ? "" : ", ") << "{\"le\": "
          << (b < bounds.size() ? json_num(bounds[b])
                                : std::string("\"+Inf\""))
          << ", \"count\": " << counts[b] << "}";
    }
    out << "]}";
    first = false;
  }
  out << "\n  }\n}\n";
  return out.str();
}

}  // namespace flexwan::obs
