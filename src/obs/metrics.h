// Structured runtime metrics (counters, gauges, histograms).
//
// The ROADMAP's "runs as fast as the hardware allows" goal needs a way to
// see where time and work go, but the repo's reproducibility contract says
// observability must never perturb results: metrics go to files or stderr,
// never stdout, and the hot path pays a single relaxed-load branch when the
// subsystem is off (no locks, no allocation — see enabled_bits()).
//
// Usage pattern (the macros below cache the registry lookup per call site):
//
//   OBS_COUNTER_ADD("planner.ksp.calls", 1);
//   OBS_GAUGE_ADD("restoration.restored_gbps", outcome.restored_gbps);
//
// Naming convention (see DESIGN.md "Observability"): dot-separated
// lowercase path `<subsystem>.<component>.<event>`, with a unit suffix for
// dimensioned values (`.us`, `.gbps`).  Registered entries are never
// removed — Registry::reset() zeroes values but keeps every handle valid,
// so call-site caches survive test resets.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace flexwan::obs {

// Which subsystems are recording.  One atomic word so a disabled call site
// is a single relaxed load + branch.
//
// kTimingBit gates every *wall-clock-derived* sample (span latency
// histograms, engine busy/queue-wait time, per-vendor RPC latency) while
// kMetricsBit gates deterministic work counts (tasks, pivots, KSP calls).
// set_metrics_enabled(true) turns both on — the historical behavior — but
// evidence bundles (bundle.h) record counters with timing off so that a
// bundle's metrics.json is byte-identical at every --threads value.
inline constexpr unsigned kMetricsBit = 1u;
inline constexpr unsigned kTraceBit = 2u;
inline constexpr unsigned kEventsBit = 4u;
inline constexpr unsigned kTimingBit = 8u;
// kWorkProfBit turns on the work-attribution profiler (workprof.h): spans
// push calling-context frames and every OBS_COUNTER_ADD also attributes to
// the current frame stack.  Deterministic by construction, so bundles turn
// it on alongside metrics while leaving timing off.
inline constexpr unsigned kWorkProfBit = 16u;
// kTimeSeriesBit turns on sim-time trajectory sampling (timeseries.h): the
// lifecycle simulator records typed rows keyed to simulated t_days.  Keyed
// to sim time only, so it is deterministic and safe in bundle-only
// (timing-off) mode; --bundle and --bench-json both enable it.
inline constexpr unsigned kTimeSeriesBit = 32u;

namespace detail {
extern std::atomic<unsigned> g_enabled;

// Lock-free add for atomic doubles (fetch_add on floating types needs
// hardware support; the CAS loop is portable and uncontended in practice).
inline void atomic_add(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

inline unsigned enabled_bits() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline bool metrics_enabled() { return (enabled_bits() & kMetricsBit) != 0; }
inline bool trace_enabled() { return (enabled_bits() & kTraceBit) != 0; }
inline bool events_enabled() { return (enabled_bits() & kEventsBit) != 0; }
inline bool timing_enabled() { return (enabled_bits() & kTimingBit) != 0; }
inline bool workprof_enabled() {
  return (enabled_bits() & kWorkProfBit) != 0;
}
inline bool timeseries_enabled() {
  return (enabled_bits() & kTimeSeriesBit) != 0;
}

// set_metrics_enabled(true) also turns timing on (callers that ask for
// metrics expect latency histograms); set_timing_enabled(false) afterwards
// restores the deterministic counters-only mode bundles use.
void set_metrics_enabled(bool on);
void set_trace_enabled(bool on);
void set_events_enabled(bool on);
void set_timing_enabled(bool on);
void set_workprof_enabled(bool on);
void set_timeseries_enabled(bool on);

// Work-profiler hooks (implemented in workprof.cpp; see workprof.h).
// Declared here so the macros below can attribute without pulling the
// profiler header into every call site.
namespace workprof {
void push_frame(const char* name);
void pop_frame();
void attribute(const char* counter, std::uint64_t n);
}  // namespace workprof

// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// A double that can be set or accumulated (e.g. Gbps restored).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) { detail::atomic_add(value_, delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: counts per upper bound plus an overflow bucket,
// with running count/sum/min/max.  Bucket bounds are fixed at registration
// (the first caller's bounds win), so observe() is wait-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return bounds_; }
  // bounds_.size() + 1 entries; the last is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  // Deterministic quantile estimate (q in [0, 1]) computed purely from the
  // bucket counts: find the bucket holding the ceil(q * count)-th sample
  // and interpolate linearly inside it, clamped to the observed [min, max]
  // (Prometheus histogram_quantile semantics).  0 for an empty histogram.
  // Two histograms with equal bucket counts report equal quantiles, so the
  // estimates are byte-stable across runs and thread counts.
  double quantile(double q) const;

  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

// Exponential 1 µs .. 10 s bounds shared by every latency histogram, so
// cross-subsystem latency reports line up bucket for bucket.
const std::vector<double>& default_latency_bounds_us();

// A point-in-time copy of every registered value, keyed by name.  Cheap to
// diff, so a caller can attribute work to a phase: snapshot before, run,
// snapshot after, snapshot_delta().  Histograms keep only the running
// count/sum (per-bucket deltas are not needed for attribution).
struct MetricsSnapshot {
  struct HistogramTotals {
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramTotals> histograms;
};

// after − before, per name, dropping entries whose delta is zero (a bench
// case's delta only names the metrics that case actually moved).  Counters
// are monotonic, so entries absent from `before` count from zero; gauges
// may move in either direction (a set() shows up as its net change).
MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

// Process-wide name -> metric map.  Registration takes a mutex; returned
// pointers are stable for the life of the process (entries are never
// erased), so call sites cache them in function-local statics.
class Registry {
 public:
  static Registry& instance();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  // `upper_bounds` applies only when `name` is first registered.
  Histogram* histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  // Zeroes every value; handles stay valid (used by tests and benches that
  // want per-phase reports).
  void reset();

  // Copies every current value under the registration mutex.  Concurrent
  // writers use relaxed atomics, so a snapshot taken while work is in
  // flight is a per-metric-consistent (not cross-metric-atomic) view;
  // bracketing quiescent points (as the bench harness does) is exact.
  MetricsSnapshot snapshot() const;

  // Deterministic (name-sorted) JSON snapshot:
  //   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  // Histogram entries carry count/sum/min/max, p50/p90/p99 quantile
  // estimates (see Histogram::quantile), and the per-bucket counts.  With
  // `include_empty_histograms` false, histograms that never observed a
  // value are omitted — evidence bundles use this so a timing-off run's
  // metrics.json does not depend on which latency histograms happened to
  // get registered (a thread-count-dependent set).
  std::string to_json(bool include_empty_histograms = true) const;

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace flexwan::obs

// Call-site macros: one relaxed-load branch when metrics are off; a cached
// registry pointer (resolved once per call site) when on.
#define OBS_DETAIL_CONCAT2(a, b) a##b
#define OBS_DETAIL_CONCAT(a, b) OBS_DETAIL_CONCAT2(a, b)

#define OBS_COUNTER_ADD(name, n)                                          \
  do {                                                                    \
    if (::flexwan::obs::metrics_enabled()) {                              \
      static ::flexwan::obs::Counter* const obs_counter_ =                \
          ::flexwan::obs::Registry::instance().counter(name);             \
      const std::uint64_t obs_n_ = static_cast<std::uint64_t>(n);         \
      obs_counter_->add(obs_n_);                                          \
      if (::flexwan::obs::workprof_enabled()) {                           \
        ::flexwan::obs::workprof::attribute(name, obs_n_);                \
      }                                                                   \
    }                                                                     \
  } while (0)

// Counter variant for *wall-clock-derived* totals (e.g. engine worker busy
// time): recorded in the registry like any counter but never attributed to
// the work profile, whose contents must stay deterministic (workprof.h).
#define OBS_COUNTER_ADD_UNTRACKED(name, n)                                \
  do {                                                                    \
    if (::flexwan::obs::metrics_enabled()) {                              \
      static ::flexwan::obs::Counter* const obs_counter_ =                \
          ::flexwan::obs::Registry::instance().counter(name);             \
      obs_counter_->add(static_cast<std::uint64_t>(n));                   \
    }                                                                     \
  } while (0)

#define OBS_GAUGE_SET(name, v)                                            \
  do {                                                                    \
    if (::flexwan::obs::metrics_enabled()) {                              \
      static ::flexwan::obs::Gauge* const obs_gauge_ =                    \
          ::flexwan::obs::Registry::instance().gauge(name);               \
      obs_gauge_->set(v);                                                 \
    }                                                                     \
  } while (0)

#define OBS_GAUGE_ADD(name, v)                                            \
  do {                                                                    \
    if (::flexwan::obs::metrics_enabled()) {                              \
      static ::flexwan::obs::Gauge* const obs_gauge_ =                    \
          ::flexwan::obs::Registry::instance().gauge(name);               \
      obs_gauge_->add(v);                                                 \
    }                                                                     \
  } while (0)

#define OBS_HISTOGRAM_OBSERVE(name, v)                                    \
  do {                                                                    \
    if (::flexwan::obs::metrics_enabled()) {                              \
      static ::flexwan::obs::Histogram* const obs_hist_ =                 \
          ::flexwan::obs::Registry::instance().histogram(                 \
              name, ::flexwan::obs::default_latency_bounds_us());         \
      obs_hist_->observe(v);                                              \
    }                                                                     \
  } while (0)
