#include "obs/report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace flexwan::obs {

namespace {

Expected<bool> write_text_file(const std::string& path,
                               const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Error::make("io_error", "cannot open " + path + " for writing");
  }
  out << contents;
  out.flush();
  if (!out) {
    return Error::make("io_error", "short write to " + path);
  }
  return true;
}

}  // namespace

Expected<bool> write_metrics_file(const std::string& path) {
  return write_text_file(path, Registry::instance().to_json());
}

Expected<bool> write_trace_file(const std::string& path) {
  return write_text_file(path, trace_json());
}

RunReport::~RunReport() {
  const auto result = write();
  if (!result) {
    std::fprintf(stderr, "obs: %s\n", result.error().message.c_str());
  }
}

RunReport::RunReport(RunReport&& other) noexcept
    : metrics_path_(std::move(other.metrics_path_)),
      trace_path_(std::move(other.trace_path_)) {
  other.release();
}

RunReport& RunReport::operator=(RunReport&& other) noexcept {
  if (this != &other) {
    metrics_path_ = std::move(other.metrics_path_);
    trace_path_ = std::move(other.trace_path_);
    other.release();
  }
  return *this;
}

Expected<bool> RunReport::write() const {
  Expected<bool> result = true;
  if (!metrics_path_.empty()) {
    auto r = write_metrics_file(metrics_path_);
    if (!r && result) result = r;
  }
  if (!trace_path_.empty()) {
    auto r = write_trace_file(trace_path_);
    if (!r && result) result = r;
  }
  return result;
}

RunReport report_from_flags(int& argc, char** argv) {
  RunReport report;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    bool is_metrics = false;
    if (std::strcmp(arg, "--metrics") == 0 ||
        std::strcmp(arg, "--trace") == 0) {
      is_metrics = arg[2] == 'm';
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a file path\n", arg);
        std::exit(2);
      }
      value = argv[++i];
    } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
      is_metrics = true;
      value = arg + 10;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      value = arg + 8;
    } else {
      argv[out++] = argv[i];
      continue;
    }
    if (*value == '\0') {
      std::fprintf(stderr, "%s requires a non-empty file path\n",
                   is_metrics ? "--metrics" : "--trace");
      std::exit(2);
    }
    if (is_metrics) {
      report.set_metrics_path(value);
      set_metrics_enabled(true);
    } else {
      report.set_trace_path(value);
      set_trace_enabled(true);
    }
  }
  argc = out;
  return report;
}

void announce_threads(int thread_count) {
  std::fprintf(stderr, "engine: %d thread(s)\n", thread_count);
}

}  // namespace flexwan::obs
