#include "obs/report.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace flexwan::obs {

namespace {

Expected<bool> write_text_file(const std::string& path,
                               const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Error::make("io_error", "cannot open " + path + " for writing");
  }
  out << contents;
  out.flush();
  if (!out) {
    return Error::make("io_error", "short write to " + path);
  }
  return true;
}

}  // namespace

Expected<bool> write_metrics_file(const std::string& path) {
  return write_text_file(path, Registry::instance().to_json());
}

Expected<bool> write_trace_file(const std::string& path) {
  return write_text_file(path, trace_json());
}

RunReport::~RunReport() {
  const auto result = write();
  if (!result) {
    std::fprintf(stderr, "obs: %s\n", result.error().message.c_str());
  }
}

RunReport::RunReport(RunReport&& other) noexcept
    : metrics_path_(std::move(other.metrics_path_)),
      trace_path_(std::move(other.trace_path_)),
      bundle_dir_(std::move(other.bundle_dir_)),
      bench_options_(std::move(other.bench_options_)) {
  other.release();
}

RunReport& RunReport::operator=(RunReport&& other) noexcept {
  if (this != &other) {
    metrics_path_ = std::move(other.metrics_path_);
    trace_path_ = std::move(other.trace_path_);
    bundle_dir_ = std::move(other.bundle_dir_);
    bench_options_ = std::move(other.bench_options_);
    other.release();
  }
  return *this;
}

Expected<bool> RunReport::write() const {
  Expected<bool> result = true;
  if (!metrics_path_.empty()) {
    auto r = write_metrics_file(metrics_path_);
    if (!r && result) result = r;
  }
  if (!trace_path_.empty()) {
    auto r = write_trace_file(trace_path_);
    if (!r && result) result = r;
  }
  return result;
}

Expected<int> parse_rep_count(const char* flag, const char* value,
                              int min_value) {
  if (value == nullptr || *value == '\0') {
    return Error::make("bad_count", std::string(flag) + " requires a value");
  }
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') {
    return Error::make("bad_count", "invalid " + std::string(flag) +
                                        " value '" + value +
                                        "' (not an integer)");
  }
  if (errno == ERANGE || parsed < min_value || parsed > kMaxBenchReps) {
    return Error::make("bad_count",
                       std::string(flag) + " value '" + value +
                           "' out of range [" + std::to_string(min_value) +
                           ", " + std::to_string(kMaxBenchReps) + "]");
  }
  return static_cast<int>(parsed);
}

RunReport report_from_flags(int& argc, char** argv) {
  RunReport report;
  BenchOptions bench;
  // Path flags vs validated-integer flags; both accept the "--flag value"
  // and "--flag=value" spellings.
  static constexpr const char* kPathFlags[] = {"--metrics", "--trace",
                                               "--bench-json", "--bundle"};
  static constexpr const char* kCountFlags[] = {"--warmup", "--reps"};
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    // --list is the one boolean in the family: no value to consume.
    if (std::strcmp(arg, "--list") == 0) {
      bench.list = true;
      continue;
    }
    const char* flag = nullptr;
    const char* value = nullptr;
    for (const char* candidate : {kPathFlags[0], kPathFlags[1], kPathFlags[2],
                                  kPathFlags[3], kCountFlags[0],
                                  kCountFlags[1]}) {
      const std::size_t len = std::strlen(candidate);
      if (std::strncmp(arg, candidate, len) != 0) continue;
      if (arg[len] == '\0') {
        flag = candidate;
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s requires a value\n", flag);
          std::exit(2);
        }
        value = argv[++i];
        break;
      }
      if (arg[len] == '=') {
        flag = candidate;
        value = arg + len + 1;
        break;
      }
    }
    if (flag == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    if (std::strcmp(flag, "--warmup") == 0 || std::strcmp(flag, "--reps") == 0) {
      // --reps 0 would record no measurements at all; --warmup 0 is fine.
      const int min_value = flag[2] == 'r' ? 1 : 0;
      const auto parsed = parse_rep_count(flag, value, min_value);
      if (!parsed) {
        std::fprintf(stderr, "%s\n", parsed.error().message.c_str());
        std::exit(2);
      }
      (flag[2] == 'r' ? bench.reps : bench.warmup) = parsed.value();
      continue;
    }
    if (*value == '\0') {
      std::fprintf(stderr, "%s requires a non-empty file path\n", flag);
      std::exit(2);
    }
    if (std::strcmp(flag, "--metrics") == 0) {
      report.set_metrics_path(value);
    } else if (std::strcmp(flag, "--trace") == 0) {
      report.set_trace_path(value);
    } else if (std::strcmp(flag, "--bundle") == 0) {
      report.set_bundle_dir(value);
      bench.bundle_dir = value;
    } else {
      bench.json_path = value;
    }
  }
  argc = out;
  // Enable states are order-independent: decided once the full flag set is
  // known (see report.h).  --metrics/--bench-json want wall-derived samples;
  // --bundle wants deterministic counters + events only.
  const bool want_timing =
      !report.metrics_path().empty() || !bench.json_path.empty();
  const bool want_metrics = want_timing || !report.bundle_dir().empty();
  if (want_metrics) {
    set_metrics_enabled(true);  // also turns timing on...
    if (!want_timing) set_timing_enabled(false);  // ...bundle-only turns it off
  }
  if (!report.trace_path().empty()) set_trace_enabled(true);
  if (!report.bundle_dir().empty()) set_events_enabled(true);
  // Work attribution rides along wherever its output lands: bundles write
  // profile.json/profile.folded, BENCH json carries per-case work deltas.
  // Deterministic, so it is safe in bundle-only (timing-off) mode.  The
  // sim-time trajectory sampler (timeseries.h) follows the same rule:
  // bundles write timeseries.jsonl, BENCH json carries per-case derived
  // health deltas.
  if (!report.bundle_dir().empty() || !bench.json_path.empty()) {
    set_workprof_enabled(true);
    set_timeseries_enabled(true);
  }
  report.set_bench_options(std::move(bench));
  return report;
}

void announce_threads(int thread_count) {
  std::fprintf(stderr, "engine: %d thread(s)\n", thread_count);
}

}  // namespace flexwan::obs
