// Run reports: serializing metrics and traces to files, plus the shared
// CLI surface (--metrics / --trace flags) every bench and example exposes.
//
// The contract with the determinism tests: all observability output goes
// to files or stderr.  stdout — the byte-compared bench/plan output — is
// never touched, whether the flags are on or off.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/expected.h"

namespace flexwan::obs {

// Writes the current metrics registry snapshot / trace buffer to `path`.
Expected<bool> write_metrics_file(const std::string& path);
Expected<bool> write_trace_file(const std::string& path);

// Bench-harness knobs carried from the command line to benchlib::Harness.
// The harness is enabled only when --bench-json names an output file;
// --warmup/--reps are validated regardless but take effect only then
// (a disabled harness runs every case body exactly once).
struct BenchOptions {
  std::string json_path;  // empty = no BENCH json
  // --bundle: evidence-bundle output directory (bundle.h).  A harness with
  // only bundle_dir set still measures cases; it writes a bundle instead of
  // (or in addition to) the BENCH json.
  std::string bundle_dir;
  int warmup = 1;         // discarded repetitions per case
  int reps = 3;           // measured repetitions per case (>= 1)
  // --list: print each registered case name to stdout (one per line, in
  // registration order) without running the bodies, then exit 0 when the
  // harness goes out of scope.  Takes precedence over --bench-json.
  bool list = false;

  bool enabled() const { return !json_path.empty() || !bundle_dir.empty(); }
};

// Upper bound for --warmup/--reps, mirroring engine::kMaxThreadsFlag's
// job: an overflowing strtol can never truncate into a silently-wrong
// small repetition count.
inline constexpr int kMaxBenchReps = 1000000;

// Parses one --warmup/--reps value: a base-10 integer in
// [min_value, kMaxBenchReps].  Rejection semantics match
// engine::parse_thread_count (empty, non-numeric, trailing garbage,
// negative, out of range — including strtol overflow).  `flag` names the
// flag in error messages.
Expected<int> parse_rep_count(const char* flag, const char* value,
                              int min_value);

// Owns the "dump observability at process exit" obligation.  Holds the
// output paths requested on the command line and writes both files either
// on demand (write()) or from the destructor — declare one in main() and
// the report lands on every return path.  Write failures at destruction
// are reported on stderr (never thrown).
class RunReport {
 public:
  RunReport() = default;
  ~RunReport();

  RunReport(RunReport&& other) noexcept;
  RunReport& operator=(RunReport&& other) noexcept;
  RunReport(const RunReport&) = delete;
  RunReport& operator=(const RunReport&) = delete;

  void set_metrics_path(std::string path) { metrics_path_ = std::move(path); }
  void set_trace_path(std::string path) { trace_path_ = std::move(path); }
  const std::string& metrics_path() const { return metrics_path_; }
  const std::string& trace_path() const { return trace_path_; }

  // --bundle output directory.  RunReport only carries it — the tool that
  // owns the run assembles and writes the obs::Bundle (it alone knows the
  // resolved config and headline results).
  void set_bundle_dir(std::string dir) { bundle_dir_ = std::move(dir); }
  const std::string& bundle_dir() const { return bundle_dir_; }

  // Bench-harness flags ride along in the same parse (report_from_flags);
  // RunReport only carries them — benchlib::Harness owns writing the
  // BENCH json.
  void set_bench_options(BenchOptions options) {
    bench_options_ = std::move(options);
  }
  const BenchOptions& bench_options() const { return bench_options_; }

  // Writes every configured file now.  First error wins; both files are
  // still attempted.  The destructor will write again (files are small and
  // regenerating them is idempotent) unless release() is called.
  Expected<bool> write() const;

  // Detaches the destructor obligation (after a successful manual write).
  void release() {
    metrics_path_.clear();
    trace_path_.clear();
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::string bundle_dir_;
  BenchOptions bench_options_;
};

// Extracts "--metrics <file>" / "--metrics=<file>", "--trace <file>" /
// "--trace=<file>", "--bundle <dir>" / "--bundle=<dir>", and the
// bench-harness flags "--bench-json <file>", "--warmup N", "--reps N"
// (each also in "=value" form), and the boolean "--list" from argv
// (compacting the remaining arguments and decrementing argc, exactly like
// engine::threads_flag), enables the corresponding obs subsystems, and
// returns a RunReport that writes the metrics/trace files at scope exit.
// Exits with an error message on a missing or malformed value.
//
// Enable states are computed after the parse so flag order is irrelevant:
// metrics recording turns on for --metrics, --bench-json, or --bundle;
// wall-clock timing samples (timing_enabled, metrics.h) only for --metrics
// or --bench-json; event emission only for --bundle.  A bundle-only run is
// therefore counters + events with no wall-derived registry content — the
// deterministic mode whose artifacts byte-compare across thread counts.
RunReport report_from_flags(int& argc, char** argv);

// The canonical "engine: N thread(s)" stderr line shared by every parallel
// bench, so the format cannot drift between tools.  stderr keeps stdout
// byte-identical across thread counts.
void announce_threads(int thread_count);

}  // namespace flexwan::obs
