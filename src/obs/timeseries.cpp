#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "obs/json.h"

namespace flexwan::obs {

std::string TimeSample::to_jsonl() const {
  std::ostringstream out;
  out << "{\"t_days\": " << json::number_to_string(t_days)
      << ", \"trial\": " << trial << ", \"reason\": \""
      << json::escape(reason) << "\", \"availability\": "
      << json::number_to_string(availability)
      << ", \"lost_gbps\": " << json::number_to_string(lost_gbps)
      << ", \"offered_gbps\": " << json::number_to_string(offered_gbps)
      << ", \"active_cuts\": " << active_cuts
      << ", \"restored_wavelengths\": " << restored_wavelengths
      << ", \"unrestored_wavelengths\": " << unrestored_wavelengths
      << ", \"spectrum_util\": " << json::number_to_string(spectrum_util)
      << ", \"fragmentation\": " << json::number_to_string(fragmentation)
      << ", \"free_blocks\": " << free_blocks
      << ", \"largest_free_block\": " << largest_free_block << "}";
  return out.str();
}

namespace {

Error bad_sample(const std::string& what) {
  return Error::make("bad_sample", what);
}

Expected<double> number_field(const json::Value& doc, const char* key) {
  const json::Value* v = doc.find(key);
  if (v == nullptr || !v->is_number()) {
    return bad_sample(std::string("missing or non-numeric field '") + key +
                      "'");
  }
  return v->as_number();
}

}  // namespace

Expected<TimeSample> parse_sample(const std::string& jsonl_line) {
  auto parsed = json::parse(jsonl_line);
  if (!parsed) return bad_sample(parsed.error().message);
  const json::Value& doc = parsed.value();
  if (!doc.is_object()) return bad_sample("sample row is not an object");
  TimeSample s;
  const json::Value* reason = doc.find("reason");
  if (reason == nullptr || !reason->is_string()) {
    return bad_sample("missing or non-string field 'reason'");
  }
  s.reason = reason->as_string();
  struct FieldRef {
    const char* key;
    double* target;
  };
  double trial = 0.0;
  double active_cuts = 0.0;
  double restored = 0.0;
  double unrestored = 0.0;
  double free_blocks = 0.0;
  double largest = 0.0;
  const FieldRef fields[] = {
      {"t_days", &s.t_days},
      {"trial", &trial},
      {"availability", &s.availability},
      {"lost_gbps", &s.lost_gbps},
      {"offered_gbps", &s.offered_gbps},
      {"active_cuts", &active_cuts},
      {"restored_wavelengths", &restored},
      {"unrestored_wavelengths", &unrestored},
      {"spectrum_util", &s.spectrum_util},
      {"fragmentation", &s.fragmentation},
      {"free_blocks", &free_blocks},
      {"largest_free_block", &largest},
  };
  for (const FieldRef& f : fields) {
    auto value = number_field(doc, f.key);
    if (!value) return value.error();
    *f.target = value.value();
  }
  s.trial = static_cast<int>(trial);
  s.active_cuts = static_cast<int>(active_cuts);
  s.restored_wavelengths = static_cast<int>(restored);
  s.unrestored_wavelengths = static_cast<int>(unrestored);
  s.free_blocks = static_cast<std::int64_t>(free_blocks);
  s.largest_free_block = static_cast<int>(largest);
  return s;
}

HealthIndicators derive_health(std::span<const TimeSample> samples) {
  HealthIndicators health;
  if (samples.empty()) return health;

  std::vector<double> durations;
  double frag_delta_sum = 0.0;
  int segments = 0;

  std::size_t i = 0;
  while (i < samples.size()) {
    // One segment: same trial index, non-decreasing time.
    const std::size_t begin = i;
    std::size_t end = i + 1;
    while (end < samples.size() &&
           samples[end].trial == samples[begin].trial &&
           samples[end].t_days >= samples[end - 1].t_days) {
      ++end;
    }
    ++segments;
    frag_delta_sum +=
        samples[end - 1].fragmentation - samples[begin].fragmentation;

    double episode_open = -1.0;  // open episode's start time, < 0 when none
    for (std::size_t j = begin; j < end; ++j) {
      const TimeSample& row = samples[j];
      health.availability_dip_max =
          std::max(health.availability_dip_max, 1.0 - row.availability);
      const bool losing = row.lost_gbps > 0.0;
      if (losing && episode_open < 0.0) {
        episode_open = row.t_days;
        ++health.recovery_episodes;
      } else if (!losing && episode_open >= 0.0) {
        durations.push_back(row.t_days - episode_open);
        episode_open = -1.0;
      }
    }
    if (episode_open >= 0.0) {
      // Still dark at the segment's last row: a truncated (censored)
      // episode — the horizon ending does not make the outage shorter.
      durations.push_back(samples[end - 1].t_days - episode_open);
      ++health.unrecovered;
    }
    i = end;
  }

  if (!durations.empty()) {
    std::sort(durations.begin(), durations.end());
    health.time_to_recover_days_worst = durations.back();
    const auto n = static_cast<double>(durations.size());
    const auto rank =
        static_cast<std::size_t>(std::max(1.0, std::ceil(0.99 * n)));
    health.time_to_recover_days_p99 = durations[rank - 1];
  }
  health.fragmentation_delta =
      segments > 0 ? frag_delta_sum / static_cast<double>(segments) : 0.0;
  return health;
}

std::vector<std::pair<std::string, double>> flatten_health(
    const HealthIndicators& health, const std::string& prefix) {
  return {
      {prefix + "availability_dip.max", health.availability_dip_max},
      {prefix + "time_to_recover_days.worst",
       health.time_to_recover_days_worst},
      {prefix + "time_to_recover_days.p99", health.time_to_recover_days_p99},
      {prefix + "recovery_episodes",
       static_cast<double>(health.recovery_episodes)},
      {prefix + "unrecovered", static_cast<double>(health.unrecovered)},
      {prefix + "fragmentation.delta", health.fragmentation_delta},
  };
}

TimeSeriesSampler::TimeSeriesSampler(double interval_days,
                                     double horizon_days,
                                     std::vector<TimeSample>* out)
    : interval_days_(interval_days),
      horizon_days_(horizon_days),
      out_(out),
      next_tick_(interval_days) {}

void TimeSeriesSampler::start(TimeSample state) {
  state.t_days = 0.0;
  state.reason = "start";
  last_state_ = state;
  started_ = true;
  out_->push_back(std::move(state));
}

void TimeSeriesSampler::emit_ticks_up_to(double t) {
  if (interval_days_ <= 0.0) return;
  while (next_tick_ <= t) {
    TimeSample tick = last_state_;
    tick.t_days = next_tick_;
    tick.reason = "interval";
    out_->push_back(std::move(tick));
    next_tick_ += interval_days_;
  }
}

void TimeSeriesSampler::record_event(double t, TimeSample state) {
  // Ticks carry the pre-event state and sort before the event at equal t.
  emit_ticks_up_to(t);
  state.t_days = t;
  state.reason = "event";
  last_state_ = state;
  out_->push_back(std::move(state));
}

void TimeSeriesSampler::finish() {
  if (!started_) return;
  emit_ticks_up_to(horizon_days_);
  TimeSample final_row = last_state_;
  final_row.t_days = horizon_days_;
  final_row.reason = "final";
  out_->push_back(std::move(final_row));
}

TimeSeries& TimeSeries::instance() {
  static TimeSeries series;
  return series;
}

void TimeSeries::splice(std::vector<TimeSample>&& rows) {
  if (rows.empty()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  samples_.insert(samples_.end(), std::make_move_iterator(rows.begin()),
                  std::make_move_iterator(rows.end()));
}

std::vector<TimeSample> TimeSeries::samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

std::size_t TimeSeries::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

std::string TimeSeries::to_jsonl() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const TimeSample& s : samples_) {
    out += s.to_jsonl();
    out += '\n';
  }
  return out;
}

void TimeSeries::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
}

}  // namespace flexwan::obs
