// Deterministic sim-time time-series telemetry — the time axis of an
// evidence bundle (bundle.h).
//
// FlexWAN's headline claims are time-resolved: availability dips and
// recovery after fiber cuts (paper Fig. 15/16), capacity trajectories as
// the network grows.  metrics.json and run.json collapse a multi-year
// lifecycle trial to end-of-run aggregates; this module records the
// trajectory itself as typed sample rows keyed to *simulated* time
// (t_days) — never wall clock — so timeseries.jsonl obeys the same
// determinism contract as every other bundle artifact: byte-identical at
// any --threads value.
//
// Sampling model (see DESIGN.md "Time-series telemetry"):
//
//   * "start"     one row at t = 0 with the deployed-plan state;
//   * "event"     one row after every timeline event, carrying the
//                 post-event state (two events at the same instant produce
//                 two rows in event order);
//   * "interval"  cadence rows at t = k * interval (k = 1, 2, ...) carrying
//                 the state as of just before the tick.  A tick that
//                 coincides with an event is emitted FIRST (pre-event
//                 state), then the event row — so the dip a cut causes is
//                 never smeared backwards onto the tick;
//   * "final"     one row at the horizon with the closing state.
//
// Concurrency discipline mirrors the event log: each sim trial samples into
// its own buffer and run_lifecycle splices buffers into the global
// TimeSeries in trial-index order, so the file never depends on the
// parallel schedule.
//
// derive_health() turns a trace back into the headline resilience
// indicators the bundle gate consumes: max availability dip, worst /
// P99 time-to-recover (sim-days), and the end-vs-start fragmentation
// drift.  bundle_diff flattens them (plus recomputed values from
// timeseries.jsonl) into dotted fields with per-field thresholds, so
// "resilience got worse" is a CI exit code, not a number to eyeball.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/expected.h"

namespace flexwan::obs {

// One typed sample row.  Every field is simulation-derived; rows serialize
// one JSON object per timeseries.jsonl line.
struct TimeSample {
  double t_days = 0.0;
  int trial = 0;
  // "start", "event", "interval", or "final" (see sampling model above).
  std::string reason;
  double availability = 1.0;  // instantaneous 1 - lost / offered
  double lost_gbps = 0.0;
  double offered_gbps = 0.0;
  int active_cuts = 0;
  int restored_wavelengths = 0;    // spare wavelengths currently applied
  int unrestored_wavelengths = 0;  // affected wavelengths left dark
  // Spectrum state across all fibers of the live plan, from
  // spectrum::Occupancy::free_block_stats():
  double spectrum_util = 0.0;    // used pixels / total pixels
  double fragmentation = 0.0;    // mean per-fiber 1 - largest/free (free>0)
  std::int64_t free_blocks = 0;  // total maximal free runs
  int largest_free_block = 0;    // largest free run on any fiber

  // One JSON object, no trailing newline; key order is fixed so the file
  // byte-compares across runs.
  std::string to_jsonl() const;
};

// Parses one timeseries.jsonl line back into a row.  Fails with
// "bad_sample" on a missing or mistyped field — the bundle loader uses this
// to recompute health indicators from a stored trace.
Expected<TimeSample> parse_sample(const std::string& jsonl_line);

// Derived headline resilience indicators over a trace.  The trace may
// concatenate several trials (and, in bench harnesses, several repetitions
// of the same trials): a new segment starts whenever the trial index
// changes or t_days moves backwards, and no episode spans a segment
// boundary.
struct HealthIndicators {
  // Deepest instantaneous availability dip: max over rows of
  // (1 - availability).  0 for a trace that never lost traffic.
  double availability_dip_max = 0.0;
  // A recovery episode opens at the first row with lost_gbps > 0 and
  // closes at the next row with lost_gbps == 0 (duration = close - open,
  // sim-days).  An episode still open at its segment's last row is counted
  // in `unrecovered` and contributes its truncated duration — an outage
  // the horizon cut short is still an outage.
  double time_to_recover_days_worst = 0.0;
  // Nearest-rank P99 over all episode durations (the metrics.json quantile
  // convention: rank = max(1, ceil(q * n))).
  double time_to_recover_days_p99 = 0.0;
  int recovery_episodes = 0;  // episodes opened (closed + unrecovered)
  int unrecovered = 0;        // episodes still open at a segment end
  // Mean over segments of (last row's fragmentation - first row's): > 0
  // means the spectrum got more fragmented over the horizon.
  double fragmentation_delta = 0.0;
};

HealthIndicators derive_health(std::span<const TimeSample> samples);

// Flattens `health` into dotted numeric fields under `prefix` (e.g.
// "health." or "timeseries.health."), the exact names the bundle gate and
// run.json results use — shared so the spelling cannot drift between
// sim_tool, benchlib, and bundle_diff.
std::vector<std::pair<std::string, double>> flatten_health(
    const HealthIndicators& health, const std::string& prefix);

// Per-trial cadence sampler.  The sim constructs one per trial pointing at
// the trial's own row buffer, calls start() with the deployed state,
// record_event() after every processed timeline event, and finish() once
// the timeline is exhausted.  interval_days <= 0 disables cadence rows
// (event sampling still happens).
class TimeSeriesSampler {
 public:
  TimeSeriesSampler(double interval_days, double horizon_days,
                    std::vector<TimeSample>* out);

  // Records the t = 0 "start" row and seeds the state interval rows carry.
  void start(TimeSample state);

  // Emits any pending interval ticks at t_k <= t (pre-event state), then
  // the "event" row holding `state` at time t.
  void record_event(double t, TimeSample state);

  // Emits interval ticks up to the horizon and the "final" row.
  void finish();

 private:
  void emit_ticks_up_to(double t);

  double interval_days_ = 0.0;
  double horizon_days_ = 0.0;
  std::vector<TimeSample>* out_ = nullptr;
  TimeSample last_state_;  // state as of the most recent row
  double next_tick_ = 0.0;
  bool started_ = false;
};

// The process-wide trace, mirroring EventLog: per-trial buffers are spliced
// in trial-index order under a mutex, so timeseries.jsonl is byte-identical
// at every thread count.
class TimeSeries {
 public:
  static TimeSeries& instance();

  // Appends `rows` (a trial's buffer) in order.  Call in trial-index order.
  void splice(std::vector<TimeSample>&& rows);

  std::vector<TimeSample> samples() const;
  std::size_t size() const;

  // Every row as one line, trailing newline included (empty string when no
  // samples were recorded).
  std::string to_jsonl() const;

  void reset();

 private:
  TimeSeries() = default;

  mutable std::mutex mu_;
  std::vector<TimeSample> samples_;
};

}  // namespace flexwan::obs
