#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace flexwan::obs {

namespace {

struct TraceEvent {
  const char* name;  // string literal owned by the call site
  double ts_us;
  double dur_us;
};

// Events land in per-thread buffers so span end is an uncontended lock on
// the owning thread; the export path locks each buffer briefly to copy.
// Buffers are shared_ptrs held by both the thread (thread_local) and the
// global list, so a thread exiting does not drop its events.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  int tid = 0;
};

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 1;
  std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
};

TraceState& state() {
  static TraceState* const s = new TraceState();  // never destroyed
  return *s;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    auto& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    b->tid = s.next_tid++;
    s.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::string fmt_us(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

double now_us() {
  const auto elapsed = std::chrono::steady_clock::now() - state().origin;
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

int thread_track_id() { return local_buffer().tid; }

void record_trace_event(const char* name, double start_us, double dur_us) {
  auto& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(TraceEvent{name, start_us, dur_us});
}

std::string trace_json() {
  // Snapshot the buffer list, then each buffer, so concurrent spans can
  // keep recording while we serialize.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    auto& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    buffers = s.buffers;
  }
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
      << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"args\": {\"name\": \"flexwan\"}}";
  // Metadata events name each track so Perfetto shows "main" / "worker-N"
  // instead of bare tids.  tid 1 is the first thread that touched obs —
  // the main thread in every tool and bench.
  for (const auto& buffer : buffers) {
    int tid = 0;
    {
      std::lock_guard<std::mutex> lock(buffer->mu);
      tid = buffer->tid;
    }
    out << ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
        << "\"tid\": " << tid << ", \"args\": {\"name\": \""
        << (tid == 1 ? std::string("main")
                     : "worker-" + std::to_string(tid - 1))
        << "\"}}";
  }
  for (const auto& buffer : buffers) {
    std::vector<TraceEvent> events;
    int tid = 0;
    {
      std::lock_guard<std::mutex> lock(buffer->mu);
      events = buffer->events;
      tid = buffer->tid;
    }
    for (const auto& e : events) {
      out << ",\n  {\"name\": \"" << e.name << "\", \"cat\": \"flexwan\", "
          << "\"ph\": \"X\", \"ts\": " << fmt_us(e.ts_us)
          << ", \"dur\": " << fmt_us(e.dur_us) << ", \"pid\": 1, \"tid\": "
          << tid << "}";
    }
  }
  out << "\n]}\n";
  return out.str();
}

void reset_trace() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    auto& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    buffers = s.buffers;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
  }
}

void Span::finish() {
  if (timed_) {
    const double end_us = now_us();
    if (trace_enabled()) {
      record_trace_event(name_, start_us_, end_us - start_us_);
    }
    // Timing, not metrics: latency samples are wall-derived, so they stay
    // out of the registry in the deterministic bundle-only mode (metrics.h).
    if (timing_enabled() && hist_ != nullptr) {
      hist_->observe(end_us - start_us_);
    }
  }
  if (prof_) workprof::pop_frame();
}

Histogram* span_histogram(const char* name) {
  return Registry::instance().histogram(std::string(name) + ".us",
                                        default_latency_bounds_us());
}

}  // namespace flexwan::obs
