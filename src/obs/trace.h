// Scoped spans and Chrome-trace-format export.
//
// OBS_SPAN("planner.stage1.link_dp") opens an RAII span: when tracing is on
// it records a complete ("ph":"X") event — name, per-thread track, start,
// duration in microseconds — into a thread-local buffer; when timing is on
// (metrics.h kTimingBit) it additionally feeds a latency histogram named
// "<span>.us" in the metrics registry.  trace_json() renders every buffered
// event as a Chrome trace (chrome://tracing / https://ui.perfetto.dev both
// load it).
//
// When neither tracing nor timing is on a span costs one relaxed load +
// branch at open and a dead branch at close — no clock reads, locks, or
// allocation.  In particular a bundle-only run (--bundle: metrics + events
// on, timing off) keeps every span inactive, so no wall-clock value can
// leak into the deterministic bundle artifacts.
// Span *end* order across threads is the buffer order; viewers sort by
// timestamp, so no global ordering is maintained here.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace flexwan::obs {

// Microseconds since the process-wide trace origin (first obs use).
// Monotonic (steady_clock); shared by spans and latency metrics so trace
// timestamps and histogram samples are directly comparable.
double now_us();

// Small dense id for the calling thread (1 = first thread observed).
// Stable for the thread's lifetime; used as the Chrome trace "tid".
int thread_track_id();

// Appends one complete event to the calling thread's buffer.  Only call
// while trace_enabled(); Span does this for you.
void record_trace_event(const char* name, double start_us, double dur_us);

// The buffered events as a Chrome trace JSON document:
//   {"traceEvents": [{"name": ..., "ph": "X", "ts": ..., "dur": ...,
//                     "pid": 1, "tid": ...}, ...]}
std::string trace_json();

// Drops every buffered event (thread tracks keep their ids).
void reset_trace();

// RAII span.  Construct inactive, then begin() when tracing or timing is
// on — the OBS_SPAN macro wraps that dance and caches the histogram
// lookup per call site.  `name` must outlive the span (string literals).
class Span {
 public:
  Span() = default;
  ~Span() { if (active_) finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // `track_work` false keeps this span out of the work-profile tree; the
  // engine uses that for its drain span, which exists only on the parallel
  // path and would otherwise make the tree thread-count-dependent.
  void begin(const char* name, Histogram* latency_hist,
             bool track_work = true) {
    name_ = name;
    hist_ = latency_hist;
    // Read the clock only when a wall-derived consumer is on; a
    // profile-only span must stay clock-free to keep bundles deterministic.
    if ((enabled_bits() & (kTraceBit | kTimingBit)) != 0u) {
      start_us_ = now_us();
      timed_ = true;
    }
    if (track_work && workprof_enabled()) {
      workprof::push_frame(name);
      prof_ = true;
    }
    active_ = true;
  }

 private:
  void finish();

  const char* name_ = nullptr;
  Histogram* hist_ = nullptr;
  double start_us_ = 0.0;
  bool active_ = false;
  bool timed_ = false;
  bool prof_ = false;  // frame pushed at begin; popped at finish regardless
                       // of enable-bit flips in between
};

// Registers (once per call site) the "<name>.us" latency histogram a span
// feeds when metrics are enabled.
Histogram* span_histogram(const char* name);

}  // namespace flexwan::obs

// Opens a span covering the rest of the enclosing scope.  `name` must be a
// string literal (it is kept by pointer and used to derive the "<name>.us"
// histogram).
#define OBS_DETAIL_SPAN(name, track_work)                                  \
  ::flexwan::obs::Span OBS_DETAIL_CONCAT(obs_span_, __LINE__);             \
  if ((::flexwan::obs::enabled_bits() &                                    \
       (::flexwan::obs::kTraceBit | ::flexwan::obs::kTimingBit |           \
        ::flexwan::obs::kWorkProfBit)) != 0u) {                            \
    static ::flexwan::obs::Histogram* const OBS_DETAIL_CONCAT(             \
        obs_span_hist_, __LINE__) = ::flexwan::obs::span_histogram(name);  \
    OBS_DETAIL_CONCAT(obs_span_, __LINE__)                                 \
        .begin(name, OBS_DETAIL_CONCAT(obs_span_hist_, __LINE__),          \
               track_work);                                                \
  }

#define OBS_SPAN(name) OBS_DETAIL_SPAN(name, true)

// Span that traces and times but never pushes a work-profile frame.  For
// scopes whose existence depends on the thread count (engine drain): their
// frames would break the profile's byte-identity across --threads values.
#define OBS_SPAN_UNTRACKED(name) OBS_DETAIL_SPAN(name, false)
