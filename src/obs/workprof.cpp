#include "obs/workprof.h"

#include <sstream>

#include "obs/json.h"

namespace flexwan::obs::workprof {

namespace {

// A thread's private accumulation context: a fragment tree plus the stack
// of open frames.  `names` mirrors `stack` (minus the root) so
// current_path() can report the frame names; span names are string
// literals, so keeping the pointers is safe.
struct ContextImpl {
  std::vector<std::string> base;
  WorkNode root;
  std::vector<WorkNode*> stack;
  std::vector<const char*> names;

  ContextImpl() { stack.push_back(&root); }
};

thread_local ContextImpl* tls_ctx = nullptr;

// Lazily created context for threads that attribute work outside any
// ScopedWorkContext (the main thread, or a test's raw std::thread).  Owned
// by the thread; flushed by exports (same thread) or flush_this_thread().
ContextImpl& local_context() {
  if (tls_ctx == nullptr) {
    thread_local ContextImpl owned;
    tls_ctx = &owned;
  }
  return *tls_ctx;
}

// Moves `from`'s counters and children into `into`, summing counters.
// Zero counters are dropped so idle participants leave no nodes behind.
void merge_node(const WorkNode& from, WorkNode& into) {
  for (const auto& [name, value] : from.counters) {
    if (value != 0) into.counters[name] += value;
  }
  for (const auto& [name, sub] : from.children) {
    WorkNode probe;
    merge_node(*sub, probe);
    if (probe.counters.empty() && probe.children.empty()) continue;
    WorkNode* target = into.child(name);
    for (auto& [cname, cvalue] : probe.counters) target->counters[cname] += cvalue;
    for (auto& [childname, childnode] : probe.children) {
      // probe was freshly built, so its subtrees can be adopted wholesale
      // when the target has no such child yet.
      auto it = target->children.find(childname);
      if (it == target->children.end()) {
        target->children.emplace(childname, std::move(childnode));
      } else {
        merge_node(*childnode, *it->second);
      }
    }
  }
}

void clear_counters(WorkNode& node) {
  for (auto& [name, value] : node.counters) {
    (void)name;
    value = 0;
  }
  for (auto& [name, sub] : node.children) {
    (void)name;
    clear_counters(*sub);
  }
}

void write_node_json(const WorkNode& node, int indent, std::ostringstream& out) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad1(static_cast<std::size_t>(indent + 1) * 2, ' ');
  out << "{\n" << pad1 << "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : node.counters) {
    if (value == 0) continue;
    out << (first ? "" : ",") << "\n" << pad1 << "  \"" << json::escape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n" + pad1) << "},\n" << pad1 << "\"children\": {";
  first = true;
  for (const auto& [name, sub] : node.children) {
    out << (first ? "" : ",") << "\n" << pad1 << "  \"" << json::escape(name)
        << "\": ";
    write_node_json(*sub, indent + 2, out);
    first = false;
  }
  out << (first ? "" : "\n" + pad1) << "}\n" << pad << "}";
}

void write_folded(const WorkNode& node, const std::string& stack,
                  const std::string& weight, std::ostringstream& out) {
  const auto it = node.counters.find(weight);
  if (it != node.counters.end() && it->second != 0) {
    out << stack << " " << it->second << "\n";
  }
  for (const auto& [name, sub] : node.children) {
    write_folded(*sub, stack + ";" + name, weight, out);
  }
}

void flatten_node(const WorkNode& node, const std::string& stack,
                  std::map<std::string, std::uint64_t>& out) {
  for (const auto& [name, value] : node.counters) {
    if (value != 0) out[stack + ";" + name] = value;
  }
  for (const auto& [name, sub] : node.children) {
    flatten_node(*sub, stack + ";" + name, out);
  }
}

}  // namespace

WorkNode* WorkNode::child(std::string_view name) {
  auto it = children.find(name);
  if (it == children.end()) {
    it = children.emplace(std::string(name), std::make_unique<WorkNode>())
             .first;
  }
  return it->second.get();
}

WorkProfile& WorkProfile::instance() {
  static WorkProfile* const p = new WorkProfile();  // never destroyed
  return *p;
}

void WorkProfile::merge_at(const std::vector<std::string>& base,
                           const WorkNode& fragment) {
  std::lock_guard<std::mutex> lock(mu_);
  WorkNode probe;
  merge_node(fragment, probe);
  if (probe.counters.empty() && probe.children.empty()) return;
  WorkNode* target = &root_;
  for (const auto& frame : base) target = target->child(frame);
  merge_node(probe, *target);
}

void WorkProfile::flush_this_thread() {
  ContextImpl* ctx = tls_ctx;
  if (ctx == nullptr) return;
  merge_at(ctx->base, ctx->root);
  // Keep the node structure (open frames hold pointers into it); just zero
  // the accumulated values so the next flush does not double-count.
  clear_counters(ctx->root);
}

void WorkProfile::reset() {
  flush_this_thread();  // ensure the local context is empty, then discard
  std::lock_guard<std::mutex> lock(mu_);
  root_.counters.clear();
  root_.children.clear();
}

std::string WorkProfile::to_json() {
  flush_this_thread();
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n  \"schema_version\": " << kProfileSchemaVersion << ",\n"
      << "  \"weight_default\": \"" << kDefaultFoldedWeight << "\",\n"
      << "  \"root\": ";
  write_node_json(root_, 1, out);
  out << "\n}\n";
  return out.str();
}

std::string WorkProfile::to_folded(const std::string& weight) {
  flush_this_thread();
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  write_folded(root_, kRootFrame, weight, out);
  return out.str();
}

std::map<std::string, std::uint64_t> WorkProfile::flatten() {
  flush_this_thread();
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::uint64_t> out;
  flatten_node(root_, kRootFrame, out);
  return out;
}

void push_frame(const char* name) {
  ContextImpl& ctx = local_context();
  ctx.stack.push_back(ctx.stack.back()->child(name));
  ctx.names.push_back(name);
}

void pop_frame() {
  ContextImpl* ctx = tls_ctx;
  if (ctx == nullptr || ctx->stack.size() <= 1) return;
  ctx->stack.pop_back();
  ctx->names.pop_back();
}

void attribute(const char* counter, std::uint64_t n) {
  if (n == 0) return;
  ContextImpl& ctx = local_context();
  WorkNode* node = ctx.stack.back();
  const auto it = node->counters.find(counter);
  if (it != node->counters.end()) {
    it->second += n;
  } else {
    node->counters.emplace(std::string(counter), n);
  }
}

std::vector<std::string> current_path() {
  ContextImpl* ctx = tls_ctx;
  if (ctx == nullptr) return {};
  std::vector<std::string> path = ctx->base;
  for (const char* name : ctx->names) path.emplace_back(name);
  return path;
}

struct ScopedWorkContext::Context : ContextImpl {};

ScopedWorkContext::ScopedWorkContext(
    std::shared_ptr<const std::vector<std::string>> base)
    : ctx_(std::make_unique<Context>()),
      previous_(static_cast<void*>(tls_ctx)) {
  if (base != nullptr) ctx_->base = *base;
  tls_ctx = ctx_.get();
}

ScopedWorkContext::~ScopedWorkContext() {
  WorkProfile::instance().merge_at(ctx_->base, ctx_->root);
  tls_ctx = static_cast<ContextImpl*>(previous_);
}

std::string folded_from_json_tree(const json::Value& root,
                                  const std::string& weight) {
  // Rebuild a WorkNode tree, then reuse the writer so the bytes match
  // to_folded() exactly.
  WorkNode tree;
  struct Builder {
    static void build(const json::Value& v, WorkNode& node) {
      if (const json::Value* counters = v.find("counters")) {
        if (counters->is_object()) {
          for (const auto& [name, val] : counters->as_object()) {
            if (val.is_number()) {
              node.counters[name] =
                  static_cast<std::uint64_t>(val.as_number());
            }
          }
        }
      }
      if (const json::Value* children = v.find("children")) {
        if (children->is_object()) {
          for (const auto& [name, sub] : children->as_object()) {
            build(sub, *node.child(name));
          }
        }
      }
    }
  };
  Builder::build(root, tree);
  std::ostringstream out;
  write_folded(tree, kRootFrame, weight, out);
  return out.str();
}

void flatten_json_tree(const json::Value& root, const std::string& prefix,
                       std::map<std::string, double>& out) {
  const std::string stack = prefix + kRootFrame;
  struct Walker {
    static void walk(const json::Value& v, const std::string& stack,
                     std::map<std::string, double>& out) {
      if (const json::Value* counters = v.find("counters")) {
        if (counters->is_object()) {
          for (const auto& [name, val] : counters->as_object()) {
            if (val.is_number() && val.as_number() != 0.0) {
              out[stack + ";" + name] = val.as_number();
            }
          }
        }
      }
      if (const json::Value* children = v.find("children")) {
        if (children->is_object()) {
          for (const auto& [name, sub] : children->as_object()) {
            walk(sub, stack + ";" + name, out);
          }
        }
      }
    }
  };
  Walker::walk(root, stack, out);
}

}  // namespace flexwan::obs::workprof
