// Deterministic work-attribution profiler: a calling-context tree keyed by
// the active OBS_SPAN stack.
//
// Every OBS_SPAN pushes a frame onto the calling thread's context; every
// OBS_COUNTER_ADD of a deterministic work counter also attributes its
// increment to the node addressed by the current frame stack.  The result
// is exclusive work per tree path — e.g. the `planner.ksp.calls` accrued
// under `planner.plan > planner.stage1.link_dp` is separated from the calls
// the incremental restorer makes under `sim.trial > sim.restore`.
//
// Determinism contract (the whole point): work counters are deterministic,
// so the merged tree must be byte-identical at every --threads value.  Two
// properties make that hold:
//   1. Engine tasks run under a fresh per-participant context whose base
//      path is captured from the *submitting* thread at parallel_for time
//      (engine.cpp), so a task's frames land at the same tree path whether
//      it runs inline (serial path) or on any worker.
//   2. A context merge is a commutative per-node, per-counter sum into
//      sorted maps, so merge order — which does vary with thread count —
//      cannot affect the serialized output.  (This differs from the
//      eventlog, whose records are ordering-sensitive and therefore spliced
//      in task-index order; sums need no such discipline.)
// Wall-derived counters must never be attributed (they would break the
// contract) — they use OBS_COUNTER_ADD_UNTRACKED (metrics.h).
//
// Enabled by the kWorkProfBit (metrics.h); off, a span costs the usual
// single relaxed-load branch and a counter pays nothing extra.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace flexwan::obs::json {
class Value;
}  // namespace flexwan::obs::json

namespace flexwan::obs::workprof {

inline constexpr int kProfileSchemaVersion = 1;

// Default folded-stack weight: every engine task contributes one unit, so
// the flamegraph shows where parallel work fans out by default.
inline constexpr const char* kDefaultFoldedWeight = "engine.tasks_executed";

// Synthetic first frame for work attributed with no span open, and the
// common prefix of every folded stack / flattened key.
inline constexpr const char* kRootFrame = "(root)";

// One node of the calling-context tree.  `counters` holds *exclusive* work
// (increments attributed while this exact frame stack was active); child
// order and counter order are the sorted map order, which is what makes
// serialization independent of merge order.
struct WorkNode {
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, std::unique_ptr<WorkNode>, std::less<>> children;

  // Child for `name`, created empty if missing.
  WorkNode* child(std::string_view name);
};

// The process-wide merged tree.  Threads accumulate into private contexts
// (see ScopedWorkContext / the thread-local implicit context) and merge
// here under a mutex; exports flush the calling thread first so a
// single-threaded caller sees its own work without extra ceremony.
class WorkProfile {
 public:
  static WorkProfile& instance();

  // Merges `fragment` into the tree under the path `base` (outermost frame
  // first).  Zero counters are skipped and empty subtrees create no nodes,
  // so merging an idle participant's context is a no-op.
  void merge_at(const std::vector<std::string>& base, const WorkNode& fragment);

  // Merges the calling thread's implicit context into the tree and zeroes
  // it (node structure and open frames stay valid).  Exports call this for
  // you; a test driving raw threads calls it before joining them.
  void flush_this_thread();

  // Drops the whole tree (and the calling thread's pending context).
  // Open spans keep working: their frames re-create nodes on next use.
  void reset();

  // profile.json document: {"schema_version": 1, "weight_default": ...,
  // "root": {"counters": {...}, "children": {"<span>": {...}, ...}}}.
  // Sorted keys throughout; exact integer values (json::number_to_string).
  std::string to_json();

  // Folded-stack lines for flamegraph tooling: one line per node whose
  // `weight` counter is nonzero, "(root);frame1;frame2 <value>\n", in
  // depth-first sorted-child order.
  std::string to_folded(const std::string& weight = kDefaultFoldedWeight);

  // Flat view for gates and per-case BENCH deltas: key is the frame path
  // joined with ';' (root prefix included) plus the counter name as the
  // last segment — "(root);planner.plan;planner.ksp.calls" -> value.
  // Counter names may themselves contain dots; only ';' separates frames.
  std::map<std::string, std::uint64_t> flatten();

 private:
  WorkProfile() = default;

  mutable std::mutex mu_;
  WorkNode root_;
};

// Hot-path hooks used by the OBS_SPAN / OBS_COUNTER_ADD macros (forward
// declared in metrics.h).  `name` / `counter` must outlive the profile
// (string literals).  push/pop pair regardless of enable-bit flips in
// between; attribute(_, 0) is a no-op so idle engine participants leave no
// trace.
void push_frame(const char* name);
void pop_frame();
void attribute(const char* counter, std::uint64_t n);

// The calling thread's current frame path (context base + open frames),
// outermost first.  The engine captures this at parallel_for time as the
// base path for the job's task contexts.
std::vector<std::string> current_path();

// Installs a fresh context for the calling thread rooted at `base`,
// restoring the previous context — and merging the fresh one into the
// global tree — on destruction.  Engine drain() wraps task execution in
// one of these so worker-side frames land under the submitter's path.
class ScopedWorkContext {
 public:
  explicit ScopedWorkContext(
      std::shared_ptr<const std::vector<std::string>> base);
  ~ScopedWorkContext();

  ScopedWorkContext(const ScopedWorkContext&) = delete;
  ScopedWorkContext& operator=(const ScopedWorkContext&) = delete;

 private:
  struct Context;
  std::unique_ptr<Context> ctx_;
  void* previous_ = nullptr;  // the thread's prior context, restored on exit
};

// Rebuilds the folded view from a parsed profile.json tree (the value of
// its "root" key) — shared by bundle tooling and the round-trip test.
// Returns the same bytes to_folded() produces for the same tree.
std::string folded_from_json_tree(const json::Value& root,
                                  const std::string& weight);

// Flattens a parsed profile.json tree into gate fields, prefixing each key
// with `prefix` ("(root);..." keys as in WorkProfile::flatten).  Used by
// bundle_diff to compare stored profiles without re-running anything.
void flatten_json_tree(const json::Value& root, const std::string& prefix,
                       std::map<std::string, double>& out);

}  // namespace flexwan::obs::workprof
