#include "phy/ber.h"

#include <algorithm>
#include <cmath>

#include "phy/shannon.h"

namespace flexwan::phy {

double post_fec_ber(double snr_linear, const transponder::Mode& mode) {
  const double needed = required_snr(mode);
  if (snr_linear >= needed) return 0.0;
  // FEC cliff: error rate rises exponentially with the SNR shortfall (dB).
  const double shortfall_db =
      10.0 * std::log10(needed / std::max(snr_linear, 1e-12));
  // ~1e-9 just past the cliff, saturating toward 0.5 for hopeless signals.
  const double ber = 1e-9 * std::pow(10.0, 2.0 * shortfall_db);
  return std::min(ber, 0.5);
}

bool decodes_error_free(double snr_linear, const transponder::Mode& mode) {
  return post_fec_ber(snr_linear, mode) == 0.0;
}

}  // namespace flexwan::phy
