// Post-FEC bit-error-rate model.
//
// The testbed (§6) uses post-FEC BER as the pass/fail signal: zero while the
// SNR clears the mode's requirement, climbing sharply once it does not.  We
// model the characteristic FEC cliff: exactly 0 at or above the required
// SNR, then a steep exponential ramp below it.
#pragma once

#include "transponder/mode.h"

namespace flexwan::phy {

// Post-FEC BER for a received linear SNR.  Returns 0.0 when the signal is
// decodable error-free, a positive value otherwise (the testbed's stop
// condition is "post-FEC BER increases from 0 to a positive number").
double post_fec_ber(double snr_linear, const transponder::Mode& mode);

// Convenience: whether the signal decodes error-free at this SNR.
bool decodes_error_free(double snr_linear, const transponder::Mode& mode);

}  // namespace flexwan::phy
