#include "phy/calibration.h"

#include <algorithm>
#include <cmath>

#include "phy/ber.h"
#include "phy/shannon.h"

namespace flexwan::phy {

CalibratedModel::CalibratedModel(PlantParams plant,
                                 std::map<MarginKey, double> margin_db)
    : plant_(plant), margin_db_(std::move(margin_db)) {}

double CalibratedModel::margin_db(const transponder::Mode& mode) const {
  const auto it =
      margin_db_.find(MarginKey{mode.data_rate_gbps, mode.fec_overhead});
  return it == margin_db_.end() ? 0.0 : it->second;
}

double CalibratedModel::received_snr(const transponder::Mode& mode,
                                     double distance_km) const {
  const double snr = snr_linear(distance_km, mode.baud_gbd, plant_);
  // The fitted margin is an extra penalty subtracted from the received SNR.
  return snr / db_to_linear(margin_db(mode));
}

double CalibratedModel::post_fec_ber(const transponder::Mode& mode,
                                     double distance_km) const {
  return phy::post_fec_ber(received_snr(mode, distance_km), mode);
}

double CalibratedModel::predicted_reach_km(const transponder::Mode& mode,
                                           double step_km,
                                           double max_km) const {
  double reach = 0.0;
  for (double d = step_km; d <= max_km; d += step_km) {
    if (post_fec_ber(mode, d) == 0.0) {
      reach = d;
    } else {
      break;
    }
  }
  return reach;
}

CalibratedModel calibrate(const transponder::Catalog& catalog,
                          const PlantParams& plant) {
  // For each row, find the margin that makes the model's SNR at the table
  // reach exactly equal the mode's required SNR:
  //   margin_db = SNR(table_reach) [dB] - required [dB].
  std::map<MarginKey, std::vector<double>> samples;
  for (const auto& mode : catalog.modes()) {
    const double snr_at_reach =
        snr_linear(mode.reach_km, mode.baud_gbd, plant);
    const double needed = required_snr(mode);
    if (snr_at_reach <= 0.0 || needed <= 0.0) continue;
    samples[MarginKey{mode.data_rate_gbps, mode.fec_overhead}].push_back(
        linear_to_db(snr_at_reach / needed));
  }
  std::map<MarginKey, double> margins;
  for (const auto& [key, values] : samples) {
    double sum = 0.0;
    for (double v : values) sum += v;
    margins[key] = sum / static_cast<double>(values.size());
  }
  return CalibratedModel(plant, std::move(margins));
}

CalibrationReport evaluate(const CalibratedModel& model,
                           const transponder::Catalog& catalog) {
  CalibrationReport report;
  double sum = 0.0;
  for (const auto& mode : catalog.modes()) {
    CalibrationRow row;
    row.mode = mode;
    row.table_reach_km = mode.reach_km;
    row.model_reach_km = model.predicted_reach_km(mode);
    row.relative_error =
        mode.reach_km > 0.0
            ? std::abs(row.model_reach_km - row.table_reach_km) /
                  row.table_reach_km
            : 0.0;
    sum += row.relative_error;
    report.max_relative_error =
        std::max(report.max_relative_error, row.relative_error);
    report.rows.push_back(row);
  }
  if (!report.rows.empty()) {
    report.mean_relative_error = sum / static_cast<double>(report.rows.size());
  }
  return report;
}

}  // namespace flexwan::phy
