// Calibration of the physical-layer model against the measured SVT
// specifications (paper Table 2).
//
// The paper obtains Table 2 from a vendor testbed we do not have; our
// substitute is the analytic plant model in link_budget.h.  Calibration fits
// one margin per modulation format so that the model's predicted reach for
// each Table 2 row matches the measured reach as closely as possible, then
// reports the per-row residuals.  Downstream planning always uses the
// catalog's measured reaches; the calibrated model is used by the testbed
// simulation (hardware/testbed.h) and its bench to show the model reproduces
// the table.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "phy/link_budget.h"
#include "transponder/catalog.h"

namespace flexwan::phy {

// Calibration key: each line rate runs a distinct DSP pipeline whose
// implementation penalty differs, and the FEC generation shifts it again —
// so margins are fitted per (data rate, FEC overhead) group.
struct MarginKey {
  double data_rate_gbps = 0.0;
  double fec_overhead = 0.0;

  friend auto operator<=>(const MarginKey&, const MarginKey&) = default;
};

// A plant model plus fitted margin corrections.
class CalibratedModel {
 public:
  CalibratedModel(PlantParams plant, std::map<MarginKey, double> margin_db);

  const PlantParams& plant() const { return plant_; }

  // Margin applied to a mode's received SNR (dB), 0 for unfitted groups.
  double margin_db(const transponder::Mode& mode) const;

  // Received linear SNR for a mode after `distance_km`.
  double received_snr(const transponder::Mode& mode, double distance_km) const;

  // Post-FEC BER with the fitted margin applied.
  double post_fec_ber(const transponder::Mode& mode, double distance_km) const;

  // Model-predicted reach: the longest distance (swept in `step_km`
  // increments, like the testbed's fiber bundles) at which the mode still
  // decodes error-free.  Returns 0 when even one bundle is too long.
  double predicted_reach_km(const transponder::Mode& mode,
                            double step_km = 50.0,
                            double max_km = 8000.0) const;

 private:
  PlantParams plant_;
  std::map<MarginKey, double> margin_db_;
};

// One row of the calibration report: table reach vs model reach.
struct CalibrationRow {
  transponder::Mode mode;
  double table_reach_km = 0.0;
  double model_reach_km = 0.0;
  double relative_error = 0.0;  // |model - table| / table
};

struct CalibrationReport {
  std::vector<CalibrationRow> rows;
  double mean_relative_error = 0.0;
  double max_relative_error = 0.0;
};

// Fits per-(rate, FEC) margins so the plant model reproduces the catalog's
// measured reaches: for each row the exact margin that would make the model
// reach equal the table reach is computed, then averaged per group.
CalibratedModel calibrate(const transponder::Catalog& catalog,
                          const PlantParams& plant = {});

// Evaluates a calibrated model against a catalog row-by-row.
CalibrationReport evaluate(const CalibratedModel& model,
                           const transponder::Catalog& catalog);

}  // namespace flexwan::phy
