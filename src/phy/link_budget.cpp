#include "phy/link_budget.h"

#include <algorithm>
#include <cmath>

namespace flexwan::phy {

namespace {
// OSNR is conventionally referenced to 0.1 nm ~ 12.5 GHz at 1550 nm.
constexpr double kOsnrReferenceGhz = 12.5;
// 58 dB = 10 log10(1 mW / (h * nu * B_ref)) at 1550 nm, the standard
// single-amplifier OSNR constant.
constexpr double kOsnrConstantDb = 58.0;
}  // namespace

double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
double linear_to_db(double linear) { return 10.0 * std::log10(linear); }

int span_count(double distance_km, const PlantParams& params) {
  if (distance_km <= 0.0) return 1;
  return std::max(1, static_cast<int>(std::ceil(distance_km / params.span_km)));
}

double osnr_db(double distance_km, const PlantParams& params) {
  const int spans = span_count(distance_km, params);
  const double span_loss_db = params.span_km * params.attenuation_db_per_km;
  return kOsnrConstantDb + params.launch_power_dbm - span_loss_db -
         params.amp_noise_figure_db - 10.0 * std::log10(spans);
}

double snr_linear(double distance_km, double baud_gbd,
                  const PlantParams& params) {
  const double osnr = db_to_linear(osnr_db(distance_km, params));
  // SNR in the signal bandwidth = OSNR * (B_ref / baud).
  return osnr * (kOsnrReferenceGhz / std::max(baud_gbd, 1e-9));
}

}  // namespace flexwan::phy
