// Optical link-budget model.
//
// The paper's testbed (§6) builds optical paths out of fiber bundles with an
// amplifier every 50-100 km, then measures post-FEC BER as length grows.  We
// model the same chain: each span attenuates the signal, each EDFA restores
// it while adding ASE noise, and the accumulated noise sets the SNR at the
// receiver.  Shorter paths → fewer amplifiers → higher SNR (paper §3.1).
#pragma once

namespace flexwan::phy {

// Per-span plant parameters, consistent with a production long-haul system.
struct PlantParams {
  double span_km = 80.0;               // amplifier every 50-100 km (§6)
  double attenuation_db_per_km = 0.2;  // standard SMF loss
  double amp_noise_figure_db = 5.0;    // EDFA noise figure
  double launch_power_dbm = 0.0;       // per-channel launch power
};

// Number of amplified spans needed to cover `distance_km` (at least one; the
// terminal still has a pre-amplifier).
int span_count(double distance_km, const PlantParams& params);

// Optical SNR in dB, referenced to the conventional 12.5 GHz (0.1 nm)
// resolution bandwidth, after traversing `distance_km`:
//   OSNR = 58 + P_launch - span_loss - NF - 10 log10(N_spans).
double osnr_db(double distance_km, const PlantParams& params);

// Electrical SNR (linear) within a signal of the given symbol rate:
// converts OSNR from the 12.5 GHz reference bandwidth to the signal baud.
double snr_linear(double distance_km, double baud_gbd,
                  const PlantParams& params);

double db_to_linear(double db);
double linear_to_db(double linear);

}  // namespace flexwan::phy
