#include "phy/nonlinear.h"

#include <cmath>

namespace flexwan::phy {

namespace {

double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }
double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

}  // namespace

double ase_power_mw(double distance_km, double baud_gbd,
                    const PlantParams& plant) {
  // The linear model gives SNR = P_launch / N_ase; invert it.
  const double snr = snr_linear(distance_km, baud_gbd, plant);
  return dbm_to_mw(plant.launch_power_dbm) / snr;
}

double snr_with_nli(double power_mw, double distance_km, double baud_gbd,
                    const PlantParams& plant, const NonlinearParams& nl) {
  if (power_mw <= 0.0) return 0.0;
  const double ase = ase_power_mw(distance_km, baud_gbd, plant);
  const double spans = span_count(distance_km, plant);
  const double nli = nl.eta_per_span * spans * power_mw * power_mw * power_mw;
  return power_mw / (ase + nli);
}

double optimal_launch_power_dbm(double distance_km, double baud_gbd,
                                const PlantParams& plant,
                                const NonlinearParams& nl) {
  const double ase = ase_power_mw(distance_km, baud_gbd, plant);
  const double spans = span_count(distance_km, plant);
  const double eta_total = nl.eta_per_span * spans;
  // d/dP [P / (ase + eta P^3)] = 0  =>  P_opt^3 = ase / (2 eta).
  return mw_to_dbm(std::cbrt(ase / (2.0 * eta_total)));
}

double optimal_snr(double distance_km, double baud_gbd,
                   const PlantParams& plant, const NonlinearParams& nl) {
  const double p_opt = dbm_to_mw(
      optimal_launch_power_dbm(distance_km, baud_gbd, plant, nl));
  return snr_with_nli(p_opt, distance_km, baud_gbd, plant, nl);
}

}  // namespace flexwan::phy
