// Fiber nonlinearity (GN-model style) and launch-power optimization.
//
// The paper notes (§3.1) that high-order formats are "susceptible to
// optical impairments, including chromatic dispersion and fiber
// nonlinearity".  The linear link budget in link_budget.h assumes ASE noise
// only, which is accurate when channels launch at the power that balances
// ASE against nonlinear interference (NLI) — operators run there on
// purpose.  This module exposes that balance explicitly:
//
//   SNR(P) = P / (N_ase + eta * P^3)
//
// where eta aggregates the Kerr-effect NLI per span.  The optimum is at
// P_opt = (N_ase / (2 eta))^(1/3), where NLI contributes exactly half the
// ASE power — the classic "nonlinear threshold" rule of thumb.
#pragma once

#include "phy/link_budget.h"

namespace flexwan::phy {

struct NonlinearParams {
  // NLI coefficient per span, normalized to mW^-2: NLI power (mW) generated
  // per span by a channel launched at P mW is eta_per_span * P^3.
  double eta_per_span = 1.5e-3;
};

// ASE noise power (mW) accumulated over the spans covering `distance_km`,
// inside the signal bandwidth `baud_gbd` (the denominator of the linear
// model's SNR when the launch power is plant.launch_power_dbm).
double ase_power_mw(double distance_km, double baud_gbd,
                    const PlantParams& plant);

// SNR (linear) at launch power `power_mw`, including NLI.
double snr_with_nli(double power_mw, double distance_km, double baud_gbd,
                    const PlantParams& plant, const NonlinearParams& nl);

// The launch power (dBm) that maximizes SNR over this path: the ASE/NLI
// balance point (N_ase / (2 eta_total))^(1/3).
double optimal_launch_power_dbm(double distance_km, double baud_gbd,
                                const PlantParams& plant,
                                const NonlinearParams& nl);

// SNR at the optimal launch power (the best this path can ever deliver).
double optimal_snr(double distance_km, double baud_gbd,
                   const PlantParams& plant, const NonlinearParams& nl);

}  // namespace flexwan::phy
