#include "phy/shannon.h"

#include <cmath>

#include "phy/link_budget.h"

namespace flexwan::phy {

double shannon_capacity_gbps(double spacing_ghz, double snr_linear) {
  if (spacing_ghz <= 0.0 || snr_linear <= 0.0) return 0.0;
  return 2.0 * spacing_ghz * std::log2(1.0 + snr_linear);
}

double shannon_required_snr(const transponder::Mode& mode) {
  // Invert 2 * W * log2(1 + snr) = rate.
  const double bits_per_hz = mode.data_rate_gbps / (2.0 * mode.spacing_ghz);
  return std::pow(2.0, bits_per_hz) - 1.0;
}

double implementation_gap_db(const transponder::Mode& mode) {
  using transponder::Modulation;
  // Base gap of practical coded modulation; stronger FEC halves the distance
  // to capacity, higher-order formats add implementation penalty.
  double gap = mode.fec_overhead >= 0.25 ? 1.5 : 3.0;
  switch (mode.modulation) {
    case Modulation::kBpsk:
    case Modulation::kQpsk: break;
    case Modulation::k8Qam: gap += 0.5; break;
    case Modulation::k16Qam: gap += 1.0; break;
    case Modulation::kPcs16Qam: gap += 0.8; break;
    case Modulation::kPcs64Qam: gap += 1.5; break;
  }
  return gap;
}

double required_snr(const transponder::Mode& mode) {
  return shannon_required_snr(mode) *
         db_to_linear(implementation_gap_db(mode));
}

}  // namespace flexwan::phy
