// Shannon-Hartley limits and per-mode SNR requirements.
//
// The paper grounds the SVT design in C = W log2(1 + S/N) (§1 footnote 2,
// §3.1): a wavelength cannot exceed the Shannon limit of its channel spacing,
// and the limit rises when the spacing widens — which is exactly the degree
// of freedom the SVT exploits.
#pragma once

#include "transponder/mode.h"

namespace flexwan::phy {

// Shannon-Hartley capacity (Gbps) of a dual-polarisation channel of width
// `spacing_ghz` at the given linear SNR: 2 * W * log2(1 + SNR).
double shannon_capacity_gbps(double spacing_ghz, double snr_linear);

// Minimum linear SNR at which the Shannon capacity of the mode's spacing
// covers its data rate (ideal coding, no margin).
double shannon_required_snr(const transponder::Mode& mode);

// Implementation gap in dB for a mode: distance from the Shannon limit due
// to finite-length FEC and modulation impairments.  Stronger FEC (higher
// overhead) operates closer to the limit; high-order formats pay extra
// penalty (chromatic dispersion / nonlinearity sensitivity, §3.1).
double implementation_gap_db(const transponder::Mode& mode);

// Required linear SNR including the implementation gap.  The signal decodes
// error-free (post-FEC BER 0) iff the received SNR is at least this value.
double required_snr(const transponder::Mode& mode);

}  // namespace flexwan::phy
