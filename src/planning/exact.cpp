#include "planning/exact.h"

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "topology/ksp.h"

namespace flexwan::planning {

namespace {

// One gamma variable's coordinates.
struct GammaVar {
  topology::LinkId link;
  int path_index;
  int mode_index;   // into catalog.modes()
  int start_pixel;  // q-th order translated to its starting pixel
};

}  // namespace

Expected<ExactResult> solve_exact_plan(const topology::Network& net,
                                       const transponder::Catalog& catalog,
                                       const ExactPlannerConfig& config) {
  milp::Model model;
  model.set_direction(milp::Direction::kMinimize);

  const auto modes = catalog.modes();
  std::vector<GammaVar> gammas;
  std::vector<milp::VarId> gamma_ids;
  std::vector<std::vector<topology::Path>> link_paths(
      static_cast<std::size_t>(net.ip.link_count()));

  for (const auto& link : net.ip.links()) {
    auto paths = topology::k_shortest_paths(net.optical, link.src, link.dst,
                                            config.k_paths);
    if (paths.empty()) {
      return Error::make("unreachable",
                         "IP link " + link.name + " has no optical path");
    }
    link_paths[static_cast<std::size_t>(link.id)] = std::move(paths);
  }

  // Variables: gamma for every reach-feasible (e, k, j, q).
  for (const auto& link : net.ip.links()) {
    const auto& paths = link_paths[static_cast<std::size_t>(link.id)];
    for (std::size_t k = 0; k < paths.size(); ++k) {
      for (std::size_t j = 0; j < modes.size(); ++j) {
        const auto& mode = modes[j];
        if (!mode.reaches(paths[k].length_km)) continue;  // constraint (2)
        const int pix = mode.pixels();
        for (int q = 0; q + pix <= config.band_pixels; ++q) {
          if (static_cast<int>(gammas.size()) >= config.max_variables) {
            return Error::make("too_large",
                               "exact formulation exceeds " +
                                   std::to_string(config.max_variables) +
                                   " variables");
          }
          const double cost = 1.0 + config.epsilon * mode.spacing_ghz;
          gamma_ids.push_back(model.add_binary(
              "g_e" + std::to_string(link.id) + "_k" + std::to_string(k) +
                  "_j" + std::to_string(j) + "_q" + std::to_string(q),
              cost));
          gammas.push_back(GammaVar{link.id, static_cast<int>(k),
                                    static_cast<int>(j), q});
        }
      }
    }
  }

  // Constraint (1): demand coverage per link.
  for (const auto& link : net.ip.links()) {
    std::vector<milp::Term> terms;
    for (std::size_t gi = 0; gi < gammas.size(); ++gi) {
      if (gammas[gi].link != link.id) continue;
      terms.push_back(milp::Term{
          gamma_ids[gi],
          modes[static_cast<std::size_t>(gammas[gi].mode_index)]
              .data_rate_gbps});
    }
    if (terms.empty() && link.demand_gbps > 0.0) {
      return Error::make("unreachable_demand",
                         "IP link " + link.name +
                             " has no reach-feasible format");
    }
    model.add_constraint(std::move(terms), milp::Sense::kGe, link.demand_gbps,
                         "demand_e" + std::to_string(link.id));
  }

  // Constraints (3)+(5): per (fiber, pixel) at most one wavelength.  Only
  // pixels that at least two gammas could touch need a row, but building all
  // is simpler and row count is band_pixels * fibers.
  for (topology::FiberId f = 0; f < net.optical.fiber_count(); ++f) {
    for (int w = 0; w < config.band_pixels; ++w) {
      std::vector<milp::Term> terms;
      for (std::size_t gi = 0; gi < gammas.size(); ++gi) {
        const auto& g = gammas[gi];
        const auto& mode = modes[static_cast<std::size_t>(g.mode_index)];
        if (w < g.start_pixel || w >= g.start_pixel + mode.pixels()) continue;
        const auto& path =
            link_paths[static_cast<std::size_t>(g.link)]
                      [static_cast<std::size_t>(g.path_index)];
        if (!path.uses_fiber(f)) continue;
        terms.push_back(milp::Term{gamma_ids[gi], 1.0});
      }
      if (terms.size() > 1) {
        model.add_constraint(std::move(terms), milp::Sense::kLe, 1.0,
                             "pix_f" + std::to_string(f) + "_w" +
                                 std::to_string(w));
      }
    }
  }

  const auto mip = milp::solve_mip(model, config.mip);
  if (mip.status == milp::MipStatus::kInfeasible) {
    return Error::make("infeasible", "no plan fits the configured band");
  }
  if (mip.status == milp::MipStatus::kUnbounded) {
    return Error::make("unbounded", "formulation error: unbounded MIP");
  }

  ExactResult result{Plan(catalog.name(), net.optical.fiber_count(),
                          config.band_pixels),
                     mip.objective, mip.nodes_explored, mip.status};
  for (const auto& link : net.ip.links()) {
    auto& lp = result.plan.add_link_plan(link.id);
    lp.paths = link_paths[static_cast<std::size_t>(link.id)];
  }
  for (std::size_t gi = 0; gi < gammas.size(); ++gi) {
    if (mip.x[static_cast<std::size_t>(gamma_ids[gi])] < 0.5) continue;
    const auto& g = gammas[gi];
    const auto& mode = modes[static_cast<std::size_t>(g.mode_index)];
    const auto& path = link_paths[static_cast<std::size_t>(g.link)]
                                 [static_cast<std::size_t>(g.path_index)];
    Wavelength wl{g.link, g.path_index, mode,
                  spectrum::Range{g.start_pixel, mode.pixels()}};
    auto placed = result.plan.place_wavelength(path, wl);
    if (!placed) {
      return Error::make("decode_conflict",
                         "solver output violates spectrum constraints: " +
                             placed.error().message);
    }
  }
  return result;
}

}  // namespace flexwan::planning
