// Exact MILP formulation of Algorithm 1, solved with the in-repo
// branch-and-bound (milp/).  Mirrors the paper's variables:
//   gamma_{e,k,j,q} — path k of link e carries a wavelength at format j
//                     starting at pixel order q (binary),
//   lambda_{e,k,j}  — transponder count, implied as sum_q gamma,
//   xi_{phi,w}      — pixel occupancy, implied through the conflict rows.
// Constraints (1)-(6) are encoded directly; reach-infeasible (j, path)
// combinations are simply not given variables (constraint 2), and spectrum
// consistency (4) holds by construction because one gamma decides the same
// range on every fiber of its path.
//
// Intended for validation-sized instances; var/row counts grow as
// E * K * J * W, so `max_variables` guards against accidental blow-ups.
#pragma once

#include "milp/branch_and_bound.h"
#include "planning/heuristic.h"
#include "planning/plan.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/expected.h"

namespace flexwan::planning {

struct ExactPlannerConfig {
  int k_paths = 2;
  double epsilon = 0.001;
  int band_pixels = 48;     // a narrow validation band keeps the MIP small
  int max_variables = 20000;
  milp::MipOptions mip;
};

struct ExactResult {
  Plan plan;
  double objective = 0.0;
  int nodes_explored = 0;
  milp::MipStatus status = milp::MipStatus::kInfeasible;
};

// Builds and solves the full Algorithm 1 MIP for `net`.  Fails with
// "too_large" when the formulation exceeds max_variables, "infeasible" when
// the solver proves no plan exists within the band.
Expected<ExactResult> solve_exact_plan(const topology::Network& net,
                                       const transponder::Catalog& catalog,
                                       const ExactPlannerConfig& config);

}  // namespace flexwan::planning
