#include "planning/heuristic.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace flexwan::planning {

namespace {

// Demand granularity: every catalog rate is a multiple of 100 Gbps.
constexpr double kUnitGbps = 100.0;

// Common first-fit over the plan's current occupancy (constraint 4),
// bounded away from the reserved protection spectrum.
std::optional<spectrum::Range> plan_first_fit(const Plan& plan,
                                              const topology::Path& path,
                                              int count, int reserved) {
  return common_first_fit(plan.fiber_occupancies(), path, count,
                          plan.band_pixels() - reserved);
}

// Tries to place every mode of `set` on `path`.  Rolls back on failure.
bool place_mode_set(Plan& plan, const topology::Path& path,
                    topology::LinkId link, int path_index,
                    const std::vector<transponder::Mode>& modes,
                    int reserved) {
  std::vector<Wavelength> placed;
  for (const auto& mode : modes) {
    const auto fit = plan_first_fit(plan, path, mode.pixels(), reserved);
    if (!fit) {
      for (auto it = placed.rbegin(); it != placed.rend(); ++it) {
        auto r = plan.remove_wavelength(path, *it);
        (void)r;
      }
      return false;
    }
    Wavelength wl{link, path_index, mode, *fit};
    auto r = plan.place_wavelength(path, wl);
    if (!r) {
      for (auto it = placed.rbegin(); it != placed.rend(); ++it) {
        auto rr = plan.remove_wavelength(path, *it);
        (void)rr;
      }
      return false;
    }
    placed.push_back(wl);
  }
  return true;
}

struct LinkWork {
  topology::LinkId link;
  std::vector<topology::Path> paths;          // in KSP order
  std::vector<Expected<ModeSet>> mode_sets;   // parallel to paths
  std::vector<std::size_t> path_order;        // candidate order by cost
  double difficulty = 0.0;                    // for most-constrained-first
};

}  // namespace

double ModeSet::total_rate_gbps() const {
  double total = 0.0;
  for (const auto& m : modes) total += m.data_rate_gbps;
  return total;
}

Expected<ModeSet> best_mode_set(const transponder::Catalog& catalog,
                                double distance_km, double demand_gbps,
                                double epsilon) {
  ModeSet result;
  if (demand_gbps <= 0.0) return result;

  OBS_COUNTER_ADD("planner.mode_dp.calls", 1);
  const auto& feasible = catalog.feasible(distance_km);
  if (feasible.empty()) {
    return Error::make("unreachable_demand",
                       "no " + catalog.name() + " mode reaches " +
                           std::to_string(distance_km) + " km");
  }

  const int units = static_cast<int>(std::ceil(demand_gbps / kUnitGbps - 1e-9));
  OBS_COUNTER_ADD("planner.mode_dp.cells",
                  static_cast<std::uint64_t>(units) * feasible.size());
  OBS_COUNTER_ADD("planner.mode_dp.candidate_modes", feasible.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[d] = min cost to cover at least d demand units; choice[d] = mode used.
  // Cost ties break toward the shortest-reach (then highest-rate) mode: at
  // equal transponder count and spacing, the tighter fit keeps the optical
  // reach close to the path length (the Fig. 14a gap metric) at zero cost.
  std::vector<double> dp(static_cast<std::size_t>(units) + 1, kInf);
  std::vector<int> choice(static_cast<std::size_t>(units) + 1, -1);
  dp[0] = 0.0;
  for (int d = 1; d <= units; ++d) {
    for (std::size_t mi = 0; mi < feasible.size(); ++mi) {
      const auto& m = feasible[mi];
      const int rate_units =
          static_cast<int>(std::lround(m.data_rate_gbps / kUnitGbps));
      if (rate_units <= 0) continue;
      const int prev = std::max(0, d - rate_units);
      const double cost =
          dp[static_cast<std::size_t>(prev)] + 1.0 + epsilon * m.spacing_ghz;
      auto& best = dp[static_cast<std::size_t>(d)];
      auto& pick = choice[static_cast<std::size_t>(d)];
      if (cost < best - 1e-12) {
        best = cost;
        pick = static_cast<int>(mi);
      } else if (pick >= 0 && std::abs(cost - best) <= 1e-12) {
        const auto& cur = feasible[static_cast<std::size_t>(pick)];
        if (m.reach_km < cur.reach_km ||
            (m.reach_km == cur.reach_km &&
             m.data_rate_gbps > cur.data_rate_gbps)) {
          pick = static_cast<int>(mi);
        }
      }
    }
  }
  int d = units;
  while (d > 0) {
    const int mi = choice[static_cast<std::size_t>(d)];
    const auto& m = feasible[static_cast<std::size_t>(mi)];
    result.modes.push_back(m);
    result.total_pixels += m.pixels();
    d = std::max(
        0, d - static_cast<int>(std::lround(m.data_rate_gbps / kUnitGbps)));
  }
  result.cost = dp[static_cast<std::size_t>(units)];
  // Widest channels first: placing big ranges before small ones packs better.
  std::sort(result.modes.begin(), result.modes.end(),
            [](const auto& a, const auto& b) {
              return a.spacing_ghz > b.spacing_ghz;
            });
  return result;
}

HeuristicPlanner::HeuristicPlanner(const transponder::Catalog& catalog,
                                   PlannerConfig config)
    : catalog_(&catalog), config_(config) {}

Expected<Plan> HeuristicPlanner::plan(const topology::Network& net) const {
  return plan(net, engine::Engine::serial());
}

Expected<Plan> HeuristicPlanner::plan(const topology::Network& net,
                                      const engine::Engine& engine) const {
  OBS_SPAN("planner.plan");
  OBS_COUNTER_ADD("planner.plan.calls", 1);
  Plan result(catalog_->name(), net.optical.fiber_count(),
              config_.band_pixels);
  for (const auto& link : net.ip.links()) {
    result.add_link_plan(link.id);
  }

  // Stage 1: candidate paths and per-path optimal mode sets for every link.
  // Each link's KSP + mode-set DP reads only the (const) topology and
  // catalog, so links are computed in parallel; parallel_map returns them
  // in input order, which keeps stage 2's stable difficulty sort — and
  // therefore the whole plan — byte-identical at every thread count.
  const auto links = net.ip.links();
  auto built = engine.parallel_map(
      links.size(), [&](std::size_t i) -> Expected<LinkWork> {
        OBS_SPAN("planner.stage1.link_dp");
        const auto& link = links[i];
        LinkWork lw;
        lw.link = link.id;
        OBS_COUNTER_ADD("planner.ksp.calls", 1);
        lw.paths = topology::k_shortest_paths(net.optical, link.src, link.dst,
                                              config_.k_paths);
        OBS_COUNTER_ADD("planner.ksp.paths", lw.paths.size());
        if (lw.paths.empty()) {
          return Error::make("unreachable",
                             "IP link " + link.name + " has no optical path");
        }
        for (const auto& p : lw.paths) {
          lw.mode_sets.push_back(best_mode_set(
              *catalog_, p.length_km, link.demand_gbps, config_.epsilon));
        }
        if (!lw.mode_sets.front()) {
          // Even the shortest path exceeds the family's maximum reach.
          return Error::make("unreachable_demand",
                             "IP link " + link.name + ": " +
                                 lw.mode_sets.front().error().message);
        }
        lw.path_order.resize(lw.paths.size());
        std::iota(lw.path_order.begin(), lw.path_order.end(), 0);
        std::stable_sort(
            lw.path_order.begin(), lw.path_order.end(),
            [&](std::size_t a, std::size_t b) {
              const double ca = lw.mode_sets[a]
                                    ? lw.mode_sets[a].value().cost
                                    : std::numeric_limits<double>::infinity();
              const double cb = lw.mode_sets[b]
                                    ? lw.mode_sets[b].value().cost
                                    : std::numeric_limits<double>::infinity();
              return ca < cb;
            });
        const auto& best = lw.mode_sets[lw.path_order.front()].value();
        switch (config_.ordering) {
          case LinkOrdering::kMostConstrainedFirst:
            lw.difficulty = static_cast<double>(best.total_pixels) *
                            static_cast<double>(
                                lw.paths[lw.path_order.front()].hop_count());
            break;
          case LinkOrdering::kLongestPathFirst:
            lw.difficulty = lw.paths.front().length_km;
            break;
          case LinkOrdering::kArbitrary:
            lw.difficulty = 0.0;  // stable sort keeps input order
            break;
        }
        return lw;
      });
  // First error in input order, exactly as the serial loop reported it.
  std::vector<LinkWork> work;
  work.reserve(built.size());
  for (auto& b : built) {
    if (!b) return b.error();
    work.push_back(std::move(b.value()));
  }
  // Stage events are emitted here and below — at the serial join points,
  // never inside the parallel stage-1 bodies — so the event order is fixed.
  if (obs::events_enabled()) {
    obs::emit_event(obs::make_event("planner", obs::Severity::kInfo,
                                    "planner.stage1.done")
                        .with("links", work.size()));
  }

  // Stage 2: spectrum assignment in configured difficulty order.
  OBS_SPAN("planner.stage2.spectrum");
  std::stable_sort(work.begin(), work.end(),
                   [](const LinkWork& a, const LinkWork& b) {
                     return a.difficulty > b.difficulty;
                   });

  for (const auto& lw : work) {
    // Record candidate paths on the link plan (path_index refers here).
    result.find_link(lw.link)->paths = lw.paths;
    const double demand = net.ip.link(lw.link).demand_gbps;

    bool done = false;
    // First try to fit the whole optimal mode set on one candidate path.
    for (std::size_t oi : lw.path_order) {
      if (!lw.mode_sets[oi]) continue;
      if (place_mode_set(result, lw.paths[oi], lw.link, static_cast<int>(oi),
                         lw.mode_sets[oi].value().modes,
                         config_.reserved_pixels)) {
        OBS_COUNTER_ADD("planner.wavelengths_placed",
                        lw.mode_sets[oi].value().modes.size());
        done = true;
        break;
      }
    }
    if (done) continue;
    OBS_COUNTER_ADD("planner.links_split", 1);
    if (!config_.allow_split) {
      return Error::make("no_spectrum",
                         "link " + net.ip.link(lw.link).name +
                             " does not fit on any candidate path");
    }

    // Split: place wavelengths one at a time, re-deriving the remaining
    // demand's optimal set per path as spectrum allows.
    double remaining = demand;
    for (std::size_t oi : lw.path_order) {
      if (remaining <= 0.0) break;
      if (!lw.mode_sets[oi]) continue;
      auto set = best_mode_set(*catalog_, lw.paths[oi].length_km, remaining,
                               config_.epsilon);
      if (!set) continue;
      for (const auto& mode : set.value().modes) {
        if (remaining <= 0.0) break;
        const auto fit = plan_first_fit(result, lw.paths[oi], mode.pixels(),
                                        config_.reserved_pixels);
        if (!fit) break;  // this path is exhausted; try the next one
        Wavelength wl{lw.link, static_cast<int>(oi), mode, *fit};
        auto r = result.place_wavelength(lw.paths[oi], wl);
        if (!r) break;
        OBS_COUNTER_ADD("planner.wavelengths_placed", 1);
        remaining -= mode.data_rate_gbps;
      }
    }
    if (remaining > 0.0) {
      return Error::make("no_spectrum",
                         "link " + net.ip.link(lw.link).name + " short " +
                             std::to_string(remaining) + " Gbps of spectrum");
    }
  }
  if (obs::events_enabled()) {
    std::size_t wavelengths = 0;
    for (const auto& lp : result.links()) wavelengths += lp.wavelengths.size();
    obs::emit_event(obs::make_event("planner", obs::Severity::kInfo,
                                    "planner.stage2.done")
                        .with("links", work.size())
                        .with("wavelengths", wavelengths));
  }
  return result;
}

}  // namespace flexwan::planning
