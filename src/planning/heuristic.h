// Scalable network planner implementing Algorithm 1's objective with a
// two-level decomposition:
//
//  1. Per (link, candidate path): the optimal wavelength format multiset is
//     computed by dynamic programming over the demand in 100 Gbps units,
//     minimizing  #transponders + epsilon * spectrum  subject to the optical
//     reach constraint (2) — exactly the per-path structure of the MIP.
//  2. Network-wide: links are assigned spectrum most-constrained-first with
//     contiguous first-fit ranges that are identical on every fiber of the
//     path (constraints 3-5).  When a link's whole mode set does not fit on
//     one path, the demand is split across its K candidate paths.
//
// The exact branch-and-bound formulation (exact.h) verifies this heuristic's
// optimality gap on small instances (see tests and bench_milp_gap).
#pragma once

#include <vector>

#include "engine/engine.h"
#include "planning/plan.h"
#include "topology/builders.h"
#include "topology/ksp.h"
#include "transponder/catalog.h"

namespace flexwan::planning {

// Order in which links receive spectrum (stage 2).  Most-constrained-first
// is the default; the alternatives exist for the DESIGN.md ablation.
enum class LinkOrdering {
  kMostConstrainedFirst,  // widest pixel footprint x hops first
  kLongestPathFirst,      // longest shortest-path first
  kArbitrary,             // input order
};

struct PlannerConfig {
  int k_paths = 3;          // K in the KSP pre-computation
  double epsilon = 0.001;   // objective balance between transponders/spectrum
  int band_pixels = spectrum::kCBandPixels;
  bool allow_split = true;  // allow splitting a link across candidate paths
  LinkOrdering ordering = LinkOrdering::kMostConstrainedFirst;
  // Protection spectrum: the top `reserved_pixels` of the band are kept off
  // limits to planning and stay free for optical restoration (the §8
  // balance between cost savings and restoration headroom, by policy
  // rather than FlexWAN+'s spare transponders).
  int reserved_pixels = 0;
};

// The format multiset chosen for one path, with its objective cost.
struct ModeSet {
  std::vector<transponder::Mode> modes;
  double cost = 0.0;        // #modes + epsilon * total spacing
  int total_pixels = 0;

  double total_rate_gbps() const;
};

// Optimal wavelength formats to carry `demand_gbps` over a path of
// `distance_km`, minimizing count + epsilon * spacing (DP, exact for a
// single path).  Fails with "unreachable_demand" when no catalog mode
// reaches the distance.
Expected<ModeSet> best_mode_set(const transponder::Catalog& catalog,
                                double distance_km, double demand_gbps,
                                double epsilon);

class HeuristicPlanner {
 public:
  HeuristicPlanner(const transponder::Catalog& catalog, PlannerConfig config);

  // Plans the whole network.  Fails with "no_spectrum" when some link cannot
  // be provisioned within the C-band (this failure is the signal the
  // Fig. 12 capacity-scale sweep detects) and "unreachable_demand" when a
  // link's shortest path exceeds the family's maximum reach.
  Expected<Plan> plan(const topology::Network& net) const;

  // Same plan, with stage 1 (per-link KSP + mode-set DP over read-only
  // inputs) fanned out on `engine`.  Stage-1 results are reduced in link
  // input order and stage 2 is unchanged, so the output is byte-identical
  // for every thread count (see engine/engine.h's determinism contract).
  Expected<Plan> plan(const topology::Network& net,
                      const engine::Engine& engine) const;

  const transponder::Catalog& catalog() const { return *catalog_; }
  const PlannerConfig& config() const { return config_; }

 private:
  const transponder::Catalog* catalog_;
  PlannerConfig config_;
};

}  // namespace flexwan::planning
