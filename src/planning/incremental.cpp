#include "planning/incremental.h"

#include <algorithm>

namespace flexwan::planning {

Expected<ExtensionResult> extend_plan(Plan& plan,
                                      const topology::Network& net,
                                      topology::LinkId link,
                                      double extra_gbps,
                                      const PlannerConfig& config) {
  ExtensionResult result;
  if (extra_gbps <= 0.0) return result;

  LinkPlan* lp = nullptr;
  for (auto& candidate : plan.links()) {
    if (candidate.link == link) {
      lp = &candidate;
      break;
    }
  }
  if (lp == nullptr || lp->paths.empty()) {
    return Error::make("unknown_link",
                       "plan has no paths for link " + std::to_string(link));
  }
  const auto& catalog =
      plan.scheme() == "RADWAN"     ? transponder::bvt_radwan()
      : plan.scheme() == "100G-WAN" ? transponder::fixed_grid_100g()
                                    : transponder::svt_flexwan();

  // Greedy over candidate paths in length order, same as the planner's
  // split stage, but every placement is recorded for rollback.
  std::vector<std::pair<topology::Path, Wavelength>> placed;
  double remaining = extra_gbps;
  for (std::size_t k = 0; k < lp->paths.size() && remaining > 0.0; ++k) {
    const auto& path = lp->paths[k];
    auto set = best_mode_set(catalog, path.length_km, remaining,
                             config.epsilon);
    if (!set) continue;  // path too long for this family
    for (const auto& mode : set->modes) {
      if (remaining <= 0.0) break;
      const auto fit =
          common_first_fit(plan.fiber_occupancies(), path, mode.pixels(),
                           plan.band_pixels() - config.reserved_pixels);
      if (!fit) break;
      Wavelength wl{link, static_cast<int>(k), mode, *fit};
      auto r = plan.place_wavelength(path, wl);
      if (!r) break;
      placed.emplace_back(path, wl);
      remaining -= mode.data_rate_gbps;
      ++result.wavelengths_added;
      result.capacity_added_gbps += mode.data_rate_gbps;
    }
  }
  if (remaining > 0.0) {
    for (auto it = placed.rbegin(); it != placed.rend(); ++it) {
      auto r = plan.remove_wavelength(it->first, it->second);
      (void)r;
    }
    return Error::make("no_spectrum",
                       "extension short " + std::to_string(remaining) +
                           " Gbps of residual spectrum");
  }
  (void)net;
  return result;
}

Expected<DefragResult> defragment(Plan& plan) {
  DefragResult result;
  for (topology::FiberId f = 0; f < plan.fiber_count(); ++f) {
    result.free_run_before += plan.fiber_occupancy(f).largest_free_run();
  }

  // Collect every wavelength with its path, widest channels first (stable on
  // link then path so the re-pack is deterministic).
  struct Item {
    topology::Path path;
    Wavelength wl;
  };
  std::vector<Item> items;
  for (const auto& lp : plan.links()) {
    for (const auto& wl : lp.wavelengths) {
      items.push_back(
          Item{lp.paths[static_cast<std::size_t>(wl.path_index)], wl});
    }
  }
  std::stable_sort(items.begin(), items.end(), [](const Item& a,
                                                  const Item& b) {
    return a.wl.range.count > b.wl.range.count;
  });

  // Lift everything out, then re-place first-fit.  Removal cannot fail (the
  // plan placed these), and re-placement cannot fail either: first-fit into
  // a superset of the previously feasible space always finds room, but we
  // still guard and restore the original position if it ever did.
  for (auto& item : items) {
    auto removed = plan.remove_wavelength(item.path, item.wl);
    (void)removed;
  }
  for (auto& item : items) {
    const auto fit = common_first_fit(plan.fiber_occupancies(), item.path,
                                      item.wl.range.count);
    Wavelength moved = item.wl;
    if (fit) {
      moved.range = *fit;
    }
    auto placed = plan.place_wavelength(item.path, moved);
    if (!placed) {
      return Error::make("defrag_failed",
                         "re-placement conflict: " + placed.error().message);
    }
    if (moved.range != item.wl.range) ++result.wavelengths_moved;
  }

  for (topology::FiberId f = 0; f < plan.fiber_count(); ++f) {
    result.free_run_after += plan.fiber_occupancy(f).largest_free_run();
  }
  return result;
}

}  // namespace flexwan::planning
