// Incremental planning operations.
//
// The paper runs Algorithm 1 offline and infrequently (§4.4): bandwidth
// capacity changes monthly or yearly.  In between, operators need two
// lighter operations that this module provides on top of an existing plan:
//
//  * extend_plan()  — provision additional demand on one IP link (or a new
//    IP link) without disturbing any deployed wavelength.  Runs the same
//    per-path DP as the planner, but packs into the residual spectrum.
//  * defragment()   — re-pack all wavelengths' spectrum ranges first-fit in
//    a stable order, reducing fragmentation so future extensions and
//    restorations find contiguous blocks.  Formats and paths are untouched;
//    only ranges move (hitless spectrum defragmentation).
#pragma once

#include "planning/heuristic.h"
#include "planning/plan.h"

namespace flexwan::planning {

struct ExtensionResult {
  int wavelengths_added = 0;
  double capacity_added_gbps = 0.0;
};

// Adds `extra_gbps` of capacity to IP link `link` in `plan`.  Existing
// wavelengths are never moved; the new wavelengths use whatever contiguous
// residual spectrum remains on the link's candidate paths.  Fails with
// "no_spectrum" (plan unchanged) when the residual band cannot carry the
// extension, or "unknown_link" when the plan has no entry for `link`.
Expected<ExtensionResult> extend_plan(Plan& plan,
                                      const topology::Network& net,
                                      topology::LinkId link,
                                      double extra_gbps,
                                      const PlannerConfig& config = {});

struct DefragResult {
  int wavelengths_moved = 0;
  // Sum over fibers of the largest contiguous free run, before and after —
  // the headroom metric restoration cares about.
  int free_run_before = 0;
  int free_run_after = 0;
};

// Re-packs every wavelength's spectrum first-fit, widest channels first.
// The result satisfies the same constraints (validated by construction via
// Plan's reserve bookkeeping).  Compaction is best-effort: on a single
// congested fiber it strictly consolidates free space, but on meshes the
// shared-path interactions can shift headroom between fibers, so compare
// free_run_before/after rather than assuming improvement.
Expected<DefragResult> defragment(Plan& plan);

}  // namespace flexwan::planning
