#include "planning/metrics.h"

#include <algorithm>
#include <numeric>

namespace flexwan::planning {

PlanMetrics compute_metrics(const Plan& plan, const topology::Network& net) {
  PlanMetrics m;
  m.transponder_count = plan.transponder_count();
  m.spectrum_usage_ghz = plan.spectrum_usage_ghz();
  for (const auto& lp : plan.links()) {
    for (const auto& wl : lp.wavelengths) {
      const auto& path = lp.paths[static_cast<std::size_t>(wl.path_index)];
      m.reach_gaps_km.push_back(wl.mode.reach_km - path.length_km);
      m.spectral_efficiencies.push_back(wl.mode.spectral_efficiency());
      m.path_lengths_km.push_back(path.length_km);
      m.path_length_weights_gbps.push_back(wl.mode.data_rate_gbps);
    }
  }
  if (!m.spectral_efficiencies.empty()) {
    m.mean_spectral_efficiency =
        std::accumulate(m.spectral_efficiencies.begin(),
                        m.spectral_efficiencies.end(), 0.0) /
        static_cast<double>(m.spectral_efficiencies.size());
  }
  for (topology::FiberId f = 0; f < plan.fiber_count(); ++f) {
    const auto& occ = plan.fiber_occupancy(f);
    const double util = occ.pixels() > 0
                            ? static_cast<double>(occ.used_pixels()) /
                                  static_cast<double>(occ.pixels())
                            : 0.0;
    m.max_fiber_utilization = std::max(m.max_fiber_utilization, util);
  }
  (void)net;
  return m;
}

Expected<bool> validate_plan(const Plan& plan, const topology::Network& net) {
  // (1) demand coverage.
  for (const auto& link : net.ip.links()) {
    const LinkPlan* lp = plan.find_link(link.id);
    const double provisioned = lp ? lp->provisioned_gbps() : 0.0;
    if (provisioned + 1e-9 < link.demand_gbps) {
      return Error::make("demand_violation",
                         "link " + link.name + " provisioned " +
                             std::to_string(provisioned) + " of " +
                             std::to_string(link.demand_gbps) + " Gbps");
    }
  }
  // (2) reach, plus structural checks on paths and ranges.
  for (const auto& lp : plan.links()) {
    for (const auto& wl : lp.wavelengths) {
      if (wl.path_index < 0 ||
          wl.path_index >= static_cast<int>(lp.paths.size())) {
        return Error::make("bad_path_index", "wavelength references path " +
                                                 std::to_string(wl.path_index));
      }
      const auto& path = lp.paths[static_cast<std::size_t>(wl.path_index)];
      if (!wl.mode.reaches(path.length_km)) {
        return Error::make("reach_violation",
                           wl.mode.describe() + " on a " +
                               std::to_string(path.length_km) + " km path");
      }
      if (!wl.range.valid() || wl.range.end() > plan.band_pixels()) {
        return Error::make("bad_range", "invalid spectrum range " +
                                            spectrum::to_string(wl.range));
      }
      if (wl.range.count != wl.mode.pixels()) {
        return Error::make("range_mode_mismatch",
                           "range width != mode channel spacing");
      }
    }
  }
  // (3)-(5) conflict-freedom and consistency: rebuild occupancy from scratch
  // and compare — every wavelength must reserve the same range on every
  // fiber of its path with no overlap anywhere.
  std::vector<spectrum::Occupancy> rebuilt(
      static_cast<std::size_t>(plan.fiber_count()),
      spectrum::Occupancy(plan.band_pixels()));
  for (const auto& lp : plan.links()) {
    for (const auto& wl : lp.wavelengths) {
      const auto& path = lp.paths[static_cast<std::size_t>(wl.path_index)];
      for (topology::FiberId f : path.fibers) {
        auto r = rebuilt[static_cast<std::size_t>(f)].reserve(wl.range);
        if (!r) {
          return Error::make("spectrum_conflict",
                             "fiber " + std::to_string(f) + ": " +
                                 r.error().message);
        }
      }
    }
  }
  return true;
}

double max_supported_scale(const topology::Network& net,
                           const HeuristicPlanner& planner, double max_scale,
                           double step) {
  double supported = 0.0;
  for (double scale = step; scale <= max_scale + 1e-9; scale += step) {
    topology::Network scaled{net.name, net.optical, net.ip.scaled(scale)};
    if (planner.plan(scaled)) {
      supported = scale;
    } else {
      break;
    }
  }
  return supported;
}

}  // namespace flexwan::planning
