// Plan evaluation metrics: the quantities the paper's §7 figures report.
#pragma once

#include <vector>

#include "planning/heuristic.h"
#include "planning/plan.h"
#include "topology/builders.h"

namespace flexwan::planning {

// Per-plan aggregates used by Figs. 12-14 and the §7 headline numbers.
struct PlanMetrics {
  int transponder_count = 0;        // Fig. 12(a)
  double spectrum_usage_ghz = 0.0;  // Fig. 12(b): sum of lambda * Y
  // Fig. 14(a): per-wavelength gap = optical reach - fiber path length (km).
  std::vector<double> reach_gaps_km;
  // Fig. 14(b): per-wavelength link spectral efficiency (bits/s/Hz).
  std::vector<double> spectral_efficiencies;
  double mean_spectral_efficiency = 0.0;
  // Per-wavelength optical path lengths, demand-weighted inputs to Fig. 13(a).
  std::vector<double> path_lengths_km;
  std::vector<double> path_length_weights_gbps;
  // Highest per-fiber pixel utilisation (spectrum headroom indicator).
  double max_fiber_utilization = 0.0;
};

PlanMetrics compute_metrics(const Plan& plan, const topology::Network& net);

// Verifies that the plan satisfies every Algorithm 1 constraint against the
// network: demand coverage (1), reach (2), conflict-free/consistent spectrum
// (3)-(5).  Returns the first violation, or true.  Used by tests and by the
// controller before pushing configuration to devices.
Expected<bool> validate_plan(const Plan& plan, const topology::Network& net);

// Largest demand multiplier (in `step` increments up to `max_scale`) at
// which the planner still finds a feasible plan — the paper's "supports up
// to 8x present-day demands" metric (Fig. 12).
double max_supported_scale(const topology::Network& net,
                           const HeuristicPlanner& planner,
                           double max_scale = 12.0, double step = 0.5);

}  // namespace flexwan::planning
