#include "planning/plan.h"

#include <algorithm>
#include <limits>

namespace flexwan::planning {

double LinkPlan::provisioned_gbps() const {
  double total = 0.0;
  for (const auto& wl : wavelengths) total += wl.mode.data_rate_gbps;
  return total;
}

Plan::Plan(std::string scheme, int fiber_count, int band_pixels)
    : scheme_(std::move(scheme)), band_pixels_(band_pixels) {
  fibers_.reserve(static_cast<std::size_t>(fiber_count));
  for (int i = 0; i < fiber_count; ++i) {
    fibers_.emplace_back(band_pixels);
  }
}

LinkPlan& Plan::add_link_plan(topology::LinkId link) {
  link_index_.emplace(link, links_.size());
  links_.push_back(LinkPlan{link, {}, {}});
  return links_.back();
}

const LinkPlan* Plan::find_link(topology::LinkId link) const {
  const auto it = link_index_.find(link);
  return it == link_index_.end() ? nullptr : &links_[it->second];
}

LinkPlan* Plan::find_link(topology::LinkId link) {
  const auto it = link_index_.find(link);
  return it == link_index_.end() ? nullptr : &links_[it->second];
}

Expected<bool> Plan::place_wavelength(const topology::Path& path,
                                      Wavelength wl) {
  return insert_wavelength(path, std::move(wl),
                           std::numeric_limits<std::size_t>::max());
}

Expected<bool> Plan::insert_wavelength(const topology::Path& path,
                                       Wavelength wl, std::size_t position) {
  // Probe every fiber first so a failure leaves no partial reservation.
  for (topology::FiberId f : path.fibers) {
    if (!fibers_[static_cast<std::size_t>(f)].is_free(wl.range)) {
      return Error::make("conflict", "fiber " + std::to_string(f) +
                                         " busy at " +
                                         spectrum::to_string(wl.range));
    }
  }
  for (topology::FiberId f : path.fibers) {
    auto r = fibers_[static_cast<std::size_t>(f)].reserve(wl.range);
    (void)r;  // cannot fail: probed above
  }
  LinkPlan* lp = find_link(wl.link);
  if (lp == nullptr) lp = &add_link_plan(wl.link);
  position = std::min(position, lp->wavelengths.size());
  lp->wavelengths.insert(
      lp->wavelengths.begin() + static_cast<std::ptrdiff_t>(position),
      std::move(wl));
  return true;
}

Expected<Wavelength> Plan::remove_wavelength_at(topology::LinkId link,
                                                std::size_t index) {
  LinkPlan* lp = find_link(link);
  if (lp == nullptr || index >= lp->wavelengths.size()) {
    return Error::make("not_found", "no wavelength " + std::to_string(index) +
                                        " on link " + std::to_string(link));
  }
  const Wavelength wl = lp->wavelengths[index];
  const auto& path = lp->paths[static_cast<std::size_t>(wl.path_index)];
  for (topology::FiberId f : path.fibers) {
    auto r = fibers_[static_cast<std::size_t>(f)].release(wl.range);
    if (!r) return r.error();  // corrupt plan; never partial in practice
  }
  lp->wavelengths.erase(lp->wavelengths.begin() +
                        static_cast<std::ptrdiff_t>(index));
  return wl;
}

Expected<bool> Plan::remove_wavelength(const topology::Path& path,
                                       const Wavelength& wl) {
  if (LinkPlan* lp = find_link(wl.link)) {
    const auto it = std::find_if(
        lp->wavelengths.begin(), lp->wavelengths.end(),
        [&](const Wavelength& w) {
          return w.path_index == wl.path_index && w.range == wl.range &&
                 w.mode.data_rate_gbps == wl.mode.data_rate_gbps;
        });
    if (it != lp->wavelengths.end()) {
      for (topology::FiberId f : path.fibers) {
        auto r = fibers_[static_cast<std::size_t>(f)].release(wl.range);
        if (!r) return r;
      }
      lp->wavelengths.erase(it);
      return true;
    }
  }
  return Error::make("not_found", "wavelength not present in plan");
}

int Plan::transponder_count() const {
  int total = 0;
  for (const auto& lp : links_) {
    total += static_cast<int>(lp.wavelengths.size());
  }
  return total;
}

double Plan::spectrum_usage_ghz() const {
  double total = 0.0;
  for (const auto& lp : links_) {
    for (const auto& wl : lp.wavelengths) total += wl.mode.spacing_ghz;
  }
  return total;
}

std::vector<Wavelength> Plan::all_wavelengths() const {
  std::vector<Wavelength> out;
  for (const auto& lp : links_) {
    out.insert(out.end(), lp.wavelengths.begin(), lp.wavelengths.end());
  }
  return out;
}

std::optional<spectrum::Range> common_first_fit(
    std::span<const spectrum::Occupancy> fibers, const topology::Path& path,
    int count, int end_limit) {
  if (count <= 0 || fibers.empty()) return std::nullopt;
  const int band = fibers.front().pixels();
  const int pixels = end_limit >= 0 ? std::min(end_limit, band) : band;
  if (path.fibers.empty()) {
    return count <= pixels ? std::optional<spectrum::Range>(
                                 spectrum::Range{0, count})
                           : std::nullopt;
  }
  // Enumerate candidate starts on the first fiber with the word-packed
  // scan (every valid start must be free there, and first_fit(count, from)
  // yields the smallest s >= from, so this visits the same starts the
  // naive per-pixel loop accepted — in the same order), then verify the
  // remaining fibers.  On a conflict resume one pixel later.
  const auto& lead = fibers[static_cast<std::size_t>(path.fibers.front())];
  int from = 0;
  while (true) {
    const auto fit = lead.first_fit(count, from);
    if (!fit || fit->end() > pixels) return std::nullopt;
    bool free = true;
    for (std::size_t i = 1; i < path.fibers.size(); ++i) {
      if (!fibers[static_cast<std::size_t>(path.fibers[i])].is_free(*fit)) {
        free = false;
        break;
      }
    }
    if (free) return *fit;
    from = fit->first + 1;
  }
}

}  // namespace flexwan::planning
