// Plan data model: the output of network planning (Algorithm 1).
//
// A plan records, for every IP link, the chosen optical paths and the
// wavelengths (transponder pairs) riding them: each wavelength has a mode
// (the j-th format) and a spectrum range (the q-th order), identical on all
// fibers of its path (spectrum consistency, constraint 4) and conflict-free
// per fiber (constraint 3).
#pragma once

#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "spectrum/occupancy.h"
#include "topology/graph.h"
#include "transponder/mode.h"
#include "util/expected.h"

namespace flexwan::planning {

// One provisioned wavelength: a transponder pair at a specific format and
// spectrum position on one optical path of one IP link.
struct Wavelength {
  topology::LinkId link = -1;
  int path_index = 0;               // k: which KSP path of the link
  transponder::Mode mode;           // j-th format
  spectrum::Range range;            // assigned pixels (same on every fiber)
};

// Per-IP-link slice of the plan.
struct LinkPlan {
  topology::LinkId link = -1;
  std::vector<topology::Path> paths;  // KSP candidates, index = path_index
  std::vector<Wavelength> wavelengths;

  double provisioned_gbps() const;
};

// A full network plan plus the resulting per-fiber spectrum occupancy.
class Plan {
 public:
  Plan(std::string scheme, int fiber_count, int band_pixels);

  const std::string& scheme() const { return scheme_; }

  LinkPlan& add_link_plan(topology::LinkId link);
  std::span<const LinkPlan> links() const { return links_; }
  std::span<LinkPlan> links() { return links_; }
  // O(1) per-link lookup via a LinkId index (links_ is append-only).
  const LinkPlan* find_link(topology::LinkId link) const;
  LinkPlan* find_link(topology::LinkId link);

  // Reserves `range` on every fiber of `path` and appends the wavelength to
  // its link plan.  Fails atomically on any conflict.
  Expected<bool> place_wavelength(const topology::Path& path, Wavelength wl);

  // place_wavelength that inserts at `position` in the link plan's
  // wavelength list (clamped to the end).  The lifecycle simulator's repair
  // path uses this to re-insert wavelengths at their pre-failure index so
  // apply → revert round-trips to byte-identical plan_io output.
  Expected<bool> insert_wavelength(const topology::Path& path, Wavelength wl,
                                   std::size_t position);

  // Removes the wavelength at `index` of `link`'s plan (releasing its
  // spectrum on every fiber of its path) and returns it.  Fails with
  // "not_found" on an unknown link or out-of-range index.
  Expected<Wavelength> remove_wavelength_at(topology::LinkId link,
                                            std::size_t index);

  // Releases the wavelength's spectrum on every fiber of its path and
  // removes it from the link plan.  Used by restoration (spare transponders)
  // and by the planner's backtracking.
  Expected<bool> remove_wavelength(const topology::Path& path,
                                   const Wavelength& wl);

  const spectrum::Occupancy& fiber_occupancy(topology::FiberId f) const {
    return fibers_[static_cast<std::size_t>(f)];
  }
  std::span<const spectrum::Occupancy> fiber_occupancies() const {
    return fibers_;
  }
  spectrum::Occupancy& fiber_occupancy(topology::FiberId f) {
    return fibers_[static_cast<std::size_t>(f)];
  }
  int fiber_count() const { return static_cast<int>(fibers_.size()); }
  int band_pixels() const { return band_pixels_; }

  // --- Plan-wide cost metrics (paper §5 objective terms) -------------------

  // Total transponder pairs: sum over links of wavelength count.
  int transponder_count() const;

  // Total spectrum usage (GHz): sum over wavelengths of their channel
  // spacing Y_j (the objective's indirect-cost term).
  double spectrum_usage_ghz() const;

  // All wavelengths flattened, for metric computations.
  std::vector<Wavelength> all_wavelengths() const;

 private:
  std::string scheme_;
  int band_pixels_ = 0;
  std::vector<LinkPlan> links_;
  // LinkId -> index into links_; lookup only (never iterated), so the
  // unordered iteration order cannot leak into any output.
  std::unordered_map<topology::LinkId, std::size_t> link_index_;
  std::vector<spectrum::Occupancy> fibers_;
};

// Lowest start pixel where `count` contiguous pixels are free on *every*
// fiber of `path` — the common first-fit realizing spectrum-consistency
// constraint (4).  Shared by the planner and the restorer.  When
// `end_limit` >= 0, only ranges ending at or below it are considered (used
// to keep protection spectrum free during planning).
std::optional<spectrum::Range> common_first_fit(
    std::span<const spectrum::Occupancy> fibers, const topology::Path& path,
    int count, int end_limit = -1);

}  // namespace flexwan::planning
