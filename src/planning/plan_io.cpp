#include "planning/plan_io.h"

#include <sstream>

#include "transponder/catalog.h"

namespace flexwan::planning {

namespace {

Error parse_error(int line, const std::string& what) {
  return Error::make("parse_error",
                     "line " + std::to_string(line) + ": " + what);
}

// Finds a catalog mode by its (rate, spacing) signature; falls back to a
// synthesized mode (still carrying the recorded reach) for custom catalogs.
transponder::Mode mode_from(double rate, double spacing, double reach,
                            const std::string& scheme) {
  const transponder::Catalog* catalogs[] = {&transponder::svt_flexwan(),
                                            &transponder::bvt_radwan(),
                                            &transponder::fixed_grid_100g()};
  for (const auto* catalog : catalogs) {
    if (catalog->name() != scheme) continue;
    for (const auto& m : catalog->modes()) {
      if (m.data_rate_gbps == rate && m.spacing_ghz == spacing) return m;
    }
  }
  transponder::Mode m;
  m.data_rate_gbps = rate;
  m.spacing_ghz = spacing;
  m.reach_km = reach;
  return m;
}

}  // namespace

std::string save_plan(const Plan& plan) {
  std::ostringstream os;
  os << "plan " << plan.scheme() << " " << plan.fiber_count() << " "
     << plan.band_pixels() << "\n";
  for (const auto& lp : plan.links()) {
    os << "link " << lp.link << "\n";
    for (const auto& path : lp.paths) {
      os << "path " << path.length_km;
      for (topology::FiberId f : path.fibers) os << " " << f;
      os << " ;";
      for (topology::NodeId n : path.nodes) os << " " << n;
      os << "\n";
    }
    for (const auto& wl : lp.wavelengths) {
      os << "wavelength " << wl.path_index << " " << wl.mode.data_rate_gbps
         << " " << wl.mode.spacing_ghz << " " << wl.mode.reach_km << " "
         << wl.range.first << "\n";
    }
  }
  return os.str();
}

Expected<Plan> load_plan(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;

  // Header.
  std::string scheme;
  int fibers = 0;
  int band = 0;
  {
    if (!std::getline(in, line)) return parse_error(1, "empty document");
    ++line_no;
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword >> scheme >> fibers >> band) || keyword != "plan" ||
        fibers < 0 || band <= 0) {
      return parse_error(line_no, "expected: plan <scheme> <fibers> <band>");
    }
  }
  Plan plan(scheme, fibers, band);

  LinkPlan* current = nullptr;
  // Wavelengths are recorded after the paths of their link, so one pass
  // suffices; each is re-placed through the conflict-checked API.
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword) || keyword[0] == '#') continue;
    if (keyword == "link") {
      int id = -1;
      if (!(ls >> id) || id < 0) return parse_error(line_no, "bad link id");
      current = &plan.add_link_plan(id);
    } else if (keyword == "path") {
      if (current == nullptr) return parse_error(line_no, "path before link");
      topology::Path path;
      if (!(ls >> path.length_km)) {
        return parse_error(line_no, "missing path length");
      }
      std::string token;
      bool in_nodes = false;
      while (ls >> token) {
        if (token == ";") {
          in_nodes = true;
          continue;
        }
        try {
          const int v = std::stoi(token);
          (in_nodes ? path.nodes : path.fibers).push_back(v);
        } catch (const std::exception&) {
          return parse_error(line_no, "bad id " + token);
        }
      }
      if (path.nodes.size() != path.fibers.size() + 1) {
        return parse_error(line_no, "path node/fiber count mismatch");
      }
      current->paths.push_back(std::move(path));
    } else if (keyword == "wavelength") {
      if (current == nullptr) {
        return parse_error(line_no, "wavelength before link");
      }
      int path_index = -1;
      double rate = 0;
      double spacing = 0;
      double reach = 0;
      int first = -1;
      if (!(ls >> path_index >> rate >> spacing >> reach >> first)) {
        return parse_error(line_no, "expected: wavelength <k> <rate> "
                                    "<spacing> <reach> <pixel>");
      }
      if (path_index < 0 ||
          path_index >= static_cast<int>(current->paths.size())) {
        return parse_error(line_no, "wavelength references unknown path");
      }
      Wavelength wl;
      wl.link = current->link;
      wl.path_index = path_index;
      wl.mode = mode_from(rate, spacing, reach, scheme);
      wl.range = spectrum::Range{first, wl.mode.pixels()};
      const auto placed = plan.place_wavelength(
          current->paths[static_cast<std::size_t>(path_index)], wl);
      if (!placed) return placed.error();  // "conflict": corrupt document
    } else {
      return parse_error(line_no, "unknown keyword " + keyword);
    }
  }
  return plan;
}

}  // namespace flexwan::planning
