// Plan serialization.
//
// Network planning runs offline and infrequently (§4.4); the configuration
// it produces is pushed to devices later, possibly by a different process.
// This module persists a Plan as a line-based text document:
//
//   plan <scheme> <fiber-count> <band-pixels>
//   link <link-id>
//   path <length-km> <fiber-id>... ; <node-id>...
//   wavelength <path-index> <rate> <spacing> <reach> <first-pixel>
//
// save_plan() / load_plan() round-trip exactly; load re-reserves every
// wavelength through Plan's bookkeeping, so a corrupted file that would
// double-book spectrum is rejected rather than loaded.
#pragma once

#include <string>

#include "planning/plan.h"
#include "util/expected.h"

namespace flexwan::planning {

std::string save_plan(const Plan& plan);

// Parses a plan document.  Fails with "parse_error" (line number in the
// message) on malformed input and "conflict" when the recorded wavelengths
// are not mutually consistent.
Expected<Plan> load_plan(const std::string& text);

}  // namespace flexwan::planning
