#include "planning/regeneration.h"

#include "topology/ksp.h"

namespace flexwan::planning {

namespace {

// Splits `path` into maximal prefixes no longer than `max_reach_km`,
// returning the node indices (into path.nodes) where regeneration happens.
// Empty result means the whole path fits in one segment.
Expected<std::vector<std::size_t>> regeneration_points(
    const topology::OpticalTopology& topo, const topology::Path& path,
    double max_reach_km) {
  std::vector<std::size_t> cuts;
  double segment = 0.0;
  for (std::size_t i = 0; i < path.fibers.size(); ++i) {
    const double hop = topo.fiber(path.fibers[i]).length_km;
    if (hop > max_reach_km) {
      return Error::make("unregenerable",
                         "fiber span of " + std::to_string(hop) +
                             " km exceeds the family's maximum reach");
    }
    if (segment + hop > max_reach_km) {
      cuts.push_back(i);  // regenerate at path.nodes[i], before this fiber
      segment = 0.0;
    }
    segment += hop;
  }
  return cuts;
}

}  // namespace

Expected<RegeneratedPlan> plan_with_regeneration(
    const topology::Network& net, const transponder::Catalog& catalog,
    const PlannerConfig& config) {
  const double max_reach = catalog.max_reach_km();

  topology::Network effective;
  effective.name = net.name;
  effective.optical = net.optical;

  std::map<topology::LinkId, std::vector<topology::LinkId>> segment_map;
  int regenerator_sites = 0;

  for (const auto& link : net.ip.links()) {
    const auto shortest =
        topology::shortest_path(net.optical, link.src, link.dst);
    if (!shortest) {
      return Error::make("unreachable",
                         "IP link " + link.name + " has no optical path");
    }
    if (shortest->length_km <= max_reach) {
      effective.ip.add_link(link.src, link.dst, link.demand_gbps, link.name);
      continue;
    }
    // Beyond reach: regenerate along the shortest path.
    auto cuts = regeneration_points(net.optical, *shortest, max_reach);
    if (!cuts) return cuts.error();
    std::vector<topology::LinkId> ids;
    topology::NodeId segment_src = link.src;
    int index = 0;
    for (std::size_t cut : cuts.value()) {
      const topology::NodeId regen_site = shortest->nodes[cut];
      ids.push_back(effective.ip.add_link(
          segment_src, regen_site, link.demand_gbps,
          link.name + "/seg" + std::to_string(index++)));
      segment_src = regen_site;
      ++regenerator_sites;
    }
    ids.push_back(effective.ip.add_link(
        segment_src, link.dst, link.demand_gbps,
        link.name + "/seg" + std::to_string(index)));
    segment_map[link.id] = std::move(ids);
  }

  HeuristicPlanner planner(catalog, config);
  auto plan = planner.plan(effective);
  if (!plan) return plan.error();

  RegeneratedPlan result(std::move(effective), std::move(plan.value()));
  result.segments = std::move(segment_map);
  result.regenerator_sites = regenerator_sites;
  return result;
}

}  // namespace flexwan::planning
