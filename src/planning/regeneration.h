// OEO regeneration support.
//
// The paper keeps every wavelength within its format's optical reach
// (Algorithm 1, constraint 2); production backbones serve the occasional
// IP link whose every optical path exceeds the family's maximum reach by
// regenerating — terminating the wavelength at an intermediate ROADM with a
// back-to-back transponder pair and relaunching it.  Regeneration is the
// expensive OEO conversion Shoofly [46] works to eliminate, which is
// exactly why it deserves first-class cost accounting.
//
// plan_with_regeneration() keeps the Plan model untouched: IP links beyond
// reach are split into *segment links* between regeneration sites chosen
// along the shortest path, planning then runs over the rewritten IP
// topology, and the report maps original links to their segments so cost
// comparisons count regeneration transponders honestly.
#pragma once

#include <map>
#include <vector>

#include "planning/heuristic.h"
#include "planning/plan.h"

namespace flexwan::planning {

struct RegeneratedPlan {
  // The rewritten network: unreachable IP links replaced by their segment
  // links (everything else copied verbatim).  The plan validates against
  // this network, not the original one.
  topology::Network effective_net;
  Plan plan;
  // original link id -> segment link ids in the effective network (absent
  // for links that needed no regeneration).
  std::map<topology::LinkId, std::vector<topology::LinkId>> segments;
  int regenerator_sites = 0;  // OEO sites added across all links

  RegeneratedPlan(topology::Network net, Plan p)
      : effective_net(std::move(net)), plan(std::move(p)) {}
};

// Plans `net` with regeneration allowed for links whose shortest optical
// path exceeds the catalog's maximum reach.  Regeneration sites are placed
// greedily along the shortest path (as far as one reach allows per hop).
// Fails like HeuristicPlanner::plan, plus "unregenerable" when even a
// single fiber span exceeds the family's maximum reach.
Expected<RegeneratedPlan> plan_with_regeneration(
    const topology::Network& net, const transponder::Catalog& catalog,
    const PlannerConfig& config = {});

}  // namespace flexwan::planning
