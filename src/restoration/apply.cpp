#include "restoration/apply.h"

#include <algorithm>
#include <cmath>

#include "obs/eventlog.h"

namespace flexwan::restoration {

Expected<AppliedOutcome> apply_outcome(planning::Plan& plan,
                                       const FailureScenario& scenario,
                                       const Outcome& outcome) {
  AppliedOutcome applied;

  // Identify the affected wavelengths the same way the restorer did: any
  // wavelength whose path crosses a cut fiber.  Link-plan iteration order
  // with ascending indices keeps the record deterministic and lets revert
  // re-insert front to back.
  double affected_gbps = 0.0;
  for (const auto& lp : plan.links()) {
    for (std::size_t i = 0; i < lp.wavelengths.size(); ++i) {
      const auto& wl = lp.wavelengths[i];
      const auto& path = lp.paths[static_cast<std::size_t>(wl.path_index)];
      const bool hit = std::any_of(
          path.fibers.begin(), path.fibers.end(),
          [&](topology::FiberId f) { return scenario.cuts(f); });
      if (!hit) continue;
      applied.removed.push_back(AppliedOutcome::Removed{wl, i, path});
      affected_gbps += wl.mode.data_rate_gbps;
    }
  }
  if (std::abs(affected_gbps - outcome.affected_gbps) > 1e-6) {
    return Error::make("outcome_mismatch",
                       "outcome affected " +
                           std::to_string(outcome.affected_gbps) +
                           " Gbps but plan+scenario affect " +
                           std::to_string(affected_gbps) + " Gbps");
  }

  // Remove the affected wavelengths.  Reverse order keeps every recorded
  // index valid while earlier entries of the same link are still in place.
  for (auto it = applied.removed.rbegin(); it != applied.removed.rend();
       ++it) {
    auto removed = plan.remove_wavelength_at(it->wl.link, it->index);
    if (!removed) return removed.error();  // cannot happen: indices recorded
  }

  // Place the restored wavelengths.  Restoration paths are not in the link
  // plan's KSP candidates, so they are appended (and recorded for
  // truncation on revert); a restoration path that coincides with an
  // existing candidate is reused instead.
  for (const auto& rw : outcome.wavelengths) {
    planning::LinkPlan* lp = plan.find_link(rw.link);
    if (lp == nullptr) {
      return Error::make("outcome_mismatch",
                         "restored wavelength on unknown link " +
                             std::to_string(rw.link));
    }
    applied.original_path_counts.emplace(rw.link, lp->paths.size());
    int path_index = -1;
    for (std::size_t k = 0; k < lp->paths.size(); ++k) {
      if (lp->paths[k].fibers == rw.path.fibers) {
        path_index = static_cast<int>(k);
        break;
      }
    }
    if (path_index < 0) {
      path_index = static_cast<int>(lp->paths.size());
      lp->paths.push_back(rw.path);
    }
    planning::Wavelength wl{rw.link, path_index, rw.mode, rw.range};
    auto placed = plan.place_wavelength(
        lp->paths[static_cast<std::size_t>(path_index)], wl);
    if (!placed) return placed.error();  // restorer verified the fit
    applied.restored.push_back(wl);
  }
  if (obs::events_enabled()) {
    obs::emit_event(
        obs::make_event("restoration", obs::Severity::kInfo,
                        "restoration.apply")
            .with("removed_wavelengths", applied.removed.size())
            .with("restored_wavelengths", applied.restored.size())
            .with("affected_gbps", affected_gbps));
  }
  return applied;
}

Expected<bool> revert_outcome(planning::Plan& plan,
                              const AppliedOutcome& applied) {
  // Restored wavelengths out first (they occupy the spectrum the originals
  // need back), in reverse placement order.
  for (auto it = applied.restored.rbegin(); it != applied.restored.rend();
       ++it) {
    planning::LinkPlan* lp = plan.find_link(it->link);
    if (lp == nullptr) {
      return Error::make("not_found",
                         "restored link " + std::to_string(it->link) +
                             " missing from plan");
    }
    const auto& path = lp->paths[static_cast<std::size_t>(it->path_index)];
    auto removed = plan.remove_wavelength(path, *it);
    if (!removed) return removed;
  }

  // Drop the appended restoration paths so path lists (and plan_io bytes)
  // match the pre-apply plan.
  for (const auto& [link, count] : applied.original_path_counts) {
    planning::LinkPlan* lp = plan.find_link(link);
    if (lp == nullptr || lp->paths.size() < count) {
      return Error::make("not_found",
                         "link " + std::to_string(link) +
                             " lost paths between apply and revert");
    }
    lp->paths.resize(count);
  }

  // Re-home the originals at their recorded positions.  `removed` is in
  // (link order, ascending index) order, so inserting front to back
  // reconstructs each link plan's exact wavelength sequence.
  for (const auto& rem : applied.removed) {
    auto placed = plan.insert_wavelength(rem.path, rem.wl, rem.index);
    if (!placed) return placed;
  }
  if (obs::events_enabled()) {
    obs::emit_event(
        obs::make_event("restoration", obs::Severity::kInfo,
                        "restoration.revert")
            .with("reinstated_wavelengths", applied.removed.size())
            .with("dropped_wavelengths", applied.restored.size()));
  }
  return true;
}

Expected<Outcome> transition_outcome(planning::Plan& plan,
                                     std::optional<AppliedOutcome>& applied,
                                     const FailureScenario& scenario,
                                     const SolveFn& solve) {
  if (applied) {
    auto reverted = revert_outcome(plan, *applied);
    if (!reverted) return reverted.error();
    applied.reset();
  }

  const Outcome& outcome = solve(plan);

  // Nothing affected and nothing restored: the deployed plan already *is*
  // the failure-state plan, so skip the apply scan entirely.
  if (outcome.wavelengths.empty() && outcome.affected_gbps == 0.0) {
    return outcome;
  }

  auto next = apply_outcome(plan, scenario, outcome);
  if (!next) return next.error();
  applied = std::move(next.value());
  return outcome;
}

}  // namespace flexwan::restoration
