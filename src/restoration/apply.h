// Applying a restoration Outcome to a live plan — and reverting it.
//
// The Restorer (restorer.h) is a pure function: it computes what *would* be
// retuned after a cut but never mutates the plan.  A digital-twin lifecycle
// (src/sim) needs the other half: when a cut strikes, the affected
// wavelengths actually leave the plan and the restored ones take their
// place; when the fiber is repaired, the restoration is torn down and the
// original wavelengths re-homed.
//
// apply_outcome() records everything needed for the exact inverse: each
// removed wavelength with its position in its link plan, and which
// restoration paths were appended.  revert_outcome() plays the record
// backwards — restored wavelengths out, appended paths truncated, originals
// re-inserted at their old indices — so a plan serialized with
// planning::save_plan() before apply and after revert is byte-identical.
// The simulator's repair path (and its availability accounting) depends on
// that invariant; restoration_test pins it.
//
// Contract: `outcome` must have been computed by Restorer::restore against
// this exact plan state and scenario, and the plan must not change between
// apply and revert.  Violations surface as "outcome_mismatch"/"conflict"
// errors rather than silent corruption.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "planning/plan.h"
#include "restoration/restorer.h"
#include "restoration/scenario.h"

namespace flexwan::restoration {

// The reversible record of one applied Outcome.
struct AppliedOutcome {
  // An original wavelength removed because its path crossed a cut fiber.
  struct Removed {
    planning::Wavelength wl;
    std::size_t index = 0;  // position in its link plan before removal
    topology::Path path;    // the path it rode (for spectrum re-reserve)
  };
  // Link-plan iteration order, ascending index within each link — the order
  // revert_outcome() re-inserts them in.
  std::vector<Removed> removed;

  // Restored wavelengths as placed (path_index may reference a path
  // appended to the link plan by apply_outcome).
  std::vector<planning::Wavelength> restored;

  // Per touched link: how many paths the link plan had before restoration
  // paths were appended; revert truncates back to this count.
  std::map<topology::LinkId, std::size_t> original_path_counts;
};

// Mutates `plan` to the post-restoration state: removes every wavelength
// whose path crosses a fiber in `scenario` and places `outcome`'s restored
// wavelengths (appending their restoration paths to the link plans as
// needed).  Returns the record revert_outcome() needs.  Fails with
// "outcome_mismatch" when `outcome` does not correspond to this plan and
// scenario (plan unchanged in that case) and "conflict" when a restored
// wavelength cannot be placed.
Expected<AppliedOutcome> apply_outcome(planning::Plan& plan,
                                       const FailureScenario& scenario,
                                       const Outcome& outcome);

// Exact inverse of apply_outcome(): removes the restored wavelengths,
// truncates appended paths, and re-inserts the removed originals at their
// recorded positions.  After a successful revert the plan serializes
// byte-identically to its pre-apply state.
Expected<bool> revert_outcome(planning::Plan& plan,
                              const AppliedOutcome& applied);

// Computes a new restoration outcome against the *deployed* plan state.
// transition_outcome() hands it the plan with any previous restoration
// already reverted; the returned reference must stay valid until the
// transition completes (the IncrementalRestorer's restore() qualifies).
using SolveFn =
    std::function<const Outcome&(const planning::Plan& deployed)>;

// One delta step of the live plan between restoration outcomes: reverts
// `applied` (when engaged), invokes `solve` against the now-deployed plan,
// and applies the outcome it returns, leaving `applied` holding the new
// record.  This is the sim event loop's single mutation entry point — the
// byte-exact revert semantics are preserved because the step is composed of
// exactly the revert_outcome()/apply_outcome() pair whose round-trip
// restoration_test pins; an outcome that touches nothing (no affected, no
// restored wavelengths) short-circuits to "reverted, nothing applied" so an
// all-clear network never pays an O(plan) apply scan.  Returns the outcome
// `solve` produced (for loss accounting).  On error the plan may hold the
// deployed (reverted) state but never a partial application.
Expected<Outcome> transition_outcome(planning::Plan& plan,
                                     std::optional<AppliedOutcome>& applied,
                                     const FailureScenario& scenario,
                                     const SolveFn& solve);

}  // namespace flexwan::restoration
