#include "restoration/exact.h"

#include <algorithm>
#include <map>
#include <vector>

#include "topology/ksp.h"

namespace flexwan::restoration {

namespace {

// One gamma' variable: a restored wavelength candidate.
struct GammaVar {
  topology::LinkId link;
  int path_index;   // into the link's restoration-path list
  int mode_index;   // into catalog.modes()
  int start_pixel;  // q-th order
};

}  // namespace

Expected<ExactOutcome> solve_exact_restoration(
    const topology::Network& net, const planning::Plan& plan,
    const FailureScenario& scenario, const transponder::Catalog& catalog,
    const ExactRestorerConfig& config,
    const std::map<topology::LinkId, int>& extra_spares) {
  // Residual spectrum phi_w: the plan's occupancy minus the affected
  // wavelengths' reservations (their transponders become spares).
  std::vector<spectrum::Occupancy> fibers(plan.fiber_occupancies().begin(),
                                          plan.fiber_occupancies().end());
  struct Affected {
    double capacity = 0.0;        // c'_e
    int spares = 0;               // N_e
    std::vector<double> original_paths_km;
  };
  std::map<topology::LinkId, Affected> affected;
  for (const auto& lp : plan.links()) {
    for (const auto& wl : lp.wavelengths) {
      const auto& path = lp.paths[static_cast<std::size_t>(wl.path_index)];
      const bool hit = std::any_of(
          path.fibers.begin(), path.fibers.end(),
          [&](topology::FiberId f) { return scenario.cuts(f); });
      if (!hit) continue;
      auto& a = affected[lp.link];
      a.capacity += wl.mode.data_rate_gbps;
      a.spares += 1;
      a.original_paths_km.push_back(path.length_km);
      for (topology::FiberId f : path.fibers) {
        auto r = fibers[static_cast<std::size_t>(f)].release(wl.range);
        (void)r;
      }
    }
  }

  ExactOutcome result;
  if (affected.empty()) {
    result.status = milp::MipStatus::kOptimal;
    return result;
  }
  for (auto& [link, a] : affected) {
    const auto it = extra_spares.find(link);
    if (it != extra_spares.end()) a.spares += it->second;
    result.outcome.affected_gbps += a.capacity;
  }

  milp::Model model;
  model.set_direction(milp::Direction::kMaximize);
  const auto modes = catalog.modes();
  const int band = plan.band_pixels();

  std::vector<GammaVar> gammas;
  std::vector<milp::VarId> gamma_ids;
  std::map<topology::LinkId, std::vector<topology::Path>> link_paths;

  for (const auto& [link_id, a] : affected) {
    const auto& ip_link = net.ip.link(link_id);
    auto paths = topology::k_shortest_paths(net.optical, ip_link.src,
                                            ip_link.dst, config.k_paths,
                                            scenario.cut_fibers);
    for (std::size_t k = 0; k < paths.size(); ++k) {
      for (std::size_t j = 0; j < modes.size(); ++j) {
        const auto& mode = modes[j];
        if (!mode.reaches(paths[k].length_km)) continue;  // (10)
        const int pix = mode.pixels();
        for (int q = 0; q + pix <= band; ++q) {
          // (9) pre-prune: a gamma whose range is already occupied on some
          // fiber of its path can never be 1.
          const spectrum::Range range{q, pix};
          bool free = true;
          for (topology::FiberId f : paths[k].fibers) {
            if (!fibers[static_cast<std::size_t>(f)].is_free(range)) {
              free = false;
              break;
            }
          }
          if (!free) continue;
          if (static_cast<int>(gammas.size()) >= config.max_variables) {
            return Error::make("too_large",
                               "restoration MIP exceeds " +
                                   std::to_string(config.max_variables) +
                                   " variables");
          }
          gamma_ids.push_back(model.add_binary(
              "g_e" + std::to_string(link_id) + "_k" + std::to_string(k) +
                  "_j" + std::to_string(j) + "_q" + std::to_string(q),
              mode.data_rate_gbps));  // objective: restored capacity
          gammas.push_back(GammaVar{link_id, static_cast<int>(k),
                                    static_cast<int>(j), q});
        }
      }
    }
    link_paths[link_id] = std::move(paths);
  }

  // (7) + (8): per affected link.
  for (const auto& [link_id, a] : affected) {
    std::vector<milp::Term> rate_terms;
    std::vector<milp::Term> count_terms;
    for (std::size_t gi = 0; gi < gammas.size(); ++gi) {
      if (gammas[gi].link != link_id) continue;
      rate_terms.push_back(milp::Term{
          gamma_ids[gi],
          modes[static_cast<std::size_t>(gammas[gi].mode_index)]
              .data_rate_gbps});
      count_terms.push_back(milp::Term{gamma_ids[gi], 1.0});
    }
    if (rate_terms.empty()) continue;  // link unrestorable in this scenario
    model.add_constraint(std::move(rate_terms), milp::Sense::kLe, a.capacity,
                         "cap_e" + std::to_string(link_id));
    model.add_constraint(std::move(count_terms), milp::Sense::kLe,
                         static_cast<double>(a.spares),
                         "spares_e" + std::to_string(link_id));
  }

  // (11)-(12) conflict rows over the residual spectrum: at most one restored
  // wavelength per (fiber, pixel); occupied pixels were pruned above.
  for (topology::FiberId f = 0; f < net.optical.fiber_count(); ++f) {
    if (scenario.cuts(f)) continue;
    for (int w = 0; w < band; ++w) {
      std::vector<milp::Term> terms;
      for (std::size_t gi = 0; gi < gammas.size(); ++gi) {
        const auto& g = gammas[gi];
        const auto& mode = modes[static_cast<std::size_t>(g.mode_index)];
        if (w < g.start_pixel || w >= g.start_pixel + mode.pixels()) continue;
        const auto& path = link_paths.at(g.link)[static_cast<std::size_t>(
            g.path_index)];
        if (!path.uses_fiber(f)) continue;
        terms.push_back(milp::Term{gamma_ids[gi], 1.0});
      }
      if (terms.size() > 1) {
        model.add_constraint(std::move(terms), milp::Sense::kLe, 1.0,
                             "pix_f" + std::to_string(f) + "_w" +
                                 std::to_string(w));
      }
    }
  }

  const auto mip = milp::solve_mip(model, config.mip);
  result.status = mip.status;
  result.nodes_explored = mip.nodes_explored;
  if (mip.status != milp::MipStatus::kOptimal &&
      mip.status != milp::MipStatus::kNodeLimit) {
    // The zero vector is always feasible, so infeasibility here would be a
    // formulation bug — surface it.
    return Error::make("solver_failed", "restoration MIP did not solve");
  }
  result.objective = mip.objective;

  // Decode restored wavelengths.
  std::map<topology::LinkId, std::size_t> next_original;
  for (std::size_t gi = 0; gi < gammas.size(); ++gi) {
    if (mip.x[static_cast<std::size_t>(gamma_ids[gi])] < 0.5) continue;
    const auto& g = gammas[gi];
    const auto& mode = modes[static_cast<std::size_t>(g.mode_index)];
    RestoredWavelength rw;
    rw.link = g.link;
    rw.mode = mode;
    rw.range = spectrum::Range{g.start_pixel, mode.pixels()};
    rw.path = link_paths.at(g.link)[static_cast<std::size_t>(g.path_index)];
    const auto& originals = affected.at(g.link).original_paths_km;
    auto& idx = next_original[g.link];
    rw.original_path_km = originals[std::min(idx, originals.size() - 1)];
    ++idx;
    result.outcome.wavelengths.push_back(std::move(rw));
    result.outcome.restored_gbps += mode.data_rate_gbps;
  }
  // Per-link accounting.
  for (const auto& [link_id, a] : affected) {
    LinkRestoration lr;
    lr.link = link_id;
    lr.affected_gbps = a.capacity;
    lr.spare_transponders = a.spares;
    for (const auto& rw : result.outcome.wavelengths) {
      if (rw.link == link_id) {
        lr.restored_gbps += rw.mode.data_rate_gbps;
        ++lr.used_transponders;
      }
    }
    result.outcome.links.push_back(lr);
  }
  return result;
}

}  // namespace flexwan::restoration
