// Exact MILP formulation of the §8 optical-restoration program, solved with
// the in-repo branch-and-bound.  Mirrors the paper's maximization:
//
//   maximize  sum d_j * lambda'_{e,k,j}
//   s.t. (7)  restored capacity per link  <= affected capacity c'_e
//        (8)  transponders used per link  <= spare transponders N_e
//        (9)  restored spectrum only uses pixels left free by survivors
//        (10)-(13)  reach / consistency / conflict / counting as in Alg. 1
//
// As with planning/exact.h this is for validation-sized instances; the
// production-scale path is restoration/restorer.h, whose outcomes this
// solver upper-bounds in tests and in the bench_milp_gap ablation.
#pragma once

#include "milp/branch_and_bound.h"
#include "planning/plan.h"
#include "restoration/restorer.h"
#include "restoration/scenario.h"
#include "transponder/catalog.h"

namespace flexwan::restoration {

struct ExactRestorerConfig {
  int k_paths = 3;          // restoration candidates on the residual graph
  int max_variables = 20000;
  milp::MipOptions mip;
};

struct ExactOutcome {
  Outcome outcome;          // same shape as the heuristic's result
  double objective = 0.0;   // total restored Gbps (the MIP objective)
  int nodes_explored = 0;
  milp::MipStatus status = milp::MipStatus::kInfeasible;
};

// Builds and solves the restoration MIP for one failure scenario against a
// configured plan.  Fails with "too_large" when the formulation exceeds
// max_variables.  A scenario that touches nothing yields an empty outcome
// with capability 1.
Expected<ExactOutcome> solve_exact_restoration(
    const topology::Network& net, const planning::Plan& plan,
    const FailureScenario& scenario, const transponder::Catalog& catalog,
    const ExactRestorerConfig& config,
    const std::map<topology::LinkId, int>& extra_spares = {});

}  // namespace flexwan::restoration
