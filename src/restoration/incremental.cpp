#include "restoration/incremental.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "topology/ksp.h"

namespace flexwan::restoration {

IncrementalRestorer::IncrementalRestorer(const transponder::Catalog& catalog,
                                         RestorerConfig config)
    : catalog_(&catalog), config_(config) {}

void IncrementalRestorer::rebuild_carried(const planning::Plan& plan) {
  OBS_SPAN("restoration.incremental.rebuild");
  const auto fiber_count = static_cast<std::size_t>(plan.fiber_count());
  if (delta_.carried.size() != fiber_count) delta_.carried.resize(fiber_count);
  for (auto& refs : delta_.carried) refs.clear();
  const auto links = plan.links();
  for (std::size_t link_pos = 0; link_pos < links.size(); ++link_pos) {
    const auto& lp = links[link_pos];
    for (std::size_t wl_index = 0; wl_index < lp.wavelengths.size();
         ++wl_index) {
      const auto& wl = lp.wavelengths[wl_index];
      const auto& path =
          lp.paths[static_cast<std::size_t>(wl.path_index)];
      for (topology::FiberId f : path.fibers) {
        delta_.carried[static_cast<std::size_t>(f)].push_back(
            RestorationDelta::WavelengthRef{link_pos, wl_index});
      }
    }
  }
}

void IncrementalRestorer::note_restoration_paths(const Outcome& outcome) {
  if (delta_.restoration_paths.size() != delta_.carried.size()) {
    delta_.restoration_paths.resize(delta_.carried.size());
  }
  for (auto& indices : delta_.restoration_paths) indices.clear();
  for (std::size_t i = 0; i < outcome.wavelengths.size(); ++i) {
    for (topology::FiberId f : outcome.wavelengths[i].path.fibers) {
      delta_.restoration_paths[static_cast<std::size_t>(f)].push_back(i);
    }
  }
}

const Outcome& IncrementalRestorer::restore(const topology::Network& net,
                                            const planning::Plan& plan,
                                            const FailureScenario& scenario) {
  OBS_SPAN("restoration.incremental.restore");
  if (!carried_valid_) {
    rebuild_carried(plan);
    outcome_cache_.clear();
    carried_valid_ = true;
  }

  // Repair fast path (and repeated failure states in general): the solved
  // outcome for this active-cut-set is still valid because the deployed
  // plan has not changed — re-promote it without solving.
  const auto [entry, inserted] = outcome_cache_.try_emplace(scenario.cut_fibers);
  if (!inserted) {
    OBS_COUNTER_ADD("restoration.incremental.cache_hits", 1);
    note_restoration_paths(entry->second);
    return entry->second;
  }
  OBS_COUNTER_ADD("restoration.incremental.solves", 1);

  // New-cut fast path: the affected set is the merge of the cut fibers'
  // carried lists — deduped (a wavelength crossing two cut fibers appears
  // in both) into deployed-plan scan order, never an O(plan) scan.
  affected_refs_.clear();
  for (topology::FiberId f : scenario.cut_fibers) {
    if (f < 0 || static_cast<std::size_t>(f) >= delta_.carried.size()) continue;
    const auto& refs = delta_.carried[static_cast<std::size_t>(f)];
    affected_refs_.insert(affected_refs_.end(), refs.begin(), refs.end());
  }
  std::sort(affected_refs_.begin(), affected_refs_.end());
  affected_refs_.erase(
      std::unique(affected_refs_.begin(), affected_refs_.end()),
      affected_refs_.end());

  // Residual spectrum: word-packed copy of the deployed occupancy into the
  // reused scratch arena, then release what the cut carried.
  fibers_scratch_.assign(plan.fiber_occupancies().begin(),
                         plan.fiber_occupancies().end());
  affected_.clear();
  double affected_gbps = 0.0;
  const auto links = plan.links();
  for (const auto& ref : affected_refs_) {
    const auto& lp = links[ref.link_pos];
    const auto& wl = lp.wavelengths[ref.wl_index];
    const auto& path = lp.paths[static_cast<std::size_t>(wl.path_index)];
    if (affected_.empty() || affected_.back().link != lp.link) {
      affected_.push_back(detail::AffectedLink{lp.link, {}});
    }
    affected_.back().lost.push_back(
        detail::AffectedWavelength{wl.mode.data_rate_gbps, path.length_km});
    for (topology::FiberId f : path.fibers) {
      auto r = fibers_scratch_[static_cast<std::size_t>(f)].release(wl.range);
      (void)r;  // reserved by the plan, so release cannot fail
    }
    affected_gbps += wl.mode.data_rate_gbps;
  }
  std::sort(affected_.begin(), affected_.end(),
            [](const detail::AffectedLink& a, const detail::AffectedLink& b) {
              return a.link < b.link;
            });

  // Backup-path tables: KSP per (link, active-cut-set), memoized across
  // events and across plan generations.
  const auto paths_for =
      [&](topology::LinkId link) -> const std::vector<topology::Path>& {
    auto key = std::make_pair(link, scenario.cut_fibers);
    auto it = delta_.backup_paths.find(key);
    if (it == delta_.backup_paths.end()) {
      OBS_COUNTER_ADD("restoration.incremental.ksp_runs", 1);
      const auto& ip_link = net.ip.link(link);
      it = delta_.backup_paths
               .emplace(std::move(key),
                        topology::k_shortest_paths(
                            net.optical, ip_link.src, ip_link.dst,
                            config_.k_paths, scenario.cut_fibers))
               .first;
    }
    return it->second;
  };

  entry->second = detail::solve(net, *catalog_, config_, affected_gbps,
                                affected_, fibers_scratch_, no_extra_spares_,
                                paths_for);
  note_restoration_paths(entry->second);
  return entry->second;
}

}  // namespace flexwan::restoration
