// Incremental re-restoration (ROADMAP "sub-millisecond restoration hot
// path").
//
// The lifecycle simulator (src/sim) re-solves restoration after *every*
// cut/repair/growth event.  The from-scratch Restorer pays three per-event
// costs that do not depend on the event's size: a full scan of the plan's
// wavelengths to find the affected ones, fresh KSP runs on the residual
// topology, and fresh heap allocations for every scratch structure.  The
// IncrementalRestorer eliminates all three with a delta structure over the
// deployed plan:
//
//   * carried index     — per fiber, which deployed wavelengths ride it, so
//                         a new cut's affected set is a merge of the cut
//                         fibers' lists instead of an O(plan) scan;
//   * backup-path table — memoized KSP per (link, active-cut-set), so a
//                         repair that returns to a previously-seen failure
//                         state never re-runs Yen's algorithm (pure
//                         function of the topology, survives plan growth);
//   * outcome cache     — per active-cut-set, the full solved Outcome, so a
//                         repair only "re-promotes" traffic: the cached
//                         outcome of the remaining cuts is reinstated
//                         without solving at all (invalidated when the
//                         deployed plan changes);
//   * arena scratch     — the occupancy working set, affected refs, and
//                         per-link buckets are member buffers reused across
//                         events, so steady-state events allocate nothing.
//
// Byte-identity with the oracle: restore() returns exactly what
// Restorer::restore would return for the same (net, plan, scenario) — the
// greedy itself is the shared restoration/solve.h core, and every shortcut
// above is a pure lookup (index, memo, cache) over inputs the from-scratch
// path recomputes.  RestorerConfig::verify_incremental re-checks that claim
// after every sim event; incremental_restoration_test and CI's
// oracle-parity job pin it.
//
// Thread-safety: unlike Restorer, an IncrementalRestorer is *stateful* and
// must not be shared across threads; each sim trial owns one (trials fan
// out on the engine with one restorer per trial).
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "planning/plan.h"
#include "restoration/restorer.h"
#include "restoration/scenario.h"
#include "restoration/solve.h"
#include "transponder/catalog.h"

namespace flexwan::restoration {

// The delta structure: per-fiber views of the deployed plan and the active
// restoration, plus the memoized backup-path tables.
struct RestorationDelta {
  // A deployed wavelength, addressed by position in the plan: links()
  // index, then index in that link plan's wavelength list.  The pair order
  // IS deployed-plan scan order, which the solve contract depends on.
  struct WavelengthRef {
    std::size_t link_pos = 0;
    std::size_t wl_index = 0;

    friend auto operator<=>(const WavelengthRef&,
                            const WavelengthRef&) = default;
  };

  // fiber -> deployed wavelengths whose optical path traverses it,
  // ascending (link_pos, wl_index).
  std::vector<std::vector<WavelengthRef>> carried;

  // fiber -> indices into the latest restore()'s Outcome::wavelengths whose
  // restoration path traverses the fiber (the active restoration's
  // footprint; empty lists when nothing is restored).
  std::vector<std::vector<std::size_t>> restoration_paths;

  // (link, active-cut-set) -> KSP candidates on the residual topology.
  // A pure function of the topology, so never invalidated.
  std::map<std::pair<topology::LinkId, std::vector<topology::FiberId>>,
           std::vector<topology::Path>>
      backup_paths;
};

class IncrementalRestorer {
 public:
  IncrementalRestorer(const transponder::Catalog& catalog,
                      RestorerConfig config = {});

  // Solves `scenario` against the deployed `plan`.  Returns the exact
  // Outcome Restorer::restore(net, plan, scenario) would return (see the
  // byte-identity argument above).  The reference stays valid until the
  // deployed plan changes (notify_plan_changed) — cached outcomes are
  // returned directly on a repeated active-cut-set.
  //
  // `plan` must be in its *deployed* state (any applied restoration
  // reverted first); restoration/apply.h's transition_outcome arranges
  // that for the sim event loop.
  const Outcome& restore(const topology::Network& net,
                         const planning::Plan& plan,
                         const FailureScenario& scenario);

  // Must be called whenever the deployed plan changes (growth, defrag,
  // re-planning): drops the carried index and the outcome cache.  The
  // backup-path tables survive — they depend only on the topology.
  void notify_plan_changed() { carried_valid_ = false; }

  const RestorationDelta& delta() const { return delta_; }

 private:
  void rebuild_carried(const planning::Plan& plan);
  void note_restoration_paths(const Outcome& outcome);

  const transponder::Catalog* catalog_;
  RestorerConfig config_;

  RestorationDelta delta_;
  bool carried_valid_ = false;

  // Solved outcomes per active-cut-set against the current deployed plan.
  std::map<std::vector<topology::FiberId>, Outcome> outcome_cache_;

  // Arena scratch, reused across events (no steady-state heap churn).
  std::vector<spectrum::Occupancy> fibers_scratch_;
  std::vector<RestorationDelta::WavelengthRef> affected_refs_;
  std::vector<detail::AffectedLink> affected_;
  const std::map<topology::LinkId, int> no_extra_spares_;
};

}  // namespace flexwan::restoration
