#include "restoration/metrics.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flexwan::restoration {

ScenarioSetMetrics evaluate_scenarios(
    const topology::Network& net, const planning::Plan& plan,
    const Restorer& restorer, const std::vector<FailureScenario>& scenarios,
    const std::map<topology::LinkId, int>& extra_spares) {
  return evaluate_scenarios(net, plan, restorer, scenarios,
                            engine::Engine::serial(), extra_spares);
}

ScenarioSetMetrics evaluate_scenarios(
    const topology::Network& net, const planning::Plan& plan,
    const Restorer& restorer, const std::vector<FailureScenario>& scenarios,
    const engine::Engine& engine,
    const std::map<topology::LinkId, int>& extra_spares) {
  // Fan the independent restore() calls out; every scenario reads the same
  // const plan/network and builds its own occupancy copy.
  OBS_SPAN("restoration.evaluate_scenarios");
  const auto outcomes =
      engine.parallel_map(scenarios.size(), [&](std::size_t i) {
        OBS_SPAN("restoration.scenario.restore");
        auto outcome = restorer.restore(net, plan, scenarios[i], extra_spares);
        OBS_COUNTER_ADD("restoration.scenarios", 1);
        OBS_GAUGE_ADD("restoration.affected_gbps", outcome.affected_gbps);
        OBS_GAUGE_ADD("restoration.restored_gbps", outcome.restored_gbps);
        return outcome;
      });

  // Index-ordered reduction: identical to the historical serial loop.
  ScenarioSetMetrics m;
  double sum = 0.0;
  for (const Outcome& outcome : outcomes) {
    const double cap = outcome.capability();
    m.capabilities.push_back(cap);
    sum += cap;
    if (cap < 1.0 - 1e-9) ++m.scenarios_with_loss;
    for (const auto& rw : outcome.wavelengths) {
      m.path_gaps_km.push_back(rw.path.length_km - rw.original_path_km);
      if (rw.original_path_km > 0.0) {
        m.path_stretch.push_back(rw.path.length_km / rw.original_path_km);
      }
    }
  }
  if (!m.capabilities.empty()) {
    m.mean_capability = sum / static_cast<double>(m.capabilities.size());
  }
  return m;
}

}  // namespace flexwan::restoration
