// Restoration evaluation across a scenario set (paper Figs. 15 and 16).
#pragma once

#include <vector>

#include "engine/engine.h"
#include "restoration/restorer.h"

namespace flexwan::restoration {

// Aggregates over a scenario set.
struct ScenarioSetMetrics {
  // One restoration-capability value per scenario (Fig. 16 CDFs).
  std::vector<double> capabilities;
  double mean_capability = 0.0;  // Fig. 15(b) series value
  // Per restored wavelength: restored path length - original (km) and
  // restored / original ratio (Fig. 15(a)).
  std::vector<double> path_gaps_km;
  std::vector<double> path_stretch;
  int scenarios_with_loss = 0;  // scenarios where capability < 1
};

// Runs the restorer on every scenario and aggregates.
ScenarioSetMetrics evaluate_scenarios(
    const topology::Network& net, const planning::Plan& plan,
    const Restorer& restorer, const std::vector<FailureScenario>& scenarios,
    const std::map<topology::LinkId, int>& extra_spares = {});

// Same sweep with the scenarios restored concurrently on `engine`.  Each
// restore() works on a private copy of the plan's occupancy state against
// const inputs; outcomes are aggregated in scenario order, so the metrics
// (capabilities, gaps, means) are byte-identical at every thread count.
ScenarioSetMetrics evaluate_scenarios(
    const topology::Network& net, const planning::Plan& plan,
    const Restorer& restorer, const std::vector<FailureScenario>& scenarios,
    const engine::Engine& engine,
    const std::map<topology::LinkId, int>& extra_spares = {});

}  // namespace flexwan::restoration
