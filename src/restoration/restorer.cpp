#include "restoration/restorer.h"

#include <algorithm>

#include "topology/ksp.h"

namespace flexwan::restoration {

namespace {

// An affected wavelength awaiting restoration.
struct AffectedWavelength {
  topology::LinkId link;
  double rate_gbps;
  double original_path_km;
};

}  // namespace

Restorer::Restorer(const transponder::Catalog& catalog, RestorerConfig config)
    : catalog_(&catalog), config_(config) {}

Outcome Restorer::restore(
    const topology::Network& net, const planning::Plan& plan,
    const FailureScenario& scenario,
    const std::map<topology::LinkId, int>& extra_spares) const {
  Outcome outcome;

  // Working copy of the post-planning spectrum state (constraint 9's phi_w).
  std::vector<spectrum::Occupancy> fibers(plan.fiber_occupancies().begin(),
                                          plan.fiber_occupancies().end());

  // Identify affected wavelengths and free their spectrum: their surviving
  // fibers' slots become available to the restoration plan.
  std::map<topology::LinkId, std::vector<AffectedWavelength>> affected;
  for (const auto& lp : plan.links()) {
    for (const auto& wl : lp.wavelengths) {
      const auto& path = lp.paths[static_cast<std::size_t>(wl.path_index)];
      const bool hit = std::any_of(
          path.fibers.begin(), path.fibers.end(),
          [&](topology::FiberId f) { return scenario.cuts(f); });
      if (!hit) continue;
      affected[lp.link].push_back(
          AffectedWavelength{lp.link, wl.mode.data_rate_gbps, path.length_km});
      for (topology::FiberId f : path.fibers) {
        auto r = fibers[static_cast<std::size_t>(f)].release(wl.range);
        (void)r;  // reserved by the plan, so release cannot fail
      }
      outcome.affected_gbps += wl.mode.data_rate_gbps;
    }
  }
  if (affected.empty()) return outcome;

  // Most-affected links first: they have the most capacity to lose and the
  // most spare transponders competing for the same residual spectrum.
  std::vector<topology::LinkId> order;
  for (const auto& [link, wls] : affected) order.push_back(link);
  auto affected_sum = [&](topology::LinkId l) {
    double s = 0.0;
    for (const auto& a : affected.at(l)) s += a.rate_gbps;
    return s;
  };
  std::sort(order.begin(), order.end(), [&](topology::LinkId a,
                                            topology::LinkId b) {
    return affected_sum(a) > affected_sum(b);
  });

  for (topology::LinkId link_id : order) {
    const auto& ip_link = net.ip.link(link_id);
    auto& lost = affected.at(link_id);
    // Longest original paths first: they are the hardest to re-home.
    std::sort(lost.begin(), lost.end(),
              [](const AffectedWavelength& a, const AffectedWavelength& b) {
                return a.original_path_km > b.original_path_km;
              });

    LinkRestoration lr;
    lr.link = link_id;
    lr.affected_gbps = affected_sum(link_id);
    const auto extra_it = extra_spares.find(link_id);
    const int extra = extra_it == extra_spares.end() ? 0 : extra_it->second;
    lr.spare_transponders = static_cast<int>(lost.size()) + extra;

    // Restoration paths on the residual topology (cut fibers excluded).
    const auto paths =
        topology::k_shortest_paths(net.optical, ip_link.src, ip_link.dst,
                                   config_.k_paths, scenario.cut_fibers);

    double remaining = lr.affected_gbps;  // constraint (7)
    int spares = lr.spare_transponders;   // constraint (8)
    std::size_t next_original = 0;
    while (spares > 0 && remaining > 1e-9 && !paths.empty()) {
      // Choose the (path, mode, fit) that revives the most capacity; among
      // ties prefer the narrowest spacing, then the shortest path.
      struct Best {
        double revived = 0.0;
        transponder::Mode mode;
        spectrum::Range range;
        const topology::Path* path = nullptr;
      } best;
      for (const auto& path : paths) {
        for (const auto& mode : catalog_->feasible(path.length_km)) {
          const double revived = std::min(mode.data_rate_gbps, remaining);
          const bool better =
              revived > best.revived + 1e-9 ||
              (std::abs(revived - best.revived) <= 1e-9 && best.path &&
               mode.spacing_ghz < best.mode.spacing_ghz);
          if (!better) continue;
          const auto fit = planning::common_first_fit(fibers, path,
                                                      mode.pixels());
          if (!fit) continue;
          best = Best{revived, mode, *fit, &path};
        }
      }
      if (!best.path) break;  // no spectrum anywhere on any candidate path

      for (topology::FiberId f : best.path->fibers) {
        auto r = fibers[static_cast<std::size_t>(f)].reserve(best.range);
        (void)r;  // fit was just verified
      }
      RestoredWavelength rw;
      rw.link = link_id;
      rw.mode = best.mode;
      rw.range = best.range;
      rw.path = *best.path;
      rw.original_path_km =
          next_original < lost.size() ? lost[next_original].original_path_km
                                      : lost.back().original_path_km;
      ++next_original;
      outcome.wavelengths.push_back(std::move(rw));
      outcome.restored_gbps += best.revived;
      lr.restored_gbps += best.revived;
      remaining -= best.revived;
      --spares;
      ++lr.used_transponders;
    }
    outcome.links.push_back(lr);
  }
  return outcome;
}

std::map<topology::LinkId, int> flexwan_plus_spares(
    const planning::Plan& flexwan_plan, const planning::Plan& reference_plan) {
  std::map<topology::LinkId, int> extras;
  for (const auto& lp : flexwan_plan.links()) {
    const planning::LinkPlan* ref = reference_plan.find_link(lp.link);
    if (ref == nullptr) continue;
    const int saved = static_cast<int>(ref->wavelengths.size()) -
                      static_cast<int>(lp.wavelengths.size());
    if (saved / 2 > 0) extras[lp.link] = saved / 2;
  }
  return extras;
}

}  // namespace flexwan::restoration
