#include "restoration/restorer.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "restoration/solve.h"
#include "topology/ksp.h"

namespace flexwan::restoration {

Restorer::Restorer(const transponder::Catalog& catalog, RestorerConfig config)
    : catalog_(&catalog), config_(config) {}

Outcome Restorer::restore(
    const topology::Network& net, const planning::Plan& plan,
    const FailureScenario& scenario,
    const std::map<topology::LinkId, int>& extra_spares) const {
  // Mirrors restoration.incremental.restore so the work profile separates
  // the from-scratch path from the incremental one.
  OBS_SPAN("restoration.restore");
  OBS_COUNTER_ADD("restoration.restore.calls", 1);
  // Working copy of the post-planning spectrum state (constraint 9's phi_w).
  std::vector<spectrum::Occupancy> fibers(plan.fiber_occupancies().begin(),
                                          plan.fiber_occupancies().end());

  // Identify affected wavelengths and free their spectrum: their surviving
  // fibers' slots become available to the restoration plan.  Deployed-plan
  // scan order fixes both the per-link wavelength order and the floating-
  // point accumulation order of affected_gbps — the incremental engine's
  // delta index reproduces exactly this sequence.
  std::vector<detail::AffectedLink> affected;
  double affected_gbps = 0.0;
  for (const auto& lp : plan.links()) {
    for (const auto& wl : lp.wavelengths) {
      const auto& path = lp.paths[static_cast<std::size_t>(wl.path_index)];
      const bool hit = std::any_of(
          path.fibers.begin(), path.fibers.end(),
          [&](topology::FiberId f) { return scenario.cuts(f); });
      if (!hit) continue;
      if (affected.empty() || affected.back().link != lp.link) {
        affected.push_back(detail::AffectedLink{lp.link, {}});
      }
      affected.back().lost.push_back(
          detail::AffectedWavelength{wl.mode.data_rate_gbps, path.length_km});
      for (topology::FiberId f : path.fibers) {
        auto r = fibers[static_cast<std::size_t>(f)].release(wl.range);
        (void)r;  // reserved by the plan, so release cannot fail
      }
      affected_gbps += wl.mode.data_rate_gbps;
    }
  }
  // The solve contract wants ascending LinkId (the order the per-link map
  // used to impose); link ids are unique across link plans.
  std::sort(affected.begin(), affected.end(),
            [](const detail::AffectedLink& a, const detail::AffectedLink& b) {
              return a.link < b.link;
            });

  // Fresh KSP on the residual topology, computed at most once per link.
  std::map<topology::LinkId, std::vector<topology::Path>> ksp;
  const auto paths_for =
      [&](topology::LinkId link) -> const std::vector<topology::Path>& {
    auto it = ksp.find(link);
    if (it == ksp.end()) {
      const auto& ip_link = net.ip.link(link);
      it = ksp.emplace(link, topology::k_shortest_paths(
                                 net.optical, ip_link.src, ip_link.dst,
                                 config_.k_paths, scenario.cut_fibers))
               .first;
    }
    return it->second;
  };

  return detail::solve(net, *catalog_, config_, affected_gbps, affected,
                       fibers, extra_spares, paths_for);
}

std::map<topology::LinkId, int> flexwan_plus_spares(
    const planning::Plan& flexwan_plan, const planning::Plan& reference_plan) {
  std::map<topology::LinkId, int> extras;
  for (const auto& lp : flexwan_plan.links()) {
    const planning::LinkPlan* ref = reference_plan.find_link(lp.link);
    if (ref == nullptr) continue;
    const int saved = static_cast<int>(ref->wavelengths.size()) -
                      static_cast<int>(lp.wavelengths.size());
    if (saved / 2 > 0) extras[lp.link] = saved / 2;
  }
  return extras;
}

}  // namespace flexwan::restoration
