// Optical restoration (paper §8).
//
// When a fiber cut strikes, every wavelength whose optical path crosses the
// cut is lost; its transponder pair becomes *spare* and can be retuned to a
// new format and a new path.  The restorer maximizes the total restored
// capacity subject to the paper's constraints:
//   (7) restored capacity per link <= affected capacity,
//   (8) transponders used per link <= spare transponders (+ FlexWAN+ extras),
//   (9) restored wavelengths only use spectrum left free by the surviving
//       plan, and
//   (10)-(13) reach / consistency / conflict / counting as in Algorithm 1.
//
// The heuristic processes affected links most-affected-first and, per spare
// transponder, picks the (restoration path, format) pair that revives the
// most capacity and still finds contiguous spectrum.  SVTs can widen their
// channel spacing to keep the data rate on a longer restoration path — the
// §3.3 insight this module exists to exploit.
#pragma once

#include <map>
#include <vector>

#include "planning/plan.h"
#include "restoration/scenario.h"
#include "transponder/catalog.h"

namespace flexwan::restoration {

struct RestorerConfig {
  int k_paths = 4;  // restoration path candidates on the residual topology
  // Oracle-checked mode for the incremental engine: after every lifecycle
  // event the from-scratch Restorer re-solves the same scenario and src/sim
  // asserts the IncrementalRestorer's outcome — and the resulting plan
  // bytes — are identical, failing the trial with "incremental_divergence"
  // otherwise.  Slow (two solves per event); meant for tests and CI's
  // oracle-parity job, not production sweeps.
  bool verify_incremental = false;
};

// One wavelength revived on a restoration path.
struct RestoredWavelength {
  topology::LinkId link = -1;
  transponder::Mode mode;
  spectrum::Range range;
  topology::Path path;
  double original_path_km = 0.0;  // path of the wavelength it replaces

  // Exact equality (doubles compared bitwise-equal) — the oracle-parity
  // predicate: the incremental engine must reproduce the from-scratch
  // solver's outcome to the last bit, not merely to a tolerance.
  friend bool operator==(const RestoredWavelength&,
                         const RestoredWavelength&) = default;
};

// Per-link accounting of an outcome.
struct LinkRestoration {
  topology::LinkId link = -1;
  double affected_gbps = 0.0;
  double restored_gbps = 0.0;
  int spare_transponders = 0;
  int used_transponders = 0;

  friend bool operator==(const LinkRestoration&,
                         const LinkRestoration&) = default;
};

struct Outcome {
  double affected_gbps = 0.0;
  double restored_gbps = 0.0;
  std::vector<RestoredWavelength> wavelengths;
  std::vector<LinkRestoration> links;

  // Restoration capability: restored / affected (1.0 when nothing was hit).
  double capability() const {
    return affected_gbps > 0.0 ? restored_gbps / affected_gbps : 1.0;
  }

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

class Restorer {
 public:
  Restorer(const transponder::Catalog& catalog, RestorerConfig config = {});

  // Computes the restoration plan for `scenario` against a configured plan.
  // `extra_spares` adds FlexWAN+ transponders per link (empty = none).
  //
  // Thread-safety: restore() mutates only a private copy of the plan's
  // occupancy state and reads `net`, `plan`, the catalog, and
  // `extra_spares` as const, so concurrent calls with distinct scenarios
  // are safe — metrics.h's evaluate_scenarios(engine) relies on this to
  // sweep a scenario set in parallel.
  Outcome restore(const topology::Network& net, const planning::Plan& plan,
                  const FailureScenario& scenario,
                  const std::map<topology::LinkId, int>& extra_spares = {}) const;

 private:
  const transponder::Catalog* catalog_;
  RestorerConfig config_;
};

// FlexWAN+ helper (paper §8, Fig. 16): per-link extra spare transponders
// equal to half the transponders FlexWAN saved versus a reference plan
// (RADWAN), rounded down.
std::map<topology::LinkId, int> flexwan_plus_spares(
    const planning::Plan& flexwan_plan, const planning::Plan& reference_plan);

}  // namespace flexwan::restoration
