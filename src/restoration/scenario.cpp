#include "restoration/scenario.h"

#include <algorithm>

namespace flexwan::restoration {

bool FailureScenario::cuts(topology::FiberId f) const {
  // cut_fibers is sorted ascending (struct invariant).
  return std::binary_search(cut_fibers.begin(), cut_fibers.end(), f);
}

double fiber_cut_probability(const topology::Fiber& fiber,
                             double cut_rate_per_1000km) {
  return std::min(0.9, cut_rate_per_1000km * fiber.length_km / 1000.0);
}

std::vector<FailureScenario> single_fiber_cuts(
    const topology::OpticalTopology& topo) {
  std::vector<FailureScenario> out;
  out.reserve(static_cast<std::size_t>(topo.fiber_count()));
  for (topology::FiberId f = 0; f < topo.fiber_count(); ++f) {
    out.push_back(FailureScenario{{f}, 1.0});
  }
  return out;
}

std::vector<FailureScenario> probabilistic_scenarios(
    const topology::OpticalTopology& topo, int count, Rng& rng,
    double cut_rate_per_1000km) {
  std::vector<FailureScenario> out;
  if (count <= 0) return out;
  out.reserve(static_cast<std::size_t>(count));
  // Empty draws are re-drawn, but never indefinitely: with a near-zero cut
  // rate almost every draw is empty, so total attempts (successful or not)
  // are capped and whatever was drawn so far is returned.  long long keeps
  // the cap overflow-free for any int count.
  const long long max_attempts = static_cast<long long>(count) * 100;
  for (long long attempt = 0;
       attempt < max_attempts && static_cast<int>(out.size()) < count;
       ++attempt) {
    FailureScenario s;
    s.probability = 1.0;
    // Ascending fiber ids keep cut_fibers sorted (struct invariant).
    for (topology::FiberId f = 0; f < topo.fiber_count(); ++f) {
      const double p = fiber_cut_probability(topo.fiber(f),
                                             cut_rate_per_1000km);
      if (rng.chance(p)) {
        s.cut_fibers.push_back(f);
        s.probability *= p;
      } else {
        s.probability *= 1.0 - p;
      }
    }
    if (!s.cut_fibers.empty()) out.push_back(std::move(s));
  }
  return out;
}

std::vector<FailureScenario> standard_scenario_set(
    const topology::OpticalTopology& topo, int probabilistic_count,
    std::uint64_t seed) {
  auto set = single_fiber_cuts(topo);
  Rng rng(seed);
  auto sampled = probabilistic_scenarios(topo, probabilistic_count, rng);
  set.insert(set.end(), sampled.begin(), sampled.end());
  return set;
}

}  // namespace flexwan::restoration
