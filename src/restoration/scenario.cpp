#include "restoration/scenario.h"

#include <algorithm>

namespace flexwan::restoration {

bool FailureScenario::cuts(topology::FiberId f) const {
  return std::find(cut_fibers.begin(), cut_fibers.end(), f) !=
         cut_fibers.end();
}

std::vector<FailureScenario> single_fiber_cuts(
    const topology::OpticalTopology& topo) {
  std::vector<FailureScenario> out;
  out.reserve(static_cast<std::size_t>(topo.fiber_count()));
  for (topology::FiberId f = 0; f < topo.fiber_count(); ++f) {
    out.push_back(FailureScenario{{f}, 1.0});
  }
  return out;
}

std::vector<FailureScenario> probabilistic_scenarios(
    const topology::OpticalTopology& topo, int count, Rng& rng,
    double cut_rate_per_1000km) {
  std::vector<FailureScenario> out;
  out.reserve(static_cast<std::size_t>(count));
  int guard = count * 100;
  while (static_cast<int>(out.size()) < count && guard-- > 0) {
    FailureScenario s;
    s.probability = 1.0;
    for (topology::FiberId f = 0; f < topo.fiber_count(); ++f) {
      const double p =
          std::min(0.9, cut_rate_per_1000km * topo.fiber(f).length_km / 1000.0);
      if (rng.chance(p)) {
        s.cut_fibers.push_back(f);
        s.probability *= p;
      } else {
        s.probability *= 1.0 - p;
      }
    }
    if (!s.cut_fibers.empty()) out.push_back(std::move(s));
  }
  return out;
}

std::vector<FailureScenario> standard_scenario_set(
    const topology::OpticalTopology& topo, int probabilistic_count,
    std::uint64_t seed) {
  auto set = single_fiber_cuts(topo);
  Rng rng(seed);
  auto sampled = probabilistic_scenarios(topo, probabilistic_count, rng);
  set.insert(set.end(), sampled.begin(), sampled.end());
  return set;
}

}  // namespace flexwan::restoration
