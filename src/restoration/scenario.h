// Failure scenarios (paper §8).
//
// FlexWAN's restoration plans are produced offline for a scenario set that
// contains both deterministic 1-failures [40] and probabilistic failures
// [17]: every single-fiber cut, plus sampled multi-fiber cuts weighted by
// per-fiber cut probability (long fibers are cut more often — construction
// work scales with route length).
#pragma once

#include <vector>

#include "topology/builders.h"
#include "util/rng.h"

namespace flexwan::restoration {

// One failure scenario: the set of simultaneously cut fibers.
//
// Invariant: `cut_fibers` is sorted ascending (and duplicate-free) — every
// factory in this module produces sorted sets, and cuts() relies on the
// ordering for its binary search.  Callers building scenarios by hand must
// keep the invariant.
struct FailureScenario {
  std::vector<topology::FiberId> cut_fibers;
  double probability = 1.0;  // scenario weight for probabilistic sets

  // O(log n) membership test; called per wavelength per scenario in the
  // restorer's hot loop.
  bool cuts(topology::FiberId f) const;
};

// The per-fiber cut weight shared by the probabilistic scenario sampler and
// the lifecycle simulator (src/sim): `cut_rate_per_1000km` scaled by fiber
// length, clamped to 0.9.  The sampler reads it as a per-draw probability;
// the simulator reads the same value as a Poisson rate per year.
double fiber_cut_probability(const topology::Fiber& fiber,
                             double cut_rate_per_1000km);

// All deterministic 1-failure scenarios (one per fiber).
std::vector<FailureScenario> single_fiber_cuts(
    const topology::OpticalTopology& topo);

// Samples up to `count` probabilistic scenarios: each fiber is cut
// independently with probability proportional to its length (base rate per
// 1000 km).  Scenarios with no cut fiber are re-drawn, but total draws are
// capped at 100x `count` so a near-zero cut rate (where almost every draw
// is empty) terminates instead of spinning; the scenarios drawn so far are
// returned, possibly fewer than `count`.
std::vector<FailureScenario> probabilistic_scenarios(
    const topology::OpticalTopology& topo, int count, Rng& rng,
    double cut_rate_per_1000km = 0.08);

// The combined set the paper uses: all 1-failures plus sampled scenarios.
std::vector<FailureScenario> standard_scenario_set(
    const topology::OpticalTopology& topo, int probabilistic_count,
    std::uint64_t seed);

}  // namespace flexwan::restoration
