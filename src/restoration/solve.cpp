#include "restoration/solve.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flexwan::restoration::detail {

Outcome solve(const topology::Network& net,
              const transponder::Catalog& catalog,
              const RestorerConfig& config, double affected_gbps,
              std::vector<AffectedLink>& affected,
              std::vector<spectrum::Occupancy>& fibers,
              const std::map<topology::LinkId, int>& extra_spares,
              const PathsForLink& paths_for) {
  // The shared greedy core: both the from-scratch and incremental restorers
  // land here, so this span separates their solve work in the work profile
  // (e.g. `sim.restore > restoration.incremental.restore > restoration.solve`).
  OBS_SPAN("restoration.solve");
  Outcome outcome;
  outcome.affected_gbps = affected_gbps;
  if (affected.empty()) return outcome;

  // Most-affected links first: they have the most capacity to lose and the
  // most spare transponders competing for the same residual spectrum.  The
  // comparator sees the deployed-order sums (the lost lists are re-sorted
  // per link below, after this ordering is fixed).
  std::vector<double> deployed_order_sum(affected.size(), 0.0);
  for (std::size_t i = 0; i < affected.size(); ++i) {
    for (const auto& a : affected[i].lost) {
      deployed_order_sum[i] += a.rate_gbps;
    }
  }
  std::vector<std::size_t> order(affected.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return deployed_order_sum[a] > deployed_order_sum[b];
  });

  for (std::size_t idx : order) {
    const topology::LinkId link_id = affected[idx].link;
    const auto& ip_link = net.ip.link(link_id);
    auto& lost = affected[idx].lost;
    // Longest original paths first: they are the hardest to re-home.
    std::sort(lost.begin(), lost.end(),
              [](const AffectedWavelength& a, const AffectedWavelength& b) {
                return a.original_path_km > b.original_path_km;
              });

    LinkRestoration lr;
    lr.link = link_id;
    lr.affected_gbps = 0.0;
    for (const auto& a : lost) lr.affected_gbps += a.rate_gbps;
    const auto extra_it = extra_spares.find(link_id);
    const int extra = extra_it == extra_spares.end() ? 0 : extra_it->second;
    lr.spare_transponders = static_cast<int>(lost.size()) + extra;

    // Restoration paths on the residual topology (cut fibers excluded).
    const auto& paths = paths_for(link_id);

    double remaining = lr.affected_gbps;  // constraint (7)
    int spares = lr.spare_transponders;   // constraint (8)
    std::size_t next_original = 0;
    while (spares > 0 && remaining > 1e-9 && !paths.empty()) {
      // Choose the (path, mode, fit) that revives the most capacity; among
      // ties prefer the narrowest spacing, then the shortest path.
      struct Best {
        double revived = 0.0;
        transponder::Mode mode;
        spectrum::Range range;
        const topology::Path* path = nullptr;
      } best;
      for (const auto& path : paths) {
        for (const auto& mode : catalog.feasible(path.length_km)) {
          const double revived = std::min(mode.data_rate_gbps, remaining);
          const bool better =
              revived > best.revived + 1e-9 ||
              (std::abs(revived - best.revived) <= 1e-9 && best.path &&
               mode.spacing_ghz < best.mode.spacing_ghz);
          if (!better) continue;
          const auto fit = planning::common_first_fit(fibers, path,
                                                      mode.pixels());
          if (!fit) continue;
          best = Best{revived, mode, *fit, &path};
        }
      }
      if (!best.path) break;  // no spectrum anywhere on any candidate path

      for (topology::FiberId f : best.path->fibers) {
        auto r = fibers[static_cast<std::size_t>(f)].reserve(best.range);
        (void)r;  // fit was just verified
      }
      RestoredWavelength rw;
      rw.link = link_id;
      rw.mode = best.mode;
      rw.range = best.range;
      rw.path = *best.path;
      rw.original_path_km =
          next_original < lost.size() ? lost[next_original].original_path_km
                                      : lost.back().original_path_km;
      ++next_original;
      outcome.wavelengths.push_back(std::move(rw));
      OBS_COUNTER_ADD("restoration.solve.placements", 1);
      outcome.restored_gbps += best.revived;
      lr.restored_gbps += best.revived;
      remaining -= best.revived;
      --spares;
      ++lr.used_transponders;
    }
    outcome.links.push_back(lr);
  }
  return outcome;
}

}  // namespace flexwan::restoration::detail
