// Shared greedy core of optical restoration.
//
// Restorer (from-scratch) and IncrementalRestorer (delta-driven) solve the
// same per-event problem: given the affected wavelengths, the residual
// spectrum, and restoration-path candidates per link, greedily revive
// capacity most-affected-link-first (paper §8 / Algorithm 1 constraints
// 7-13).  Keeping the greedy in ONE function is what makes the incremental
// fast path provably byte-identical to the from-scratch oracle: the two
// engines differ only in how they assemble the inputs (full plan scan vs
// the RestorationDelta index, fresh KSP vs memoized backup-path tables),
// and every input-assembly step is a pure lookup.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "restoration/restorer.h"

namespace flexwan::restoration::detail {

// An affected wavelength awaiting restoration.
struct AffectedWavelength {
  double rate_gbps = 0.0;
  double original_path_km = 0.0;
};

// All affected wavelengths of one IP link, in deployed-plan order.
struct AffectedLink {
  topology::LinkId link = -1;
  std::vector<AffectedWavelength> lost;
};

// Restoration-path candidates for one affected link on the residual
// topology (cut fibers excluded).  Queried at most once per affected link;
// the returned reference must stay valid for the duration of solve().
using PathsForLink =
    std::function<const std::vector<topology::Path>&(topology::LinkId)>;

// The greedy solve.  Contract (both engines satisfy it by construction):
//   * `affected` is sorted by ascending LinkId, each link's wavelengths in
//     deployed-plan order — the exact sequence the from-scratch scan feeds
//     its per-link map;
//   * `fibers` is the deployed occupancy with the affected wavelengths'
//     spectrum already released (constraint 9's phi_w);
//   * `affected_gbps` was accumulated in deployed-plan scan order (floating-
//     point addition order is part of byte-identity).
// `affected` and `fibers` are scratch: solve() reorders the per-link lost
// lists and reserves restored spectrum in `fibers`.
Outcome solve(const topology::Network& net,
              const transponder::Catalog& catalog,
              const RestorerConfig& config, double affected_gbps,
              std::vector<AffectedLink>& affected,
              std::vector<spectrum::Occupancy>& fibers,
              const std::map<topology::LinkId, int>& extra_spares,
              const PathsForLink& paths_for);

}  // namespace flexwan::restoration::detail
