#include "server/protocol.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace flexwan::server {

Method parse_method(std::string_view name) {
  if (name == "ping") return Method::kPing;
  if (name == "query_plan") return Method::kQueryPlan;
  if (name == "availability") return Method::kAvailability;
  if (name == "drill") return Method::kDrill;
  if (name == "plan") return Method::kPlan;
  if (name == "extend") return Method::kExtend;
  if (name == "restore") return Method::kRestore;
  if (name == "defrag") return Method::kDefrag;
  if (name == "deploy") return Method::kDeploy;
  return Method::kUnknown;
}

const char* method_name(Method method) {
  switch (method) {
    case Method::kPing: return "ping";
    case Method::kQueryPlan: return "query_plan";
    case Method::kAvailability: return "availability";
    case Method::kDrill: return "drill";
    case Method::kPlan: return "plan";
    case Method::kExtend: return "extend";
    case Method::kRestore: return "restore";
    case Method::kDefrag: return "defrag";
    case Method::kDeploy: return "deploy";
    case Method::kUnknown: return "unknown";
  }
  return "unknown";
}

bool is_mutation(Method method) {
  switch (method) {
    case Method::kPlan:
    case Method::kExtend:
    case Method::kRestore:
    case Method::kDefrag:
    case Method::kDeploy:
      return true;
    default:
      return false;
  }
}

bool methods_coalesce(Method a, Method b) {
  return (a == Method::kExtend && b == Method::kExtend) ||
         (a == Method::kRestore && b == Method::kRestore);
}

std::string Request::to_json() const {
  std::ostringstream out;
  out << "{\"id\": " << id << ", \"method\": \""
      << obs::json::escape(method_name.empty() ? server::method_name(method)
                                               : method_name)
      << "\"";
  if (!params.is_null()) {
    out << ", \"params\": " << obs::json::to_string(params);
  }
  out << "}";
  return out.str();
}

Expected<Request> parse_request(std::string_view text) {
  auto parsed = obs::json::parse(text);
  if (!parsed) {
    return Error::make("bad_request", parsed.error().message);
  }
  const obs::json::Value& doc = parsed.value();
  if (!doc.is_object()) {
    return Error::make("bad_request", "request is not an object");
  }
  Request request;
  const obs::json::Value* id = doc.find("id");
  if (id == nullptr || !id->is_number() || id->as_number() < 0) {
    return Error::make("bad_request", "missing or invalid 'id'");
  }
  request.id = static_cast<std::uint64_t>(id->as_number());
  const obs::json::Value* method = doc.find("method");
  if (method == nullptr || !method->is_string()) {
    return Error::make("bad_request", "missing or invalid 'method'");
  }
  request.method_name = method->as_string();
  request.method = parse_method(request.method_name);
  if (const obs::json::Value* params = doc.find("params")) {
    if (!params->is_object()) {
      return Error::make("bad_request", "'params' must be an object");
    }
    request.params = *params;
  }
  for (const auto& [key, value] : doc.as_object()) {
    static_cast<void>(value);
    if (key != "id" && key != "method" && key != "params") {
      return Error::make("bad_request", "unknown request key '" + key + "'");
    }
  }
  return request;
}

std::string Response::to_json() const {
  std::ostringstream out;
  out << "{\"id\": " << id << ", \"ok\": " << (ok ? "true" : "false")
      << ", \"version\": " << version;
  if (ok) {
    out << ", \"result\": " << obs::json::to_string(result);
  } else {
    out << ", \"error\": {\"code\": \"" << obs::json::escape(error_code)
        << "\", \"message\": \"" << obs::json::escape(error_message)
        << "\"}";
  }
  out << "}";
  return out.str();
}

Response Response::success(std::uint64_t id, std::uint64_t version,
                           obs::json::Object result) {
  Response response;
  response.id = id;
  response.ok = true;
  response.version = version;
  response.result = obs::json::Value(std::move(result));
  return response;
}

Response Response::failure(std::uint64_t id, std::uint64_t version,
                           std::string code, std::string message) {
  Response response;
  response.id = id;
  response.ok = false;
  response.version = version;
  response.error_code = std::move(code);
  response.error_message = std::move(message);
  return response;
}

Expected<Response> parse_response(std::string_view text) {
  auto parsed = obs::json::parse(text);
  if (!parsed) return Error::make("bad_response", parsed.error().message);
  const obs::json::Value& doc = parsed.value();
  if (!doc.is_object()) {
    return Error::make("bad_response", "response is not an object");
  }
  Response response;
  const obs::json::Value* id = doc.find("id");
  const obs::json::Value* ok = doc.find("ok");
  const obs::json::Value* version = doc.find("version");
  if (id == nullptr || !id->is_number() || ok == nullptr || !ok->is_bool() ||
      version == nullptr || !version->is_number()) {
    return Error::make("bad_response", "missing id/ok/version");
  }
  response.id = static_cast<std::uint64_t>(id->as_number());
  response.ok = ok->as_bool();
  response.version = static_cast<std::uint64_t>(version->as_number());
  if (response.ok) {
    const obs::json::Value* result = doc.find("result");
    if (result == nullptr || !result->is_object()) {
      return Error::make("bad_response", "ok response missing 'result'");
    }
    response.result = *result;
  } else {
    const obs::json::Value* error = doc.find("error");
    if (error == nullptr || !error->is_object()) {
      return Error::make("bad_response", "error response missing 'error'");
    }
    const obs::json::Value* code = error->find("code");
    const obs::json::Value* message = error->find("message");
    if (code == nullptr || !code->is_string() || message == nullptr ||
        !message->is_string()) {
      return Error::make("bad_response", "error missing code/message");
    }
    response.error_code = code->as_string();
    response.error_message = message->as_string();
  }
  return response;
}

std::string frame(std::string_view payload) {
  std::string framed = std::to_string(payload.size());
  framed += '\n';
  framed += payload;
  return framed;
}

void write_frame(std::ostream& out, std::string_view payload) {
  out << payload.size() << '\n';
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
}

Expected<std::optional<std::string>> read_frame(std::istream& in) {
  // Length prefix: decimal digits up to '\n'.  EOF before the first digit
  // is a clean end of stream, not an error.
  std::string prefix;
  int c = in.get();
  if (c == std::istream::traits_type::eof()) {
    return std::optional<std::string>{};
  }
  while (c != '\n') {
    if (c == std::istream::traits_type::eof()) {
      return Error::make("bad_frame", "EOF inside length prefix");
    }
    if (c < '0' || c > '9' || prefix.size() >= 9) {
      return Error::make("bad_frame",
                         "malformed length prefix '" + prefix +
                             std::string(1, static_cast<char>(c)) + "'");
    }
    prefix += static_cast<char>(c);
    c = in.get();
  }
  if (prefix.empty()) {
    return Error::make("bad_frame", "empty length prefix");
  }
  const std::size_t length = static_cast<std::size_t>(std::stoul(prefix));
  if (length > kMaxFrameBytes) {
    return Error::make("bad_frame",
                       "frame of " + prefix + " bytes exceeds limit");
  }
  std::string payload(length, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(length));
  if (static_cast<std::size_t>(in.gcount()) != length) {
    return Error::make("bad_frame", "truncated payload (want " + prefix +
                                        " bytes, got " +
                                        std::to_string(in.gcount()) + ")");
  }
  return std::optional<std::string>(std::move(payload));
}

}  // namespace flexwan::server
