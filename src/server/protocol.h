// flexwand wire protocol: JSON-RPC-style requests/responses with
// length-prefixed framing.
//
// The control-plane service (service.h) speaks one request shape:
//
//   {"id": 7, "method": "extend", "params": {"link_id": 3, "gbps": 200}}
//
// and one response shape:
//
//   {"id": 7, "ok": true, "version": 12, "result": {...}}
//   {"id": 7, "ok": false, "version": 12,
//    "error": {"code": "no_spectrum", "message": "..."}}
//
// `version` is the authoritative state version the response was computed
// against (reads) or produced (mutations) — clients use it to reason about
// snapshot isolation.  Serialization is deterministic: result/error objects
// render through obs::json::to_string (sorted keys, shortest-round-trip
// numbers), so a request trace replays to byte-identical response bytes at
// any thread count — the invariant CI's server-determinism job pins.
//
// Framing (the daemon's stdin/stdout transport) is length-prefixed:
//
//   <decimal payload byte count> '\n' <payload bytes>
//
// Tests and the scripted replay mode skip the framing entirely and exchange
// whole Request/Response values in process; script files are plain JSONL
// (one request per line), which read_frame never sees.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "obs/json.h"
#include "util/expected.h"

namespace flexwan::server {

// The method set.  Reads run against an immutable state snapshot and may
// execute concurrently; mutations serialize through the commit log.
enum class Method {
  kPing,          // read: liveness + current state version
  kQueryPlan,     // read: plan summary (pairs, Gbps, spectrum)
  kAvailability,  // read: restoration drill over all single-fiber cuts
  kDrill,         // read: restoration drill over an explicit fiber list
  kPlan,          // mutation: run Algorithm 1 from scratch
  kExtend,        // mutation: provision extra Gbps on one IP link
  kRestore,       // mutation: solve + apply restoration for a fiber cut
  kDefrag,        // mutation: hitless spectrum defragmentation
  kDeploy,        // mutation: configure the fleet (centralized/distributed)
  kUnknown
};

Method parse_method(std::string_view name);
const char* method_name(Method method);

// Mutations are serialized by the service's single-writer commit path;
// everything else (including unknown methods, which fail without touching
// state) follows the concurrent read path.
bool is_mutation(Method method);

// The commit-window coalescing rule: two adjacent mutations share one
// commit iff they are both extends or both restores — the two operations
// that only add/retune spectrum against the same base occupancy.  plan /
// defrag / deploy rewrite or re-read global state and always commit alone.
bool methods_coalesce(Method a, Method b);

struct Request {
  std::uint64_t id = 0;
  Method method = Method::kUnknown;
  std::string method_name;  // as received (error messages name it verbatim)
  obs::json::Value params;  // object or null

  std::string to_json() const;
};

// Parses one request document.  Fails with "bad_request" on anything but
// {"id": <number>, "method": <string>, "params": <object>?}; an unknown
// method parses fine (method == kUnknown) so the service can answer it
// with a proper error response instead of dropping the frame.
Expected<Request> parse_request(std::string_view text);

struct Response {
  std::uint64_t id = 0;
  bool ok = false;
  std::uint64_t version = 0;  // state version (see header comment)
  obs::json::Value result;    // object when ok
  std::string error_code;     // when !ok
  std::string error_message;  // when !ok

  std::string to_json() const;

  static Response success(std::uint64_t id, std::uint64_t version,
                          obs::json::Object result);
  static Response failure(std::uint64_t id, std::uint64_t version,
                          std::string code, std::string message);
};

// Parses one response document (clients and tests).
Expected<Response> parse_response(std::string_view text);

// --- framing ----------------------------------------------------------------

// Guards read_frame against a corrupted or hostile length prefix; far above
// any real payload (a full plan dump is ~100 KiB).
inline constexpr std::size_t kMaxFrameBytes = 64u * 1024u * 1024u;

// "<payload size>\n<payload>".
std::string frame(std::string_view payload);
void write_frame(std::ostream& out, std::string_view payload);

// Reads one frame.  nullopt on clean EOF before any prefix byte; fails with
// "bad_frame" on a malformed prefix or a truncated payload.
Expected<std::optional<std::string>> read_frame(std::istream& in);

}  // namespace flexwan::server
