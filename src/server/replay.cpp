#include "server/replay.h"

#include <string>

#include "obs/eventlog.h"
#include "obs/trace.h"

namespace flexwan::server {

namespace {

bool blank_or_comment(std::string_view line) {
  for (const char c : line) {
    if (c == '#') return true;
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

}  // namespace

Expected<std::vector<Request>> parse_script(std::string_view text) {
  std::vector<Request> requests;
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const std::size_t eol = text.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view{}
                                         : text.substr(eol + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (blank_or_comment(line)) continue;
    Expected<Request> request = parse_request(line);
    if (!request) {
      return Error::make("bad_script",
                         "line " + std::to_string(line_no) + ": " +
                             request.error().message);
    }
    requests.push_back(std::move(request.value()));
  }
  return requests;
}

std::string ScriptResult::to_jsonl() const {
  std::string out;
  for (const Response& response : responses) {
    out += response.to_json();
    out += '\n';
  }
  return out;
}

ScriptResult run_script(Service& service,
                        std::span<const Request> requests) {
  OBS_SPAN("server.replay");
  ScriptResult result;
  result.responses.resize(requests.size());
  const std::size_t n = requests.size();
  std::size_t i = 0;
  while (i < n) {
    if (!is_mutation(requests[i].method)) {
      // Maximal read run: fan out on the engine; per-task event buffers
      // spliced back in script order keep the log schedule-independent.
      std::size_t j = i;
      while (j < n && !is_mutation(requests[j].method)) ++j;
      const std::size_t count = j - i;
      std::vector<obs::EventBuffer> buffers(count);
      service.engine().parallel_for(count, [&](std::size_t k) {
        obs::ScopedEventBuffer scope(&buffers[k]);
        result.responses[i + k] = service.execute(requests[i + k]);
      });
      for (obs::EventBuffer& buffer : buffers) {
        obs::EventLog::instance().splice(std::move(buffer));
      }
      result.read_count += count;
      i = j;
    } else {
      // Maximal coalescible mutation run -> exactly one commit window.
      std::size_t j = i + 1;
      while (j < n && is_mutation(requests[j].method) &&
             methods_coalesce(requests[i].method, requests[j].method)) {
        ++j;
      }
      const std::vector<Response> responses =
          service.execute_batch(requests.subspan(i, j - i));
      for (std::size_t k = 0; k < responses.size(); ++k) {
        result.responses[i + k] = responses[k];
      }
      result.mutation_count += j - i;
      ++result.windows;
      i = j;
    }
  }
  return result;
}

}  // namespace flexwan::server
