// Scripted replay: deterministic execution of a request script.
//
// `flexwand --script reqs.jsonl` replays a recorded request sequence (one
// request document per line) and must produce byte-identical responses —
// and a byte-identical final plan and evidence bundle — at every --threads
// value.  Live dispatch cannot promise that (window composition depends on
// arrival timing), so replay derives the window structure from the script
// alone:
//
//  * a maximal run of consecutive reads fans out on the service engine
//    (index-ordered parallel_for); each read collects its events in a
//    per-task EventBuffer that is spliced back in script order, so the
//    event log never sees scheduling.
//  * a maximal run of consecutive coalescible mutations (methods_coalesce
//    against the run's first request) becomes exactly one commit window via
//    Service::execute_batch.
//
// The same script therefore always yields the same commit log, the same
// state versions, and the same response bytes — the invariant CI's
// server-determinism job byte-compares at --threads 1 vs 8.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "server/service.h"

namespace flexwan::server {

// Parses a JSONL script: one request per line; blank lines and lines
// starting with '#' are skipped.  Fails with "bad_script" naming the
// 1-based line of the first malformed request.
Expected<std::vector<Request>> parse_script(std::string_view text);

struct ScriptResult {
  std::vector<Response> responses;  // script order
  std::size_t read_count = 0;
  std::size_t mutation_count = 0;
  std::size_t windows = 0;  // mutation commit windows executed

  // One response document per line, script order, trailing newline — the
  // bytes the determinism CI compares.
  std::string to_jsonl() const;
};

// Replays `requests` against `service` with the deterministic segmentation
// described above.
ScriptResult run_script(Service& service, std::span<const Request> requests);

}  // namespace flexwan::server
