#include "server/service.h"

#include <algorithm>
#include <utility>

#include "controller/centralized.h"
#include "controller/distributed.h"
#include "obs/eventlog.h"
#include "obs/trace.h"
#include "planning/incremental.h"
#include "restoration/apply.h"
#include "restoration/metrics.h"
#include "restoration/scenario.h"

namespace flexwan::server {

namespace {

// Per-method span names must be string literals (Span keeps the pointer and
// span_histogram derives "<name>.us"), so the mapping is a switch, not
// string concatenation.
const char* request_span_name(Method method) {
  switch (method) {
    case Method::kPing: return "server.request.ping";
    case Method::kQueryPlan: return "server.request.query_plan";
    case Method::kAvailability: return "server.request.availability";
    case Method::kDrill: return "server.request.drill";
    case Method::kPlan: return "server.request.plan";
    case Method::kExtend: return "server.request.extend";
    case Method::kRestore: return "server.request.restore";
    case Method::kDefrag: return "server.request.defrag";
    case Method::kDeploy: return "server.request.deploy";
    case Method::kUnknown: return "server.request.unknown";
  }
  return "server.request.unknown";
}

// OBS_COUNTER_ADD caches a registry pointer per call site, so per-method
// counters need one literal call site per method.
void count_method(Method method) {
  switch (method) {
    case Method::kPing: OBS_COUNTER_ADD("server.method.ping", 1); break;
    case Method::kQueryPlan:
      OBS_COUNTER_ADD("server.method.query_plan", 1);
      break;
    case Method::kAvailability:
      OBS_COUNTER_ADD("server.method.availability", 1);
      break;
    case Method::kDrill: OBS_COUNTER_ADD("server.method.drill", 1); break;
    case Method::kPlan: OBS_COUNTER_ADD("server.method.plan", 1); break;
    case Method::kExtend: OBS_COUNTER_ADD("server.method.extend", 1); break;
    case Method::kRestore: OBS_COUNTER_ADD("server.method.restore", 1); break;
    case Method::kDefrag: OBS_COUNTER_ADD("server.method.defrag", 1); break;
    case Method::kDeploy: OBS_COUNTER_ADD("server.method.deploy", 1); break;
    case Method::kUnknown:
      OBS_COUNTER_ADD("server.method.unknown", 1);
      break;
  }
}

// Commit-window sizes live on their own small-integer bounds (the default
// latency bounds start at 1 µs and would flatten every window into two
// buckets).
void observe_batch_size(int window_size) {
  if (!obs::metrics_enabled()) return;
  static obs::Histogram* const hist =
      obs::Registry::instance().histogram(
          "server.commit.batch_size",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
  hist->observe(static_cast<double>(window_size));
}

void emit_request_event(const Request& request, const Response& response) {
  if (!obs::events_enabled()) return;
  auto record =
      obs::make_event("server",
                      response.ok ? obs::Severity::kInfo
                                  : obs::Severity::kWarn,
                      "server.request")
          .with("id", static_cast<std::size_t>(request.id))
          .with("method", request.method_name.empty()
                              ? method_name(request.method)
                              : request.method_name.c_str())
          .with("ok", response.ok);
  if (!response.ok) {
    obs::emit_event(std::move(record).with("error", response.error_code));
  } else {
    obs::emit_event(std::move(record));
  }
}

obs::json::Object drill_metrics_to_json(
    const restoration::ScenarioSetMetrics& metrics) {
  double min_capability = 1.0;
  for (const double c : metrics.capabilities) {
    min_capability = std::min(min_capability, c);
  }
  obs::json::Object result;
  result["mean_capability"] = obs::json::Value(metrics.mean_capability);
  result["min_capability"] = obs::json::Value(min_capability);
  result["scenarios"] =
      obs::json::Value(static_cast<double>(metrics.capabilities.size()));
  result["scenarios_with_loss"] =
      obs::json::Value(static_cast<double>(metrics.scenarios_with_loss));
  return result;
}

}  // namespace

Service::Service(topology::Network net, const transponder::Catalog& catalog,
                 const engine::Engine& engine, ServiceOptions options)
    : net_(std::move(net)),
      catalog_(&catalog),
      engine_(&engine),
      options_(options),
      planner_(catalog, options.planner),
      restorer_(catalog, options.restorer),
      state_(std::make_shared<const State>()) {}

std::shared_ptr<const Service::State> Service::snapshot() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return state_;
}

std::uint64_t Service::state_version() const { return snapshot()->version; }

std::shared_ptr<const planning::Plan> Service::plan_snapshot() const {
  return snapshot()->plan;
}

std::vector<CommitRecord> Service::commit_log() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return commit_log_;
}

std::size_t Service::max_queue_depth() const {
  return max_queue_depth_.load(std::memory_order_relaxed);
}

void Service::note_queue_depth(std::size_t depth) {
  std::size_t cur = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > cur && !max_queue_depth_.compare_exchange_weak(
                            cur, depth, std::memory_order_relaxed)) {
  }
  OBS_GAUGE_SET("server.queue.depth.max",
                static_cast<double>(
                    max_queue_depth_.load(std::memory_order_relaxed)));
}

Response Service::execute(const Request& request) {
  OBS_SPAN("server.request");
  obs::Span method_span;
  if ((obs::enabled_bits() &
       (obs::kTraceBit | obs::kTimingBit | obs::kWorkProfBit)) != 0u) {
    const char* name = request_span_name(request.method);
    method_span.begin(name, obs::span_histogram(name));
  }
  OBS_COUNTER_ADD("server.requests.total", 1);
  count_method(request.method);

  if (!is_mutation(request.method)) {
    const auto state = snapshot();
    Response response = execute_read(request, state);
    emit_request_event(request, response);
    return response;
  }

  // Group commit: join the queue; the first mutation to find no active
  // committer becomes the leader, drains one maximal coalescible window off
  // the front, commits it outside the queue lock, and hands the role on.
  auto pending = std::make_shared<PendingMutation>();
  pending->request = request;
  std::unique_lock<std::mutex> lock(queue_mu_);
  pending_.push_back(pending);
  note_queue_depth(pending_.size());
  for (;;) {
    if (pending->done) return pending->response;
    if (!committer_active_ && !pending_.empty()) {
      committer_active_ = true;
      std::vector<std::shared_ptr<PendingMutation>> window;
      window.push_back(pending_.front());
      pending_.pop_front();
      while (!pending_.empty() &&
             methods_coalesce(window.front()->request.method,
                              pending_.front()->request.method)) {
        window.push_back(pending_.front());
        pending_.pop_front();
      }
      lock.unlock();
      std::vector<Request> requests;
      requests.reserve(window.size());
      for (const auto& entry : window) requests.push_back(entry->request);
      std::vector<Response> responses = commit_window(requests);
      lock.lock();
      for (std::size_t i = 0; i < window.size(); ++i) {
        window[i]->response = std::move(responses[i]);
        window[i]->done = true;
      }
      committer_active_ = false;
      lock.unlock();
      queue_cv_.notify_all();
      lock.lock();
      continue;
    }
    queue_cv_.wait(lock,
                   [&] { return pending->done || !committer_active_; });
  }
}

std::vector<Response> Service::execute_batch(
    std::span<const Request> requests) {
  if (requests.empty()) return {};
  note_queue_depth(requests.size());
  for (const Request& request : requests) {
    OBS_COUNTER_ADD("server.requests.total", 1);
    count_method(request.method);
  }
  return commit_window(requests);
}

std::vector<Response> Service::commit_window(
    std::span<const Request> requests) {
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  const auto base = snapshot();
  std::shared_ptr<planning::Plan> working;
  if (base->plan != nullptr) {
    working = std::make_shared<planning::Plan>(*base->plan);
  }

  CommitRecord record;
  record.method = method_name(requests.front().method);
  record.window_size = static_cast<int>(requests.size());

  std::vector<Response> responses;
  responses.reserve(requests.size());
  for (const Request& request : requests) {
    Expected<obs::json::Object> result =
        Error::make("not_a_mutation",
                    "'" + std::string(method_name(request.method)) +
                        "' is not a mutation");
    switch (request.method) {
      case Method::kPlan:
        result = handle_plan(working);
        break;
      case Method::kExtend:
        result = working == nullptr
                     ? Error::make("no_plan", "no plan committed yet")
                     : handle_extend(request, working);
        break;
      case Method::kRestore:
        result = working == nullptr
                     ? Error::make("no_plan", "no plan committed yet")
                     : handle_restore(request, working);
        break;
      case Method::kDefrag:
        result = working == nullptr
                     ? Error::make("no_plan", "no plan committed yet")
                     : handle_defrag(working);
        break;
      case Method::kDeploy:
        result = working == nullptr
                     ? Error::make("no_plan", "no plan committed yet")
                     : handle_deploy(request, *working);
        break;
      default:
        break;
    }
    if (result) {
      record.request_ids.push_back(request.id);
      responses.push_back(
          Response::success(request.id, 0, std::move(result.value())));
    } else {
      responses.push_back(Response::failure(request.id, 0,
                                            result.error().code,
                                            result.error().message));
    }
  }

  std::uint64_t version = base->version;
  if (!record.request_ids.empty()) {
    version = base->version + 1;
    auto next = std::make_shared<State>();
    next->version = version;
    next->plan = working;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      state_ = std::move(next);
    }
    record.version = version;
    {
      std::lock_guard<std::mutex> lock(log_mu_);
      commit_log_.push_back(record);
    }
    OBS_COUNTER_ADD("server.commits", 1);
    OBS_COUNTER_ADD("server.commit.applied", record.request_ids.size());
    OBS_GAUGE_SET("server.state.version", static_cast<double>(version));
    observe_batch_size(record.window_size);
    if (obs::events_enabled()) {
      obs::emit_event(
          obs::make_event("server", obs::Severity::kInfo, "server.commit")
              .with("version", static_cast<std::size_t>(version))
              .with("method", record.method)
              .with("window", record.window_size)
              .with("applied", record.request_ids.size()));
    }
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    responses[i].version = version;
    emit_request_event(requests[i], responses[i]);
  }
  return responses;
}

Response Service::execute_read(
    const Request& request,
    const std::shared_ptr<const State>& state) const {
  const std::uint64_t version = state->version;
  switch (request.method) {
    case Method::kPing: {
      obs::json::Object result;
      result["has_plan"] = obs::json::Value(state->plan != nullptr);
      result["links"] =
          obs::json::Value(static_cast<double>(net_.ip.link_count()));
      result["fibers"] =
          obs::json::Value(static_cast<double>(net_.optical.fiber_count()));
      return Response::success(request.id, version, std::move(result));
    }
    case Method::kQueryPlan:
    case Method::kAvailability:
    case Method::kDrill: {
      if (state->plan == nullptr) {
        return Response::failure(request.id, version, "no_plan",
                                 "no plan committed yet");
      }
      Expected<obs::json::Object> result =
          request.method == Method::kQueryPlan
              ? handle_query_plan(*state->plan)
          : request.method == Method::kAvailability
              ? handle_availability(*state->plan)
              : handle_drill(request, *state->plan);
      if (!result) {
        return Response::failure(request.id, version, result.error().code,
                                 result.error().message);
      }
      return Response::success(request.id, version,
                               std::move(result.value()));
    }
    default:
      return Response::failure(
          request.id, version, "method_not_found",
          "unknown method '" + request.method_name + "'");
  }
}

Expected<obs::json::Object> Service::handle_plan(
    std::shared_ptr<planning::Plan>& plan) const {
  Expected<planning::Plan> planned = planner_.plan(net_, *engine_);
  if (!planned) return planned.error();
  plan = std::make_shared<planning::Plan>(std::move(planned.value()));
  return handle_query_plan(*plan);
}

Expected<topology::LinkId> Service::resolve_link(
    const Request& request) const {
  if (const obs::json::Value* id = request.params.find("link_id")) {
    if (!id->is_number() || id->as_number() < 0 ||
        id->as_number() >= net_.ip.link_count()) {
      return Error::make("unknown_link", "link_id out of range");
    }
    return static_cast<topology::LinkId>(id->as_number());
  }
  if (const obs::json::Value* name = request.params.find("link")) {
    if (name->is_string()) {
      for (const topology::IpLink& link : net_.ip.links()) {
        if (link.name == name->as_string()) return link.id;
      }
      return Error::make("unknown_link",
                         "no IP link named '" + name->as_string() + "'");
    }
  }
  return Error::make("bad_request",
                     "extend needs 'link_id' (number) or 'link' (name)");
}

Expected<obs::json::Object> Service::handle_extend(
    const Request& request, std::shared_ptr<planning::Plan>& plan) const {
  const Expected<topology::LinkId> link = resolve_link(request);
  if (!link) return link.error();
  const obs::json::Value* gbps = request.params.find("gbps");
  if (gbps == nullptr || !gbps->is_number() || gbps->as_number() <= 0.0) {
    return Error::make("bad_request", "'gbps' must be a positive number");
  }
  Expected<planning::ExtensionResult> extended = planning::extend_plan(
      *plan, net_, link.value(), gbps->as_number(), options_.planner);
  if (!extended) return extended.error();
  obs::json::Object result;
  result["link_id"] = obs::json::Value(static_cast<double>(link.value()));
  result["wavelengths_added"] = obs::json::Value(
      static_cast<double>(extended.value().wavelengths_added));
  result["capacity_added_gbps"] =
      obs::json::Value(extended.value().capacity_added_gbps);
  return result;
}

Expected<obs::json::Object> Service::handle_restore(
    const Request& request, std::shared_ptr<planning::Plan>& plan) const {
  restoration::FailureScenario scenario;
  if (const obs::json::Value* fiber = request.params.find("fiber")) {
    if (!fiber->is_number()) {
      return Error::make("bad_request", "'fiber' must be a number");
    }
    scenario.cut_fibers.push_back(
        static_cast<topology::FiberId>(fiber->as_number()));
  } else if (const obs::json::Value* fibers =
                 request.params.find("fibers")) {
    if (!fibers->is_array()) {
      return Error::make("bad_request", "'fibers' must be an array");
    }
    for (const obs::json::Value& entry : fibers->as_array()) {
      if (!entry.is_number()) {
        return Error::make("bad_request", "'fibers' entries must be numbers");
      }
      scenario.cut_fibers.push_back(
          static_cast<topology::FiberId>(entry.as_number()));
    }
  } else {
    return Error::make("bad_request",
                       "restore needs 'fiber' or 'fibers' in params");
  }
  // FailureScenario requires sorted, duplicate-free cut sets.
  std::sort(scenario.cut_fibers.begin(), scenario.cut_fibers.end());
  scenario.cut_fibers.erase(
      std::unique(scenario.cut_fibers.begin(), scenario.cut_fibers.end()),
      scenario.cut_fibers.end());
  if (scenario.cut_fibers.empty()) {
    return Error::make("bad_request", "no fibers to cut");
  }
  for (const topology::FiberId f : scenario.cut_fibers) {
    if (f < 0 || f >= net_.optical.fiber_count()) {
      return Error::make("unknown_fiber",
                         "fiber " + std::to_string(f) + " out of range");
    }
  }

  const restoration::Outcome outcome =
      restorer_.restore(net_, *plan, scenario);
  Expected<restoration::AppliedOutcome> applied =
      restoration::apply_outcome(*plan, scenario, outcome);
  if (!applied) return applied.error();

  obs::json::Object result;
  result["affected_gbps"] = obs::json::Value(outcome.affected_gbps);
  result["restored_gbps"] = obs::json::Value(outcome.restored_gbps);
  result["capability"] = obs::json::Value(outcome.capability());
  result["wavelengths_restored"] =
      obs::json::Value(static_cast<double>(outcome.wavelengths.size()));
  result["links_affected"] =
      obs::json::Value(static_cast<double>(outcome.links.size()));
  return result;
}

Expected<obs::json::Object> Service::handle_defrag(
    std::shared_ptr<planning::Plan>& plan) const {
  Expected<planning::DefragResult> defragged = planning::defragment(*plan);
  if (!defragged) return defragged.error();
  obs::json::Object result;
  result["wavelengths_moved"] = obs::json::Value(
      static_cast<double>(defragged.value().wavelengths_moved));
  result["free_run_before"] = obs::json::Value(
      static_cast<double>(defragged.value().free_run_before));
  result["free_run_after"] = obs::json::Value(
      static_cast<double>(defragged.value().free_run_after));
  return result;
}

Expected<obs::json::Object> Service::handle_deploy(
    const Request& request, const planning::Plan& plan) const {
  std::string mode = "centralized";
  if (const obs::json::Value* controller =
          request.params.find("controller")) {
    if (!controller->is_string()) {
      return Error::make("bad_request", "'controller' must be a string");
    }
    mode = controller->as_string();
  }
  if (mode != "centralized" && mode != "distributed") {
    return Error::make("bad_request",
                       "'controller' must be 'centralized' or 'distributed'");
  }

  // The fleet is materialized per deployment (the daemon's authoritative
  // state is the plan; devices are derived).  Centralized control gets the
  // pixel-wise OLS; the distributed baseline keeps legacy vendor grids —
  // the §4.3 comparison surfaced through the audit counts below.
  const bool pixel_wise = mode == "centralized";
  controller::Fleet fleet(net_, plan, options_.vendors, pixel_wise);
  obs::json::Object result;
  result["controller"] = obs::json::Value(mode);
  if (pixel_wise) {
    controller::CentralizedController controller(net_);
    Expected<controller::DeploymentStats> stats = controller.deploy(fleet);
    if (!stats) return stats.error();
    result["wavelengths_configured"] = obs::json::Value(
        static_cast<double>(stats.value().wavelengths_configured));
    result["config_rpcs"] =
        obs::json::Value(static_cast<double>(stats.value().config_rpcs));
  } else {
    controller::DistributedControllers controllers(net_);
    Expected<controller::DistributedStats> stats =
        controllers.deploy(fleet);
    if (!stats) return stats.error();
    result["wavelengths_configured"] = obs::json::Value(
        static_cast<double>(stats.value().wavelengths_configured));
    result["config_rpcs"] =
        obs::json::Value(static_cast<double>(stats.value().config_rpcs));
    result["vendor_controllers"] = obs::json::Value(
        static_cast<double>(stats.value().vendor_controllers));
    result["grid_clipped_passbands"] = obs::json::Value(
        static_cast<double>(stats.value().grid_clipped_passbands));
  }
  const controller::AuditReport audit = controller::audit_fleet(fleet, net_);
  result["audit_inconsistencies"] =
      obs::json::Value(static_cast<double>(audit.inconsistencies));
  result["audit_conflicts"] =
      obs::json::Value(static_cast<double>(audit.conflicts));
  result["audit_unconfigured"] =
      obs::json::Value(static_cast<double>(audit.unconfigured));
  result["audit_clean"] = obs::json::Value(audit.clean());
  return result;
}

Expected<obs::json::Object> Service::handle_query_plan(
    const planning::Plan& plan) const {
  double provisioned = 0.0;
  std::size_t wavelengths = 0;
  for (const planning::LinkPlan& link : plan.links()) {
    provisioned += link.provisioned_gbps();
    wavelengths += link.wavelengths.size();
  }
  obs::json::Object result;
  result["scheme"] = obs::json::Value(plan.scheme());
  result["links"] =
      obs::json::Value(static_cast<double>(plan.links().size()));
  result["wavelengths"] = obs::json::Value(static_cast<double>(wavelengths));
  result["transponder_pairs"] =
      obs::json::Value(static_cast<double>(plan.transponder_count()));
  result["provisioned_gbps"] = obs::json::Value(provisioned);
  result["spectrum_usage_ghz"] = obs::json::Value(plan.spectrum_usage_ghz());
  return result;
}

Expected<obs::json::Object> Service::handle_availability(
    const planning::Plan& plan) const {
  const std::vector<restoration::FailureScenario> scenarios =
      restoration::single_fiber_cuts(net_.optical);
  const restoration::ScenarioSetMetrics metrics =
      restoration::evaluate_scenarios(net_, plan, restorer_, scenarios,
                                      *engine_);
  return drill_metrics_to_json(metrics);
}

Expected<obs::json::Object> Service::handle_drill(
    const Request& request, const planning::Plan& plan) const {
  const obs::json::Value* fibers = request.params.find("fibers");
  if (fibers == nullptr || !fibers->is_array() ||
      fibers->as_array().empty()) {
    return Error::make("bad_request",
                       "drill needs a non-empty 'fibers' array");
  }
  std::vector<restoration::FailureScenario> scenarios;
  scenarios.reserve(fibers->as_array().size());
  for (const obs::json::Value& entry : fibers->as_array()) {
    if (!entry.is_number()) {
      return Error::make("bad_request", "'fibers' entries must be numbers");
    }
    const auto fiber = static_cast<topology::FiberId>(entry.as_number());
    if (fiber < 0 || fiber >= net_.optical.fiber_count()) {
      return Error::make("unknown_fiber",
                         "fiber " + std::to_string(fiber) + " out of range");
    }
    scenarios.push_back(restoration::FailureScenario{{fiber}, 1.0});
  }
  const restoration::ScenarioSetMetrics metrics =
      restoration::evaluate_scenarios(net_, plan, restorer_, scenarios,
                                      *engine_);
  return drill_metrics_to_json(metrics);
}

}  // namespace flexwan::server
