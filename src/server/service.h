// The flexwand control-plane service: authoritative network state behind
// snapshot isolation, serving concurrent requests (paper §4.3-§4.4).
//
// The paper's controller is a long-running daemon owning the holistic
// network view; the Session facade (core/flexwan.h) rebuilds that view per
// CLI invocation.  Service is the daemon half: it owns one Network and the
// current Plan, and dispatches protocol.h requests under one concurrency
// contract:
//
//  * Reads (ping / query_plan / availability / drill) run against an
//    immutable state snapshot — a shared_ptr<const State> published by the
//    last commit — so any number of reader threads proceed in parallel
//    without blocking writers, and every response names the exact state
//    version it observed.
//  * Mutations (plan / extend / restore / defrag / deploy) serialize
//    through a single-writer group-commit queue: the first arriving
//    mutation becomes the committer and drains the queue in windows,
//    coalescing adjacent compatible requests (methods_coalesce) into one
//    commit; followers block until their window lands.  Each committed
//    window bumps the state version by exactly one and appends one
//    CommitRecord, so the commit log is a serialized, monotonic history —
//    the property server_test pins under N racing client threads.
//
// The centralized/distributed conflict machinery in src/controller runs
// under this writer: a "deploy" request materializes the fleet from the
// committed plan and pushes configuration through the chosen controller,
// returning the §4.3 audit (the distributed baseline reports the spectrum
// conflicts and clipped passbands the centralized controller eliminates).
//
// Determinism: a request sequence executed through execute_batch windows in
// script order (replay.h) yields byte-identical responses and final plan at
// every engine thread count — reads reduce deterministically on the engine,
// mutations replay in a fixed window structure.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "controller/fleet.h"
#include "engine/engine.h"
#include "planning/heuristic.h"
#include "planning/plan.h"
#include "restoration/restorer.h"
#include "server/protocol.h"
#include "topology/graph.h"
#include "transponder/catalog.h"

namespace flexwan::server {

struct ServiceOptions {
  planning::PlannerConfig planner;
  restoration::RestorerConfig restorer;
  controller::VendorAssignment vendors =
      controller::VendorAssignment::kPerRegionMixed;
};

// One committed mutation window.
struct CommitRecord {
  std::uint64_t version = 0;    // state version this commit produced
  std::string method;           // the window's method (windows are
                                // homogeneous by methods_coalesce)
  int window_size = 0;          // requests coalesced, failed ones included
  std::vector<std::uint64_t> request_ids;  // successfully applied requests,
                                           // arrival order
};

class Service {
 public:
  // `catalog` and `engine` must outlive the service.
  Service(topology::Network net, const transponder::Catalog& catalog,
          const engine::Engine& engine, ServiceOptions options = {});

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Thread-safe request dispatch: reads run on the calling thread against
  // the current snapshot; mutations join the group-commit queue and return
  // once their window committed.
  Response execute(const Request& request);

  // Commits `requests` — one window, one version bump — bypassing the live
  // queue.  The scripted replay uses this to reproduce a deterministic
  // window structure; callers must pass mutations only (reads are answered
  // with a "not_a_mutation" error response without committing).
  std::vector<Response> execute_batch(std::span<const Request> requests);

  // Snapshot accessors (each a single atomic-ish read under a short lock).
  std::uint64_t state_version() const;
  // The committed plan; null before the first successful "plan" request.
  // The pointee is immutable — later commits publish a new plan object.
  std::shared_ptr<const planning::Plan> plan_snapshot() const;
  std::vector<CommitRecord> commit_log() const;

  const topology::Network& network() const { return net_; }
  const engine::Engine& engine() const { return *engine_; }

  // High-water mark of the mutation queue (live mode) / window size
  // (batch mode); mirrored into the "server.queue.depth.max" gauge.
  std::size_t max_queue_depth() const;

 private:
  // Immutable once published; commits build a successor and swap it in.
  struct State {
    std::uint64_t version = 0;
    std::shared_ptr<const planning::Plan> plan;
  };

  struct PendingMutation {
    Request request;
    Response response;
    bool done = false;
  };

  std::shared_ptr<const State> snapshot() const;

  Response execute_read(const Request& request,
                        const std::shared_ptr<const State>& state) const;

  // Applies one window under commit_mu_: copies the current plan, applies
  // each request in order, publishes the successor state (version + 1) iff
  // any request succeeded, and appends the CommitRecord.
  std::vector<Response> commit_window(std::span<const Request> requests);

  // Per-method handlers.  Mutation handlers mutate `plan` (the window's
  // working copy) and return the result object or an error.
  Expected<obs::json::Object> handle_plan(
      std::shared_ptr<planning::Plan>& plan) const;
  Expected<obs::json::Object> handle_extend(
      const Request& request, std::shared_ptr<planning::Plan>& plan) const;
  Expected<obs::json::Object> handle_restore(
      const Request& request, std::shared_ptr<planning::Plan>& plan) const;
  Expected<obs::json::Object> handle_defrag(
      std::shared_ptr<planning::Plan>& plan) const;
  Expected<obs::json::Object> handle_deploy(
      const Request& request, const planning::Plan& plan) const;
  Expected<obs::json::Object> handle_query_plan(
      const planning::Plan& plan) const;
  Expected<obs::json::Object> handle_availability(
      const planning::Plan& plan) const;
  Expected<obs::json::Object> handle_drill(const Request& request,
                                           const planning::Plan& plan) const;

  Expected<topology::LinkId> resolve_link(const Request& request) const;

  void note_queue_depth(std::size_t depth);

  topology::Network net_;
  const transponder::Catalog* catalog_;
  const engine::Engine* engine_;
  ServiceOptions options_;
  planning::HeuristicPlanner planner_;
  restoration::Restorer restorer_;

  mutable std::mutex state_mu_;
  std::shared_ptr<const State> state_;

  std::mutex commit_mu_;  // the single-writer commit path

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<PendingMutation>> pending_;
  bool committer_active_ = false;
  std::atomic<std::size_t> max_queue_depth_{0};

  mutable std::mutex log_mu_;
  std::vector<CommitRecord> commit_log_;
};

}  // namespace flexwan::server
