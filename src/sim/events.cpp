#include "sim/events.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "restoration/scenario.h"
#include "util/rng.h"

namespace flexwan::sim {

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool event_order(const Event& a, const Event& b) {
  if (a.time_days != b.time_days) return a.time_days < b.time_days;
  if (a.type != b.type) {
    return static_cast<int>(a.type) < static_cast<int>(b.type);
  }
  return a.fiber < b.fiber;
}

std::vector<Event> build_timeline(const topology::OpticalTopology& topo,
                                  const TimelineConfig& config,
                                  std::uint64_t trial_seed) {
  OBS_SPAN("sim.timeline");
  std::vector<Event> events;
  if (config.horizon_days <= 0.0) return events;

  // Lognormal mu chosen so the repair-time *mean* is mttr_mean_hours:
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2 / 2).
  const double sigma = std::max(0.0, config.mttr_sigma);
  const double mu = config.mttr_mean_hours > 0.0
                        ? std::log(config.mttr_mean_hours) - 0.5 * sigma * sigma
                        : 0.0;

  for (topology::FiberId f = 0; f < topo.fiber_count(); ++f) {
    const double cuts_per_year = restoration::fiber_cut_probability(
        topo.fiber(f), config.cut_rate_per_1000km_per_year);
    if (cuts_per_year <= 0.0) continue;
    const double mean_gap_days = 365.0 / cuts_per_year;
    Rng rng(mix_seed(trial_seed, static_cast<std::uint64_t>(f) + 1));
    double t = rng.exponential(mean_gap_days);
    while (t < config.horizon_days) {
      events.push_back(Event{t, EventType::kCut, f});
      const double repair_days =
          config.mttr_mean_hours > 0.0 ? rng.lognormal(mu, sigma) / 24.0 : 0.0;
      const double repaired = t + repair_days;
      // A repair past the horizon never fires: the cut stays active through
      // the end of the trial and the loss integral runs to the horizon.
      if (repaired >= config.horizon_days) break;
      events.push_back(Event{repaired, EventType::kRepair, f});
      t = repaired + rng.exponential(mean_gap_days);
    }
  }

  if (config.growth_interval_days > 0.0) {
    for (double g = config.growth_interval_days; g < config.horizon_days;
         g += config.growth_interval_days) {
      events.push_back(Event{g, EventType::kGrowth, -1});
    }
  }

  std::sort(events.begin(), events.end(), event_order);
  return events;
}

}  // namespace flexwan::sim
