// Seeded event timelines for the lifecycle simulator.
//
// The digital twin replays *time*: fiber cuts arrive as per-fiber Poisson
// processes whose rate scales with fiber length (the same per-fiber weight
// the probabilistic scenario sampler uses —
// restoration::fiber_cut_probability, read as cuts/year), repairs follow a
// lognormal MTTR, and demand growth ticks on a fixed calendar.
//
// Timelines are generated *up front*, independently of anything the
// simulation later does, from a pure seed schedule:
//
//   trial seed   = mix_seed(config seed, trial index)
//   fiber stream = Rng(mix_seed(trial seed, fiber id + 1))
//
// so trial t's timeline is a function of (seed, t) alone — trials can fan
// out on any number of engine threads and stay byte-identical.  Each fiber
// alternates cut → repair → next cut (a cut fiber cannot be cut again until
// repaired), which makes the whole per-fiber stream pre-generatable.
//
// Event ordering (see DESIGN.md "Lifecycle simulation"): ascending time,
// ties broken repair < cut < growth (a fiber repaired at time t can carry a
// cut arriving at the same instant), then by fiber id.  Draws are
// continuous, so ties essentially only occur by construction in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/graph.h"

namespace flexwan::sim {

enum class EventType {
  kRepair = 0,  // tie-break rank: repairs first at equal time
  kCut = 1,
  kGrowth = 2,
};

struct Event {
  double time_days = 0.0;
  EventType type = EventType::kCut;
  topology::FiberId fiber = -1;  // -1 for growth events
};

// Knobs of the stochastic timeline.
struct TimelineConfig {
  double horizon_days = 365.0;
  // Cuts per 1000 km of fiber per year (restoration/scenario.h rate model).
  double cut_rate_per_1000km_per_year = 1.0;
  // Repair time is lognormal with this mean (hours) and underlying-normal
  // sigma — long repairs (remote trench work) form the heavy tail.
  double mttr_mean_hours = 12.0;
  double mttr_sigma = 0.5;
  // Calendar spacing of demand-growth events; <= 0 disables growth.
  double growth_interval_days = 90.0;
};

// SplitMix64-style stream splitter: deterministic, avalanching, and stable
// across platforms.  Used for the trial and per-fiber seed schedule.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream);

// Strict weak order realizing the documented event ordering.
bool event_order(const Event& a, const Event& b);

// The full, sorted event timeline for one trial.
std::vector<Event> build_timeline(const topology::OpticalTopology& topo,
                                  const TimelineConfig& config,
                                  std::uint64_t trial_seed);

}  // namespace flexwan::sim
