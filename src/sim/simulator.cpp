#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "planning/incremental.h"
#include "planning/plan_io.h"
#include "restoration/apply.h"
#include "restoration/incremental.h"

namespace flexwan::sim {

namespace {

constexpr double kMinutesPerDay = 24.0 * 60.0;

double provisioned_gbps(const planning::Plan& plan) {
  double total = 0.0;
  for (const auto& lp : plan.links()) total += lp.provisioned_gbps();
  return total;
}

}  // namespace

Expected<TrialResult> run_trial(const topology::Network& net,
                                const planning::Plan& baseline,
                                const transponder::Catalog& catalog,
                                const LifecycleConfig& config, int trial) {
  OBS_SPAN("sim.trial");
  TrialResult result;
  result.trial = trial;
  // Trials may run concurrently: events collect in the trial's own buffer
  // (run_lifecycle splices them into the global log in trial order), so the
  // event stream never depends on the parallel schedule.
  const obs::ScopedEventBuffer event_scope(&result.events);
  const auto timeline =
      build_timeline(net.optical, config.timeline,
                     mix_seed(config.seed, static_cast<std::uint64_t>(trial)));
  if (obs::events_enabled()) {
    result.events.set_time_days(0.0);
    obs::emit_event(
        obs::make_event("sim", obs::Severity::kInfo, "sim.trial.begin")
            .with("trial", trial)
            .with("timeline_events", timeline.size()));
  }

  planning::Plan plan = baseline;  // the live (deployed) plan of this trial
  restoration::IncrementalRestorer restorer(catalog, config.restorer);
  // From-scratch oracle, consulted only under verify_incremental.
  const restoration::Restorer oracle(catalog, config.restorer);

  // --- live state between events -----------------------------------------
  std::vector<topology::FiberId> active;  // currently-cut fibers, sorted
  std::optional<restoration::AppliedOutcome> applied;
  std::vector<topology::LinkId> degraded;  // links with unrestored capacity
  double offered = provisioned_gbps(plan);  // no-failure deployed capacity
  double loss_rate = 0.0;                   // Gbps currently lost
  double last_days = 0.0;
  double lost_integral = 0.0;     // Gbps * days
  double offered_integral = 0.0;  // Gbps * days
  std::map<topology::LinkId, double> downtime_days;

  // --- sim-time trajectory sampling (obs/timeseries.h) --------------------
  // One row per timeline event plus optional interval-cadence rows; rows
  // collect in the trial's own buffer (spliced in trial order by
  // run_lifecycle), so timeseries.jsonl never depends on the schedule.
  const bool sampling = obs::timeseries_enabled();
  obs::TimeSeriesSampler sampler(config.sample_interval_days,
                                 config.timeline.horizon_days,
                                 &result.timeseries);
  // Snapshot of the live state as one typed row.  Spectrum stats walk every
  // fiber's word-packed bitmap once (Occupancy::free_block_stats), so a
  // sample is O(fibers * words) with no allocation beyond the row.
  const auto make_sample = [&]() {
    obs::TimeSample s;
    s.trial = trial;
    s.offered_gbps = offered;
    s.lost_gbps = loss_rate;
    s.availability = offered > 0.0 ? 1.0 - loss_rate / offered : 1.0;
    s.active_cuts = static_cast<int>(active.size());
    if (applied) {
      s.restored_wavelengths = static_cast<int>(applied->restored.size());
      s.unrestored_wavelengths = static_cast<int>(
          applied->removed.size() > applied->restored.size()
              ? applied->removed.size() - applied->restored.size()
              : 0);
    }
    long long used = 0;
    long long total = 0;
    double frag_sum = 0.0;
    int frag_fibers = 0;
    for (const auto& occ : plan.fiber_occupancies()) {
      const auto stats = occ.free_block_stats();
      s.free_blocks += stats.count;
      s.largest_free_block = std::max(s.largest_free_block, stats.largest);
      used += occ.pixels() - stats.free_pixels;
      total += occ.pixels();
      if (stats.free_pixels > 0) {
        frag_sum += 1.0 - static_cast<double>(stats.largest) /
                              static_cast<double>(stats.free_pixels);
        ++frag_fibers;
      }
    }
    s.spectrum_util =
        total > 0 ? static_cast<double>(used) / static_cast<double>(total)
                  : 0.0;
    s.fragmentation =
        frag_fibers > 0 ? frag_sum / static_cast<double>(frag_fibers) : 0.0;
    return s;
  };
  if (sampling) sampler.start(make_sample());

  // Accumulates the time-weighted integrals up to `t`.
  const auto integrate_to = [&](double t) {
    const double dt = t - last_days;
    lost_integral += loss_rate * dt;
    offered_integral += offered * dt;
    for (topology::LinkId l : degraded) downtime_days[l] += dt;
    last_days = t;
  };

  // Reverts the active restoration (if any), returning the plan to its
  // deployed (baseline + growth) state.  The growth handler needs this
  // before mutating the plan; cut/repair leave the revert to
  // transition_outcome inside apply_active.
  const auto tear_down = [&]() -> Expected<bool> {
    if (applied) {
      auto reverted = restoration::revert_outcome(plan, *applied);
      if (!reverted) return reverted;
      applied.reset();
    }
    loss_rate = 0.0;
    degraded.clear();
    return true;
  };

  // One delta step of the live plan: transition_outcome reverts the
  // previous restoration, the incremental restorer re-solves only what the
  // active-cut set touches against the deployed plan, and the new outcome
  // is applied.  Under verify_incremental the from-scratch oracle re-solves
  // the same (deployed plan, scenario) and both the Outcome and the
  // resulting plan bytes must match exactly.
  const auto apply_active = [&](double now) -> Expected<bool> {
    loss_rate = 0.0;
    degraded.clear();
    if (active.empty()) return tear_down();
    OBS_SPAN("sim.restore");
    const restoration::FailureScenario scenario{active, 1.0};
    std::optional<planning::Plan> oracle_plan;
    restoration::Outcome oracle_outcome;
    auto outcome = restoration::transition_outcome(
        plan, applied, scenario,
        [&](const planning::Plan& deployed) -> const restoration::Outcome& {
          const auto& fast = restorer.restore(net, deployed, scenario);
          if (config.restorer.verify_incremental) {
            oracle_outcome = oracle.restore(net, deployed, scenario);
            oracle_plan.emplace(deployed);
          }
          return fast;
        });
    if (!outcome) return outcome.error();
    ++result.restorations;
    OBS_COUNTER_ADD("sim.restorations", 1);
    if (config.restorer.verify_incremental) {
      if (!(outcome.value() == oracle_outcome)) {
        return Error::make("incremental_divergence",
                           "incremental outcome differs from the "
                           "from-scratch oracle (trial " +
                               std::to_string(trial) + ", t=" +
                               std::to_string(now) + " days)");
      }
      auto oracle_applied =
          restoration::apply_outcome(*oracle_plan, scenario, oracle_outcome);
      if (!oracle_applied) return oracle_applied.error();
      if (planning::save_plan(*oracle_plan) != planning::save_plan(plan)) {
        return Error::make("incremental_divergence",
                           "plan bytes diverge from the oracle after apply "
                           "(trial " +
                               std::to_string(trial) + ", t=" +
                               std::to_string(now) + " days)");
      }
    }
    loss_rate = outcome->affected_gbps - outcome->restored_gbps;
    for (const auto& lr : outcome->links) {
      if (lr.restored_gbps + 1e-9 < lr.affected_gbps) {
        degraded.push_back(lr.link);
      }
    }
    result.capability_trajectory.push_back(
        CapabilitySample{now, outcome->capability()});
    if (obs::events_enabled()) {
      // Partial restoration is the signal the availability study exists to
      // surface — promote it to warn.
      obs::emit_event(
          obs::make_event("sim",
                          outcome->capability() < 1.0 ? obs::Severity::kWarn
                                                      : obs::Severity::kInfo,
                          "sim.restore")
              .with("active_cuts", active.size())
              .with("affected_gbps", outcome->affected_gbps)
              .with("restored_gbps", outcome->restored_gbps)
              .with("capability", outcome->capability()));
    }
    return true;
  };

  for (const Event& ev : timeline) {
    integrate_to(ev.time_days);
    // Events emitted from here on carry the timeline event's sim time.
    result.events.set_time_days(ev.time_days);
    switch (ev.type) {
      case EventType::kCut: {
        OBS_SPAN("sim.event.cut");
        OBS_COUNTER_ADD("sim.cuts", 1);
        ++result.cuts;
        active.insert(std::lower_bound(active.begin(), active.end(), ev.fiber),
                      ev.fiber);
        if (obs::events_enabled()) {
          obs::emit_event(
              obs::make_event("sim", obs::Severity::kInfo, "sim.cut")
                  .with("fiber", static_cast<int>(ev.fiber))
                  .with("active_cuts", active.size()));
        }
        auto stepped = apply_active(ev.time_days);
        if (!stepped) return stepped.error();
        break;
      }
      case EventType::kRepair: {
        OBS_SPAN("sim.event.repair");
        OBS_COUNTER_ADD("sim.repairs", 1);
        ++result.repairs;
        active.erase(std::remove(active.begin(), active.end(), ev.fiber),
                     active.end());
        if (obs::events_enabled()) {
          obs::emit_event(
              obs::make_event("sim", obs::Severity::kInfo, "sim.repair")
                  .with("fiber", static_cast<int>(ev.fiber))
                  .with("active_cuts", active.size()));
        }
        auto stepped = apply_active(ev.time_days);
        if (!stepped) return stepped.error();
        break;
      }
      case EventType::kGrowth: {
        OBS_SPAN("sim.event.growth");
        OBS_COUNTER_ADD("sim.growth.events", 1);
        ++result.growth_events;
        const int blocked_before = result.growth_blocked;
        auto down = tear_down();
        if (!down) return down.error();
        // Linear growth: every link gains the same fraction of its original
        // demand.  Spectrum exhaustion is an expected outcome of a filling
        // backbone, not an error — it is what the availability study
        // measures.
        for (const auto& link : net.ip.links()) {
          const double extra = link.demand_gbps * config.growth_fraction;
          if (extra <= 0.0) continue;
          auto grown = planning::extend_plan(plan, net, link.id, extra);
          if (grown) {
            result.capacity_added_gbps += grown->capacity_added_gbps;
          } else {
            ++result.growth_blocked;
            OBS_COUNTER_ADD("sim.growth.blocked", 1);
          }
        }
        if (config.defrag_on_growth) {
          auto defrag = planning::defragment(plan);
          if (!defrag) return defrag.error();
        }
        // The deployed plan changed: the incremental restorer's carried
        // index and cached outcomes are stale (its backup-path tables
        // survive — they depend only on the topology).
        restorer.notify_plan_changed();
        offered = provisioned_gbps(plan);
        if (obs::events_enabled()) {
          const int blocked = result.growth_blocked - blocked_before;
          obs::emit_event(
              obs::make_event("sim",
                              blocked > 0 ? obs::Severity::kWarn
                                          : obs::Severity::kInfo,
                              "sim.growth")
                  .with("fraction", config.growth_fraction)
                  .with("blocked_links", blocked)
                  .with("offered_gbps", offered));
        }
        auto stepped = apply_active(ev.time_days);
        if (!stepped) return stepped.error();
        break;
      }
    }
    // The row carries the post-event state; pending interval ticks (which
    // carry the pre-event state) are flushed first inside record_event.
    if (sampling) sampler.record_event(ev.time_days, make_sample());
  }
  integrate_to(config.timeline.horizon_days);
  if (sampling) sampler.finish();

  result.lost_gbps_minutes = lost_integral * kMinutesPerDay;
  result.offered_gbps_minutes = offered_integral * kMinutesPerDay;
  result.availability =
      offered_integral > 0.0 ? 1.0 - lost_integral / offered_integral : 1.0;
  for (const auto& [link, days] : downtime_days) {
    result.link_downtime_minutes[link] = days * kMinutesPerDay;
  }
  if (!result.capability_trajectory.empty()) {
    double sum = 0.0;
    double min_cap = 1.0;
    for (const auto& s : result.capability_trajectory) {
      sum += s.capability;
      min_cap = std::min(min_cap, s.capability);
    }
    result.mean_capability =
        sum / static_cast<double>(result.capability_trajectory.size());
    result.min_capability = min_cap;
  }
  result.final_provisioned_gbps = offered;
  if (obs::events_enabled()) {
    result.events.set_time_days(config.timeline.horizon_days);
    obs::emit_event(
        obs::make_event("sim", obs::Severity::kInfo, "sim.trial.end")
            .with("trial", trial)
            .with("availability", result.availability)
            .with("lost_gbps_minutes", result.lost_gbps_minutes)
            .with("restorations", result.restorations));
  }
  return result;
}

Expected<LifecycleReport> run_lifecycle(const topology::Network& net,
                                        const planning::Plan& baseline,
                                        const transponder::Catalog& catalog,
                                        const LifecycleConfig& config,
                                        const engine::Engine& engine) {
  OBS_SPAN("sim.lifecycle");
  const std::size_t trials =
      static_cast<std::size_t>(std::max(0, config.trials));
  // Each trial is self-contained (own plan copy, own timeline), so the fan-
  // out is safe; collection is trial-index-ordered, so the aggregate is
  // byte-identical at every thread count.
  auto outcomes = engine.parallel_map(trials, [&](std::size_t i) {
    return run_trial(net, baseline, catalog, config, static_cast<int>(i));
  });

  LifecycleReport report;
  report.trials.reserve(trials);
  for (auto& outcome : outcomes) {
    if (!outcome) return outcome.error();
    report.trials.push_back(std::move(outcome.value()));
  }
  // Splice per-trial event buffers into the global log in trial-index
  // order: sequence numbers are assigned here, serially, so events.jsonl
  // does not depend on which thread ran which trial.
  if (obs::events_enabled()) {
    for (auto& t : report.trials) {
      obs::EventLog::instance().splice(std::move(t.events));
    }
  }
  // Same trial-index-order splice for the sim-time trajectory, so
  // timeseries.jsonl is byte-identical at every thread count.
  if (obs::timeseries_enabled()) {
    for (auto& t : report.trials) {
      obs::TimeSeries::instance().splice(std::move(t.timeseries));
    }
  }
  if (report.trials.empty()) return report;

  double availability_sum = 0.0;
  double lost_sum = 0.0;
  double capability_sum = 0.0;
  std::size_t capability_samples = 0;
  report.min_availability = 1.0;
  for (const auto& t : report.trials) {
    availability_sum += t.availability;
    lost_sum += t.lost_gbps_minutes;
    report.min_availability = std::min(report.min_availability,
                                       t.availability);
    report.total_cuts += t.cuts;
    report.total_repairs += t.repairs;
    report.total_growth_events += t.growth_events;
    for (const auto& s : t.capability_trajectory) {
      capability_sum += s.capability;
      ++capability_samples;
    }
    for (const auto& [link, minutes] : t.link_downtime_minutes) {
      report.mean_link_downtime_minutes[link] += minutes;
    }
  }
  const double n = static_cast<double>(report.trials.size());
  report.mean_availability = availability_sum / n;
  report.mean_lost_gbps_minutes = lost_sum / n;
  report.mean_capability =
      capability_samples > 0
          ? capability_sum / static_cast<double>(capability_samples)
          : 1.0;
  for (auto& [link, minutes] : report.mean_link_downtime_minutes) {
    minutes /= n;
  }
  OBS_GAUGE_SET("sim.availability", report.mean_availability);
  return report;
}

}  // namespace flexwan::sim
