#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "planning/incremental.h"
#include "restoration/apply.h"

namespace flexwan::sim {

namespace {

constexpr double kMinutesPerDay = 24.0 * 60.0;

double provisioned_gbps(const planning::Plan& plan) {
  double total = 0.0;
  for (const auto& lp : plan.links()) total += lp.provisioned_gbps();
  return total;
}

}  // namespace

Expected<TrialResult> run_trial(const topology::Network& net,
                                const planning::Plan& baseline,
                                const transponder::Catalog& catalog,
                                const LifecycleConfig& config, int trial) {
  OBS_SPAN("sim.trial");
  TrialResult result;
  result.trial = trial;
  const auto timeline =
      build_timeline(net.optical, config.timeline,
                     mix_seed(config.seed, static_cast<std::uint64_t>(trial)));

  planning::Plan plan = baseline;  // the live (deployed) plan of this trial
  const restoration::Restorer restorer(catalog, config.restorer);

  // --- live state between events -----------------------------------------
  std::vector<topology::FiberId> active;  // currently-cut fibers, sorted
  std::optional<restoration::AppliedOutcome> applied;
  std::vector<topology::LinkId> degraded;  // links with unrestored capacity
  double offered = provisioned_gbps(plan);  // no-failure deployed capacity
  double loss_rate = 0.0;                   // Gbps currently lost
  double last_days = 0.0;
  double lost_integral = 0.0;     // Gbps * days
  double offered_integral = 0.0;  // Gbps * days
  std::map<topology::LinkId, double> downtime_days;

  // Accumulates the time-weighted integrals up to `t`.
  const auto integrate_to = [&](double t) {
    const double dt = t - last_days;
    lost_integral += loss_rate * dt;
    offered_integral += offered * dt;
    for (topology::LinkId l : degraded) downtime_days[l] += dt;
    last_days = t;
  };

  // Reverts the active restoration (if any), returning the plan to its
  // deployed (baseline + growth) state.  Every event handler starts here:
  // restoration is always recomputed against the current deployed plan.
  const auto tear_down = [&]() -> Expected<bool> {
    if (applied) {
      auto reverted = restoration::revert_outcome(plan, *applied);
      if (!reverted) return reverted;
      applied.reset();
    }
    loss_rate = 0.0;
    degraded.clear();
    return true;
  };

  // Restores the combined active-cut scenario against the deployed plan and
  // applies the outcome to it.
  const auto restore_now = [&](double now) -> Expected<bool> {
    if (active.empty()) return true;
    OBS_SPAN("sim.restore");
    const restoration::FailureScenario scenario{active, 1.0};
    const auto outcome = restorer.restore(net, plan, scenario);
    ++result.restorations;
    OBS_COUNTER_ADD("sim.restorations", 1);
    auto a = restoration::apply_outcome(plan, scenario, outcome);
    if (!a) return a.error();
    applied.emplace(std::move(a.value()));
    loss_rate = outcome.affected_gbps - outcome.restored_gbps;
    for (const auto& lr : outcome.links) {
      if (lr.restored_gbps + 1e-9 < lr.affected_gbps) {
        degraded.push_back(lr.link);
      }
    }
    result.capability_trajectory.push_back(
        CapabilitySample{now, outcome.capability()});
    return true;
  };

  for (const Event& ev : timeline) {
    integrate_to(ev.time_days);
    switch (ev.type) {
      case EventType::kCut: {
        OBS_SPAN("sim.event.cut");
        OBS_COUNTER_ADD("sim.cuts", 1);
        ++result.cuts;
        auto down = tear_down();
        if (!down) return down.error();
        active.insert(std::lower_bound(active.begin(), active.end(), ev.fiber),
                      ev.fiber);
        auto restored = restore_now(ev.time_days);
        if (!restored) return restored.error();
        break;
      }
      case EventType::kRepair: {
        OBS_SPAN("sim.event.repair");
        OBS_COUNTER_ADD("sim.repairs", 1);
        ++result.repairs;
        auto down = tear_down();
        if (!down) return down.error();
        active.erase(std::remove(active.begin(), active.end(), ev.fiber),
                     active.end());
        auto restored = restore_now(ev.time_days);
        if (!restored) return restored.error();
        break;
      }
      case EventType::kGrowth: {
        OBS_SPAN("sim.event.growth");
        OBS_COUNTER_ADD("sim.growth.events", 1);
        ++result.growth_events;
        auto down = tear_down();
        if (!down) return down.error();
        // Linear growth: every link gains the same fraction of its original
        // demand.  Spectrum exhaustion is an expected outcome of a filling
        // backbone, not an error — it is what the availability study
        // measures.
        for (const auto& link : net.ip.links()) {
          const double extra = link.demand_gbps * config.growth_fraction;
          if (extra <= 0.0) continue;
          auto grown = planning::extend_plan(plan, net, link.id, extra);
          if (grown) {
            result.capacity_added_gbps += grown->capacity_added_gbps;
          } else {
            ++result.growth_blocked;
            OBS_COUNTER_ADD("sim.growth.blocked", 1);
          }
        }
        if (config.defrag_on_growth) {
          auto defrag = planning::defragment(plan);
          if (!defrag) return defrag.error();
        }
        offered = provisioned_gbps(plan);
        auto restored = restore_now(ev.time_days);
        if (!restored) return restored.error();
        break;
      }
    }
  }
  integrate_to(config.timeline.horizon_days);

  result.lost_gbps_minutes = lost_integral * kMinutesPerDay;
  result.offered_gbps_minutes = offered_integral * kMinutesPerDay;
  result.availability =
      offered_integral > 0.0 ? 1.0 - lost_integral / offered_integral : 1.0;
  for (const auto& [link, days] : downtime_days) {
    result.link_downtime_minutes[link] = days * kMinutesPerDay;
  }
  if (!result.capability_trajectory.empty()) {
    double sum = 0.0;
    double min_cap = 1.0;
    for (const auto& s : result.capability_trajectory) {
      sum += s.capability;
      min_cap = std::min(min_cap, s.capability);
    }
    result.mean_capability =
        sum / static_cast<double>(result.capability_trajectory.size());
    result.min_capability = min_cap;
  }
  result.final_provisioned_gbps = offered;
  return result;
}

Expected<LifecycleReport> run_lifecycle(const topology::Network& net,
                                        const planning::Plan& baseline,
                                        const transponder::Catalog& catalog,
                                        const LifecycleConfig& config,
                                        const engine::Engine& engine) {
  OBS_SPAN("sim.lifecycle");
  const std::size_t trials =
      static_cast<std::size_t>(std::max(0, config.trials));
  // Each trial is self-contained (own plan copy, own timeline), so the fan-
  // out is safe; collection is trial-index-ordered, so the aggregate is
  // byte-identical at every thread count.
  auto outcomes = engine.parallel_map(trials, [&](std::size_t i) {
    return run_trial(net, baseline, catalog, config, static_cast<int>(i));
  });

  LifecycleReport report;
  report.trials.reserve(trials);
  for (auto& outcome : outcomes) {
    if (!outcome) return outcome.error();
    report.trials.push_back(std::move(outcome.value()));
  }
  if (report.trials.empty()) return report;

  double availability_sum = 0.0;
  double lost_sum = 0.0;
  double capability_sum = 0.0;
  std::size_t capability_samples = 0;
  report.min_availability = 1.0;
  for (const auto& t : report.trials) {
    availability_sum += t.availability;
    lost_sum += t.lost_gbps_minutes;
    report.min_availability = std::min(report.min_availability,
                                       t.availability);
    report.total_cuts += t.cuts;
    report.total_repairs += t.repairs;
    report.total_growth_events += t.growth_events;
    for (const auto& s : t.capability_trajectory) {
      capability_sum += s.capability;
      ++capability_samples;
    }
    for (const auto& [link, minutes] : t.link_downtime_minutes) {
      report.mean_link_downtime_minutes[link] += minutes;
    }
  }
  const double n = static_cast<double>(report.trials.size());
  report.mean_availability = availability_sum / n;
  report.mean_lost_gbps_minutes = lost_sum / n;
  report.mean_capability =
      capability_samples > 0
          ? capability_sum / static_cast<double>(capability_samples)
          : 1.0;
  for (auto& [link, minutes] : report.mean_link_downtime_minutes) {
    minutes /= n;
  }
  OBS_GAUGE_SET("sim.availability", report.mean_availability);
  return report;
}

}  // namespace flexwan::sim
