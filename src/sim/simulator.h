// Discrete-event lifecycle simulator — the digital twin (paper §8, taken
// long-horizon).
//
// The paper evaluates restoration one scenario at a time; production
// operators care about what a plan delivers over *years*: overlapping cuts,
// MTTR-distributed repairs, demand growth, and the availability the traffic
// actually experiences.  This module replays a seeded event timeline
// (events.h) against a deployed planning::Plan:
//
//   * cut     — the fiber joins the active-cut set and the event loop takes
//               one delta step (restoration::transition_outcome): the
//               current restoration (if any) is reverted and the
//               restoration::IncrementalRestorer re-solves only the
//               wavelengths the cut fibers carry against the *current*
//               (possibly already-degraded, possibly grown) deployed plan;
//               the outcome is applied to the live plan.
//   * repair  — the same delta step with the fiber removed from the
//               active-cut set (apply→revert is byte-exact, so the plan
//               returns to its deployed state); a previously-seen failure
//               state re-promotes its cached outcome without solving.
//   * growth  — every IP link's demand grows by a fixed fraction;
//               planning::extend_plan provisions it in residual spectrum
//               and planning::defragment opportunistically re-packs.
//
// Between events the trial integrates time-weighted loss: availability is
// 1 - (lost Gbps·time / offered Gbps·time), plus lost-traffic Gbps-minutes,
// per-link degraded minutes, and the restoration-capability trajectory.
//
// Determinism: a trial is a pure function of (network, baseline plan,
// catalog, config, trial index) — timelines come from the events.h seed
// schedule and every plan mutation is deterministic.  run_lifecycle() fans
// trials out on engine::Engine and aggregates in trial-index order, so
// reports are byte-identical at every thread count (the PR 1 contract; CI's
// sim-determinism job byte-compares sim_tool at --threads 1 vs 8).
//
// Oracle check: with RestorerConfig::verify_incremental set, every event
// additionally re-solves from scratch with restoration::Restorer and fails
// the trial with "incremental_divergence" unless the incremental Outcome is
// field-exact equal and the post-apply plan serializes byte-identically
// (sim_tool --verify-incremental; CI's oracle-parity job).
#pragma once

#include <map>
#include <vector>

#include "engine/engine.h"
#include "obs/eventlog.h"
#include "obs/timeseries.h"
#include "planning/plan.h"
#include "restoration/restorer.h"
#include "sim/events.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/expected.h"

namespace flexwan::sim {

struct LifecycleConfig {
  TimelineConfig timeline;
  int trials = 4;
  std::uint64_t seed = 1;
  // Each growth event extends every IP link by this fraction of its
  // original demand (linear growth; spectrum-exhausted links are counted in
  // TrialResult::growth_blocked, not fatal).
  double growth_fraction = 0.05;
  // Re-pack spectrum after each growth event so future extensions and
  // restorations find contiguous blocks.
  bool defrag_on_growth = true;
  // Cadence (sim-days) of "interval" time-series rows between events
  // (obs/timeseries.h); <= 0 records event-keyed rows only.  Sampling
  // happens only when obs::timeseries_enabled() (--bundle / --bench-json).
  double sample_interval_days = 0.0;
  restoration::RestorerConfig restorer;
};

// One point of the restoration-capability trajectory: recorded every time
// the restorer runs (after each cut, after each repair that leaves cuts
// active, and after growth under active cuts).
struct CapabilitySample {
  double time_days = 0.0;
  double capability = 1.0;  // restored / affected for the active-cut set
};

struct TrialResult {
  int trial = 0;
  // 1 - lost / offered, both integrated over the horizon.
  double availability = 1.0;
  double lost_gbps_minutes = 0.0;
  double offered_gbps_minutes = 0.0;
  int cuts = 0;
  int repairs = 0;
  int growth_events = 0;
  int restorations = 0;      // Restorer::restore invocations
  int growth_blocked = 0;    // link extensions that found no spectrum
  double capacity_added_gbps = 0.0;
  double mean_capability = 1.0;  // over capability_trajectory (1.0 if empty)
  double min_capability = 1.0;
  std::vector<CapabilitySample> capability_trajectory;
  // Minutes each IP link spent with unrestored capacity.
  std::map<topology::LinkId, double> link_downtime_minutes;
  double final_provisioned_gbps = 0.0;  // deployed capacity at the horizon
  // Structured events the trial emitted (empty unless events_enabled).
  // run_lifecycle splices trial buffers into the global obs::EventLog in
  // trial-index order, so events.jsonl is byte-identical at every thread
  // count.
  obs::EventBuffer events;
  // Sim-time trajectory rows (empty unless timeseries_enabled); spliced
  // into the global obs::TimeSeries in trial-index order, same discipline
  // as `events`.
  std::vector<obs::TimeSample> timeseries;
};

// Monte Carlo aggregate over trials (index order, deterministic).
struct LifecycleReport {
  std::vector<TrialResult> trials;
  double mean_availability = 1.0;
  double min_availability = 1.0;
  double mean_lost_gbps_minutes = 0.0;
  double mean_capability = 1.0;
  int total_cuts = 0;
  int total_repairs = 0;
  int total_growth_events = 0;
  // Per IP link: mean degraded minutes per trial.
  std::map<topology::LinkId, double> mean_link_downtime_minutes;
};

// Replays trial `trial`'s timeline against a copy of `baseline`.  `catalog`
// must be the family the plan was built with (the restorer retunes spares
// within it).  Errors ("outcome_mismatch", "conflict", ...) indicate a
// broken apply/revert invariant, never a merely-unlucky timeline.
Expected<TrialResult> run_trial(const topology::Network& net,
                                const planning::Plan& baseline,
                                const transponder::Catalog& catalog,
                                const LifecycleConfig& config, int trial);

// Runs config.trials trials concurrently on `engine` (each trial is
// self-contained: own plan copy, own timeline) and aggregates in trial
// order.
Expected<LifecycleReport> run_lifecycle(
    const topology::Network& net, const planning::Plan& baseline,
    const transponder::Catalog& catalog, const LifecycleConfig& config,
    const engine::Engine& engine = engine::Engine::serial());

}  // namespace flexwan::sim
