#include "spectrum/grid.h"

#include <cmath>
#include <sstream>

namespace flexwan::spectrum {

int pixels_for_spacing(double spacing_ghz) {
  if (spacing_ghz <= 0.0) return 0;
  return static_cast<int>(std::ceil(spacing_ghz / kPixelWidthGhz - 1e-9));
}

double spacing_for_pixels(int pixels) { return pixels * kPixelWidthGhz; }

std::string to_string(const Range& range) {
  std::ostringstream os;
  os << "[" << range.first << ".." << range.end() << ") ("
     << range.width_ghz() << " GHz)";
  return os.str();
}

}  // namespace flexwan::spectrum
