// The spectrum grid model.
//
// FlexWAN's spectrum-sliced OLS uses LCoS-based pixel-wise WSS hardware that
// divides the C-band into 12.5 GHz pixels (paper §4.2).  A wavelength's
// channel spacing maps to a run of *contiguous* pixels; the OLS passband is
// configured with exactly that run so the passband and the wavelength's
// occupied spectrum are identical (channel consistency, Fig. 9a).
#pragma once

#include <compare>
#include <string>

namespace flexwan::spectrum {

// Width of one LCoS WSS pixel (GHz).  ITU-T G.694.1 flexible-grid granularity.
inline constexpr double kPixelWidthGhz = 12.5;

// Usable C-band width (GHz).  4.8 THz, the conventional C-band window used
// for long-haul transmission (paper §2).
inline constexpr double kCBandWidthGhz = 4800.0;

// Number of pixels in the C-band: 4800 / 12.5.
inline constexpr int kCBandPixels = 384;

// Converts a channel spacing in GHz to the number of pixels required.
// Spacings in this system are always multiples of 12.5 GHz; non-multiples are
// rounded up (the wavelength must fit inside the passband).
int pixels_for_spacing(double spacing_ghz);

// Converts a pixel count back to spectrum width in GHz.
double spacing_for_pixels(int pixels);

// A contiguous run of pixels [first, first + count) on the grid.
// This is both "the spectrum a wavelength occupies" and "the passband a WSS
// filter port provides" — channel consistency means the two ranges are equal.
struct Range {
  int first = 0;  // index of the first pixel, in [0, kCBandPixels)
  int count = 0;  // number of contiguous pixels, > 0 for a real channel

  int end() const { return first + count; }
  double width_ghz() const { return count * kPixelWidthGhz; }
  bool valid() const {
    return first >= 0 && count > 0 && end() <= kCBandPixels;
  }
  bool contains(int pixel) const { return pixel >= first && pixel < end(); }
  bool overlaps(const Range& other) const {
    return first < other.end() && other.first < end();
  }
  // True when `inner` lies fully inside this range.
  bool covers(const Range& inner) const {
    return first <= inner.first && inner.end() <= end();
  }

  friend auto operator<=>(const Range&, const Range&) = default;
};

// Human-readable "[first..end) (W GHz)" for logs and error messages.
std::string to_string(const Range& range);

}  // namespace flexwan::spectrum
