#include "spectrum/occupancy.h"

#include <algorithm>
#include <bit>

#include "obs/metrics.h"
#include "spectrum/grid.h"

namespace flexwan::spectrum {

namespace {

constexpr int kWordBits = 64;

// Mask of bits [lo, hi) within one word; 0 <= lo <= hi <= 64.
std::uint64_t bit_mask(int lo, int hi) {
  if (hi <= lo) return 0;
  std::uint64_t m = ~std::uint64_t{0} >> (kWordBits - (hi - lo));
  return m << lo;
}

// Visits every word overlapped by `range` as (word index, mask of the
// range's bits in that word); stops early when `visit` returns false.
template <typename Visit>
bool for_each_word(const Range& range, Visit&& visit) {
  for (int p = range.first; p < range.end();) {
    const int wi = p / kWordBits;
    const int lo = p - wi * kWordBits;
    const int hi = std::min(range.end() - wi * kWordBits, kWordBits);
    if (!visit(static_cast<std::size_t>(wi), bit_mask(lo, hi))) return false;
    p = (wi + 1) * kWordBits;
  }
  return true;
}

// Visits every maximal run of free pixels at index >= from as (start, len),
// ascending; stops early when `visit` returns false.  Tail bits past
// pixels() are set, so no end-of-band clamping is needed; a word that is
// all-used or all-free is handled in one step.  Returns how many words the
// scan examined — a deterministic work measure (it depends only on the
// bitmap contents and the scan arguments) that first_fit feeds into the
// `spectrum.first_fit.words_scanned` counter.
template <typename Visit>
int scan_free_runs(const std::vector<std::uint64_t>& words, int from,
                   Visit&& visit) {
  const int n = static_cast<int>(words.size());
  const int start_word = std::max(from, 0) / kWordBits;
  int run_start = -1;
  int scanned = 0;
  for (int i = start_word; i < n; ++i) {
    ++scanned;
    std::uint64_t used = words[static_cast<std::size_t>(i)];
    if (i == start_word) used |= bit_mask(0, std::max(from, 0) - i * kWordBits);
    const int base = i * kWordBits;
    if (used == 0) {
      if (run_start < 0) run_start = base;
      continue;
    }
    if (used == ~std::uint64_t{0}) {
      if (run_start >= 0 && !visit(run_start, base - run_start)) {
        return scanned;
      }
      run_start = -1;
      continue;
    }
    for (int bit = 0; bit < kWordBits;) {
      if ((used >> bit) & 1u) {
        if (run_start >= 0 && !visit(run_start, base + bit - run_start)) {
          return scanned;
        }
        run_start = -1;
        const std::uint64_t inverted = ~(used >> bit);
        bit += inverted == 0 ? kWordBits - bit : std::countr_zero(inverted);
      } else {
        if (run_start < 0) run_start = base + bit;
        const std::uint64_t shifted = used >> bit;
        bit += shifted == 0 ? kWordBits - bit : std::countr_zero(shifted);
      }
    }
  }
  if (run_start >= 0) visit(run_start, n * kWordBits - run_start);
  return scanned;
}

}  // namespace

Occupancy::Occupancy(int pixels)
    : pixels_(std::max(pixels, 0)),
      words_(static_cast<std::size_t>((std::max(pixels, 0) + kWordBits - 1) /
                                      kWordBits),
             0) {
  // Pixels past the band are permanently "used" so run scans never walk off
  // the end of the usable spectrum.
  if (pixels_ % kWordBits != 0) {
    words_.back() |= bit_mask(pixels_ % kWordBits, kWordBits);
  }
}

bool Occupancy::is_free(int pixel) const {
  return pixel >= 0 && pixel < pixels_ &&
         (words_[static_cast<std::size_t>(pixel / kWordBits)] &
          (std::uint64_t{1} << (pixel % kWordBits))) == 0;
}

bool Occupancy::is_free(const Range& range) const {
  if (range.first < 0 || range.end() > pixels_ || range.count <= 0)
    return false;
  return for_each_word(range, [&](std::size_t wi, std::uint64_t mask) {
    return (words_[wi] & mask) == 0;
  });
}

Expected<bool> Occupancy::reserve(const Range& range) {
  if (range.count <= 0 || range.first < 0 || range.end() > pixels_) {
    return Error::make("out_of_band", "range " + to_string(range) +
                                          " outside the usable band");
  }
  if (!is_free(range)) {
    return Error::make("conflict",
                       "range " + to_string(range) + " already partly in use");
  }
  for_each_word(range, [&](std::size_t wi, std::uint64_t mask) {
    words_[wi] |= mask;
    return true;
  });
  return true;
}

Expected<bool> Occupancy::release(const Range& range) {
  if (range.count <= 0 || range.first < 0 || range.end() > pixels_) {
    return Error::make("out_of_band", "range " + to_string(range) +
                                          " outside the usable band");
  }
  const bool fully_used =
      for_each_word(range, [&](std::size_t wi, std::uint64_t mask) {
        return (words_[wi] & mask) == mask;
      });
  if (!fully_used) {
    return Error::make("not_reserved", "range " + to_string(range) +
                                           " contains free pixels");
  }
  for_each_word(range, [&](std::size_t wi, std::uint64_t mask) {
    words_[wi] &= ~mask;
    return true;
  });
  return true;
}

std::optional<Range> Occupancy::first_fit(int count, int from) const {
  if (count <= 0 || std::max(from, 0) >= pixels_) return std::nullopt;
  std::optional<Range> fit;
  const int scanned = scan_free_runs(words_, from, [&](int start, int len) {
    if (len < count) return true;
    fit = Range{start, count};
    return false;
  });
  // The word-packed hot path's work measure: how far each search walked
  // the bitmap.  Deterministic, so it lands in bundles and work profiles.
  OBS_COUNTER_ADD("spectrum.first_fit.words_scanned", scanned);
  return fit;
}

std::vector<int> Occupancy::all_fits(int count) const {
  std::vector<int> starts;
  if (count <= 0 || pixels_ == 0) return starts;
  scan_free_runs(words_, 0, [&](int start, int len) {
    for (int s = start; s + count <= start + len; ++s) starts.push_back(s);
    return true;
  });
  return starts;
}

int Occupancy::used_pixels() const {
  int set_bits = 0;
  for (std::uint64_t w : words_) set_bits += std::popcount(w);
  // Discount the permanently-set tail bits past the band.
  return set_bits -
         (static_cast<int>(words_.size()) * kWordBits - pixels_);
}

int Occupancy::largest_free_run() const {
  int best = 0;
  if (pixels_ == 0) return best;
  scan_free_runs(words_, 0, [&](int /*start*/, int len) {
    best = std::max(best, len);
    return true;
  });
  return best;
}

Occupancy::FreeBlockStats Occupancy::free_block_stats() const {
  FreeBlockStats stats;
  if (pixels_ == 0) return stats;
  scan_free_runs(words_, 0, [&](int /*start*/, int len) {
    ++stats.count;
    stats.largest = std::max(stats.largest, len);
    stats.free_pixels += len;
    return true;
  });
  return stats;
}

double Occupancy::fragmentation() const {
  const int free = free_pixels();
  if (free == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_run()) /
                   static_cast<double>(free);
}

}  // namespace flexwan::spectrum
