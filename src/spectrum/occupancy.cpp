#include "spectrum/occupancy.h"

#include <algorithm>

#include "spectrum/grid.h"

namespace flexwan::spectrum {

Occupancy::Occupancy(int pixels) : used_(static_cast<std::size_t>(pixels), 0) {}

bool Occupancy::is_free(int pixel) const {
  return pixel >= 0 && pixel < pixels() &&
         used_[static_cast<std::size_t>(pixel)] == 0;
}

bool Occupancy::is_free(const Range& range) const {
  if (range.first < 0 || range.end() > pixels() || range.count <= 0)
    return false;
  for (int p = range.first; p < range.end(); ++p) {
    if (used_[static_cast<std::size_t>(p)] != 0) return false;
  }
  return true;
}

Expected<bool> Occupancy::reserve(const Range& range) {
  if (range.count <= 0 || range.first < 0 || range.end() > pixels()) {
    return Error::make("out_of_band", "range " + to_string(range) +
                                          " outside the usable band");
  }
  if (!is_free(range)) {
    return Error::make("conflict",
                       "range " + to_string(range) + " already partly in use");
  }
  for (int p = range.first; p < range.end(); ++p) {
    used_[static_cast<std::size_t>(p)] = 1;
  }
  return true;
}

Expected<bool> Occupancy::release(const Range& range) {
  if (range.count <= 0 || range.first < 0 || range.end() > pixels()) {
    return Error::make("out_of_band", "range " + to_string(range) +
                                          " outside the usable band");
  }
  for (int p = range.first; p < range.end(); ++p) {
    if (used_[static_cast<std::size_t>(p)] == 0) {
      return Error::make("not_reserved", "range " + to_string(range) +
                                             " contains free pixels");
    }
  }
  for (int p = range.first; p < range.end(); ++p) {
    used_[static_cast<std::size_t>(p)] = 0;
  }
  return true;
}

std::optional<Range> Occupancy::first_fit(int count, int from) const {
  if (count <= 0) return std::nullopt;
  int run = 0;
  for (int p = std::max(from, 0); p < pixels(); ++p) {
    run = used_[static_cast<std::size_t>(p)] == 0 ? run + 1 : 0;
    if (run >= count) return Range{p - count + 1, count};
  }
  return std::nullopt;
}

std::vector<int> Occupancy::all_fits(int count) const {
  std::vector<int> starts;
  if (count <= 0) return starts;
  for (int p = 0; p + count <= pixels(); ++p) {
    if (is_free(Range{p, count})) starts.push_back(p);
  }
  return starts;
}

int Occupancy::used_pixels() const {
  return static_cast<int>(std::count(used_.begin(), used_.end(), 1));
}

int Occupancy::largest_free_run() const {
  int best = 0;
  int run = 0;
  for (std::uint8_t u : used_) {
    run = u == 0 ? run + 1 : 0;
    best = std::max(best, run);
  }
  return best;
}

double Occupancy::fragmentation() const {
  const int free = free_pixels();
  if (free == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_run()) /
                   static_cast<double>(free);
}

}  // namespace flexwan::spectrum
