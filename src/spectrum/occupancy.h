// Per-fiber spectrum occupancy tracking.
//
// Algorithm 1's spectrum-conflict constraint (3) says each pixel of each
// fiber may be used by at most one wavelength.  Occupancy is the runtime
// embodiment of that constraint: planners reserve ranges here, and
// reservation fails rather than double-books.
//
// Storage is word-packed: one bit per pixel in uint64_t words (bit set =
// used), so the restoration hot path scans spectrum 64 pixels at a time —
// first_fit/is_free/reserve/release work on whole words with ctz/popcount
// and masks instead of per-pixel byte loops, and copying a fiber's C-band
// state (which the restorer does per failure event) is a 6-word memcpy.
// Bits at or beyond pixels() are permanently set ("used"), so run scans
// never need end-of-band clamping.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "spectrum/grid.h"
#include "util/expected.h"

namespace flexwan::spectrum {

// Occupancy bitmap of one fiber's C-band.
class Occupancy {
 public:
  // Constructs a fully-free band with `pixels` pixels (default: full C-band).
  explicit Occupancy(int pixels = kCBandPixels);

  int pixels() const { return pixels_; }

  bool is_free(const Range& range) const;
  bool is_free(int pixel) const;

  // Marks `range` used.  Fails with code "conflict" if any pixel is already
  // occupied (never partially applies).
  Expected<bool> reserve(const Range& range);

  // Frees `range`.  Fails with code "not_reserved" if any pixel is free
  // (never partially applies); releasing must mirror a prior reserve.
  Expected<bool> release(const Range& range);

  // First contiguous run of `count` free pixels at index >= from, if any.
  // The "q-th order" of Algorithm 1 corresponds to the starting pixel found.
  std::optional<Range> first_fit(int count, int from = 0) const;

  // All candidate starting positions for a run of `count` free pixels.
  std::vector<int> all_fits(int count) const;

  int used_pixels() const;
  int free_pixels() const { return pixels() - used_pixels(); }

  // Largest contiguous free run — determines the widest channel that still
  // fits, which drives restoration feasibility in overloaded networks.
  int largest_free_run() const;

  // Count, largest length, and total pixels of the maximal free runs, in
  // one ctz/popcount word scan.  The time-series sampler (obs/timeseries.h)
  // calls this per fiber at every sample, so the combined pass matters:
  // count + largest + free_pixels would otherwise be three scans.
  struct FreeBlockStats {
    int count = 0;        // number of maximal free runs
    int largest = 0;      // length of the largest run (pixels)
    int free_pixels = 0;  // total free pixels (sum of run lengths)
  };
  FreeBlockStats free_block_stats() const;

  // Fragmentation in [0, 1]: 1 - largest_free_run / free_pixels.
  // 0 when all free spectrum is one block (or the band is full).
  double fragmentation() const;

 private:
  int pixels_ = 0;
  std::vector<std::uint64_t> words_;  // bit set = used; tail bits always set
};

}  // namespace flexwan::spectrum
