#include "te/routing.h"

#include <map>

#include "milp/simplex.h"
#include "topology/ksp.h"

namespace flexwan::te {

Expected<TeResult> route_traffic(const topology::Network& net,
                                 const std::vector<LinkCapacity>& capacities,
                                 const TrafficMatrix& matrix,
                                 const TeConfig& config) {
  TeResult result;

  // Build the IP-layer graph: one node per optical site, one (unit-length)
  // edge per IP link.  Edge index == position in `capacities`.
  topology::OpticalTopology ip_graph;
  for (int n = 0; n < net.optical.node_count(); ++n) {
    ip_graph.add_node(net.optical.node(n).name);
  }
  for (const auto& cap : capacities) {
    ip_graph.add_fiber(cap.src, cap.dst, 1.0);
  }

  milp::Model model;
  model.set_direction(milp::Direction::kMaximize);

  // x_{f,p} variables and their link memberships.
  struct PathVar {
    std::size_t flow;
    std::vector<int> links;  // capacity indices this path crosses
  };
  std::vector<PathVar> vars;
  std::vector<milp::VarId> ids;
  for (std::size_t fi = 0; fi < matrix.size(); ++fi) {
    const auto& flow = matrix[fi];
    result.offered_gbps += flow.gbps;
    const auto paths = topology::k_shortest_paths(ip_graph, flow.src,
                                                  flow.dst, config.k_paths);
    for (const auto& path : paths) {
      PathVar pv;
      pv.flow = fi;
      pv.links.assign(path.fibers.begin(), path.fibers.end());
      ids.push_back(model.add_var(
          "x_f" + std::to_string(fi) + "_p" + std::to_string(vars.size()),
          milp::VarType::kContinuous, 0.0, 1e30, 1.0));
      vars.push_back(std::move(pv));
    }
  }

  // Per-flow demand rows.
  for (std::size_t fi = 0; fi < matrix.size(); ++fi) {
    std::vector<milp::Term> terms;
    for (std::size_t vi = 0; vi < vars.size(); ++vi) {
      if (vars[vi].flow == fi) terms.push_back(milp::Term{ids[vi], 1.0});
    }
    if (terms.empty()) continue;  // disconnected flow
    model.add_constraint(std::move(terms), milp::Sense::kLe,
                         matrix[fi].gbps, "demand_f" + std::to_string(fi));
  }
  // Per-link capacity rows.
  for (std::size_t li = 0; li < capacities.size(); ++li) {
    std::vector<milp::Term> terms;
    for (std::size_t vi = 0; vi < vars.size(); ++vi) {
      for (int l : vars[vi].links) {
        if (l == static_cast<int>(li)) {
          terms.push_back(milp::Term{ids[vi], 1.0});
          break;
        }
      }
    }
    if (terms.empty()) continue;
    model.add_constraint(std::move(terms), milp::Sense::kLe,
                         capacities[li].capacity_gbps,
                         "cap_l" + std::to_string(li));
  }

  const auto lp = milp::solve_lp_relaxation(model);
  if (lp.status != milp::LpStatus::kOptimal) {
    return Error::make("lp_failed", "TE LP did not reach optimality");
  }
  result.served_gbps = lp.objective;

  // Per-flow accounting.
  std::map<std::size_t, double> served;
  for (std::size_t vi = 0; vi < vars.size(); ++vi) {
    served[vars[vi].flow] += lp.x[static_cast<std::size_t>(ids[vi])];
  }
  for (std::size_t fi = 0; fi < matrix.size(); ++fi) {
    result.flows.push_back(FlowResult{matrix[fi], served[fi]});
  }
  return result;
}

}  // namespace flexwan::te
