// Traffic-engineering optimizer: multi-commodity flow over the IP layer.
//
// Maximizes total served traffic given per-IP-link capacities, splitting
// each flow over its K shortest IP paths (path-based MCF).  The LP —
// continuous, so the simplex solves it exactly without branching — is:
//
//   maximize   sum_f sum_p x_{f,p}
//   s.t.       sum_p x_{f,p}                 <= demand_f       (per flow)
//              sum_{(f,p) using link l} x_{f,p} <= capacity_l  (per link)
//              x >= 0
//
// This is the measurement end of the paper's availability argument: served
// traffic under a cut, with and without optical restoration.
#pragma once

#include "te/traffic.h"
#include "util/expected.h"

namespace flexwan::te {

struct FlowResult {
  Flow flow;
  double served_gbps = 0.0;
};

struct TeResult {
  double offered_gbps = 0.0;
  double served_gbps = 0.0;
  std::vector<FlowResult> flows;

  // Fraction of offered traffic served (1.0 for an empty matrix).
  double availability() const {
    return offered_gbps > 0.0 ? served_gbps / offered_gbps : 1.0;
  }
};

struct TeConfig {
  int k_paths = 3;  // IP paths per flow
};

// Routes `matrix` over the IP topology induced by `capacities` (an edge per
// IP link, both directions usable).  Flows whose endpoints are disconnected
// at the IP layer simply serve 0.  Fails with "lp_failed" only if the
// simplex cannot solve the LP (which would be a solver bug — the zero flow
// is always feasible).
Expected<TeResult> route_traffic(const topology::Network& net,
                                 const std::vector<LinkCapacity>& capacities,
                                 const TrafficMatrix& matrix,
                                 const TeConfig& config = {});

}  // namespace flexwan::te
