#include "te/traffic.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace flexwan::te {

std::vector<LinkCapacity> capacities_from_plan(const topology::Network& net,
                                               const planning::Plan& plan) {
  std::vector<LinkCapacity> out;
  for (const auto& lp : plan.links()) {
    const auto& link = net.ip.link(lp.link);
    out.push_back(
        LinkCapacity{lp.link, link.src, link.dst, lp.provisioned_gbps()});
  }
  return out;
}

std::vector<LinkCapacity> degraded_capacities(
    const topology::Network& net, const planning::Plan& plan,
    const restoration::FailureScenario& scenario) {
  std::vector<LinkCapacity> out;
  for (const auto& lp : plan.links()) {
    const auto& link = net.ip.link(lp.link);
    double surviving = 0.0;
    for (const auto& wl : lp.wavelengths) {
      const auto& path = lp.paths[static_cast<std::size_t>(wl.path_index)];
      const bool hit = std::any_of(
          path.fibers.begin(), path.fibers.end(),
          [&](topology::FiberId f) { return scenario.cuts(f); });
      if (!hit) surviving += wl.mode.data_rate_gbps;
    }
    out.push_back(LinkCapacity{lp.link, link.src, link.dst, surviving});
  }
  return out;
}

std::vector<LinkCapacity> restored_capacities(
    const topology::Network& net, const planning::Plan& plan,
    const restoration::FailureScenario& scenario,
    const restoration::Outcome& outcome) {
  auto capacities = degraded_capacities(net, plan, scenario);
  // Revived capacity per link, clamped to what that link lost.
  std::map<topology::LinkId, double> revived;
  for (const auto& lr : outcome.links) {
    revived[lr.link] = std::min(lr.restored_gbps, lr.affected_gbps);
  }
  for (auto& cap : capacities) {
    const auto it = revived.find(cap.link);
    if (it != revived.end()) cap.capacity_gbps += it->second;
  }
  return capacities;
}

TrafficMatrix random_traffic(const topology::Network& net,
                             const planning::Plan& plan,
                             double load_fraction, Rng& rng, int flow_count) {
  double total_capacity = 0.0;
  for (const auto& lp : plan.links()) {
    total_capacity += lp.provisioned_gbps();
  }
  const double target = total_capacity * load_fraction;

  // Traffic only makes sense between IP-connected sites: compute the
  // connected components of the IP-link graph and draw endpoint pairs
  // within components (union-find).
  std::vector<int> component(
      static_cast<std::size_t>(net.optical.node_count()));
  for (std::size_t i = 0; i < component.size(); ++i) {
    component[i] = static_cast<int>(i);
  }
  const auto find = [&](int n) {
    while (component[static_cast<std::size_t>(n)] != n) {
      n = component[static_cast<std::size_t>(n)] =
          component[static_cast<std::size_t>(
              component[static_cast<std::size_t>(n)])];
    }
    return n;
  };
  for (const auto& link : net.ip.links()) {
    component[static_cast<std::size_t>(find(link.src))] = find(link.dst);
  }

  // Flow endpoints follow the capacity (gravity-style): most traffic runs
  // between directly IP-linked sites, weighted by the provisioned capacity
  // of that adjacency; a minority transits across several IP links.
  std::vector<double> link_weight;
  double weight_sum = 0.0;
  for (const auto& lp : plan.links()) {
    link_weight.push_back(lp.provisioned_gbps());
    weight_sum += lp.provisioned_gbps();
  }

  TrafficMatrix matrix;
  double volume = 0.0;
  // Heavy-tailed raw sizes, then scale the whole matrix to the target.
  int guard = flow_count * 100;
  while (static_cast<int>(matrix.size()) < flow_count && guard-- > 0) {
    Flow f;
    if (weight_sum > 0.0 && rng.chance(0.8)) {
      // Capacity-weighted adjacency flow.
      double pick = rng.uniform(0.0, weight_sum);
      std::size_t li = 0;
      while (li + 1 < link_weight.size() && pick > link_weight[li]) {
        pick -= link_weight[li];
        ++li;
      }
      const auto& link = net.ip.link(plan.links()[li].link);
      f.src = link.src;
      f.dst = link.dst;
    } else {
      // Transit flow across the IP mesh.
      f.src = rng.uniform_int(0, net.optical.node_count() - 1);
      f.dst = f.src;
      while (f.dst == f.src) {
        f.dst = rng.uniform_int(0, net.optical.node_count() - 1);
      }
      if (find(f.src) != find(f.dst)) continue;  // IP-disconnected pair
    }
    f.gbps = rng.lognormal(0.0, 0.8);
    volume += f.gbps;
    matrix.push_back(f);
  }
  if (volume > 0.0) {
    for (auto& f : matrix) {
      f.gbps = std::round(f.gbps * target / volume * 10.0) / 10.0;
    }
  }
  return matrix;
}

}  // namespace flexwan::te
