// IP-layer traffic model on top of the optical plan.
//
// The paper's chain of reasoning (§3.3, §8): fiber cuts remove optical
// capacity; optical restoration revives part of it; whatever stays lost
// "hampers the network's ability to meet traffic demands".  This module
// closes that loop: it derives IP link capacities from a plan, degrades them
// under a failure scenario (optionally crediting a restoration outcome), and
// hands the result to the TE optimizer in routing.h to measure how much
// traffic the network can still serve.
#pragma once

#include <vector>

#include "planning/plan.h"
#include "restoration/restorer.h"
#include "restoration/scenario.h"
#include "topology/builders.h"
#include "util/rng.h"

namespace flexwan::te {

// One end-to-end traffic demand between two sites.
struct Flow {
  topology::NodeId src = -1;
  topology::NodeId dst = -1;
  double gbps = 0.0;
};

using TrafficMatrix = std::vector<Flow>;

// The usable capacity of one IP link under some network condition.
struct LinkCapacity {
  topology::LinkId link = -1;
  topology::NodeId src = -1;
  topology::NodeId dst = -1;
  double capacity_gbps = 0.0;
};

// Healthy capacities: what the plan provisioned per IP link.
std::vector<LinkCapacity> capacities_from_plan(const topology::Network& net,
                                               const planning::Plan& plan);

// Capacities after `scenario`: wavelengths whose optical path crosses a cut
// fiber contribute nothing.
std::vector<LinkCapacity> degraded_capacities(
    const topology::Network& net, const planning::Plan& plan,
    const restoration::FailureScenario& scenario);

// Degraded capacities plus the capacity a restoration outcome revived
// (clamped per link so restoration never credits more than was lost).
std::vector<LinkCapacity> restored_capacities(
    const topology::Network& net, const planning::Plan& plan,
    const restoration::FailureScenario& scenario,
    const restoration::Outcome& outcome);

// A synthetic traffic matrix whose total volume is `load_fraction` of the
// plan's total provisioned capacity, spread over random site pairs with
// heavy-tailed flow sizes.  Deterministic per seed.
TrafficMatrix random_traffic(const topology::Network& net,
                             const planning::Plan& plan,
                             double load_fraction, Rng& rng,
                             int flow_count = 40);

}  // namespace flexwan::te
