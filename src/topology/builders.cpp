#include "topology/builders.h"

#include <array>
#include <cmath>
#include <string>

#include "topology/demand.h"

namespace flexwan::topology {

namespace {

// Rounds a demand to the 100 Gbps granularity the transponder catalog uses.
double round_demand(double gbps) {
  return std::max(100.0, std::round(gbps / 100.0) * 100.0);
}

}  // namespace

Network make_cernet(std::uint64_t seed) {
  Network net;
  net.name = "Cernet";
  auto& g = net.optical;

  struct Edge {
    const char* a;
    const char* b;
    double km;
  };
  // City sites and approximate intercity fiber route lengths (km).
  static constexpr std::array<const char*, 22> kCities = {
      "Beijing",  "Tianjin",   "Shijiazhuang", "Jinan",    "Shenyang",
      "Changchun", "Harbin",   "Zhengzhou",    "Xian",     "Lanzhou",
      "Urumqi",   "Chengdu",   "Chongqing",    "Guiyang",  "Kunming",
      "Wuhan",    "Changsha",  "Guangzhou",    "Nanjing",  "Hefei",
      "Shanghai", "Hangzhou"};
  static constexpr std::array<Edge, 26> kEdges = {{
      {"Beijing", "Tianjin", 140},      {"Beijing", "Shijiazhuang", 300},
      {"Beijing", "Jinan", 420},        {"Beijing", "Shenyang", 700},
      {"Shenyang", "Changchun", 300},   {"Changchun", "Harbin", 250},
      {"Shijiazhuang", "Zhengzhou", 410},
      {"Zhengzhou", "Xian", 480},       {"Xian", "Lanzhou", 620},
      {"Lanzhou", "Urumqi", 1900},      {"Xian", "Chengdu", 700},
      {"Chengdu", "Chongqing", 330},    {"Chongqing", "Guiyang", 350},
      {"Guiyang", "Kunming", 520},      {"Kunming", "Guangzhou", 1400},
      {"Zhengzhou", "Wuhan", 520},      {"Wuhan", "Changsha", 360},
      {"Changsha", "Guangzhou", 710},   {"Wuhan", "Nanjing", 540},
      {"Hefei", "Nanjing", 170},        {"Hefei", "Wuhan", 390},
      {"Nanjing", "Shanghai", 300},     {"Shanghai", "Hangzhou", 180},
      {"Hangzhou", "Guangzhou", 1250},  {"Jinan", "Nanjing", 600},
      {"Tianjin", "Jinan", 320},
  }};

  for (const char* city : kCities) g.add_node(city);
  for (const auto& e : kEdges) {
    g.add_fiber(*g.find_node(e.a), *g.find_node(e.b), e.km);
  }

  // Point-to-point IP overlay (§7.2): one IP link per optical adjacency plus
  // a deterministic sample of multi-hop region pairs.  Demands follow a
  // heavy-tailed distribution as in [49].
  Rng rng(seed);
  for (const auto& e : kEdges) {
    const double demand = round_demand(rng.lognormal(5.6, 0.6));
    net.ip.add_link(*g.find_node(e.a), *g.find_node(e.b), demand,
                    std::string(e.a) + "-" + e.b);
  }
  // Express IP links between major hubs.  Every pair's shortest optical
  // path stays within 3000 km so the 100G-WAN baseline remains feasible at
  // scale 1 (long-haul providers regenerate beyond that; we avoid modelling
  // regeneration by keeping IP links within one optical reach).
  static constexpr std::array<Edge, 8> kExpress = {{
      {"Beijing", "Shanghai", 0},  {"Beijing", "Guangzhou", 0},
      {"Shanghai", "Guangzhou", 0}, {"Beijing", "Wuhan", 0},
      {"Shanghai", "Chengdu", 0},  {"Beijing", "Harbin", 0},
      {"Guangzhou", "Chengdu", 0}, {"Beijing", "Chongqing", 0},
  }};
  for (const auto& e : kExpress) {
    const double demand = round_demand(rng.lognormal(6.1, 0.5));
    net.ip.add_link(*g.find_node(e.a), *g.find_node(e.b), demand,
                    std::string(e.a) + "-" + e.b);
  }
  return net;
}

Network make_tbackbone(std::uint64_t seed, int regions) {
  Network net;
  net.name = "T-backbone";
  auto& g = net.optical;
  Rng rng(seed);

  // Each region is a small metro cluster: 3-4 sites in a ring with short
  // fibers.  Regions sit on a long-haul ring with one chord per few regions.
  std::vector<std::vector<NodeId>> region_nodes(
      static_cast<std::size_t>(regions));
  for (int r = 0; r < regions; ++r) {
    const int sites = rng.uniform_int(3, 4);
    for (int s = 0; s < sites; ++s) {
      region_nodes[static_cast<std::size_t>(r)].push_back(
          g.add_node("R" + std::to_string(r) + "S" + std::to_string(s)));
    }
    // Metro ring with 40-150 km spans.
    const auto& rn = region_nodes[static_cast<std::size_t>(r)];
    for (std::size_t s = 0; s < rn.size(); ++s) {
      const NodeId a = rn[s];
      const NodeId b = rn[(s + 1) % rn.size()];
      if (!g.find_fiber(a, b)) {
        g.add_fiber(a, b, rng.uniform(40.0, 150.0));
      }
    }
  }
  // Long-haul ring joining region gateways (site 0 of each region).
  for (int r = 0; r < regions; ++r) {
    const NodeId a = region_nodes[static_cast<std::size_t>(r)][0];
    const NodeId b =
        region_nodes[static_cast<std::size_t>((r + 1) % regions)][0];
    g.add_fiber(a, b, rng.uniform(500.0, 1100.0));
  }
  // Chords between opposite regions for path diversity.
  for (int r = 0; r + regions / 2 < regions; ++r) {
    const NodeId a = region_nodes[static_cast<std::size_t>(r)][1];
    const NodeId b =
        region_nodes[static_cast<std::size_t>(r + regions / 2)][1];
    g.add_fiber(a, b, rng.uniform(900.0, 1600.0));
  }

  // IP links: ~60 % intra-region (short optical paths), ~25 % to an adjacent
  // region, ~15 % long-haul.  This reproduces the Fig. 2(a) shape where about
  // half of all optical paths are under 200 km.  Intra-region links carry
  // heavier demands (nearby data-center regions exchange the most traffic),
  // which is where rate-adaptive hardware pays off.
  const int total_links = regions * 6;
  for (int i = 0; i < total_links; ++i) {
    const double kind = rng.uniform(0.0, 1.0);
    const int r = rng.uniform_int(0, regions - 1);
    const auto& rn = region_nodes[static_cast<std::size_t>(r)];
    NodeId a = rn[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(rn.size()) - 1))];
    NodeId b = a;
    // Intra-region (data-center-to-data-center) links carry ~1 Tbps today;
    // inter-region transit is an order of magnitude lighter.
    double demand_mu = 6.6;
    if (kind < 0.60) {
      // Intra-region pair.
      while (b == a) {
        b = rn[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(rn.size()) - 1))];
      }
    } else {
      const int hop = kind < 0.85 ? 1 : rng.uniform_int(2, regions / 2);
      const auto& other =
          region_nodes[static_cast<std::size_t>((r + hop) % regions)];
      b = other[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(other.size()) - 1))];
      demand_mu = hop == 1 ? 5.4 : 5.0;
    }
    const double demand = round_demand(rng.lognormal(demand_mu, 0.6));
    net.ip.add_link(a, b, demand);
  }
  return net;
}

Network make_linear_chain(int hops, double span_km) {
  Network net;
  net.name = "chain" + std::to_string(hops);
  auto& g = net.optical;
  NodeId prev = g.add_node("N0");
  for (int i = 1; i <= hops; ++i) {
    const NodeId cur = g.add_node("N" + std::to_string(i));
    g.add_fiber(prev, cur, span_km);
    prev = cur;
  }
  if (hops > 0) {
    net.ip.add_link(0, prev, 0.0, "end-to-end");
  }
  return net;
}

Network random_backbone(const RandomBackboneParams& params, Rng& rng) {
  Network net;
  net.name = "random";
  auto& g = net.optical;
  for (int i = 0; i < params.nodes; ++i) {
    g.add_node("N" + std::to_string(i));
  }
  // Random spanning tree: attach each node i > 0 to a random earlier node.
  for (int i = 1; i < params.nodes; ++i) {
    const NodeId j = rng.uniform_int(0, i - 1);
    g.add_fiber(i, j, rng.uniform(params.min_fiber_km, params.max_fiber_km));
  }
  // Extra chords.
  for (int i = 0; i < params.nodes; ++i) {
    for (int j = i + 2; j < params.nodes; ++j) {
      if (!g.find_fiber(i, j) && rng.chance(params.extra_edge_prob)) {
        g.add_fiber(i, j,
                    rng.uniform(params.min_fiber_km, params.max_fiber_km));
      }
    }
  }
  for (int l = 0; l < params.ip_links; ++l) {
    NodeId a = rng.uniform_int(0, params.nodes - 1);
    NodeId b = a;
    while (b == a) b = rng.uniform_int(0, params.nodes - 1);
    const double demand = round_demand(
        rng.uniform(params.min_demand_gbps, params.max_demand_gbps));
    net.ip.add_link(a, b, demand);
  }
  return net;
}

}  // namespace flexwan::topology
