// Topology builders.
//
// The paper evaluates on two networks: the (confidential) Tencent T-backbone
// and the public Cernet research network (§7.2).  We provide:
//  * make_cernet()      — a 22-node Chinese research-network topology with
//                         realistic inter-city fiber distances,
//  * make_tbackbone()   — a synthetic stand-in for the production backbone
//                         whose optical-path-length distribution matches
//                         Fig. 2(a): ~50 % of paths below 200 km with a tail
//                         beyond 2000 km (metro clusters + long-haul trunks),
//  * make_linear_chain()— an N-hop chain for testbed-style experiments,
//  * random_backbone()  — a parameterised generator for property tests.
#pragma once

#include "topology/graph.h"
#include "util/rng.h"

namespace flexwan::topology {

// A bundled network instance: the optical substrate plus its IP overlay.
struct Network {
  std::string name;
  OpticalTopology optical;
  IpTopology ip;
};

// The Cernet topology (paper §7.2): long median optical paths.
// IP links are generated point-to-point over the optical adjacencies plus a
// deterministic sample of multi-hop pairs, with heavy-tailed demands.
Network make_cernet(std::uint64_t seed = 7);

// Synthetic T-backbone: `regions` metro clusters of 3-4 closely-spaced sites
// (40-150 km) joined by long-haul trunks (500-1600 km).  IP links are mostly
// intra-region, reproducing the short-path-dominated distribution of
// Fig. 2(a).
Network make_tbackbone(std::uint64_t seed = 11, int regions = 8);

// A linear chain of `hops` fibers, each `span_km` long.  Used by the
// testbed simulation (§6) where fiber bundles are added to sweep distance.
Network make_linear_chain(int hops, double span_km);

// Parameters for the random generator used in property tests.
struct RandomBackboneParams {
  int nodes = 12;
  double extra_edge_prob = 0.3;   // chance of each non-tree candidate edge
  double min_fiber_km = 80.0;
  double max_fiber_km = 1200.0;
  int ip_links = 16;
  double min_demand_gbps = 100.0;
  double max_demand_gbps = 2400.0;
};

// Random connected backbone (spanning tree + extra chords) with random IP
// links.  Demands are rounded to 100 Gbps multiples.
Network random_backbone(const RandomBackboneParams& params, Rng& rng);

}  // namespace flexwan::topology
