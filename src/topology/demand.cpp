#include "topology/demand.h"

#include <algorithm>
#include <cmath>

namespace flexwan::topology {

double draw_demand(const DemandParams& params, Rng& rng) {
  const double raw = rng.lognormal(params.mu, params.sigma);
  const double rounded =
      std::round(raw / params.granularity_gbps) * params.granularity_gbps;
  return std::max(params.min_gbps, rounded);
}

}  // namespace flexwan::topology
