// Demand-model helpers shared by the topology builders and benches.
#pragma once

#include "topology/graph.h"
#include "util/rng.h"

namespace flexwan::topology {

// Parameters of the heavy-tailed demand distribution used when the paper's
// production demands are unavailable (they are confidential).  Lognormal
// matches the shape used by prior WAN studies the paper builds on [49].
struct DemandParams {
  double mu = 6.5;     // underlying normal mean (exp(6.5) ~ 665 Gbps)
  double sigma = 0.7;  // underlying normal stddev
  double granularity_gbps = 100.0;
  double min_gbps = 100.0;
};

// Draws one demand, rounded to granularity and clamped to the minimum.
double draw_demand(const DemandParams& params, Rng& rng);

}  // namespace flexwan::topology
