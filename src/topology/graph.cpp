#include "topology/graph.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace flexwan::topology {

NodeId OpticalTopology::add_node(std::string name) {
  nodes_.push_back(Node{std::move(name)});
  adjacency_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

FiberId OpticalTopology::add_fiber(NodeId a, NodeId b, double length_km) {
  if (a < 0 || b < 0 || a >= node_count() || b >= node_count() || a == b) {
    throw std::invalid_argument("add_fiber: bad endpoints");
  }
  if (length_km <= 0.0) {
    throw std::invalid_argument("add_fiber: length must be positive");
  }
  fibers_.push_back(Fiber{a, b, length_km});
  const auto id = static_cast<FiberId>(fibers_.size() - 1);
  adjacency_[static_cast<std::size_t>(a)].push_back(id);
  adjacency_[static_cast<std::size_t>(b)].push_back(id);
  return id;
}

std::optional<NodeId> OpticalTopology::find_node(std::string_view name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<NodeId>(i);
  }
  return std::nullopt;
}

std::span<const FiberId> OpticalTopology::incident(NodeId n) const {
  return adjacency_[static_cast<std::size_t>(n)];
}

std::optional<FiberId> OpticalTopology::find_fiber(NodeId a, NodeId b) const {
  for (FiberId f : incident(a)) {
    if (fiber(f).touches(b)) return f;
  }
  return std::nullopt;
}

bool Path::uses_fiber(FiberId f) const {
  return std::find(fibers.begin(), fibers.end(), f) != fibers.end();
}

LinkId IpTopology::add_link(NodeId src, NodeId dst, double demand_gbps,
                            std::string name) {
  const auto id = static_cast<LinkId>(links_.size());
  if (name.empty()) {
    name = "link" + std::to_string(id);
  }
  links_.push_back(IpLink{id, src, dst, demand_gbps, std::move(name)});
  return id;
}

IpTopology IpTopology::scaled(double factor) const {
  IpTopology out;
  for (const auto& l : links_) {
    out.add_link(l.src, l.dst, l.demand_gbps * factor, l.name);
  }
  return out;
}

double IpTopology::total_demand_gbps() const {
  double total = 0.0;
  for (const auto& l : links_) total += l.demand_gbps;
  return total;
}

}  // namespace flexwan::topology
