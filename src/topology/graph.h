// Optical- and IP-layer topology model.
//
// The optical topology Go(Vo, Eo) has ROADM sites as nodes and fiber spans as
// edges (paper §5 inputs).  The IP topology overlays it: an IP link e between
// two routers demands c_e Gbps and is realised by wavelengths travelling one
// or more optical paths P_{e,k} through Go.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/expected.h"

namespace flexwan::topology {

using NodeId = int;
using FiberId = int;
using LinkId = int;

// A ROADM site.
struct Node {
  std::string name;
};

// An undirected fiber between two ROADM sites.  `length_km` drives both the
// optical-reach constraint and the amplifier count in the phy simulation.
struct Fiber {
  NodeId a = -1;
  NodeId b = -1;
  double length_km = 0.0;

  NodeId other(NodeId n) const { return n == a ? b : a; }
  bool touches(NodeId n) const { return n == a || n == b; }
};

// The optical topology Go(Vo, Eo).
class OpticalTopology {
 public:
  NodeId add_node(std::string name);
  // Adds an undirected fiber; length must be positive.
  FiberId add_fiber(NodeId a, NodeId b, double length_km);

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int fiber_count() const { return static_cast<int>(fibers_.size()); }

  const Node& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  const Fiber& fiber(FiberId id) const { return fibers_[static_cast<std::size_t>(id)]; }
  std::span<const Fiber> fibers() const { return fibers_; }

  // Node id by name, if present.
  std::optional<NodeId> find_node(std::string_view name) const;

  // Fiber ids incident to `n`.
  std::span<const FiberId> incident(NodeId n) const;

  // Fiber between a and b (either orientation), if one exists.
  std::optional<FiberId> find_fiber(NodeId a, NodeId b) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Fiber> fibers_;
  std::vector<std::vector<FiberId>> adjacency_;
};

// An optical path: the ordered fibers a wavelength traverses, with the node
// sequence and total length cached for constraint checks.
struct Path {
  std::vector<NodeId> nodes;    // nodes.size() == fibers.size() + 1
  std::vector<FiberId> fibers;  // ordered source -> destination
  double length_km = 0.0;

  bool empty() const { return fibers.empty(); }
  int hop_count() const { return static_cast<int>(fibers.size()); }
  bool uses_fiber(FiberId f) const;

  // Exact field-wise equality (restoration's oracle-parity checks).
  friend bool operator==(const Path&, const Path&) = default;
};

// An IP link: a router adjacency demanding `demand_gbps` of bandwidth
// capacity, provisioned over optical paths between `src` and `dst` sites.
struct IpLink {
  LinkId id = -1;
  NodeId src = -1;
  NodeId dst = -1;
  double demand_gbps = 0.0;
  std::string name;
};

// The IP overlay: the set of IP links sharing one optical topology.
class IpTopology {
 public:
  LinkId add_link(NodeId src, NodeId dst, double demand_gbps,
                  std::string name = {});

  int link_count() const { return static_cast<int>(links_.size()); }
  const IpLink& link(LinkId id) const { return links_[static_cast<std::size_t>(id)]; }
  std::span<const IpLink> links() const { return links_; }

  // Scales every demand by `factor` (the paper's "bandwidth capacity scale").
  IpTopology scaled(double factor) const;

  double total_demand_gbps() const;

 private:
  std::vector<IpLink> links_;
};

}  // namespace flexwan::topology
