#include "topology/io.h"

#include <sstream>

namespace flexwan::topology {

namespace {

Error parse_error(int line, const std::string& what) {
  return Error::make("parse_error",
                     "line " + std::to_string(line) + ": " + what);
}

}  // namespace

Expected<Network> load_network(const std::string& text) {
  Network net;
  net.name = "unnamed";
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword) || keyword[0] == '#') continue;
    if (keyword == "network") {
      if (!(ls >> net.name)) return parse_error(line_no, "missing name");
    } else if (keyword == "node") {
      std::string name;
      if (!(ls >> name)) return parse_error(line_no, "missing node name");
      if (net.optical.find_node(name)) {
        return parse_error(line_no, "duplicate node " + name);
      }
      net.optical.add_node(name);
    } else if (keyword == "fiber") {
      std::string a;
      std::string b;
      double km = 0.0;
      if (!(ls >> a >> b >> km)) {
        return parse_error(line_no, "expected: fiber <a> <b> <km>");
      }
      const auto na = net.optical.find_node(a);
      const auto nb = net.optical.find_node(b);
      if (!na || !nb) return parse_error(line_no, "unknown node");
      if (km <= 0.0) return parse_error(line_no, "non-positive length");
      net.optical.add_fiber(*na, *nb, km);
    } else if (keyword == "link") {
      std::string a;
      std::string b;
      double gbps = 0.0;
      std::string name;
      if (!(ls >> a >> b >> gbps)) {
        return parse_error(line_no, "expected: link <a> <b> <gbps> [name]");
      }
      ls >> name;  // optional
      const auto na = net.optical.find_node(a);
      const auto nb = net.optical.find_node(b);
      if (!na || !nb) return parse_error(line_no, "unknown node");
      if (gbps < 0.0) return parse_error(line_no, "negative demand");
      net.ip.add_link(*na, *nb, gbps, name);
    } else {
      return parse_error(line_no, "unknown keyword " + keyword);
    }
  }
  return net;
}

std::string save_network(const Network& net) {
  std::ostringstream os;
  os << "network " << net.name << "\n";
  for (int n = 0; n < net.optical.node_count(); ++n) {
    os << "node " << net.optical.node(n).name << "\n";
  }
  for (const auto& f : net.optical.fibers()) {
    os << "fiber " << net.optical.node(f.a).name << " "
       << net.optical.node(f.b).name << " " << f.length_km << "\n";
  }
  for (const auto& l : net.ip.links()) {
    os << "link " << net.optical.node(l.src).name << " "
       << net.optical.node(l.dst).name << " " << l.demand_gbps << " "
       << l.name << "\n";
  }
  return os.str();
}

std::string to_dot(const Network& net) {
  std::ostringstream os;
  os << "graph \"" << net.name << "\" {\n  layout=neato;\n";
  for (int n = 0; n < net.optical.node_count(); ++n) {
    os << "  \"" << net.optical.node(n).name << "\" [shape=box];\n";
  }
  for (const auto& f : net.optical.fibers()) {
    os << "  \"" << net.optical.node(f.a).name << "\" -- \""
       << net.optical.node(f.b).name << "\" [label=\"" << f.length_km
       << "km\"];\n";
  }
  for (const auto& l : net.ip.links()) {
    os << "  \"" << net.optical.node(l.src).name << "\" -- \""
       << net.optical.node(l.dst).name << "\" [style=dashed,color=blue,"
       << "label=\"" << l.demand_gbps << "G\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace flexwan::topology
