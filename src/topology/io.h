// Text serialization for networks, so users can bring their own topology
// and demands instead of the built-in builders.  The format is line based:
//
//   # comment / blank lines ignored
//   network <name>
//   node <name>
//   fiber <nodeA> <nodeB> <length-km>
//   link <nodeA> <nodeB> <demand-gbps> [link-name]
//
// save_network() emits exactly this format; load_network() round-trips it.
// to_dot() renders the optical layer (fibers labelled with km) and the IP
// overlay (dashed edges labelled with Gbps) for graphviz.
#pragma once

#include <string>

#include "topology/builders.h"
#include "util/expected.h"

namespace flexwan::topology {

// Parses a network description.  Fails with "parse_error" (message carries
// the line number) on malformed input, unknown node references, or
// duplicate node names.
Expected<Network> load_network(const std::string& text);

// Serializes in the load_network() format.
std::string save_network(const Network& net);

// Graphviz rendering of both layers.
std::string to_dot(const Network& net);

}  // namespace flexwan::topology
