#include "topology/ksp.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

namespace flexwan::topology {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct QueueEntry {
  double dist;
  NodeId node;
  bool operator>(const QueueEntry& o) const { return dist > o.dist; }
};

}  // namespace

Expected<Path> shortest_path(const OpticalTopology& topo, NodeId src,
                             NodeId dst, std::span<const FiberId> excluded) {
  const auto n = static_cast<std::size_t>(topo.node_count());
  if (src < 0 || dst < 0 || src >= topo.node_count() ||
      dst >= topo.node_count()) {
    return Error::make("bad_node", "endpoint outside topology");
  }
  std::vector<std::uint8_t> cut(static_cast<std::size_t>(topo.fiber_count()), 0);
  for (FiberId f : excluded) {
    if (f >= 0 && f < topo.fiber_count()) cut[static_cast<std::size_t>(f)] = 1;
  }

  std::vector<double> dist(n, kInf);
  std::vector<FiberId> via(n, -1);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[static_cast<std::size_t>(src)] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == dst) break;
    for (FiberId f : topo.incident(u)) {
      if (cut[static_cast<std::size_t>(f)]) continue;
      const auto& fib = topo.fiber(f);
      const NodeId v = fib.other(u);
      const double nd = d + fib.length_km;
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        via[static_cast<std::size_t>(v)] = f;
        pq.push({nd, v});
      }
    }
  }
  if (dist[static_cast<std::size_t>(dst)] == kInf) {
    return Error::make("unreachable", "no optical path from " +
                                          topo.node(src).name + " to " +
                                          topo.node(dst).name);
  }

  Path path;
  path.length_km = dist[static_cast<std::size_t>(dst)];
  NodeId cur = dst;
  while (cur != src) {
    const FiberId f = via[static_cast<std::size_t>(cur)];
    path.fibers.push_back(f);
    path.nodes.push_back(cur);
    cur = topo.fiber(f).other(cur);
  }
  path.nodes.push_back(src);
  std::reverse(path.fibers.begin(), path.fibers.end());
  std::reverse(path.nodes.begin(), path.nodes.end());
  return path;
}

std::vector<Path> k_shortest_paths(const OpticalTopology& topo, NodeId src,
                                   NodeId dst, int k,
                                   std::span<const FiberId> excluded) {
  std::vector<Path> result;
  if (k <= 0) return result;

  auto first = shortest_path(topo, src, dst, excluded);
  if (!first) return result;
  result.push_back(std::move(first.value()));

  // Candidate paths ordered by length; de-duplicated by fiber sequence.
  auto cmp = [](const Path& a, const Path& b) {
    return a.length_km < b.length_km ||
           (a.length_km == b.length_km && a.fibers < b.fibers);
  };
  std::set<Path, decltype(cmp)> candidates(cmp);

  std::vector<FiberId> removed(excluded.begin(), excluded.end());
  for (int ki = 1; ki < k; ++ki) {
    const Path& prev = result.back();
    // Each node of the previous path (except the last) is a spur node.
    for (std::size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const NodeId spur = prev.nodes[i];
      // Root: prefix of prev up to the spur node.
      Path root;
      root.nodes.assign(prev.nodes.begin(),
                        prev.nodes.begin() + static_cast<long>(i) + 1);
      root.fibers.assign(prev.fibers.begin(),
                         prev.fibers.begin() + static_cast<long>(i));
      root.length_km = 0.0;
      for (FiberId f : root.fibers) root.length_km += topo.fiber(f).length_km;

      // Remove fibers that would recreate an already-found path sharing this
      // root, plus the base exclusions.
      std::vector<FiberId> cut = removed;
      for (const Path& found : result) {
        if (found.fibers.size() > i &&
            std::equal(root.fibers.begin(), root.fibers.end(),
                       found.fibers.begin())) {
          cut.push_back(found.fibers[i]);
        }
      }
      for (const Path& found : candidates) {
        if (found.fibers.size() > i &&
            std::equal(root.fibers.begin(), root.fibers.end(),
                       found.fibers.begin())) {
          cut.push_back(found.fibers[i]);
        }
      }
      // Remove fibers touching root nodes (except the spur) to keep the
      // resulting path loopless.
      for (std::size_t j = 0; j < i; ++j) {
        for (FiberId f : topo.incident(prev.nodes[j])) cut.push_back(f);
      }

      auto spur_path = shortest_path(topo, spur, dst, cut);
      if (!spur_path) continue;

      Path total = root;
      total.fibers.insert(total.fibers.end(), spur_path->fibers.begin(),
                          spur_path->fibers.end());
      total.nodes.insert(total.nodes.end(), spur_path->nodes.begin() + 1,
                         spur_path->nodes.end());
      total.length_km += spur_path->length_km;
      candidates.insert(std::move(total));
    }
    if (candidates.empty()) break;
    // Pop the best candidate not already in result.
    bool advanced = false;
    while (!candidates.empty()) {
      Path best = *candidates.begin();
      candidates.erase(candidates.begin());
      const bool dup = std::any_of(
          result.begin(), result.end(),
          [&](const Path& p) { return p.fibers == best.fibers; });
      if (!dup) {
        result.push_back(std::move(best));
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  return result;
}

}  // namespace flexwan::topology
