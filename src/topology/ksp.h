// Shortest-path and K-shortest-paths (Yen's algorithm) over the optical
// topology.  Algorithm 1 pre-computes the K optimal optical paths P_{e,k}
// for every IP link with KSP (paper §5); restoration re-runs KSP on the
// residual topology after a cut (§8).
#pragma once

#include <span>
#include <vector>

#include "topology/graph.h"
#include "util/expected.h"

namespace flexwan::topology {

// Dijkstra shortest path by fiber length.  Fibers in `excluded` are treated
// as cut (used for restoration and inside Yen's spur computation).
// Fails with code "unreachable" when no path exists.
Expected<Path> shortest_path(const OpticalTopology& topo, NodeId src,
                             NodeId dst, std::span<const FiberId> excluded = {});

// Yen's K-shortest loopless paths, ordered by increasing length.  Returns
// fewer than k paths when the graph does not contain k distinct ones.
std::vector<Path> k_shortest_paths(const OpticalTopology& topo, NodeId src,
                                   NodeId dst, int k,
                                   std::span<const FiberId> excluded = {});

}  // namespace flexwan::topology
