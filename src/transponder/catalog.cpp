#include "transponder/catalog.h"

#include <algorithm>

namespace flexwan::transponder {

Mode derive_mode(double rate_gbps, double spacing_ghz, double reach_km) {
  Mode m;
  m.data_rate_gbps = rate_gbps;
  m.spacing_ghz = spacing_ghz;
  m.reach_km = reach_km;
  // Dual-polarisation symbol rate: ~80 % of the spacing is usable baud.
  m.baud_gbd = spacing_ghz * 0.8;
  const double se = rate_gbps / spacing_ghz;  // bits/s/Hz across 2 pols
  if (se <= 1.5) {
    m.modulation = Modulation::kBpsk;
  } else if (se <= 2.7) {
    m.modulation = Modulation::kQpsk;
  } else if (se <= 4.0) {
    m.modulation = Modulation::k8Qam;
  } else if (se <= 5.0) {
    m.modulation = Modulation::kPcs16Qam;
  } else {
    m.modulation = Modulation::kPcs64Qam;
  }
  m.fec_overhead = reach_km >= 1500.0 ? 0.27 : 0.15;
  return m;
}

Catalog::Catalog(std::string name, std::vector<Mode> modes)
    : name_(std::move(name)), modes_(std::move(modes)) {
  for (const Mode& m : modes_) reach_steps_.push_back(m.reach_km);
  std::sort(reach_steps_.begin(), reach_steps_.end());
  reach_steps_.erase(std::unique(reach_steps_.begin(), reach_steps_.end()),
                     reach_steps_.end());
  feasible_by_bucket_.reserve(reach_steps_.size());
  for (double step : reach_steps_) {
    std::vector<Mode> bucket;
    for (const Mode& m : modes_) {
      if (m.reaches(step)) bucket.push_back(m);
    }
    feasible_by_bucket_.push_back(std::move(bucket));
  }
}

const std::vector<Mode>& Catalog::feasible(double distance_km) const {
  // Any distance in (reach_steps_[b-1], reach_steps_[b]] admits exactly the
  // modes that reach reach_steps_[b]: feasibility can only flip at a reach
  // value present in the catalog.
  const auto it = std::lower_bound(reach_steps_.begin(), reach_steps_.end(),
                                   distance_km);
  if (it == reach_steps_.end()) return no_modes_;
  return feasible_by_bucket_[static_cast<std::size_t>(
      it - reach_steps_.begin())];
}

std::optional<Mode> Catalog::max_rate_mode(double distance_km) const {
  std::optional<Mode> best;
  for (const Mode& m : modes_) {
    if (!m.reaches(distance_km)) continue;
    if (!best || m.data_rate_gbps > best->data_rate_gbps ||
        (m.data_rate_gbps == best->data_rate_gbps &&
         m.spacing_ghz < best->spacing_ghz)) {
      best = m;
    }
  }
  return best;
}

std::optional<Mode> Catalog::narrowest_mode(double distance_km,
                                            double min_rate_gbps) const {
  std::optional<Mode> best;
  for (const Mode& m : modes_) {
    if (!m.reaches(distance_km) || m.data_rate_gbps < min_rate_gbps) continue;
    if (!best || m.spacing_ghz < best->spacing_ghz ||
        (m.spacing_ghz == best->spacing_ghz &&
         m.data_rate_gbps > best->data_rate_gbps)) {
      best = m;
    }
  }
  return best;
}

double Catalog::max_reach_km() const {
  double best = 0.0;
  for (const Mode& m : modes_) best = std::max(best, m.reach_km);
  return best;
}

const Catalog& fixed_grid_100g() {
  static const Catalog catalog("100G-WAN", {
      derive_mode(100, 50, 3000),
  });
  return catalog;
}

const Catalog& bvt_radwan() {
  static const Catalog catalog("RADWAN", {
      derive_mode(100, 75, 5000),
      derive_mode(200, 75, 2000),
      derive_mode(300, 75, 1100),
  });
  return catalog;
}

const Catalog& svt_flexwan() {
  // Paper Table 2: data rates and optical reaches (km) of the SVT per
  // channel spacing.  "/" cells are omitted.
  static const Catalog catalog("FlexWAN", {
      // 50 GHz
      derive_mode(100, 50.0, 3000), derive_mode(200, 50.0, 1000),
      // 62.5 GHz
      derive_mode(200, 62.5, 1500),
      // 75 GHz
      derive_mode(100, 75.0, 5000), derive_mode(200, 75.0, 2000),
      derive_mode(300, 75.0, 1100), derive_mode(400, 75.0, 600),
      // 87.5 GHz
      derive_mode(300, 87.5, 1500), derive_mode(400, 87.5, 1000),
      derive_mode(500, 87.5, 600), derive_mode(600, 87.5, 300),
      // 100 GHz
      derive_mode(300, 100.0, 2000), derive_mode(400, 100.0, 1500),
      derive_mode(500, 100.0, 900), derive_mode(600, 100.0, 400),
      derive_mode(700, 100.0, 200),
      // 112.5 GHz
      derive_mode(400, 112.5, 1600), derive_mode(500, 112.5, 1100),
      derive_mode(600, 112.5, 500), derive_mode(700, 112.5, 300),
      derive_mode(800, 112.5, 150),
      // 125 GHz
      derive_mode(400, 125.0, 1700), derive_mode(500, 125.0, 1200),
      derive_mode(600, 125.0, 600), derive_mode(700, 125.0, 350),
      derive_mode(800, 125.0, 200),
      // 137.5 GHz
      derive_mode(400, 137.5, 1800), derive_mode(500, 137.5, 1300),
      derive_mode(600, 137.5, 700), derive_mode(700, 137.5, 450),
      derive_mode(800, 137.5, 250),
      // 150 GHz
      derive_mode(400, 150.0, 1900), derive_mode(500, 150.0, 1400),
      derive_mode(600, 150.0, 800), derive_mode(700, 150.0, 500),
      derive_mode(800, 150.0, 300),
  });
  return catalog;
}

}  // namespace flexwan::transponder
