// Transponder capability catalogs for the three backbone generations the
// paper compares (§7.1 benchmark schemes, Appendix A.1/A.2):
//  * fixed_grid_100g() — 100G-WAN: a single 100 Gbps / 50 GHz / 3000 km mode,
//  * bvt_radwan()      — RADWAN's bandwidth-variable transponder: 100/200/300
//                        Gbps at a rigid 75 GHz spacing,
//  * svt_flexwan()     — FlexWAN's spacing-variable transponder: the full
//                        Table 2 grid measured on the production testbed.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "transponder/mode.h"

namespace flexwan::transponder {

// An immutable, queryable set of operating modes of one transponder family.
class Catalog {
 public:
  Catalog(std::string name, std::vector<Mode> modes);

  const std::string& name() const { return name_; }
  std::span<const Mode> modes() const { return modes_; }
  std::size_t size() const { return modes_.size(); }

  // Modes whose optical reach covers `distance_km` (Algorithm 1's reach
  // constraint (2)), in catalog order.  Served from a distance-bucketed
  // memo precomputed at construction (feasibility only changes at the
  // catalog's distinct reach values), so the planner's split-path
  // re-derivation and the restorer's inner loop stop re-filtering the mode
  // table per call.  The memo is immutable after construction, making
  // lookups safe from concurrent threads.
  const std::vector<Mode>& feasible(double distance_km) const;

  // Highest data rate achievable at `distance_km`; among equal-rate modes the
  // one with the narrowest spacing.  Empty when the distance exceeds every
  // mode's reach.
  std::optional<Mode> max_rate_mode(double distance_km) const;

  // The narrowest-spacing mode that reaches `distance_km` with data rate of
  // at least `min_rate_gbps` (restoration uses this to revive full capacity
  // on longer paths by widening the channel, §3.3).
  std::optional<Mode> narrowest_mode(double distance_km,
                                     double min_rate_gbps) const;

  // Overall maximum reach of any mode (feasibility cutoff for a family).
  double max_reach_km() const;

 private:
  std::string name_;
  std::vector<Mode> modes_;
  // Distance-bucketed feasibility memo: reach_steps_ holds the sorted
  // distinct reaches; feasible_by_bucket_[b] caches the modes (catalog
  // order) feasible for any distance in (reach_steps_[b-1], reach_steps_[b]].
  std::vector<double> reach_steps_;
  std::vector<std::vector<Mode>> feasible_by_bucket_;
  std::vector<Mode> no_modes_;  // beyond max reach / empty catalog
};

// Derives the physical knobs (modulation, FEC, baud) for a capability row:
// the DSP's baud tracks the passband, the spectral efficiency picks the
// modulation format, long-reach rows get the stronger FEC.  Used by the
// built-in catalogs and by catalog_io.h loaders.
Mode derive_mode(double rate_gbps, double spacing_ghz, double reach_km);

// 100G-WAN fixed-grid catalog [27, 28].
const Catalog& fixed_grid_100g();

// RADWAN BVT catalog adapted to 75 GHz spacing (paper §2).
const Catalog& bvt_radwan();

// FlexWAN SVT catalog: the full Table 2 measurement grid.
const Catalog& svt_flexwan();

}  // namespace flexwan::transponder
