#include "transponder/catalog_io.h"

#include <sstream>

namespace flexwan::transponder {

namespace {

Error parse_error(int line, const std::string& what) {
  return Error::make("parse_error",
                     "line " + std::to_string(line) + ": " + what);
}

}  // namespace

Expected<Catalog> load_catalog(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  std::string name;
  std::vector<Mode> modes;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword) || keyword[0] == '#') continue;
    if (keyword == "catalog") {
      if (!(ls >> name)) return parse_error(line_no, "missing catalog name");
    } else if (keyword == "mode") {
      double rate = 0;
      double spacing = 0;
      double reach = 0;
      if (!(ls >> rate >> spacing >> reach)) {
        return parse_error(line_no,
                           "expected: mode <gbps> <ghz> <reach-km>");
      }
      if (rate <= 0 || spacing <= 0 || reach <= 0) {
        return parse_error(line_no, "values must be positive");
      }
      for (const auto& m : modes) {
        if (m.data_rate_gbps == rate && m.spacing_ghz == spacing) {
          return parse_error(line_no, "duplicate (rate, spacing) row");
        }
      }
      modes.push_back(derive_mode(rate, spacing, reach));
    } else {
      return parse_error(line_no, "unknown keyword " + keyword);
    }
  }
  if (name.empty()) {
    return parse_error(line_no, "missing 'catalog <name>' header");
  }
  if (modes.empty()) {
    return parse_error(line_no, "catalog has no modes");
  }
  return Catalog(std::move(name), std::move(modes));
}

std::string save_catalog(const Catalog& catalog) {
  std::ostringstream os;
  os << "catalog " << catalog.name() << "\n";
  for (const auto& m : catalog.modes()) {
    os << "mode " << m.data_rate_gbps << " " << m.spacing_ghz << " "
       << m.reach_km << "\n";
  }
  return os.str();
}

}  // namespace flexwan::transponder
