// Text format for transponder capability catalogs, so downstream users can
// plan with their own vendor's specification sheet instead of the built-in
// Table 2.  One mode per line:
//
//   catalog <name>
//   mode <rate-gbps> <spacing-ghz> <reach-km>
//
// Modulation/FEC/baud knobs are derived the same way the built-in catalogs
// derive them (spectral efficiency picks the format, reach picks the FEC).
#pragma once

#include <string>

#include "transponder/catalog.h"
#include "util/expected.h"

namespace flexwan::transponder {

// Parses a catalog document; fails with "parse_error" (line number in the
// message) on malformed input, non-positive numbers, or duplicate
// (rate, spacing) rows.
Expected<Catalog> load_catalog(const std::string& text);

// Serializes a catalog in the load_catalog() format.
std::string save_catalog(const Catalog& catalog);

}  // namespace flexwan::transponder
