#include "transponder/mode.h"

#include <sstream>

namespace flexwan::transponder {

std::string to_string(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kQpsk: return "QPSK";
    case Modulation::k8Qam: return "8QAM";
    case Modulation::k16Qam: return "16QAM";
    case Modulation::kPcs16Qam: return "PCS-16QAM";
    case Modulation::kPcs64Qam: return "PCS-64QAM";
  }
  return "?";
}

double bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 1.0;
    case Modulation::kQpsk: return 2.0;
    case Modulation::k8Qam: return 3.0;
    case Modulation::k16Qam: return 4.0;
    case Modulation::kPcs16Qam: return 3.5;   // shaped 16QAM
    case Modulation::kPcs64Qam: return 5.0;   // shaped 64QAM
  }
  return 0.0;
}

std::string Mode::describe() const {
  std::ostringstream os;
  os << data_rate_gbps << "G@" << spacing_ghz << "GHz("
     << to_string(modulation) << ",reach " << reach_km << "km)";
  return os.str();
}

}  // namespace flexwan::transponder
