// Transponder operating modes.
//
// A mode is one row of the capability table of a transponder family: the
// (data rate, channel spacing, optical reach) triple of Algorithm 1's
// (d_j, Y_j, l_j), plus the physical knobs inside the SVT that realise it —
// modulation format, FEC overhead, and baud rate (paper §4.2, Fig. 7b).
#pragma once

#include <string>

#include "spectrum/grid.h"

namespace flexwan::transponder {

// Modulation formats supported by the DSP workflows.  Pcs* denotes
// probabilistic constellation shaping [20], which provides the
// finer-granularity data rates of the SVT.
enum class Modulation {
  kBpsk,
  kQpsk,
  k8Qam,
  k16Qam,
  kPcs16Qam,
  kPcs64Qam,
};

std::string to_string(Modulation m);

// Nominal information bits per symbol per polarisation for a format.  PCS
// formats report the shaped (fractional) value.
double bits_per_symbol(Modulation m);

// One operating mode of a transponder family: the j-th format of Algorithm 1.
struct Mode {
  double data_rate_gbps = 0.0;  // d_j
  double spacing_ghz = 0.0;     // Y_j (channel spacing)
  double reach_km = 0.0;        // l_j (optical reach)
  Modulation modulation = Modulation::kQpsk;
  double fec_overhead = 0.15;   // redundant-data ratio in the FEC module
  double baud_gbd = 50.0;       // symbol rate chosen by the DSP

  // Channel spacing in WSS pixels (continuous pixels required in the OLS).
  int pixels() const { return spectrum::pixels_for_spacing(spacing_ghz); }

  // Link spectral efficiency: data rate / spectrum width (paper §7.1).
  double spectral_efficiency() const {
    return spacing_ghz > 0.0 ? data_rate_gbps / spacing_ghz : 0.0;
  }

  // Whether this mode can serve a path of the given length error-free.
  bool reaches(double distance_km) const { return reach_km >= distance_km; }

  // "100G@75GHz(QPSK,reach 5000km)" for logs and bench tables.
  std::string describe() const;

  // Exact field-wise equality (restoration's oracle-parity checks).
  friend bool operator==(const Mode&, const Mode&) = default;
};

}  // namespace flexwan::transponder
