#include "util/cli.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace flexwan::util::cli {

namespace {

// argv[0] arrives as a path ("./build/examples/sim_tool"); messages use the
// basename so rejection lines read the same from any invocation directory.
const char* basename_of(const char* tool) {
  const char* slash = std::strrchr(tool, '/');
  return slash != nullptr ? slash + 1 : tool;
}

}  // namespace

Expected<long long> parse_int_in_range(const char* value, long long min,
                                       long long max) {
  if (value == nullptr || *value == '\0') {
    return Error::make("bad_flag", "missing value");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') {
    return Error::make("bad_flag",
                       "'" + std::string(value) + "' is not an integer");
  }
  if (errno == ERANGE || v < min || v > max) {
    return Error::make("bad_flag", std::string(value) + " out of range [" +
                                       std::to_string(min) + ", " +
                                       std::to_string(max) + "]");
  }
  return v;
}

Expected<double> parse_double_in_range(const char* value, double min,
                                       double max) {
  if (value == nullptr || *value == '\0') {
    return Error::make("bad_flag", "missing value");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    return Error::make("bad_flag",
                       "'" + std::string(value) + "' is not a number");
  }
  if (errno == ERANGE || !(v >= min && v <= max)) {
    return Error::make("bad_flag", std::string(value) + " out of range [" +
                                       std::to_string(min) + ", " +
                                       std::to_string(max) + "]");
  }
  return v;
}

void Cli::usage() const {
  std::fputs(usage_text, stderr);
  std::exit(2);
}

void Cli::reject(const std::string& message) const {
  std::fprintf(stderr, "%s: %s (see usage below)\n", basename_of(tool),
               message.c_str());
  usage();
}

const char* Cli::require_value(const char* flag, const char* value) const {
  if (value == nullptr) reject(std::string(flag) + " requires a value");
  return value;
}

long long Cli::parse_int(const char* flag, const char* value, long long min,
                         long long max) const {
  require_value(flag, value);
  const auto parsed = parse_int_in_range(value, min, max);
  if (!parsed) reject(std::string(flag) + ": " + parsed.error().message);
  return parsed.value();
}

double Cli::parse_double(const char* flag, const char* value, double min,
                         double max) const {
  require_value(flag, value);
  const auto parsed = parse_double_in_range(value, min, max);
  if (!parsed) reject(std::string(flag) + ": " + parsed.error().message);
  return parsed.value();
}

}  // namespace flexwan::util::cli
