// Shared strict CLI parsing for the example tools and benches.
//
// Every FlexWAN binary feeds byte-comparison CI jobs, so a mistyped flag or
// an out-of-range value must never be silently ignored: the tool names the
// offending flag, prints its usage block, and exits 2 (the POSIX usage-error
// convention the repo's CI asserts on).  These helpers grew up inside
// sim_tool; they live here so plan_tool, flexwand, and future tools reject
// malformed input with one spelling instead of re-growing lenient parsers.
//
// The value parsers are pure (Expected-based, unit-tested in util_test);
// the Cli struct layers the exit-2-with-usage policy on top.
// engine::parse_thread_count builds on parse_int_in_range, so the --threads
// flag shares the exact rejection semantics.
#pragma once

#include <string>

#include "util/expected.h"

namespace flexwan::util::cli {

// Parses a base-10 integer in [min, max].  Rejects null/empty input,
// non-numeric text, trailing garbage, fractional values ("2.5" errors, it
// does not round), and out-of-range values — including strtoll overflow,
// which must never truncate into a silently-wrong small number.
Expected<long long> parse_int_in_range(const char* value, long long min,
                                       long long max);

// Parses a finite double in [min, max]; same rejection rules (overflowing
// literals like "1e9999" are out of range, not clamped to infinity).
Expected<double> parse_double_in_range(const char* value, double min,
                                       double max);

// One tool's rejection context: the binary name (argv[0]) plus the usage
// block printed verbatim after any rejection message.
struct Cli {
  const char* tool = "";        // argv[0]; basename is used in messages
  const char* usage_text = "";  // full usage block, trailing newline included

  // Prints usage_text to stderr and exits 2.
  [[noreturn]] void usage() const;

  // One-line, actionable rejection: "<tool>: <message> (see usage below)",
  // then usage(), never returns.
  [[noreturn]] void reject(const std::string& message) const;

  // Flag-value helpers: name the flag in every failure mode and exit 2 via
  // reject().  `value` may be null ("--flag" given with no argument).
  const char* require_value(const char* flag, const char* value) const;
  long long parse_int(const char* flag, const char* value, long long min,
                      long long max) const;
  double parse_double(const char* flag, const char* value, double min,
                      double max) const;
};

}  // namespace flexwan::util::cli
