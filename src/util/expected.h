// Minimal expected<T, E> used for recoverable failures across FlexWAN.
//
// The C++ Core Guidelines (E.2, I.10) recommend signalling recoverable
// failures through the return value rather than exceptions when the caller is
// expected to handle them locally.  Planning and restoration routinely fail
// for benign reasons (no spectrum left, no feasible format), so most public
// APIs in this repo return Expected<T>.
#pragma once

#include <cassert>
#include <concepts>
#include <string>
#include <utility>
#include <variant>

namespace flexwan {

// Error payload carried by Expected<T>.  A short machine-readable code plus a
// human-readable message.
struct Error {
  std::string code;     // e.g. "no_spectrum", "unreachable", "infeasible"
  std::string message;  // free-form detail for logs / exceptions

  static Error make(std::string code, std::string message) {
    return Error{std::move(code), std::move(message)};
  }
};

// A tiny std::expected stand-in (the toolchain's <expected> is C++23).
template <typename T>
class Expected {
 public:
  Expected(T value) : storage_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Expected(Error error) : storage_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  // Value-initialized success state, mirroring std::expected's default
  // constructor.  Placeholder contexts (benchlib's --list mode skips case
  // bodies but must still produce a value of the body's return type) rely
  // on this; only available when T itself is default-constructible.
  Expected()
    requires std::default_initializable<T>
      : storage_(T()) {}

  bool has_value() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return has_value(); }

  const T& value() const& {
    assert(has_value());
    return std::get<T>(storage_);
  }
  T& value() & {
    assert(has_value());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(has_value());
    return std::get<T>(std::move(storage_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    assert(!has_value());
    return std::get<Error>(storage_);
  }

  // Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return has_value() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

}  // namespace flexwan
