// Deterministic random number generation.
//
// Every stochastic component in FlexWAN (topology generators, demand models,
// probabilistic failure scenarios, vendor-controller race simulation) takes an
// explicit Rng so that benches and tests are bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace flexwan {

// Thin wrapper over a fixed-algorithm engine.  We deliberately avoid
// std::default_random_engine (implementation defined) so results are stable
// across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  // Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Bernoulli trial with success probability p.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Exponential with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Log-normal parameterised by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace flexwan
