#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace flexwan {

namespace {

std::vector<double> sorted_copy(std::span<const double> values) {
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  return v;
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double rank = (q / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  const auto sorted = sorted_copy(values);
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
           static_cast<double>(sorted.size());
  s.median = percentile_sorted(sorted, 50.0);
  s.p90 = percentile_sorted(sorted, 90.0);
  s.p99 = percentile_sorted(sorted, 99.0);
  return s;
}

double percentile(std::span<const double> values, double q) {
  return percentile_sorted(sorted_copy(values), q);
}

double cdf_at(std::span<const double> values, double x) {
  if (values.empty()) return 0.0;
  const auto n = std::count_if(values.begin(), values.end(),
                               [x](double v) { return v <= x; });
  return static_cast<double>(n) / static_cast<double>(values.size());
}

std::vector<double> cdf_curve(std::span<const double> values,
                              std::span<const double> points) {
  std::vector<double> out;
  out.reserve(points.size());
  for (double p : points) out.push_back(cdf_at(values, p));
  return out;
}

double weighted_cdf_at(std::span<const double> values,
                       std::span<const double> weights, double x) {
  double total = 0.0;
  double below = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double w = i < weights.size() ? weights[i] : 1.0;
    total += w;
    if (values[i] <= x) below += w;
  }
  return total > 0.0 ? below / total : 0.0;
}

std::string ascii_cdf(std::string_view title, std::span<const double> values,
                      std::span<const double> points) {
  std::ostringstream os;
  os << title << "\n";
  for (double p : points) {
    const double f = cdf_at(values, p);
    const int bars = static_cast<int>(std::lround(f * 40.0));
    os << "  <= " << p << "\t" << std::string(static_cast<std::size_t>(bars), '#')
       << " " << static_cast<int>(std::lround(f * 100.0)) << "%\n";
  }
  return os.str();
}

}  // namespace flexwan
