// Small statistics helpers used by benches to print the CDFs and
// distribution summaries that the paper's figures report.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace flexwan {

// Summary statistics over a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

// Computes summary statistics; returns a zeroed Summary for empty input.
Summary summarize(std::span<const double> values);

// Percentile via linear interpolation on the sorted sample, q in [0, 100].
double percentile(std::span<const double> values, double q);

// Fraction of samples <= x (empirical CDF evaluated at x).
double cdf_at(std::span<const double> values, double x);

// Evaluates the empirical CDF at each of `points`, returning fractions.
std::vector<double> cdf_curve(std::span<const double> values,
                              std::span<const double> points);

// Weighted empirical CDF: fraction of total weight with value <= x.
double weighted_cdf_at(std::span<const double> values,
                       std::span<const double> weights, double x);

// Renders an ASCII CDF plot (one row per probe point) for bench output.
std::string ascii_cdf(std::string_view title, std::span<const double> values,
                      std::span<const double> points);

}  // namespace flexwan
