#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace flexwan {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << "\n";
  };
  emit(header_);
  os << "|";
  for (std::size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace flexwan
