// Plain-text table rendering for bench output.  Every bench prints the rows
// the corresponding paper table/figure reports, via this helper, so output is
// uniform and easy to diff against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace flexwan {

// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 1);

  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flexwan
