// Benchmark harness tests: timing statistics, the disabled fast path (the
// body runs exactly once), the enabled path (warmup + reps, BENCH json
// structure and provenance), per-case metrics deltas — including two
// engine-parallel cases back-to-back at 8 threads whose deltas must sum to
// the process totals — and the perf_diff regression gate (self-compare is
// clean; an injected slowdown and a vanished case both fail the gate;
// per-case work-profile sections are gated exactly, with named diffs).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "benchlib/benchlib.h"
#include "benchlib/compare.h"
#include "engine/engine.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace flexwan::benchlib {
namespace {

class MetricsGuard {
 public:
  MetricsGuard() {
    obs::Registry::instance().reset();
    obs::set_metrics_enabled(true);
  }
  ~MetricsGuard() { obs::set_metrics_enabled(false); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

obs::BenchOptions enabled_options(const std::string& path, int warmup = 1,
                                  int reps = 3) {
  obs::BenchOptions options;
  options.json_path = path;
  options.warmup = warmup;
  options.reps = reps;
  return options;
}

TEST(BenchStats, SingleRep) {
  const auto s = compute_stats({42.0});
  EXPECT_DOUBLE_EQ(s.min_us, 42.0);
  EXPECT_DOUBLE_EQ(s.median_us, 42.0);
  EXPECT_DOUBLE_EQ(s.mean_us, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev_us, 0.0);
}

TEST(BenchStats, OddAndEvenCounts) {
  // Odd count: median is the middle element after sorting.
  const auto odd = compute_stats({9.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(odd.min_us, 1.0);
  EXPECT_DOUBLE_EQ(odd.median_us, 5.0);
  EXPECT_DOUBLE_EQ(odd.mean_us, 5.0);
  // Population stddev of {1,5,9}: sqrt(((4^2)+(0)+(4^2))/3).
  EXPECT_NEAR(odd.stddev_us, 3.265986, 1e-5);

  // Even count: median is the midpoint of the two middle elements.
  const auto even = compute_stats({4.0, 2.0, 8.0, 6.0});
  EXPECT_DOUBLE_EQ(even.min_us, 2.0);
  EXPECT_DOUBLE_EQ(even.median_us, 5.0);
  EXPECT_DOUBLE_EQ(even.mean_us, 5.0);
}

TEST(BenchHarness, DisabledRunsBodyExactlyOnceAndRecordsNothing) {
  Harness bench("disabled", obs::BenchOptions{});
  EXPECT_FALSE(bench.enabled());
  int calls = 0;
  const int out = bench.run("case", [&] {
    ++calls;
    return 7;
  });
  EXPECT_EQ(out, 7);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(bench.results().empty());
}

TEST(BenchHarness, EnabledRunsWarmupPlusRepsAndReturnsFinalValue) {
  const std::string path = testing::TempDir() + "bench_warmup.json";
  {
    Harness bench("warmup", enabled_options(path, /*warmup=*/2, /*reps=*/3));
    int calls = 0;
    const int out = bench.run("case", [&] { return ++calls; });
    EXPECT_EQ(calls, 5);  // 2 warmup + 3 measured
    EXPECT_EQ(out, 5);    // the final repetition's value
    ASSERT_EQ(bench.results().size(), 1u);
    const auto& result = bench.results()[0];
    EXPECT_EQ(result.name, "case");
    EXPECT_EQ(result.warmup, 2);
    EXPECT_EQ(result.reps, 3);
    EXPECT_EQ(result.wall_us.size(), 3u);
    EXPECT_GE(result.stats.median_us, 0.0);
  }
  EXPECT_FALSE(read_file(path).empty());
}

TEST(BenchHarness, VoidBodiesAreSupported) {
  const std::string path = testing::TempDir() + "bench_void.json";
  Harness bench("void", enabled_options(path, 0, 2));
  int calls = 0;
  bench.run("case", [&] { ++calls; });
  EXPECT_EQ(calls, 2);
  ASSERT_EQ(bench.results().size(), 1u);
  bench.release();  // no file needed
}

TEST(BenchHarness, EmittedJsonHasSchemaCasesStatsAndProvenance) {
  MetricsGuard metrics;
  const std::string path = testing::TempDir() + "bench_schema.json";
  {
    Harness bench("schema_probe", enabled_options(path, 1, 4), /*threads=*/3);
    bench.run("alpha", [] {
      OBS_COUNTER_ADD("test.bench.alpha", 5);
      return 1;
    });
    bench.run("beta", [] { return 2; });
  }
  const auto doc = obs::json::parse(read_file(path));
  ASSERT_TRUE(doc) << doc.error().message;
  EXPECT_EQ(doc->find("schema_version")->as_number(), kBenchSchemaVersion);
  EXPECT_EQ(doc->find("bench")->as_string(), "schema_probe");
  EXPECT_EQ(doc->find("warmup")->as_number(), 1.0);
  EXPECT_EQ(doc->find("reps")->as_number(), 4.0);

  const auto* provenance = doc->find("provenance");
  ASSERT_NE(provenance, nullptr);
  EXPECT_EQ(provenance->find("threads")->as_number(), 3.0);
  EXPECT_FALSE(provenance->find("build_type")->as_string().empty());
  EXPECT_FALSE(provenance->find("compiler")->as_string().empty());
  EXPECT_FALSE(provenance->find("run_id")->as_string().empty());

  const auto* cases = doc->find("cases");
  ASSERT_NE(cases, nullptr);
  ASSERT_TRUE(cases->is_array());
  ASSERT_EQ(cases->as_array().size(), 2u);
  const auto& alpha = cases->as_array()[0];
  EXPECT_EQ(alpha.find("name")->as_string(), "alpha");
  EXPECT_EQ(alpha.find("wall_us")->as_array().size(), 4u);
  const auto* stats = alpha.find("wall_stats_us");
  ASSERT_NE(stats, nullptr);
  for (const char* field : {"min", "median", "mean", "stddev"}) {
    ASSERT_NE(stats->find(field), nullptr) << field;
    EXPECT_GE(stats->find(field)->as_number(), 0.0) << field;
  }
  // alpha's counter delta: 5 per rep x 4 measured reps (warmup excluded
  // from the delta bracket, so not 5 x 5).
  const auto* alpha_counters = alpha.find("metrics")->find("counters");
  ASSERT_NE(alpha_counters, nullptr);
  EXPECT_EQ(alpha_counters->find("test.bench.alpha")->as_number(), 20.0);
  // beta touched no metrics: its delta object is empty.
  const auto& beta = cases->as_array()[1];
  EXPECT_EQ(beta.find("metrics")->find("counters")->as_object().size(), 0u);
}

TEST(BenchHarness, SnapshotDeltaAttributesWorkToTheRightCase) {
  MetricsGuard metrics;
  const std::string path = testing::TempDir() + "bench_delta.json";
  Harness bench("delta", enabled_options(path, /*warmup=*/3, /*reps=*/2));
  bench.run("first", [] {
    OBS_COUNTER_ADD("test.delta.first", 10);
    OBS_GAUGE_ADD("test.delta.gauge", 0.5);
    return 0;
  });
  bench.run("second", [] {
    OBS_COUNTER_ADD("test.delta.second", 1);
    OBS_HISTOGRAM_OBSERVE("test.delta.hist", 4.0);
    return 0;
  });
  bench.release();

  ASSERT_EQ(bench.results().size(), 2u);
  const auto& first = bench.results()[0].delta;
  const auto& second = bench.results()[1].delta;
  // Each case sees only its own increments, measured reps only.
  EXPECT_EQ(first.counters.at("test.delta.first"), 20u);
  EXPECT_EQ(first.counters.count("test.delta.second"), 0u);
  EXPECT_DOUBLE_EQ(first.gauges.at("test.delta.gauge"), 1.0);
  EXPECT_EQ(second.counters.at("test.delta.second"), 2u);
  EXPECT_EQ(second.counters.count("test.delta.first"), 0u);
  EXPECT_EQ(second.histograms.at("test.delta.hist").count, 2u);
  EXPECT_DOUBLE_EQ(second.histograms.at("test.delta.hist").sum, 8.0);
}

TEST(BenchHarness, ParallelCaseDeltasSumToProcessTotalsAt8Threads) {
  MetricsGuard metrics;
  const engine::Engine engine(8);
  const std::string path = testing::TempDir() + "bench_parallel.json";
  constexpr std::size_t kTasksA = 1024;
  constexpr std::size_t kTasksB = 512;
  Harness bench("parallel", enabled_options(path, /*warmup=*/1, /*reps=*/2),
                engine.thread_count());
  // Two engine-parallel cases back-to-back: the snapshot bracketing must
  // attribute each case's counter traffic (from 8 worker threads) to that
  // case only.
  bench.run("fan_a", [&] {
    engine.parallel_for(kTasksA, [](std::size_t) {
      OBS_COUNTER_ADD("test.parallel.work", 1);
    });
  });
  bench.run("fan_b", [&] {
    engine.parallel_for(kTasksB, [](std::size_t) {
      OBS_COUNTER_ADD("test.parallel.work", 3);
    });
  });
  bench.release();

  ASSERT_EQ(bench.results().size(), 2u);
  const auto& a = bench.results()[0].delta;
  const auto& b = bench.results()[1].delta;
  // Measured reps only (2 of them); warmup traffic is excluded.
  EXPECT_EQ(a.counters.at("test.parallel.work"), 2u * kTasksA);
  EXPECT_EQ(b.counters.at("test.parallel.work"), 2u * 3u * kTasksB);
  // engine.tasks_executed: each case saw exactly its own fan-out.
  EXPECT_EQ(a.counters.at("engine.tasks_executed"), 2u * kTasksA);
  EXPECT_EQ(b.counters.at("engine.tasks_executed"), 2u * kTasksB);
  // The per-case deltas sum to the process totals (warmup included there).
  const auto totals = obs::Registry::instance().snapshot();
  EXPECT_EQ(a.counters.at("test.parallel.work") +
                b.counters.at("test.parallel.work") +
                /*warmup reps:*/ kTasksA + 3 * kTasksB,
            totals.counters.at("test.parallel.work"));
}

TEST(BenchSnapshot, DeltaDropsZeroEntriesAndCountsNewNamesFromZero) {
  obs::MetricsSnapshot before;
  before.counters["unchanged"] = 4;
  before.counters["grown"] = 10;
  obs::MetricsSnapshot after;
  after.counters["unchanged"] = 4;
  after.counters["grown"] = 15;
  after.counters["fresh"] = 2;
  const auto delta = obs::snapshot_delta(before, after);
  EXPECT_EQ(delta.counters.count("unchanged"), 0u);
  EXPECT_EQ(delta.counters.at("grown"), 5u);
  EXPECT_EQ(delta.counters.at("fresh"), 2u);
}

// --- the regression gate -------------------------------------------------

BenchReport make_report(std::vector<BenchReport::Case> cases) {
  BenchReport report;
  report.schema_version = kBenchSchemaVersion;
  report.bench = "gate";
  report.cases = std::move(cases);
  return report;
}

BenchReport::Case make_case(const char* name, int reps, double median,
                            double mean) {
  BenchReport::Case c;
  c.name = name;
  c.reps = reps;
  c.median_us = median;
  c.mean_us = mean;
  return c;
}

TEST(BenchCompare, SelfCompareHasZeroFailures) {
  const auto report =
      make_report({make_case("a", 3, 100.0, 101.0), make_case("b", 3, 2000.0, 2100.0)});
  const auto cmp = compare_reports(report, report);
  ASSERT_TRUE(cmp) << cmp.error().message;
  EXPECT_EQ(cmp->failures(), 0);
  EXPECT_EQ(cmp->regressions, 0);
  EXPECT_EQ(cmp->vanished, 0);
  ASSERT_EQ(cmp->cases.size(), 2u);
  EXPECT_EQ(cmp->cases[0].status, CaseStatus::kOk);
  EXPECT_DOUBLE_EQ(cmp->cases[0].ratio, 1.0);
  EXPECT_NE(cmp->render().find("OK"), std::string::npos);
}

TEST(BenchCompare, InjectedRegressionFailsTheGate) {
  const auto baseline = make_report({make_case("fast", 3, 100.0, 100.0)});
  // 25 % slower: over the 10 % default threshold.
  const auto candidate = make_report({make_case("fast", 3, 125.0, 125.0)});
  const auto cmp = compare_reports(baseline, candidate);
  ASSERT_TRUE(cmp) << cmp.error().message;
  EXPECT_EQ(cmp->regressions, 1);
  EXPECT_GT(cmp->failures(), 0);
  EXPECT_EQ(cmp->cases[0].status, CaseStatus::kRegression);
  EXPECT_DOUBLE_EQ(cmp->cases[0].ratio, 1.25);
  EXPECT_NE(cmp->render().find("FAIL"), std::string::npos);

  // The same delta passes a looser gate.
  const auto loose = compare_reports(baseline, candidate, 0.5);
  ASSERT_TRUE(loose);
  EXPECT_EQ(loose->failures(), 0);
}

TEST(BenchCompare, ImprovementAndNewCaseAreNotFailures) {
  const auto baseline = make_report({make_case("a", 3, 100.0, 100.0)});
  const auto candidate =
      make_report({make_case("a", 3, 50.0, 50.0), make_case("new_case", 3, 10.0, 10.0)});
  const auto cmp = compare_reports(baseline, candidate);
  ASSERT_TRUE(cmp);
  EXPECT_EQ(cmp->failures(), 0);
  EXPECT_EQ(cmp->improvements, 1);
  EXPECT_EQ(cmp->new_cases, 1);
  ASSERT_EQ(cmp->cases.size(), 2u);
  EXPECT_EQ(cmp->cases[0].status, CaseStatus::kImprovement);
  EXPECT_EQ(cmp->cases[1].status, CaseStatus::kOnlyCandidate);
  // The verdict line explicitly calls out the ungated new coverage.
  EXPECT_NE(cmp->render().find("new case(s) not gated"), std::string::npos);
}

TEST(BenchCompare, NewCasesAloneNeverFailTheGate) {
  const auto baseline = make_report({make_case("a", 3, 100.0, 100.0)});
  const auto candidate = make_report(
      {make_case("a", 3, 100.0, 100.0), make_case("b", 3, 10.0, 10.0), make_case("c", 3, 20.0, 20.0)});
  const auto cmp = compare_reports(baseline, candidate);
  ASSERT_TRUE(cmp) << cmp.error().message;
  EXPECT_EQ(cmp->failures(), 0);
  EXPECT_EQ(cmp->new_cases, 2);
  EXPECT_NE(cmp->render().find("OK"), std::string::npos);
  EXPECT_NE(cmp->render().find("2 new case(s) not gated"), std::string::npos);
}

TEST(BenchCompare, VanishedBaselineCaseIsAGateFailure) {
  const auto baseline =
      make_report({make_case("kept", 3, 100.0, 100.0), make_case("dropped", 3, 100.0, 100.0)});
  const auto candidate = make_report({make_case("kept", 3, 100.0, 100.0)});
  const auto cmp = compare_reports(baseline, candidate);
  ASSERT_TRUE(cmp);
  EXPECT_EQ(cmp->vanished, 1);
  EXPECT_GT(cmp->failures(), 0);
  EXPECT_EQ(cmp->cases[1].status, CaseStatus::kOnlyBaseline);
}

TEST(BenchCompare, RejectsMismatchedBenchesAndBadThresholds) {
  auto baseline = make_report({make_case("a", 3, 1.0, 1.0)});
  auto candidate = baseline;
  candidate.bench = "other";
  EXPECT_FALSE(compare_reports(baseline, candidate));
  candidate.bench = baseline.bench;
  EXPECT_FALSE(compare_reports(baseline, candidate, 0.0));
  EXPECT_FALSE(compare_reports(baseline, candidate, -0.1));
  EXPECT_FALSE(compare_reports(baseline, candidate, 11.0));
}

TEST(BenchCompare, WorkProfileSelfCompareIsCleanAndDriftFailsExactly) {
  auto base_case = make_case("a", 3, 100.0, 100.0);
  base_case.has_work_profile = true;
  base_case.work_profile["(root);planner.plan;topo.ksp.calls"] = 48;
  base_case.work_profile["(root);planner.plan;engine.parallel_for"] = 2;
  const auto baseline = make_report({base_case});

  // Identical sections: clean.
  const auto self = compare_reports(baseline, baseline);
  ASSERT_TRUE(self) << self.error().message;
  EXPECT_EQ(self->failures(), 0);
  EXPECT_EQ(self->work_mismatches, 0);
  EXPECT_TRUE(self->work_diffs.empty());

  // A drift of exactly 1 — far below any wall-time threshold — fails the
  // exact gate, and the rendered diff names the node that moved.
  auto drift_case = base_case;
  drift_case.work_profile["(root);planner.plan;topo.ksp.calls"] = 49;
  const auto drift = compare_reports(baseline, make_report({drift_case}));
  ASSERT_TRUE(drift);
  EXPECT_EQ(drift->work_mismatches, 1);
  EXPECT_GT(drift->failures(), 0);
  ASSERT_EQ(drift->work_diffs.size(), 1u);
  EXPECT_EQ(drift->work_diffs[0].kind, WorkDiff::Kind::kChanged);
  EXPECT_EQ(drift->work_diffs[0].field, "(root);planner.plan;topo.ksp.calls");
  EXPECT_EQ(drift->work_diffs[0].baseline, 48u);
  EXPECT_EQ(drift->work_diffs[0].candidate, 49u);
  EXPECT_NE(drift->render().find("WORK CHANGED"), std::string::npos);
  EXPECT_NE(drift->render().find("(root);planner.plan;topo.ksp.calls"),
            std::string::npos);
  EXPECT_NE(drift->render().find("work-profile mismatch"), std::string::npos);
}

TEST(BenchCompare, WorkProfileVanishedFieldFailsNewFieldDoesNot) {
  auto base_case = make_case("a", 3, 100.0, 100.0);
  base_case.has_work_profile = true;
  base_case.work_profile["(root);sim.restore"] = 7;
  const auto baseline = make_report({base_case});

  // Field vanished from the candidate: gate failure.
  auto gone_case = base_case;
  gone_case.work_profile.clear();
  const auto gone = compare_reports(baseline, make_report({gone_case}));
  ASSERT_TRUE(gone);
  EXPECT_EQ(gone->work_mismatches, 1);
  EXPECT_EQ(gone->work_diffs[0].kind, WorkDiff::Kind::kOnlyBaseline);
  EXPECT_NE(gone->render().find("WORK VANISHED"), std::string::npos);

  // Field only in the candidate: new instrumentation, informational.
  auto grown_case = base_case;
  grown_case.work_profile["(root);sim.restore;restoration.solve"] = 7;
  const auto grown = compare_reports(baseline, make_report({grown_case}));
  ASSERT_TRUE(grown);
  EXPECT_EQ(grown->failures(), 0);
  EXPECT_EQ(grown->work_new_fields, 1);
  EXPECT_EQ(grown->work_diffs[0].kind, WorkDiff::Kind::kOnlyCandidate);
  EXPECT_NE(grown->render().find("new work field(s) not gated"),
            std::string::npos);
}

TEST(BenchCompare, WorkProfileSkippedWhenEitherSideLacksTheSection) {
  // Pre-profiler BENCH files have no "work_profile" key at all; comparing
  // against them must not fail on the counters the newer side recorded.
  auto with = make_case("a", 3, 100.0, 100.0);
  with.has_work_profile = true;
  with.work_profile["(root);planner.plan"] = 3;
  const auto without = make_case("a", 3, 100.0, 100.0);
  for (const auto& [old_side, new_side] :
       {std::pair{without, with}, std::pair{with, without}}) {
    const auto cmp = compare_reports(make_report({old_side}),
                                     make_report({new_side}));
    ASSERT_TRUE(cmp);
    EXPECT_EQ(cmp->failures(), 0);
    EXPECT_TRUE(cmp->work_diffs.empty());
  }
}

TEST(BenchCompare, LoadParsesWorkProfileSections) {
  const std::string text = R"({
    "schema_version": 1, "bench": "gate",
    "cases": [
      {"name": "a", "reps": 3,
       "wall_stats_us": {"median": 10.0, "mean": 10.0},
       "work_profile": {"(root);planner.plan;topo.ksp.calls": 48}},
      {"name": "b", "reps": 3,
       "wall_stats_us": {"median": 10.0, "mean": 10.0}}
    ]})";
  const auto report = load_bench_report(text);
  ASSERT_TRUE(report) << report.error().message;
  ASSERT_EQ(report->cases.size(), 2u);
  EXPECT_TRUE(report->cases[0].has_work_profile);
  EXPECT_EQ(report->cases[0].work_profile.at(
                "(root);planner.plan;topo.ksp.calls"),
            48u);
  EXPECT_FALSE(report->cases[1].has_work_profile);

  // Malformed sections are rejected, not silently skipped.
  EXPECT_FALSE(load_bench_report(R"({
    "schema_version": 1, "bench": "gate",
    "cases": [{"name": "a", "wall_stats_us": {"median": 1.0, "mean": 1.0},
               "work_profile": [1, 2]}]})"));
  EXPECT_FALSE(load_bench_report(R"({
    "schema_version": 1, "bench": "gate",
    "cases": [{"name": "a", "wall_stats_us": {"median": 1.0, "mean": 1.0},
               "work_profile": {"k": -3}}]})"));
}

TEST(BenchCompare, LoadRoundTripsHarnessOutputAndRejectsBadDocs) {
  MetricsGuard metrics;
  const std::string path = testing::TempDir() + "bench_roundtrip.json";
  {
    Harness bench("roundtrip", enabled_options(path, 0, 2));
    bench.run("only", [] { return 1; });
  }
  const auto loaded = load_bench_report_file(path);
  ASSERT_TRUE(loaded) << loaded.error().message;
  EXPECT_EQ(loaded->schema_version, kBenchSchemaVersion);
  EXPECT_EQ(loaded->bench, "roundtrip");
  ASSERT_EQ(loaded->cases.size(), 1u);
  EXPECT_EQ(loaded->cases[0].name, "only");
  EXPECT_EQ(loaded->cases[0].reps, 2);
  // Self-compare of a real emitted file: zero failures by construction.
  const auto cmp = compare_reports(*loaded, *loaded);
  ASSERT_TRUE(cmp);
  EXPECT_EQ(cmp->failures(), 0);

  EXPECT_FALSE(load_bench_report("{}"));
  EXPECT_FALSE(load_bench_report("not json"));
  EXPECT_FALSE(load_bench_report(
      R"({"schema_version": 999, "bench": "x", "cases": []})"));
  EXPECT_FALSE(load_bench_report_file("/nonexistent/bench.json"));
}

TEST(BenchProvenance, CarriesThreadsAndBuildInfo) {
  const auto p = make_provenance(5);
  EXPECT_EQ(p.threads, 5);
  EXPECT_FALSE(p.build_type.empty());
  EXPECT_FALSE(p.compiler.empty());
  EXPECT_EQ(p.run_id.size(), 16u);  // %016llx hex token
}

TEST(BenchListDeathTest, ListModeSkipsBodiesAndExitsZero) {
  // --list must enumerate case names without running a single body and
  // exit 0 from the harness destructor.  The child aborts if any body
  // executes, so a successful clean exit proves the skip.
  EXPECT_EXIT(
      {
        obs::BenchOptions options;
        options.list = true;
        Harness bench("list_probe", options);
        const int placeholder = bench.run("first_case", [&]() -> int {
          std::abort();  // a running body breaks the exit-0 expectation
        });
        if (placeholder != 0) std::_Exit(3);  // value-init placeholder
        bench.run("second_case", [&] { std::abort(); });
        const std::vector<int> v =
            bench.run("third_case", [&]() -> std::vector<int> {
              std::abort();
            });
        if (!v.empty()) std::_Exit(4);
        if (!bench.results().empty()) std::_Exit(5);  // nothing recorded
        // Falling off the end: ~Harness exits 0.
      },
      testing::ExitedWithCode(0), "");
}

TEST(BenchListFlags, ReportFromFlagsParsesListBoolean) {
  char prog[] = "bench";
  char list_flag[] = "--list";
  char other[] = "net.txt";
  char* argv[] = {prog, list_flag, other, nullptr};
  int argc = 3;
  obs::RunReport report = obs::report_from_flags(argc, argv);
  EXPECT_TRUE(report.bench_options().list);
  EXPECT_FALSE(report.bench_options().enabled());  // no --bench-json
  // --list is consumed; unrelated args survive in order.
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "net.txt");
  report.release();
}

}  // namespace
}  // namespace flexwan::benchlib
