// Tests for evidence bundles (src/obs/bundle.h): artifact writing and
// round-tripping through the obs JSON parser, run.json normalization, the
// thread-count determinism contract end to end through the sim, threshold
// parsing, and the compare policy (violation / vanished / new).
#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "obs/bundle.h"
#include "obs/eventlog.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "planning/heuristic.h"
#include "sim/simulator.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

namespace flexwan::obs {
namespace {

// Enables the bundle-mode observability state (metrics + events on, timing
// off — exactly what report_from_flags does for --bundle) and restores the
// pristine disabled state on the way out.
class BundleGuard {
 public:
  BundleGuard() {
    Registry::instance().reset();
    EventLog::instance().reset();
    set_metrics_enabled(true);
    set_timing_enabled(false);
    set_events_enabled(true);
  }
  ~BundleGuard() {
    set_metrics_enabled(false);
    set_events_enabled(false);
    EventLog::instance().reset();
    Registry::instance().reset();
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// A fresh temp directory per test so bundles never collide.
std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "bundle_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Bundle make_test_bundle(const std::string& dir) {
  Bundle bundle;
  bundle.dir = dir;
  bundle.tool = "bundle_test";
  bundle.provenance = make_bundle_provenance(4);
  bundle.config.emplace_back("network", json::Value(std::string("tbackbone")));
  bundle.config.emplace_back("trials", json::Value(2.0));
  bundle.results.emplace_back("availability.mean", 0.999875);
  bundle.results.emplace_back("cuts.total", 14.0);
  bundle.summary_body_md = "extra body\n";
  return bundle;
}

TEST(Bundle, WriteProducesFourParsableArtifacts) {
  const BundleGuard guard;
  emit_event(make_event("sim", Severity::kInfo, "sim.cut", 2.0)
                 .with("fiber", 3));
  OBS_COUNTER_ADD("bundle.test.counter", 5);

  const std::string dir = fresh_dir("write");
  const Bundle bundle = make_test_bundle(dir);
  const auto written = bundle.write();
  ASSERT_TRUE(written) << written.error().message;

  const auto run = json::parse(read_file(dir + "/run.json"));
  ASSERT_TRUE(run) << run.error().message;
  EXPECT_EQ(run->find("schema_version")->as_number(), kBundleSchemaVersion);
  EXPECT_EQ(run->find("tool")->as_string(), "bundle_test");
  EXPECT_EQ(run->find("config")->find("network")->as_string(), "tbackbone");
  EXPECT_EQ(run->find("results")->find("availability.mean")->as_number(),
            0.999875);
  const json::Value* prov = run->find("provenance");
  ASSERT_NE(prov, nullptr);
  EXPECT_EQ(prov->find("threads")->as_number(), 4.0);
  EXPECT_TRUE(prov->find("git_describe")->is_string());
  EXPECT_TRUE(prov->find("build_type")->is_string());

  const auto metrics = json::parse(read_file(dir + "/metrics.json"));
  ASSERT_TRUE(metrics) << metrics.error().message;
  EXPECT_EQ(
      metrics->find("counters")->find("bundle.test.counter")->as_number(),
      5.0);

  const std::string events = read_file(dir + "/events.jsonl");
  const auto event = json::parse(events.substr(0, events.find('\n')));
  ASSERT_TRUE(event) << event.error().message;
  EXPECT_EQ(event->find("name")->as_string(), "sim.cut");

  const std::string summary = read_file(dir + "/summary.md");
  EXPECT_NE(summary.find("bundle_test"), std::string::npos);
  EXPECT_NE(summary.find("availability.mean"), std::string::npos);
  EXPECT_NE(summary.find("extra body"), std::string::npos);
}

TEST(Bundle, NormalizeRunJsonStripsOnlyTheThreadsLine) {
  Bundle a = make_test_bundle("");
  Bundle b = make_test_bundle("");
  a.provenance.threads = 1;
  b.provenance.threads = 8;
  EXPECT_NE(a.run_json(), b.run_json());
  EXPECT_EQ(normalize_run_json(a.run_json()), normalize_run_json(b.run_json()));
  // Everything except the threads line survives normalization.
  const std::string normalized = normalize_run_json(a.run_json());
  EXPECT_EQ(normalized.find("\"threads\""), std::string::npos);
  EXPECT_NE(normalized.find("\"git_describe\""), std::string::npos);
  EXPECT_NE(normalized.find("\"availability.mean\""), std::string::npos);
}

TEST(Bundle, LoadBundleRoundTripsAndSelfCompareIsClean) {
  const BundleGuard guard;
  emit_event(make_event("sim", Severity::kInfo, "sim.cut", 1.0));
  emit_event(make_event("planner", Severity::kInfo, "planner.stage1.done"));
  OBS_COUNTER_ADD("bundle.roundtrip.counter", 3);

  const std::string dir = fresh_dir("roundtrip");
  const auto written = make_test_bundle(dir).write();
  ASSERT_TRUE(written) << written.error().message;

  const auto data = load_bundle(dir);
  ASSERT_TRUE(data) << data.error().message;
  EXPECT_EQ(data->events.size(), 2u);
  EXPECT_EQ(data->run.find("tool")->as_string(), "bundle_test");

  const auto comparison = compare_bundles(*data, *data, BundleThresholds{});
  ASSERT_TRUE(comparison) << comparison.error().message;
  EXPECT_EQ(comparison->violations, 0);
  EXPECT_FALSE(comparison->fields.empty());
  // The flattened field set covers all four sources.
  std::vector<std::string> names;
  for (const auto& f : comparison->fields) names.push_back(f.field);
  EXPECT_NE(std::find(names.begin(), names.end(),
                      "results.availability.mean"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(),
                      "metrics.counters.bundle.roundtrip.counter"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "events.total"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "events.sim"), names.end());

  // diff.json is itself valid obs JSON.
  const auto diff = json::parse(comparison->to_diff_json());
  ASSERT_TRUE(diff) << diff.error().message;
  EXPECT_EQ(diff->find("violations")->as_number(), 0.0);
}

TEST(Bundle, LoadBundleRejectsMissingAndMalformed) {
  EXPECT_FALSE(load_bundle(testing::TempDir() + "bundle_test_nonexistent"));

  // Wrong schema version is refused even when everything parses.
  const BundleGuard guard;
  const std::string dir = fresh_dir("schema");
  ASSERT_TRUE(make_test_bundle(dir).write());
  std::string run = read_file(dir + "/run.json");
  const std::string from = "\"schema_version\": 1";
  run.replace(run.find(from), from.size(), "\"schema_version\": 999");
  std::ofstream(dir + "/run.json", std::ios::trunc) << run;
  const auto data = load_bundle(dir);
  ASSERT_FALSE(data);
  EXPECT_NE(data.error().message.find("schema_version"), std::string::npos);
}

TEST(Bundle, CompareFlagsViolationsVanishedAndNewFields) {
  const BundleGuard guard;
  const std::string base_dir = fresh_dir("cmp_base");
  const std::string cand_dir = fresh_dir("cmp_cand");

  Bundle base = make_test_bundle(base_dir);
  base.results.emplace_back("only.in.baseline", 1.0);
  ASSERT_TRUE(base.write());

  Bundle cand = make_test_bundle(cand_dir);
  cand.results[0].second = 0.90;  // availability.mean: -9.99% change
  cand.results.emplace_back("only.in.candidate", 2.0);
  ASSERT_TRUE(cand.write());

  const auto baseline = load_bundle(base_dir);
  const auto candidate = load_bundle(cand_dir);
  ASSERT_TRUE(baseline);
  ASSERT_TRUE(candidate);

  // Default 10% tolerance: the -9.99% drift passes, but the vanished field
  // still fails the gate and the new field is informational.
  BundleThresholds loose;
  const auto relaxed = compare_bundles(*baseline, *candidate, loose);
  ASSERT_TRUE(relaxed);
  EXPECT_EQ(relaxed->violations, 1);  // only.in.baseline vanished
  for (const auto& f : relaxed->fields) {
    if (f.field == "results.only.in.baseline") {
      EXPECT_EQ(f.status, FieldStatus::kOnlyBaseline);
    } else if (f.field == "results.only.in.candidate") {
      EXPECT_EQ(f.status, FieldStatus::kOnlyCandidate);
    } else if (f.field == "results.availability.mean") {
      EXPECT_EQ(f.status, FieldStatus::kOk);
      EXPECT_NEAR(f.rel_change, 0.0999, 1e-3);
    }
  }

  // A per-field tightening turns the same drift into a violation.
  BundleThresholds tight;
  tight.per_field["results.availability.mean"] = 0.01;
  const auto strict = compare_bundles(*baseline, *candidate, tight);
  ASSERT_TRUE(strict);
  EXPECT_EQ(strict->violations, 2);
  EXPECT_NE(strict->to_diff_md().find("**FAIL**"), std::string::npos);
}

TEST(Bundle, ThresholdParsingAcceptsValidRejectsJunk) {
  const auto parsed = load_thresholds(
      R"({"default": 0.05, "fields": {"results.cuts.total": 0.0}})");
  ASSERT_TRUE(parsed) << parsed.error().message;
  EXPECT_DOUBLE_EQ(parsed->default_tolerance, 0.05);
  EXPECT_DOUBLE_EQ(parsed->tolerance_for("results.cuts.total"), 0.0);
  EXPECT_DOUBLE_EQ(parsed->tolerance_for("anything.else"), 0.05);

  EXPECT_FALSE(load_thresholds("not json"));
  EXPECT_FALSE(load_thresholds(R"({"default": -0.1})"));
  EXPECT_FALSE(load_thresholds(R"({"defautl": 0.1})"));  // unknown key
  EXPECT_FALSE(load_thresholds(R"({"fields": {"x": "tight"}})"));
  EXPECT_FALSE(load_thresholds_file("/nonexistent/thresholds.json"));
}

// The acceptance-test contract end to end: the same sim at 1 and 8 threads
// produces byte-identical events.jsonl and metrics.json.
TEST(Bundle, SimLifecycleBundleArtifactsAreThreadCountInvariant) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);

  sim::LifecycleConfig config;
  config.trials = 6;
  config.timeline.horizon_days = 120.0;
  config.timeline.cut_rate_per_1000km_per_year = 6.0;
  config.timeline.growth_interval_days = 45.0;

  const auto capture = [&](int threads) {
    // Tools construct the engine before report_from_flags enables obs, so
    // the thread-count gauge never lands in a bundle; mirror that order.
    const engine::Engine engine(threads);
    const BundleGuard guard;
    const auto report = sim::run_lifecycle(
        net, *plan, transponder::svt_flexwan(), config, engine);
    EXPECT_TRUE(report) << (report ? "" : report.error().message);
    return std::make_pair(EventLog::instance().to_jsonl(),
                          Registry::instance().to_json(false));
  };

  const auto serial = capture(1);
  const auto threaded = capture(8);
  EXPECT_FALSE(serial.first.empty());
  EXPECT_EQ(serial.first, threaded.first) << "events.jsonl differs";
  EXPECT_EQ(serial.second, threaded.second) << "metrics.json differs";

  // Sanity: the sim actually emitted the lifecycle narrative, in dense
  // sequence order, and every line parses.
  std::size_t seq = 0;
  std::istringstream lines(serial.first);
  std::string line;
  bool saw_cut = false;
  bool saw_trial_end = false;
  while (std::getline(lines, line)) {
    const auto doc = json::parse(line);
    ASSERT_TRUE(doc) << doc.error().message << " in: " << line;
    EXPECT_EQ(doc->find("seq")->as_number(), static_cast<double>(++seq));
    const std::string& name = doc->find("name")->as_string();
    if (name == "sim.cut") saw_cut = true;
    if (name == "sim.trial.end") saw_trial_end = true;
  }
  EXPECT_GT(seq, 0u);
  EXPECT_TRUE(saw_cut);
  EXPECT_TRUE(saw_trial_end);
}

// Bundle-only mode must not register wall-clock latency histograms: that is
// what keeps metrics.json deterministic (and what OBS_SPAN's timing gate
// exists for).
TEST(Bundle, TimingGateKeepsWallClockOutOfBundleMetrics) {
  const BundleGuard guard;
  const engine::Engine engine(4);
  const auto result = engine.parallel_map(
      8, [](std::size_t i) { return static_cast<int>(i) * 2; });
  EXPECT_EQ(result.size(), 8u);
  const std::string metrics = Registry::instance().to_json(false);
  EXPECT_EQ(metrics.find("engine.worker.busy_us"), std::string::npos);
  EXPECT_EQ(metrics.find("engine.job.queue_wait.us"), std::string::npos);
  // Deterministic work accounting still lands.
  EXPECT_NE(metrics.find("engine.tasks_executed"), std::string::npos);
}

}  // namespace
}  // namespace flexwan::obs
