// Tests for the fleet, centralized vs distributed control (§4.3), and the
#include <map>
#include <set>
// telemetry data stream with fiber-cut detection (§4.4).
#include <gtest/gtest.h>

#include "controller/centralized.h"
#include "controller/datastream.h"
#include "controller/distributed.h"
#include "controller/fleet.h"
#include "hardware/link_sim.h"
#include "phy/calibration.h"
#include "planning/heuristic.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

namespace flexwan::controller {
namespace {

planning::Plan make_plan(const topology::Network& net) {
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  EXPECT_TRUE(plan);
  return std::move(plan.value());
}

TEST(Fleet, MaterializesDevicesForPlan) {
  const auto net = topology::make_cernet();
  const auto plan = make_plan(net);
  Fleet fleet(net, plan, VendorAssignment::kPerRegionMixed, true);
  EXPECT_EQ(fleet.transponder_count(), plan.transponder_count() * 2);
  EXPECT_EQ(static_cast<int>(fleet.deployed().size()),
            plan.transponder_count());
  // ROADM anatomy: an add/drop WSS per site plus a line-degree WSS per
  // fiber end (two ends per fiber).
  EXPECT_EQ(fleet.wss_count(),
            net.optical.node_count() + 2 * net.optical.fiber_count());
  // Every device is reachable over NETCONF: WSSs + transponder pairs.
  EXPECT_EQ(fleet.netconf().device_count(),
            fleet.wss_count() + plan.transponder_count() * 2);
}

TEST(Fleet, WavelengthTargetsFollowTheLightPath) {
  const auto net = topology::make_cernet();
  const auto plan = make_plan(net);
  Fleet fleet(net, plan, VendorAssignment::kSingleVendor, true);
  for (const auto& dw : fleet.deployed()) {
    // add + one egress degree per fiber + drop.
    ASSERT_EQ(dw.wss_targets.size(), dw.path.fibers.size() + 2);
    EXPECT_EQ(&fleet.add_drop_wss(dw.path.nodes.front()),
              dw.wss_targets.front().device);
    EXPECT_EQ(&fleet.add_drop_wss(dw.path.nodes.back()),
              dw.wss_targets.back().device);
    for (std::size_t h = 0; h < dw.path.fibers.size(); ++h) {
      EXPECT_EQ(&fleet.degree_wss(dw.path.nodes[h], dw.path.fibers[h]),
                dw.wss_targets[h + 1].device);
    }
  }
}

TEST(Fleet, PortAllocationsAreDistinctPerDevice) {
  const auto net = topology::make_cernet();
  const auto plan = make_plan(net);
  Fleet fleet(net, plan, VendorAssignment::kSingleVendor, true);
  // No two wavelengths share a filter port on any WSS device.
  std::map<const hardware::WssDevice*, std::set<int>> used;
  for (const auto& dw : fleet.deployed()) {
    for (const auto& target : dw.wss_targets) {
      EXPECT_TRUE(used[target.device].insert(target.port).second)
          << "port " << target.port << " reused on "
          << target.device->info().ip;
    }
  }
}

TEST(Fleet, VendorAssignmentModes) {
  const auto net = topology::make_cernet();
  const auto plan = make_plan(net);
  Fleet single(net, plan, VendorAssignment::kSingleVendor, true);
  for (topology::LinkId l = 0; l < net.ip.link_count(); ++l) {
    EXPECT_EQ(single.link_vendor(l), "vendorA");
  }
  Fleet mixed(net, plan, VendorAssignment::kPerRegionMixed, true);
  std::set<std::string> vendors;
  for (topology::LinkId l = 0; l < net.ip.link_count(); ++l) {
    vendors.insert(mixed.link_vendor(l));
  }
  EXPECT_EQ(vendors.size(), 3u);
}

TEST(Centralized, DeployConfiguresEverythingAndAuditsClean) {
  // §4.3's production result: zero inconsistency, zero conflict.
  const auto net = topology::make_cernet();
  const auto plan = make_plan(net);
  Fleet fleet(net, plan, VendorAssignment::kPerRegionMixed, true);
  CentralizedController controller(net);
  const auto stats = controller.deploy(fleet);
  ASSERT_TRUE(stats) << stats.error().message;
  EXPECT_EQ(stats->wavelengths_configured, plan.transponder_count());
  EXPECT_EQ(stats->failed_rpcs, 0);
  EXPECT_GT(stats->config_rpcs, 0);
  const auto audit = audit_fleet(fleet, net);
  EXPECT_EQ(audit.inconsistencies, 0);
  EXPECT_EQ(audit.conflicts, 0);
  EXPECT_EQ(audit.unconfigured, 0);
  EXPECT_TRUE(audit.clean());
}

TEST(Centralized, WorksOnTbackboneForAllSchemes) {
  const auto net = topology::make_tbackbone();
  for (const auto* catalog :
       {&transponder::svt_flexwan(), &transponder::bvt_radwan(),
        &transponder::fixed_grid_100g()}) {
    planning::HeuristicPlanner planner(*catalog, {});
    const auto plan = planner.plan(net);
    ASSERT_TRUE(plan) << catalog->name();
    Fleet fleet(net, *plan, VendorAssignment::kPerRegionMixed, true);
    CentralizedController controller(net);
    const auto stats = controller.deploy(fleet);
    ASSERT_TRUE(stats) << catalog->name() << ": " << stats.error().message;
    EXPECT_TRUE(audit_fleet(fleet, net).clean()) << catalog->name();
  }
}

TEST(Distributed, UncoordinatedControlCausesSpectrumIssues) {
  // The pre-FlexWAN world: per-vendor controllers, legacy fixed-grid OLS.
  const auto net = topology::make_tbackbone();
  const auto plan = make_plan(net);
  Fleet fleet(net, plan, VendorAssignment::kPerRegionMixed,
              /*pixel_wise_ols=*/false);
  DistributedControllers controllers(net);
  const auto stats = controllers.deploy(fleet);
  ASSERT_TRUE(stats) << stats.error().message;
  EXPECT_EQ(stats->vendor_controllers, 3);
  const auto audit = audit_fleet(fleet, net);
  // Conflicts: vendors assigned overlapping spectrum on shared fibers.
  // Inconsistencies: legacy grids clipped off-grid passbands.
  EXPECT_GT(audit.conflicts + audit.inconsistencies, 0)
      << "distributed control should exhibit the Fig. 5 failure modes";
}

TEST(Distributed, SingleVendorPixelWiseIsCleanEvenDistributed) {
  // With one vendor there is exactly one controller and one spectrum view:
  // distributed degenerates to centralized and the audit stays clean.
  const auto net = topology::make_cernet();
  const auto plan = make_plan(net);
  Fleet fleet(net, plan, VendorAssignment::kSingleVendor, true);
  DistributedControllers controllers(net);
  const auto stats = controllers.deploy(fleet);
  ASSERT_TRUE(stats);
  EXPECT_EQ(stats->vendor_controllers, 1);
  const auto audit = audit_fleet(fleet, net);
  EXPECT_EQ(audit.conflicts, 0);
  EXPECT_EQ(audit.inconsistencies, 0);
}

TEST(Centralized, BeatsDistributedOnSameDeployment) {
  // The §4.3 comparison on identical hardware provisioning.
  const auto net = topology::make_tbackbone();
  const auto plan = make_plan(net);
  Fleet central(net, plan, VendorAssignment::kPerRegionMixed, true);
  CentralizedController cc(net);
  ASSERT_TRUE(cc.deploy(central));
  Fleet distributed(net, plan, VendorAssignment::kPerRegionMixed, false);
  DistributedControllers dc(net);
  ASSERT_TRUE(dc.deploy(distributed));
  const auto ca = audit_fleet(central, net);
  const auto da = audit_fleet(distributed, net);
  EXPECT_TRUE(ca.clean());
  EXPECT_GT(da.conflicts + da.inconsistencies,
            ca.conflicts + ca.inconsistencies);
}

TEST(DataStream, LatestAndHistoryBounds) {
  DataStream ds(4);
  for (int t = 0; t < 10; ++t) {
    ds.ingest({"10.3.0.2", "rx-power-dbm", -2.0 - t, t});
  }
  ASSERT_TRUE(ds.latest("10.3.0.2", "rx-power-dbm").has_value());
  EXPECT_DOUBLE_EQ(*ds.latest("10.3.0.2", "rx-power-dbm"), -11.0);
  EXPECT_FALSE(ds.latest("10.3.0.2", "other").has_value());
  EXPECT_EQ(ds.series_count(), 1u);
}

TEST(DataStream, DetectsPowerDropAsCut) {
  DataStream ds;
  ds.watch_fiber(3, "10.3.3.2");
  ds.ingest({"10.3.3.2", "rx-power-dbm", -2.0, 0});
  ds.ingest({"10.3.3.2", "rx-power-dbm", -2.1, 1});
  EXPECT_TRUE(ds.detect_cuts().empty());
  ds.ingest({"10.3.3.2", "rx-power-dbm", -40.0, 2});
  const auto alarms = ds.detect_cuts();
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].fiber, 3);
  EXPECT_EQ(alarms[0].detected_at_s, 2);
  EXPECT_NEAR(alarms[0].power_drop_db, 38.0, 1e-9);
}

TEST(DataStream, SmallFluctuationsDoNotAlarm) {
  DataStream ds;
  ds.watch_fiber(0, "10.3.0.2");
  for (int t = 0; t < 20; ++t) {
    ds.ingest({"10.3.0.2", "rx-power-dbm", -2.0 - (t % 3) * 0.5, t});
  }
  EXPECT_TRUE(ds.detect_cuts().empty());
}

TEST(DataStream, DetectsSignalDegradation) {
  DataStream ds;
  ds.watch_transponder("10.2.0.2");
  ds.ingest({"10.2.0.2", "rx-ber", 0.0, 0});
  EXPECT_TRUE(ds.detect_degradations().empty());
  ds.ingest({"10.2.0.2", "rx-ber", 1e-6, 1});
  const auto alarms = ds.detect_degradations();
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].device_ip, "10.2.0.2");
  EXPECT_DOUBLE_EQ(alarms[0].rx_ber, 1e-6);
  // Recovery (re-modulation restored error-free decoding) clears the alarm.
  ds.ingest({"10.2.0.2", "rx-ber", 0.0, 2});
  EXPECT_TRUE(ds.detect_degradations().empty());
}

TEST(DataStream, DegradationFromLinkSimTelemetry) {
  // End-to-end: a wavelength pushed beyond reach sets the receiver's BER,
  // which the data stream collects and flags.
  const auto model = phy::calibrate(transponder::svt_flexwan());
  hardware::TransponderDevice tx({"10.2.1.1", "vendorA", "SVT"},
                                 {&transponder::svt_flexwan(), true, 0.0});
  hardware::TransponderDevice rx({"10.2.1.2", "vendorA", "SVT"},
                                 {&transponder::svt_flexwan(), true, 0.0});
  hardware::WssDevice mux({"10.1.9.1", "vendorA", "WSS"}, 2, 1);
  const auto mode = *transponder::svt_flexwan().narrowest_mode(150, 800);
  ASSERT_TRUE(tx.configure(mode, spectrum::Range{0, mode.pixels()}));
  ASSERT_TRUE(rx.configure(mode, spectrum::Range{0, mode.pixels()}));
  ASSERT_TRUE(mux.set_passband(0, spectrum::Range{0, mode.pixels()}));
  hardware::LinkSim sim(model);
  const int fiber = sim.add_fiber(2000);  // way beyond the 150 km reach
  hardware::LightPath path{&tx, &rx, {hardware::LinkHop{&mux, fiber, 2000}}};
  const auto results = sim.propagate({path});
  ASSERT_FALSE(results[0].delivered);

  DataStream ds;
  ds.watch_transponder(rx.info().ip);
  ds.ingest({rx.info().ip, "rx-ber", rx.rx_ber(), 7});
  const auto alarms = ds.detect_degradations();
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_GT(alarms[0].rx_ber, 0.0);
}

TEST(DataStream, UnwatchedFibersNeverAlarm) {
  DataStream ds;
  ds.ingest({"10.3.9.2", "rx-power-dbm", -2.0, 0});
  ds.ingest({"10.3.9.2", "rx-power-dbm", -60.0, 1});
  EXPECT_TRUE(ds.detect_cuts().empty());
}

}  // namespace
}  // namespace flexwan::controller
