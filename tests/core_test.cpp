// End-to-end tests of the FlexWAN session façade: plan -> deploy -> cut ->
// detect -> restore, plus cross-scheme comparisons at the API level.
#include <gtest/gtest.h>

#include <set>

#include "core/flexwan.h"
#include "topology/builders.h"

namespace flexwan::core {
namespace {

TEST(Session, CatalogMapping) {
  EXPECT_EQ(catalog_for(Scheme::kFixed100G).name(), "100G-WAN");
  EXPECT_EQ(catalog_for(Scheme::kRadwan).name(), "RADWAN");
  EXPECT_EQ(catalog_for(Scheme::kFlexWan).name(), "FlexWAN");
}

TEST(Session, LifecycleOrderingEnforced) {
  Session s(topology::make_cernet(), Scheme::kFlexWan);
  const auto m = s.metrics();
  ASSERT_FALSE(m);
  EXPECT_EQ(m.error().code, "no_plan");
  const auto d = s.deploy();
  ASSERT_FALSE(d);
  EXPECT_EQ(d.error().code, "no_plan");
  const auto c = s.simulate_fiber_cut(0);
  ASSERT_FALSE(c);
  EXPECT_EQ(c.error().code, "not_deployed");
  const auto r = s.restore(0);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "no_plan");
}

TEST(Session, FullLifecycle) {
  Session s(topology::make_cernet(), Scheme::kFlexWan);
  const auto plan = s.plan();
  ASSERT_TRUE(plan) << plan.error().message;
  EXPECT_GT((*plan)->transponder_count(), 0);

  const auto metrics = s.metrics();
  ASSERT_TRUE(metrics);
  EXPECT_EQ(metrics->transponder_count, (*plan)->transponder_count());

  const auto audit = s.deploy();
  ASSERT_TRUE(audit) << audit.error().message;
  EXPECT_TRUE(audit->clean());
  ASSERT_NE(s.fleet(), nullptr);

  const auto alarm = s.simulate_fiber_cut(2);
  ASSERT_TRUE(alarm) << alarm.error().message;
  EXPECT_EQ(alarm->fiber, 2);
  EXPECT_GT(alarm->power_drop_db, 20.0);

  const auto outcome = s.restore(alarm->fiber);
  ASSERT_TRUE(outcome) << outcome.error().message;
  EXPECT_GE(outcome->capability(), 0.0);
  EXPECT_LE(outcome->capability(), 1.0 + 1e-9);
}

TEST(Session, CutOnUntouchedFiberRestoresTrivially) {
  Session s(topology::make_cernet(), Scheme::kFlexWan);
  ASSERT_TRUE(s.plan());
  // Find a fiber no planned wavelength uses, if any; restore is trivial.
  const auto* plan = s.current_plan();
  std::set<topology::FiberId> used;
  for (const auto& lp : plan->links()) {
    for (const auto& wl : lp.wavelengths) {
      const auto& path = lp.paths[static_cast<std::size_t>(wl.path_index)];
      used.insert(path.fibers.begin(), path.fibers.end());
    }
  }
  for (topology::FiberId f = 0; f < s.network().optical.fiber_count(); ++f) {
    if (used.contains(f)) continue;
    const auto outcome = s.restore(f);
    ASSERT_TRUE(outcome);
    EXPECT_DOUBLE_EQ(outcome->capability(), 1.0);
    return;
  }
  GTEST_SKIP() << "every fiber carries traffic in this plan";
}

TEST(Session, BadFiberIdRejected) {
  Session s(topology::make_cernet(), Scheme::kFlexWan);
  ASSERT_TRUE(s.plan());
  ASSERT_TRUE(s.deploy());
  const auto r = s.simulate_fiber_cut(9999);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "bad_fiber");
}

TEST(Session, ReplanInvalidatesDeployment) {
  Session s(topology::make_cernet(), Scheme::kFlexWan);
  ASSERT_TRUE(s.plan());
  ASSERT_TRUE(s.deploy());
  ASSERT_NE(s.fleet(), nullptr);
  ASSERT_TRUE(s.plan());  // re-plan
  EXPECT_EQ(s.fleet(), nullptr) << "stale fleet must not survive a re-plan";
  const auto c = s.simulate_fiber_cut(0);
  ASSERT_FALSE(c);
  EXPECT_EQ(c.error().code, "not_deployed");
}

TEST(Session, SchemesCompareAsInPaper) {
  // The §7 headline through the public API: FlexWAN uses the fewest
  // transponders and the least spectrum on the T-backbone.
  const auto net = topology::make_tbackbone();
  int txp[3];
  double ghz[3];
  const Scheme schemes[] = {Scheme::kFixed100G, Scheme::kRadwan,
                            Scheme::kFlexWan};
  for (int i = 0; i < 3; ++i) {
    Session s(net, schemes[i]);
    ASSERT_TRUE(s.plan());
    const auto m = s.metrics();
    ASSERT_TRUE(m);
    txp[i] = m->transponder_count;
    ghz[i] = m->spectrum_usage_ghz;
  }
  EXPECT_LT(txp[2], txp[1]);
  EXPECT_LT(txp[1], txp[0]);
  EXPECT_LT(ghz[2], ghz[1]);
  EXPECT_LT(ghz[1], ghz[0]);
}

TEST(Session, RestorationComparableAcrossSchemes) {
  const auto net = topology::make_tbackbone();
  Session flex(net, Scheme::kFlexWan);
  ASSERT_TRUE(flex.plan());
  Session rad(net, Scheme::kRadwan);
  ASSERT_TRUE(rad.plan());
  // Every cut is restorable to some degree by both schemes at scale 1.
  for (topology::FiberId f = 0; f < net.optical.fiber_count(); f += 5) {
    const auto of = flex.restore(f);
    const auto orad = rad.restore(f);
    ASSERT_TRUE(of);
    ASSERT_TRUE(orad);
    EXPECT_GE(of->capability(), 0.0);
    EXPECT_GE(orad->capability(), 0.0);
  }
}

TEST(Session, ExtendAndDefragmentLifecycle) {
  Session s(topology::make_cernet(), Scheme::kFlexWan);
  ASSERT_TRUE(s.plan());
  ASSERT_TRUE(s.deploy());
  const int before = s.current_plan()->transponder_count();

  const auto grown = s.extend(0, 400);
  ASSERT_TRUE(grown) << grown.error().message;
  EXPECT_GE(grown->capacity_added_gbps, 400.0);
  EXPECT_GT(s.current_plan()->transponder_count(), before);
  // Extension invalidates the deployment until redeployed.
  EXPECT_EQ(s.fleet(), nullptr);
  ASSERT_TRUE(s.deploy());

  const auto defrag = s.defragment_spectrum();
  ASSERT_TRUE(defrag) << defrag.error().message;
  // Defragmentation is best-effort on meshes (shared-path interactions can
  // shuffle headroom between fibers); the contract is validity, which the
  // redeploy below confirms.
  EXPECT_GE(defrag->free_run_after, 0);
  const auto audit = s.deploy();
  ASSERT_TRUE(audit);
  EXPECT_TRUE(audit->clean());
}

TEST(Session, EvolveChannelThroughFacade) {
  Session s(topology::make_cernet(), Scheme::kFlexWan);
  ASSERT_TRUE(s.plan());
  EXPECT_EQ(s.evolve_channel(0, transponder::svt_flexwan().modes()[0])
                .error()
                .code,
            "not_deployed");
  ASSERT_TRUE(s.deploy());
  // Re-tune wavelength 0 to a same-or-larger-rate mode that reaches its
  // path; picking via the catalog keeps the test topology-agnostic.
  const auto& dw = s.fleet()->deployed()[0];
  const auto mode = core::catalog_for(Scheme::kFlexWan)
                        .narrowest_mode(dw.path.length_km,
                                        dw.wavelength.mode.data_rate_gbps);
  ASSERT_TRUE(mode.has_value());
  const auto r = s.evolve_channel(0, *mode);
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_GT(r->reconfigured_devices, 0);
}

TEST(Session, ExtendRequiresPlan) {
  Session s(topology::make_cernet(), Scheme::kFlexWan);
  EXPECT_EQ(s.extend(0, 100).error().code, "no_plan");
  EXPECT_EQ(s.defragment_spectrum().error().code, "no_plan");
}

TEST(Session, PlannerOptionsPropagate) {
  SessionOptions options;
  options.planner.k_paths = 1;
  options.planner.epsilon = 0.01;
  Session s(topology::make_cernet(), Scheme::kFlexWan, options);
  const auto plan = s.plan();
  ASSERT_TRUE(plan);
  // With K=1 every wavelength rides path index 0.
  for (const auto& lp : (*plan)->links()) {
    for (const auto& wl : lp.wavelengths) {
      EXPECT_EQ(wl.path_index, 0);
    }
  }
}

}  // namespace
}  // namespace flexwan::core
