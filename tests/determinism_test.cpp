// Determinism under parallelism: the engine's index-ordered reduction must
// make planner and restoration outputs byte-identical at every thread
// count (the repo-wide reproducibility guarantee, see engine/engine.h).
// The observability layer must preserve the same guarantee: enabling
// --metrics/--trace may write report files but can never change a plan or
// restoration byte.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "benchlib/benchlib.h"
#include "core/flexwan.h"
#include "engine/engine.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "planning/heuristic.h"
#include "planning/plan_io.h"
#include "restoration/metrics.h"
#include "restoration/scenario.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

namespace flexwan {
namespace {

TEST(Determinism, PlannerByteIdenticalAcrossThreadCounts) {
  const auto net = topology::make_tbackbone();
  for (const auto* catalog :
       {&transponder::svt_flexwan(), &transponder::bvt_radwan()}) {
    planning::HeuristicPlanner planner(*catalog, {});
    const auto serial = planner.plan(net);
    ASSERT_TRUE(serial) << catalog->name();
    const std::string reference = planning::save_plan(*serial);
    for (int threads : {2, 8}) {
      const engine::Engine engine(threads);
      const auto parallel = planner.plan(net, engine);
      ASSERT_TRUE(parallel) << catalog->name() << " threads=" << threads;
      EXPECT_EQ(planning::save_plan(*parallel), reference)
          << catalog->name() << " threads=" << threads;
    }
  }
}

TEST(Determinism, RestorationSweepIdenticalAcrossThreadCounts) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const auto scenarios = restoration::standard_scenario_set(net.optical, 6, 5);
  restoration::Restorer restorer(transponder::svt_flexwan());

  const auto reference =
      restoration::evaluate_scenarios(net, *plan, restorer, scenarios);
  for (int threads : {2, 8}) {
    const engine::Engine engine(threads);
    const auto m = restoration::evaluate_scenarios(net, *plan, restorer,
                                                   scenarios, engine);
    // Exact equality: same restore() computations, same reduction order.
    EXPECT_EQ(m.capabilities, reference.capabilities) << "threads=" << threads;
    EXPECT_EQ(m.mean_capability, reference.mean_capability);
    EXPECT_EQ(m.path_gaps_km, reference.path_gaps_km);
    EXPECT_EQ(m.path_stretch, reference.path_stretch);
    EXPECT_EQ(m.scenarios_with_loss, reference.scenarios_with_loss);
  }
}

TEST(Determinism, SessionThreadsKnobDoesNotChangeOutputs) {
  const auto net = topology::make_cernet();
  const auto scenarios = restoration::single_fiber_cuts(net.optical);

  core::SessionOptions serial_options;
  serial_options.threads = 1;
  core::Session serial(net, core::Scheme::kFlexWan, serial_options);
  ASSERT_TRUE(serial.plan());
  const auto serial_drill = serial.restoration_drill(scenarios);
  ASSERT_TRUE(serial_drill);

  core::SessionOptions parallel_options;
  parallel_options.threads = 8;
  core::Session parallel(net, core::Scheme::kFlexWan, parallel_options);
  EXPECT_EQ(parallel.engine().thread_count(), 8);
  ASSERT_TRUE(parallel.plan());
  const auto parallel_drill = parallel.restoration_drill(scenarios);
  ASSERT_TRUE(parallel_drill);

  EXPECT_EQ(planning::save_plan(*serial.current_plan()),
            planning::save_plan(*parallel.current_plan()));
  EXPECT_EQ(parallel_drill->capabilities, serial_drill->capabilities);
  EXPECT_EQ(parallel_drill->mean_capability, serial_drill->mean_capability);
}

// Observability on vs off: identical plan and restoration bytes, at 1 and
// 8 threads, while the instrumented run still produces loadable reports.
TEST(Determinism, ObsEnabledDoesNotChangePlanOrRestorationBytes) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  restoration::Restorer restorer(transponder::svt_flexwan());
  const auto scenarios = restoration::standard_scenario_set(net.optical, 6, 5);

  // Reference run with every obs subsystem off.
  ASSERT_FALSE(obs::metrics_enabled());
  ASSERT_FALSE(obs::trace_enabled());
  const auto reference_plan = planner.plan(net);
  ASSERT_TRUE(reference_plan);
  const std::string reference_bytes = planning::save_plan(*reference_plan);
  const auto reference_metrics =
      restoration::evaluate_scenarios(net, *reference_plan, restorer,
                                      scenarios);

  obs::Registry::instance().reset();
  obs::reset_trace();
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  for (int threads : {1, 8}) {
    const engine::Engine engine(threads);
    const auto plan = planner.plan(net, engine);
    ASSERT_TRUE(plan) << "threads=" << threads;
    EXPECT_EQ(planning::save_plan(*plan), reference_bytes)
        << "threads=" << threads;
    const auto m = restoration::evaluate_scenarios(net, *plan, restorer,
                                                   scenarios, engine);
    EXPECT_EQ(m.capabilities, reference_metrics.capabilities);
    EXPECT_EQ(m.mean_capability, reference_metrics.mean_capability);
    EXPECT_EQ(m.path_gaps_km, reference_metrics.path_gaps_km);
  }
  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(false);

  // The instrumented run recorded real work and both reports parse back.
  EXPECT_GT(
      obs::Registry::instance().counter("planner.ksp.calls")->value(), 0u);
  EXPECT_GT(
      obs::Registry::instance().counter("engine.tasks_executed")->value(), 0u);
  const std::string metrics_path =
      testing::TempDir() + "determinism_metrics.json";
  const std::string trace_path = testing::TempDir() + "determinism_trace.json";
  obs::RunReport report;
  report.set_metrics_path(metrics_path);
  report.set_trace_path(trace_path);
  const auto written = report.write();
  ASSERT_TRUE(written) << written.error().message;
  report.release();
  for (const auto& path : {metrics_path, trace_path}) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto parsed = obs::json::parse(buffer.str());
    EXPECT_TRUE(parsed) << path << ": "
                        << (parsed ? "" : parsed.error().message);
  }
}

// The bench harness inherits the obs contract: wrapping a computation in
// Harness::run (warmup + repetitions + snapshot bracketing) must return
// byte-identical results to the bare call, at 1 and 8 threads.  This is
// the unit-level half of the bench stdout guarantee — the bench binaries'
// printing consumes only run()'s return value, so identical returns mean
// identical stdout (CI byte-compares the full binaries as well).
TEST(Determinism, BenchHarnessOnVsOffIdenticalResults) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  restoration::Restorer restorer(transponder::svt_flexwan());
  const auto scenarios = restoration::standard_scenario_set(net.optical, 6, 5);

  // Harness off: run() is a pass-through.
  benchlib::Harness off("determinism", obs::BenchOptions{});
  const auto reference_plan =
      off.run("plan", [&] { return planner.plan(net); });
  ASSERT_TRUE(reference_plan);
  const std::string reference_bytes = planning::save_plan(*reference_plan);
  const auto reference_metrics = off.run("restore", [&] {
    return restoration::evaluate_scenarios(net, *reference_plan, restorer,
                                           scenarios);
  });
  EXPECT_TRUE(off.results().empty());

  for (int threads : {1, 8}) {
    const engine::Engine engine(threads);
    obs::Registry::instance().reset();
    obs::set_metrics_enabled(true);
    obs::BenchOptions options;
    options.json_path = testing::TempDir() + "determinism_bench.json";
    options.warmup = 1;
    options.reps = 2;
    benchlib::Harness on("determinism", options, engine.thread_count());
    const auto plan =
        on.run("plan", [&] { return planner.plan(net, engine); });
    ASSERT_TRUE(plan) << "threads=" << threads;
    EXPECT_EQ(planning::save_plan(*plan), reference_bytes)
        << "threads=" << threads;
    const auto m = on.run("restore", [&] {
      return restoration::evaluate_scenarios(net, *plan, restorer, scenarios,
                                             engine);
    });
    EXPECT_EQ(m.capabilities, reference_metrics.capabilities);
    EXPECT_EQ(m.mean_capability, reference_metrics.mean_capability);
    EXPECT_EQ(m.path_gaps_km, reference_metrics.path_gaps_km);
    EXPECT_EQ(on.results().size(), 2u);
    on.release();
    obs::set_metrics_enabled(false);
  }
}

TEST(Determinism, RestorationWithExtraSparesIdenticalAcrossThreadCounts) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner flex(transponder::svt_flexwan(), {});
  planning::HeuristicPlanner rad(transponder::bvt_radwan(), {});
  const auto pf = flex.plan(net);
  const auto pr = rad.plan(net);
  ASSERT_TRUE(pf);
  ASSERT_TRUE(pr);
  const auto extras = restoration::flexwan_plus_spares(*pf, *pr);
  const auto scenarios = restoration::single_fiber_cuts(net.optical);
  restoration::Restorer restorer(transponder::svt_flexwan());

  const auto reference = restoration::evaluate_scenarios(net, *pf, restorer,
                                                         scenarios, extras);
  const engine::Engine engine(8);
  const auto m = restoration::evaluate_scenarios(net, *pf, restorer,
                                                 scenarios, engine, extras);
  EXPECT_EQ(m.capabilities, reference.capabilities);
  EXPECT_EQ(m.mean_capability, reference.mean_capability);
  EXPECT_EQ(m.path_gaps_km, reference.path_gaps_km);
}

}  // namespace
}  // namespace flexwan
