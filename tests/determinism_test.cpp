// Determinism under parallelism: the engine's index-ordered reduction must
// make planner and restoration outputs byte-identical at every thread
// count (the repo-wide reproducibility guarantee, see engine/engine.h).
#include <gtest/gtest.h>

#include "core/flexwan.h"
#include "engine/engine.h"
#include "planning/heuristic.h"
#include "planning/plan_io.h"
#include "restoration/metrics.h"
#include "restoration/scenario.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

namespace flexwan {
namespace {

TEST(Determinism, PlannerByteIdenticalAcrossThreadCounts) {
  const auto net = topology::make_tbackbone();
  for (const auto* catalog :
       {&transponder::svt_flexwan(), &transponder::bvt_radwan()}) {
    planning::HeuristicPlanner planner(*catalog, {});
    const auto serial = planner.plan(net);
    ASSERT_TRUE(serial) << catalog->name();
    const std::string reference = planning::save_plan(*serial);
    for (int threads : {2, 8}) {
      const engine::Engine engine(threads);
      const auto parallel = planner.plan(net, engine);
      ASSERT_TRUE(parallel) << catalog->name() << " threads=" << threads;
      EXPECT_EQ(planning::save_plan(*parallel), reference)
          << catalog->name() << " threads=" << threads;
    }
  }
}

TEST(Determinism, RestorationSweepIdenticalAcrossThreadCounts) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const auto scenarios = restoration::standard_scenario_set(net.optical, 6, 5);
  restoration::Restorer restorer(transponder::svt_flexwan());

  const auto reference =
      restoration::evaluate_scenarios(net, *plan, restorer, scenarios);
  for (int threads : {2, 8}) {
    const engine::Engine engine(threads);
    const auto m = restoration::evaluate_scenarios(net, *plan, restorer,
                                                   scenarios, engine);
    // Exact equality: same restore() computations, same reduction order.
    EXPECT_EQ(m.capabilities, reference.capabilities) << "threads=" << threads;
    EXPECT_EQ(m.mean_capability, reference.mean_capability);
    EXPECT_EQ(m.path_gaps_km, reference.path_gaps_km);
    EXPECT_EQ(m.path_stretch, reference.path_stretch);
    EXPECT_EQ(m.scenarios_with_loss, reference.scenarios_with_loss);
  }
}

TEST(Determinism, SessionThreadsKnobDoesNotChangeOutputs) {
  const auto net = topology::make_cernet();
  const auto scenarios = restoration::single_fiber_cuts(net.optical);

  core::SessionOptions serial_options;
  serial_options.threads = 1;
  core::Session serial(net, core::Scheme::kFlexWan, serial_options);
  ASSERT_TRUE(serial.plan());
  const auto serial_drill = serial.restoration_drill(scenarios);
  ASSERT_TRUE(serial_drill);

  core::SessionOptions parallel_options;
  parallel_options.threads = 8;
  core::Session parallel(net, core::Scheme::kFlexWan, parallel_options);
  EXPECT_EQ(parallel.engine().thread_count(), 8);
  ASSERT_TRUE(parallel.plan());
  const auto parallel_drill = parallel.restoration_drill(scenarios);
  ASSERT_TRUE(parallel_drill);

  EXPECT_EQ(planning::save_plan(*serial.current_plan()),
            planning::save_plan(*parallel.current_plan()));
  EXPECT_EQ(parallel_drill->capabilities, serial_drill->capabilities);
  EXPECT_EQ(parallel_drill->mean_capability, serial_drill->mean_capability);
}

TEST(Determinism, RestorationWithExtraSparesIdenticalAcrossThreadCounts) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner flex(transponder::svt_flexwan(), {});
  planning::HeuristicPlanner rad(transponder::bvt_radwan(), {});
  const auto pf = flex.plan(net);
  const auto pr = rad.plan(net);
  ASSERT_TRUE(pf);
  ASSERT_TRUE(pr);
  const auto extras = restoration::flexwan_plus_spares(*pf, *pr);
  const auto scenarios = restoration::single_fiber_cuts(net.optical);
  restoration::Restorer restorer(transponder::svt_flexwan());

  const auto reference = restoration::evaluate_scenarios(net, *pf, restorer,
                                                         scenarios, extras);
  const engine::Engine engine(8);
  const auto m = restoration::evaluate_scenarios(net, *pf, restorer,
                                                 scenarios, engine, extras);
  EXPECT_EQ(m.capabilities, reference.capabilities);
  EXPECT_EQ(m.mean_capability, reference.mean_capability);
  EXPECT_EQ(m.path_gaps_km, reference.path_gaps_km);
}

}  // namespace
}  // namespace flexwan
