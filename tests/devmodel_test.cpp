// Tests for the standard device model: config documents, vendor adapters,
#include <set>
// and the NETCONF transport simulation.
#include <gtest/gtest.h>

#include "devmodel/config.h"
#include "devmodel/netconf.h"
#include "devmodel/vendors.h"
#include "transponder/catalog.h"

namespace flexwan::devmodel {
namespace {

const transponder::Mode& svt_mode(double rate, double spacing) {
  for (const auto& m : transponder::svt_flexwan().modes()) {
    if (m.data_rate_gbps == rate && m.spacing_ghz == spacing) return m;
  }
  throw std::logic_error("mode not in catalog");
}

TEST(ConfigDocument, SetGetAndNumbers) {
  ConfigDocument doc("10.0.0.1", DeviceKind::kTransponder);
  doc.set("dsp/modulation", "QPSK");
  doc.set_number("data-rate-gbps", 200);
  EXPECT_EQ(doc.get("dsp/modulation"), "QPSK");
  ASSERT_TRUE(doc.get_number("data-rate-gbps"));
  EXPECT_DOUBLE_EQ(*doc.get_number("data-rate-gbps"), 200.0);
  EXPECT_FALSE(doc.get("missing").has_value());
  const auto miss = doc.get_number("missing");
  ASSERT_FALSE(miss);
  EXPECT_EQ(miss.error().code, "missing_leaf");
}

TEST(ConfigDocument, NonNumericLeafError) {
  ConfigDocument doc("10.0.0.1", DeviceKind::kTransponder);
  doc.set("data-rate-gbps", "fast");
  const auto r = doc.get_number("data-rate-gbps");
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "bad_leaf");
}

TEST(ConfigDocument, SerializeIsStableXmlIsh) {
  ConfigDocument doc("10.0.0.7", DeviceKind::kWss);
  doc.set_number("port", 2);
  const auto text = doc.serialize();
  EXPECT_NE(text.find("<config device=\"10.0.0.7\" model=\"wss\">"),
            std::string::npos);
  EXPECT_NE(text.find("<leaf path=\"port\">2</leaf>"), std::string::npos);
}

TEST(ConfigDocument, TransponderRoundTrip) {
  const auto& mode = svt_mode(400, 112.5);
  const auto doc =
      make_transponder_config("10.0.0.1", mode, spectrum::Range{8, 9});
  const auto parsed = parse_transponder_mode(doc);
  ASSERT_TRUE(parsed);
  EXPECT_DOUBLE_EQ(parsed->data_rate_gbps, mode.data_rate_gbps);
  EXPECT_DOUBLE_EQ(parsed->spacing_ghz, mode.spacing_ghz);
  EXPECT_DOUBLE_EQ(parsed->reach_km, mode.reach_km);
  EXPECT_EQ(parsed->modulation, mode.modulation);
  EXPECT_DOUBLE_EQ(parsed->fec_overhead, mode.fec_overhead);
  const auto range = parse_spectrum_range(doc, "spectrum/");
  ASSERT_TRUE(range);
  EXPECT_EQ(*range, (spectrum::Range{8, 9}));
}

TEST(ConfigDocument, WssRoundTrip) {
  const auto doc = make_wss_config("10.1.0.1", 3, spectrum::Range{12, 6});
  ASSERT_TRUE(doc.get_number("port"));
  EXPECT_EQ(static_cast<int>(*doc.get_number("port")), 3);
  const auto range = parse_spectrum_range(doc, "filter-port/3/");
  ASSERT_TRUE(range);
  EXPECT_EQ(*range, (spectrum::Range{12, 6}));
}

TEST(Vendors, AllKnownVendorsHaveAdapters) {
  for (const auto& v : known_vendors()) {
    EXPECT_EQ(adapter_for(v).vendor(), v);
  }
  EXPECT_THROW(adapter_for("vendorZ"), std::invalid_argument);
}

TEST(Vendors, DialectsDifferButDeviceStateAgrees) {
  // The same standard document produces different native syntax per vendor
  // but identical device configuration — the §4.3 vendor-agnostic claim.
  const auto& mode = svt_mode(400, 112.5);
  const auto doc =
      make_transponder_config("10.0.0.1", mode, spectrum::Range{0, 9});
  std::set<std::string> dialects;
  for (const auto& vendor : known_vendors()) {
    dialects.insert(adapter_for(vendor).native_syntax(doc));
    hardware::TransponderDevice dev(
        {"10.0.0.1", vendor, "SVT"},
        {&transponder::svt_flexwan(), true, 0.0});
    ASSERT_TRUE(adapter_for(vendor).configure_transponder(dev, doc));
    EXPECT_TRUE(dev.configured());
    EXPECT_DOUBLE_EQ(dev.mode().data_rate_gbps, 400);
    EXPECT_EQ(dev.range(), (spectrum::Range{0, 9}));
  }
  EXPECT_EQ(dialects.size(), known_vendors().size());
}

// Property sweep: every Table 2 format configures identically through every
// vendor adapter — the full vendor-agnostic matrix.
class VendorModeSweep : public ::testing::TestWithParam<int> {};

TEST_P(VendorModeSweep, AllVendorsProduceIdenticalDeviceState) {
  const auto& mode = transponder::svt_flexwan().modes()
      [static_cast<std::size_t>(GetParam())];
  const spectrum::Range range{3, mode.pixels()};
  const auto doc = make_transponder_config("10.0.0.1", mode, range);
  for (const auto& vendor : known_vendors()) {
    hardware::TransponderDevice dev({"10.0.0.1", vendor, "SVT"},
                                    {&transponder::svt_flexwan(), true, 0.0});
    const auto r = adapter_for(vendor).configure_transponder(dev, doc);
    ASSERT_TRUE(r) << vendor << " " << mode.describe() << ": "
                   << r.error().message;
    EXPECT_DOUBLE_EQ(dev.mode().data_rate_gbps, mode.data_rate_gbps);
    EXPECT_DOUBLE_EQ(dev.mode().spacing_ghz, mode.spacing_ghz);
    EXPECT_DOUBLE_EQ(dev.mode().fec_overhead, mode.fec_overhead);
    EXPECT_EQ(dev.mode().modulation, mode.modulation);
    EXPECT_EQ(dev.range(), range);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTable2Formats, VendorModeSweep,
                         ::testing::Range(0, 36));

TEST(Vendors, NativeSyntaxSpotChecks) {
  const auto& mode = svt_mode(400, 112.5);
  const auto doc =
      make_transponder_config("10.0.0.1", mode, spectrum::Range{8, 9});
  EXPECT_NE(adapter_for("vendorA").native_syntax(doc).find("spacing=112.5ghz"),
            std::string::npos);
  EXPECT_NE(adapter_for("vendorB").native_syntax(doc).find("spacing-mhz 112500"),
            std::string::npos);
  // vendorC's inclusive-end slice: pixels 8..16.
  EXPECT_NE(adapter_for("vendorC").native_syntax(doc).find("slice 8:16"),
            std::string::npos);
}

TEST(Vendors, WssConfigThroughAdapter) {
  const auto doc = make_wss_config("10.1.0.1", 1, spectrum::Range{6, 6});
  hardware::WssDevice wss({"10.1.0.1", "vendorB", "WSS"}, 4, 1);
  ASSERT_TRUE(adapter_for("vendorB").configure_wss(wss, doc));
  ASSERT_TRUE(wss.passband(1).has_value());
  EXPECT_EQ(*wss.passband(1), (spectrum::Range{6, 6}));
}

TEST(Netconf, RoutesToRegisteredDevice) {
  NetconfService svc;
  hardware::TransponderDevice dev({"10.0.0.1", "vendorA", "SVT"},
                                  {&transponder::svt_flexwan(), true, 0.0});
  ASSERT_TRUE(svc.register_device(&dev));
  const auto& mode = svt_mode(100, 75);
  const auto r = svc.edit_config(
      make_transponder_config("10.0.0.1", mode, spectrum::Range{0, 6}));
  EXPECT_TRUE(r);
  EXPECT_TRUE(dev.configured());
  EXPECT_EQ(svc.rpc_count(), 1);
}

TEST(Netconf, UnknownDeviceFails) {
  NetconfService svc;
  const auto& mode = svt_mode(100, 75);
  const auto r = svc.edit_config(
      make_transponder_config("10.9.9.9", mode, spectrum::Range{0, 6}));
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "unknown_device");
}

TEST(Netconf, DuplicateIpRejected) {
  NetconfService svc;
  hardware::TransponderDevice a({"10.0.0.1", "vendorA", "SVT"},
                                {&transponder::svt_flexwan(), true, 0.0});
  hardware::TransponderDevice b({"10.0.0.1", "vendorB", "SVT"},
                                {&transponder::svt_flexwan(), true, 0.0});
  ASSERT_TRUE(svc.register_device(&a));
  const auto r = svc.register_device(&b);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "duplicate_ip");
}

TEST(Netconf, KindMismatchRejected) {
  NetconfService svc;
  hardware::WssDevice wss({"10.1.0.1", "vendorA", "WSS"}, 4, 1);
  ASSERT_TRUE(svc.register_device(&wss));
  const auto& mode = svt_mode(100, 75);
  const auto r = svc.edit_config(
      make_transponder_config("10.1.0.1", mode, spectrum::Range{0, 6}));
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "kind_mismatch");
}

TEST(Netconf, TelemetryReadsRxBer) {
  NetconfService svc;
  hardware::TransponderDevice dev({"10.0.0.1", "vendorA", "SVT"},
                                  {&transponder::svt_flexwan(), true, 0.0});
  ASSERT_TRUE(svc.register_device(&dev));
  dev.set_rx_ber(1e-3);
  const auto v = svc.get_telemetry("10.0.0.1", "rx-ber");
  ASSERT_TRUE(v);
  EXPECT_DOUBLE_EQ(*v, 1e-3);
  EXPECT_FALSE(svc.get_telemetry("10.0.0.1", "unknown"));
  EXPECT_FALSE(svc.get_telemetry("10.9.9.9", "rx-ber"));
}

TEST(Netconf, DevicePrerequisiteErrorsPropagate) {
  NetconfService svc;
  // A rigid BVT rejects a spacing-variable configuration via the adapter.
  hardware::TransponderDevice bvt({"10.0.0.2", "vendorB", "BVT"},
                                  {&transponder::bvt_radwan(), false, 75.0});
  ASSERT_TRUE(svc.register_device(&bvt));
  const auto& wide = svt_mode(400, 112.5);
  const auto r = svc.edit_config(
      make_transponder_config("10.0.0.2", wide, spectrum::Range{0, 9}));
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "unsupported_mode");
}

}  // namespace
}  // namespace flexwan::devmodel
