// Engine contract tests: index coverage, index-ordered collection, empty
// ranges, exception propagation, nested-call fallback, and the --threads
// flag parser.
#include "engine/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace flexwan::engine {
namespace {

TEST(Engine, ThreadCountDefaultsAndClamps) {
  const Engine hw(0);
  EXPECT_GE(hw.thread_count(), 1);
  const Engine one(1);
  EXPECT_EQ(one.thread_count(), 1);
  const Engine negative(-3);
  EXPECT_GE(negative.thread_count(), 1);
  EXPECT_EQ(Engine::serial().thread_count(), 1);
}

TEST(Engine, ParallelForEmptyRangeIsNoop) {
  const Engine engine(4);
  std::atomic<int> calls{0};
  engine.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(engine.parallel_map(0, [](std::size_t i) { return i; }).empty());
}

TEST(Engine, ParallelForVisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    const Engine engine(threads);
    constexpr std::size_t kN = 997;
    std::vector<std::atomic<int>> visits(kN);
    engine.parallel_for(kN, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(Engine, ParallelMapCollectsInIndexOrder) {
  for (int threads : {1, 3, 8}) {
    const Engine engine(threads);
    const auto out =
        engine.parallel_map(500, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 500u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], i * i);
    }
  }
}

TEST(Engine, ParallelMapWorksWithNonDefaultConstructibleTypes) {
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  const Engine engine(4);
  const auto out = engine.parallel_map(
      64, [](std::size_t i) { return NoDefault(static_cast<int>(i) + 1); });
  ASSERT_EQ(out.size(), 64u);
  EXPECT_EQ(out.front().value, 1);
  EXPECT_EQ(out.back().value, 64);
}

TEST(Engine, ExceptionPropagatesToCaller) {
  for (int threads : {1, 8}) {
    const Engine engine(threads);
    EXPECT_THROW(engine.parallel_for(100,
                                     [](std::size_t i) {
                                       if (i == 42) {
                                         throw std::runtime_error("boom");
                                       }
                                     }),
                 std::runtime_error);
  }
}

TEST(Engine, LowestIndexExceptionWinsWhenEveryBodyThrows) {
  // Index 0 is always claimed (the cursor starts there), so when every body
  // throws, the rethrown exception must be index 0's.
  for (int threads : {1, 8}) {
    const Engine engine(threads);
    try {
      engine.parallel_for(64, [](std::size_t i) {
        throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "0");
    }
  }
}

TEST(Engine, ExceptionCancelsUnclaimedWork) {
  const Engine engine(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(engine.parallel_for(100000,
                                   [&](std::size_t) {
                                     ++ran;
                                     throw std::runtime_error("stop");
                                   }),
               std::runtime_error);
  // The first throw cancels the cursor; only the bodies already in flight
  // (at most one per participant) can have run.
  EXPECT_LE(ran.load(), engine.thread_count() + 1);
}

TEST(Engine, NestedParallelForRunsInline) {
  const Engine engine(4);
  std::atomic<int> total{0};
  engine.parallel_for(8, [&](std::size_t) {
    engine.parallel_for(8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(Engine, ReusableAcrossManyInvocations) {
  const Engine engine(4);
  std::size_t sum = 0;
  for (int round = 0; round < 50; ++round) {
    const auto out =
        engine.parallel_map(32, [](std::size_t i) { return i + 1; });
    sum += std::accumulate(out.begin(), out.end(), std::size_t{0});
  }
  EXPECT_EQ(sum, 50u * (32u * 33u / 2u));
}

TEST(ThreadsFlag, ParsesAndRemovesFlag) {
  char prog[] = "bench";
  char file[] = "net.txt";
  char flag[] = "--threads";
  char value[] = "6";
  char* argv[] = {prog, file, flag, value, nullptr};
  int argc = 4;
  EXPECT_EQ(threads_flag(argc, argv), 6);
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "net.txt");
}

TEST(ThreadsFlag, ParseThreadCountAcceptsValidValues) {
  for (const auto& [text, expected] :
       {std::pair<const char*, int>{"0", 0}, {"1", 1}, {"8", 8},
        {"4096", kMaxThreadsFlag}}) {
    const auto parsed = parse_thread_count(text);
    ASSERT_TRUE(parsed) << text;
    EXPECT_EQ(parsed.value(), expected) << text;
  }
}

TEST(ThreadsFlag, ParseThreadCountRejectsMalformedValues) {
  // Non-numeric, trailing garbage, negative, and silently-truncating
  // overflow values must all produce a clear error, never a misparse.
  for (const char* bad :
       {"", "abc", "4x", "1.5", "1e3", "--threads", "-1", "-42", "4097",
        "99999999999999999999", "9223372036854775807"}) {
    const auto parsed = parse_thread_count(bad);
    EXPECT_FALSE(parsed) << "'" << bad << "' should be rejected";
    if (!parsed) EXPECT_EQ(parsed.error().code, "bad_threads");
  }
  EXPECT_FALSE(parse_thread_count(nullptr));
}

TEST(ThreadsFlag, ParsesEqualsFormAndFallback) {
  char prog[] = "bench";
  char flag[] = "--threads=3";
  char* argv[] = {prog, flag, nullptr};
  int argc = 2;
  EXPECT_EQ(threads_flag(argc, argv), 3);
  EXPECT_EQ(argc, 1);

  char* argv2[] = {prog, nullptr};
  int argc2 = 1;
  EXPECT_EQ(threads_flag(argc2, argv2, 7), 7);
  EXPECT_EQ(argc2, 1);
}

}  // namespace
}  // namespace flexwan::engine
