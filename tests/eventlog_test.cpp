// Tests for the structured event log (src/obs/eventlog.h): dense sequence
// numbers, severity filtering at emit time, payload escaping that
// round-trips through the obs JSON parser, buffer splicing, thread-local
// routing, and byte-identical output under parallel emission.
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "obs/eventlog.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace flexwan::obs {
namespace {

// Enables event emission for one test and restores the pristine disabled
// state (empty log, seq restarting at 1, kInfo filter) on the way out.
class EventGuard {
 public:
  EventGuard() {
    EventLog::instance().reset();
    set_events_enabled(true);
  }
  ~EventGuard() {
    set_events_enabled(false);
    EventLog::instance().reset();
  }
};

// Parses one events.jsonl line; fails the test on parse errors.
json::Value parse_line(const std::string& line) {
  auto parsed = json::parse(line);
  EXPECT_TRUE(parsed.has_value())
      << (parsed ? "" : parsed.error().message) << " in: " << line;
  return parsed ? std::move(parsed.value()) : json::Value();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    lines.push_back(text.substr(start, nl - start));
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
  return lines;
}

TEST(EventLog, SequenceNumbersAreDenseFromOne) {
  const EventGuard guard;
  emit_event(make_event("sim", Severity::kInfo, "sim.cut", 1.5));
  emit_event(make_event("sim", Severity::kInfo, "sim.repair", 2.5));
  emit_event(make_event("planner", Severity::kInfo, "planner.stage1.done"));

  const auto records = EventLog::instance().records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[1].seq, 2u);
  EXPECT_EQ(records[2].seq, 3u);
  EXPECT_EQ(records[0].name, "sim.cut");
  EXPECT_EQ(records[2].name, "planner.stage1.done");

  // reset() restarts the numbering, so a second run is indistinguishable
  // from a first.
  EventLog::instance().reset();
  emit_event(make_event("sim", Severity::kInfo, "sim.cut"));
  ASSERT_EQ(EventLog::instance().size(), 1u);
  EXPECT_EQ(EventLog::instance().records()[0].seq, 1u);
}

TEST(EventLog, DisabledEmissionIsANoOp) {
  EventLog::instance().reset();
  set_events_enabled(false);
  emit_event(make_event("sim", Severity::kError, "sim.cut"));
  EXPECT_EQ(EventLog::instance().size(), 0u);
  EXPECT_EQ(EventLog::instance().to_jsonl(), "");
}

TEST(EventLog, SeverityFilterDropsAtEmitTime) {
  const EventGuard guard;
  EventLog::instance().set_min_severity(Severity::kWarn);
  emit_event(make_event("sim", Severity::kInfo, "sim.cut"));
  emit_event(make_event("sim", Severity::kWarn, "sim.growth"));
  emit_event(make_event("controller", Severity::kError,
                        "controller.deploy.exhausted"));

  const auto records = EventLog::instance().records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "sim.growth");
  EXPECT_EQ(records[1].name, "controller.deploy.exhausted");
  // Dropped records never consume sequence numbers: the kept ones stay
  // dense.
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[1].seq, 2u);

  // The filter also applies to buffered emission.
  EventBuffer buffer;
  {
    const ScopedEventBuffer scope(&buffer);
    emit_event(make_event("sim", Severity::kInfo, "sim.repair"));
    emit_event(make_event("sim", Severity::kWarn, "sim.growth"));
  }
  EXPECT_EQ(buffer.size(), 1u);

  // reset() restores the kInfo default.
  EventLog::instance().reset();
  EXPECT_EQ(EventLog::instance().min_severity(), Severity::kInfo);
}

// The "server" category (flexwand request/commit events) obeys the same
// emit-time filter contract as the simulation categories: filtered records
// are never buffered, and the kept ones keep their fields intact.
TEST(EventLog, ServerCategoryFiltersAtEmitTime) {
  const EventGuard guard;
  EventLog::instance().set_min_severity(Severity::kWarn);

  auto ok = make_event("server", Severity::kInfo, "server.request");
  ok.fields.emplace_back("method", json::Value(std::string("extend")));
  emit_event(std::move(ok));
  auto failed = make_event("server", Severity::kWarn, "server.request");
  failed.fields.emplace_back("method", json::Value(std::string("extend")));
  failed.fields.emplace_back("error", json::Value(std::string("no_plan")));
  emit_event(std::move(failed));
  emit_event(make_event("server", Severity::kInfo, "server.commit"));

  const auto records = EventLog::instance().records();
  ASSERT_EQ(records.size(), 1u);  // both kInfo records dropped at emit
  EXPECT_EQ(records[0].category, "server");
  EXPECT_EQ(records[0].name, "server.request");
  EXPECT_EQ(records[0].seq, 1u);

  const auto line = parse_line(EventLog::instance().to_jsonl());
  bool saw_error_field = false;
  for (const auto& [key, value] : line.as_object()) {
    if (key != "fields") continue;
    for (const auto& [field, field_value] : value.as_object()) {
      if (field == "error") {
        saw_error_field = true;
        EXPECT_EQ(field_value.as_string(), "no_plan");
      }
    }
  }
  EXPECT_TRUE(saw_error_field);

  // With the filter back at kInfo, server events interleave with the other
  // categories in one dense sequence.
  EventLog::instance().reset();
  emit_event(make_event("server", Severity::kInfo, "server.request"));
  emit_event(make_event("planner", Severity::kInfo, "planner.stage1.done"));
  emit_event(make_event("server", Severity::kWarn, "server.request"));
  const auto mixed = EventLog::instance().records();
  ASSERT_EQ(mixed.size(), 3u);
  EXPECT_EQ(mixed[0].category, "server");
  EXPECT_EQ(mixed[1].category, "planner");
  EXPECT_EQ(mixed[2].seq, 3u);
}

TEST(EventLog, JsonlRecordsParseBackWithEscapedPayloads) {
  const EventGuard guard;
  const std::string nasty = "quote \" backslash \\ newline \n tab \t end";
  emit_event(make_event("controller", Severity::kWarn,
                        "controller.deploy.failover", 3.25)
                 .with("vendor", nasty)
                 .with("replica", 2)
                 .with("rpcs", std::size_t{17})
                 .with("fraction", 0.125)
                 .with("degraded", true));

  const auto lines = split_lines(EventLog::instance().to_jsonl());
  ASSERT_EQ(lines.size(), 1u);
  const auto doc = parse_line(lines[0]);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("seq")->as_number(), 1.0);
  EXPECT_EQ(doc.find("t_days")->as_number(), 3.25);
  EXPECT_EQ(doc.find("cat")->as_string(), "controller");
  EXPECT_EQ(doc.find("sev")->as_string(), "warn");
  EXPECT_EQ(doc.find("name")->as_string(), "controller.deploy.failover");
  const json::Value* fields = doc.find("fields");
  ASSERT_NE(fields, nullptr);
  ASSERT_TRUE(fields->is_object());
  // The whole point of escaping: the parsed string equals the original.
  EXPECT_EQ(fields->find("vendor")->as_string(), nasty);
  EXPECT_EQ(fields->find("replica")->as_number(), 2.0);
  EXPECT_EQ(fields->find("rpcs")->as_number(), 17.0);
  EXPECT_EQ(fields->find("fraction")->as_number(), 0.125);
  EXPECT_TRUE(fields->find("degraded")->as_bool());
}

TEST(EventLog, RecordsWithoutTimeOmitTheTimeKey) {
  const EventGuard guard;
  emit_event(make_event("planner", Severity::kInfo, "planner.stage1.done"));
  const auto lines = split_lines(EventLog::instance().to_jsonl());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].find("t_days"), std::string::npos);
  const auto doc = parse_line(lines[0]);
  EXPECT_EQ(doc.find("t_days"), nullptr);
}

TEST(EventBuffer, SetTimeDaysStampsUnsetRecords) {
  const EventGuard guard;
  EventBuffer buffer;
  buffer.set_time_days(7.5);
  {
    const ScopedEventBuffer scope(&buffer);
    emit_event(make_event("sim", Severity::kInfo, "sim.cut"));
    emit_event(make_event("sim", Severity::kInfo, "sim.repair", 9.0));
  }
  ASSERT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.records()[0].time_days, 7.5);   // inherited
  EXPECT_EQ(buffer.records()[1].time_days, 9.0);   // explicit wins
}

TEST(EventBuffer, SpliceAssignsDenseSequenceInBufferOrder) {
  const EventGuard guard;
  EventBuffer a;
  EventBuffer b;
  a.emit(make_event("sim", Severity::kInfo, "sim.cut").with("fiber", 1));
  a.emit(make_event("sim", Severity::kInfo, "sim.repair").with("fiber", 1));
  b.emit(make_event("sim", Severity::kInfo, "sim.cut").with("fiber", 2));

  emit_event(make_event("planner", Severity::kInfo, "planner.stage1.done"));
  EventLog::instance().splice(std::move(a));
  EventLog::instance().splice(std::move(b));

  const auto records = EventLog::instance().records();
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i + 1) << "record " << i;
  }
  EXPECT_EQ(records[0].name, "planner.stage1.done");
  EXPECT_EQ(records[1].fields[0].second.as_number(), 1.0);
  EXPECT_EQ(records[3].fields[0].second.as_number(), 2.0);
}

TEST(ScopedEventBuffer, RoutesToBufferAndRestoresOnExit) {
  const EventGuard guard;
  EventBuffer outer;
  EventBuffer inner;
  {
    const ScopedEventBuffer outer_scope(&outer);
    emit_event(make_event("sim", Severity::kInfo, "outer.before"));
    {
      const ScopedEventBuffer inner_scope(&inner);
      emit_event(make_event("sim", Severity::kInfo, "inner"));
    }
    emit_event(make_event("sim", Severity::kInfo, "outer.after"));
  }
  emit_event(make_event("sim", Severity::kInfo, "global"));

  ASSERT_EQ(outer.size(), 2u);
  EXPECT_EQ(outer.records()[0].name, "outer.before");
  EXPECT_EQ(outer.records()[1].name, "outer.after");
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(inner.records()[0].name, "inner");
  ASSERT_EQ(EventLog::instance().size(), 1u);
  EXPECT_EQ(EventLog::instance().records()[0].name, "global");
}

// The contract that makes bundles byte-identical at any --threads value:
// parallel tasks emit into per-task buffers, the owner splices them back in
// task-index order, and the resulting jsonl matches a serial run exactly.
TEST(EventLog, ParallelEmissionSplicedInIndexOrderMatchesSerial) {
  constexpr std::size_t kTasks = 16;
  const auto run_with = [](const engine::Engine& engine) {
    EventLog::instance().reset();
    auto buffers = engine.parallel_map(kTasks, [](std::size_t i) {
      EventBuffer buffer;
      const ScopedEventBuffer scope(&buffer);
      buffer.set_time_days(static_cast<double>(i));
      emit_event(make_event("sim", Severity::kInfo, "task.begin")
                     .with("task", i));
      emit_event(make_event("sim", Severity::kInfo, "task.end")
                     .with("task", i)
                     .with("work", static_cast<double>(i) * 0.5));
      return buffer;
    });
    for (auto& buffer : buffers) {
      EventLog::instance().splice(std::move(buffer));
    }
    return EventLog::instance().to_jsonl();
  };

  const EventGuard guard;
  const engine::Engine serial(1);
  const engine::Engine parallel(8);
  const std::string serial_jsonl = run_with(serial);
  const std::string parallel_jsonl = run_with(parallel);
  EXPECT_FALSE(serial_jsonl.empty());
  EXPECT_EQ(serial_jsonl, parallel_jsonl);

  // And the serial log is what a naive single-threaded loop would produce.
  const auto lines = split_lines(serial_jsonl);
  ASSERT_EQ(lines.size(), 2 * kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    const auto begin = parse_line(lines[2 * i]);
    EXPECT_EQ(begin.find("name")->as_string(), "task.begin");
    EXPECT_EQ(begin.find("fields")->find("task")->as_number(),
              static_cast<double>(i));
    EXPECT_EQ(begin.find("t_days")->as_number(), static_cast<double>(i));
  }
}

}  // namespace
}  // namespace flexwan::obs
