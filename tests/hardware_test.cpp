// Tests for the simulated optical hardware: transponders, WSS, the link
// simulation (consistency/conflict/cut detection), and the §6 testbed.
#include <gtest/gtest.h>

#include "hardware/devices.h"
#include "hardware/link_sim.h"
#include "hardware/testbed.h"
#include "phy/calibration.h"
#include "transponder/catalog.h"

namespace flexwan::hardware {
namespace {

const transponder::Mode& svt_mode(double rate, double spacing) {
  for (const auto& m : transponder::svt_flexwan().modes()) {
    if (m.data_rate_gbps == rate && m.spacing_ghz == spacing) return m;
  }
  throw std::logic_error("mode not in catalog");
}

TransponderDevice make_svt(const std::string& ip) {
  return TransponderDevice({ip, "vendorA", "SVT-800"},
                           {&transponder::svt_flexwan(), true, 0.0});
}

TransponderDevice make_bvt(const std::string& ip) {
  return TransponderDevice({ip, "vendorB", "BVT-300"},
                           {&transponder::bvt_radwan(), false, 75.0});
}

TEST(Transponder, SvtAcceptsAnyCatalogMode) {
  auto svt = make_svt("10.0.0.1");
  for (const auto& mode : transponder::svt_flexwan().modes()) {
    EXPECT_TRUE(svt.configure(mode, spectrum::Range{0, mode.pixels()}))
        << mode.describe();
  }
}

TEST(Transponder, BvtRejectsOffSpacingModes) {
  auto bvt = make_bvt("10.0.0.2");
  // 75 GHz modes pass...
  const auto& ok = svt_mode(300, 75);
  EXPECT_TRUE(bvt.configure(ok, spectrum::Range{0, ok.pixels()}));
  // ...but a spacing-variable request hits the rigid EOM.
  const auto& wide = svt_mode(400, 112.5);
  const auto r = bvt.configure(wide, spectrum::Range{0, wide.pixels()});
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "unsupported_mode");
}

TEST(Transponder, BvtRejectsFixedSpacingViolationEvenIfCatalogMatches) {
  // A device whose catalog is the SVT table but whose EOM is fixed at 75:
  // the DSP could do it, the EOM cannot.
  TransponderDevice dev({"10.0.0.9", "vendorA", "half-flex"},
                        {&transponder::svt_flexwan(), false, 75.0});
  const auto& wide = svt_mode(400, 112.5);
  const auto r = dev.configure(wide, spectrum::Range{0, wide.pixels()});
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "fixed_spacing");
}

TEST(Transponder, RangeMustMatchChannelSpacing) {
  auto svt = make_svt("10.0.0.3");
  const auto& mode = svt_mode(400, 112.5);  // 9 pixels
  const auto r = svt.configure(mode, spectrum::Range{0, 6});
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "bad_range");
}

TEST(Transponder, TransmitRequiresConfiguration) {
  auto svt = make_svt("10.0.0.4");
  const auto r = svt.transmit();
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "not_configured");
  const auto& mode = svt_mode(100, 50);
  ASSERT_TRUE(svt.configure(mode, spectrum::Range{4, 4}));
  const auto signal = svt.transmit();
  ASSERT_TRUE(signal);
  EXPECT_EQ(signal->range, (spectrum::Range{4, 4}));
  EXPECT_EQ(signal->source_ip, "10.0.0.4");
}

TEST(Wss, PixelWiseAcceptsAnyContinuousRange) {
  WssDevice wss({"10.1.0.1", "vendorA", "WSS-LCoS"}, 4, 1);
  EXPECT_TRUE(wss.set_passband(0, spectrum::Range{3, 7}));
  EXPECT_TRUE(wss.set_passband(1, spectrum::Range{17, 9}));
  EXPECT_TRUE(wss.passes(spectrum::Range{3, 7}));
  EXPECT_TRUE(wss.passes(spectrum::Range{4, 5}));   // covered subset
  EXPECT_FALSE(wss.passes(spectrum::Range{2, 7}));  // sticks out left
  EXPECT_FALSE(wss.passes(spectrum::Range{40, 4}));
}

TEST(Wss, FixedGridRejectsUnalignedPassbands) {
  WssDevice wss({"10.1.0.2", "vendorB", "WSS-FixGrid"}, 4, 6);
  EXPECT_TRUE(wss.set_passband(0, spectrum::Range{0, 6}));
  EXPECT_TRUE(wss.set_passband(1, spectrum::Range{6, 12}));
  const auto r = wss.set_passband(2, spectrum::Range{3, 6});
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "grid_misaligned");
  const auto r2 = wss.set_passband(2, spectrum::Range{6, 9});
  ASSERT_FALSE(r2);
  EXPECT_EQ(r2.error().code, "grid_misaligned");
}

TEST(Wss, PortManagement) {
  WssDevice wss({"10.1.0.3", "vendorA", "WSS-LCoS"}, 2, 1);
  EXPECT_FALSE(wss.set_passband(5, spectrum::Range{0, 4}));
  EXPECT_FALSE(wss.passband(0).has_value());
  ASSERT_TRUE(wss.set_passband(0, spectrum::Range{0, 4}));
  EXPECT_TRUE(wss.passband(0).has_value());
  ASSERT_TRUE(wss.clear_passband(0));
  EXPECT_FALSE(wss.passband(0).has_value());
  EXPECT_FALSE(wss.passes(spectrum::Range{0, 4}));
}

class LinkSimTest : public ::testing::Test {
 protected:
  LinkSimTest()
      : model_(phy::calibrate(transponder::svt_flexwan())),
        tx_(make_svt("10.0.1.1")),
        rx_(make_svt("10.0.1.2")),
        mux_({"10.1.1.1", "vendorA", "WSS"}, 4, 1) {}

  LightPath configured_path(LinkSim& sim, const transponder::Mode& mode,
                            double km, spectrum::Range range) {
    EXPECT_TRUE(tx_.configure(mode, range));
    EXPECT_TRUE(rx_.configure(mode, range));
    EXPECT_TRUE(mux_.set_passband(0, range));
    LightPath p;
    p.tx = &tx_;
    p.rx = &rx_;
    p.hops.push_back(LinkHop{&mux_, sim.add_fiber(km), km});
    return p;
  }

  phy::CalibratedModel model_;
  TransponderDevice tx_;
  TransponderDevice rx_;
  WssDevice mux_;
};

TEST_F(LinkSimTest, DeliversWithinReach) {
  LinkSim sim(model_);
  const auto& mode = svt_mode(100, 75);  // 5000 km reach
  const auto path = configured_path(sim, mode, 1000, {0, 6});
  const auto results = sim.propagate({path});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].delivered);
  EXPECT_DOUBLE_EQ(results[0].post_fec_ber, 0.0);
  EXPECT_DOUBLE_EQ(rx_.rx_ber(), 0.0);
}

TEST_F(LinkSimTest, SnrTooLowBeyondReach) {
  LinkSim sim(model_);
  const auto& mode = svt_mode(800, 112.5);  // 150 km reach
  const auto path = configured_path(sim, mode, 2000, {0, 9});
  const auto results = sim.propagate({path});
  EXPECT_FALSE(results[0].delivered);
  EXPECT_EQ(results[0].failure, "snr_too_low");
  EXPECT_GT(results[0].post_fec_ber, 0.0);
  EXPECT_GT(rx_.rx_ber(), 0.0);
}

TEST_F(LinkSimTest, ChannelInconsistencyDropsSignal) {
  // Fig. 5(a): passband narrower than the channel — signal lost.
  LinkSim sim(model_);
  const auto& mode = svt_mode(400, 112.5);  // 9 pixels
  ASSERT_TRUE(tx_.configure(mode, spectrum::Range{0, 9}));
  ASSERT_TRUE(rx_.configure(mode, spectrum::Range{0, 9}));
  ASSERT_TRUE(mux_.set_passband(0, spectrum::Range{0, 6}));  // clipped
  LightPath p;
  p.tx = &tx_;
  p.rx = &rx_;
  p.hops.push_back(LinkHop{&mux_, sim.add_fiber(100), 100});
  const auto results = sim.propagate({p});
  EXPECT_FALSE(results[0].delivered);
  EXPECT_EQ(results[0].failure, "inconsistency@10.1.1.1");
  EXPECT_DOUBLE_EQ(results[0].post_fec_ber, 0.5);
}

TEST_F(LinkSimTest, ChannelConflictCorruptsBothSignals) {
  // Fig. 5(b): overlapping spectra in a shared fiber.
  LinkSim sim(model_);
  const int fiber = sim.add_fiber(100);
  auto tx2 = make_svt("10.0.2.1");
  auto rx2 = make_svt("10.0.2.2");
  WssDevice mux2({"10.1.2.1", "vendorA", "WSS"}, 4, 1);
  const auto& mode = svt_mode(100, 75);
  ASSERT_TRUE(tx_.configure(mode, spectrum::Range{0, 6}));
  ASSERT_TRUE(rx_.configure(mode, spectrum::Range{0, 6}));
  ASSERT_TRUE(mux_.set_passband(0, spectrum::Range{0, 6}));
  ASSERT_TRUE(tx2.configure(mode, spectrum::Range{3, 6}));  // overlaps!
  ASSERT_TRUE(rx2.configure(mode, spectrum::Range{3, 6}));
  ASSERT_TRUE(mux2.set_passband(0, spectrum::Range{3, 6}));
  LightPath p1{&tx_, &rx_, {LinkHop{&mux_, fiber, 100}}};
  LightPath p2{&tx2, &rx2, {LinkHop{&mux2, fiber, 100}}};
  const auto results = sim.propagate({p1, p2});
  EXPECT_FALSE(results[0].delivered);
  EXPECT_FALSE(results[1].delivered);
  EXPECT_EQ(results[0].failure, "conflict@fiber0");
  EXPECT_EQ(results[1].failure, "conflict@fiber0");
}

TEST_F(LinkSimTest, DisjointSpectraShareFiberCleanly) {
  LinkSim sim(model_);
  const int fiber = sim.add_fiber(100);
  auto tx2 = make_svt("10.0.2.1");
  auto rx2 = make_svt("10.0.2.2");
  const auto& mode = svt_mode(100, 75);
  ASSERT_TRUE(tx_.configure(mode, spectrum::Range{0, 6}));
  ASSERT_TRUE(rx_.configure(mode, spectrum::Range{0, 6}));
  ASSERT_TRUE(mux_.set_passband(0, spectrum::Range{0, 6}));
  ASSERT_TRUE(mux_.set_passband(1, spectrum::Range{6, 6}));
  ASSERT_TRUE(tx2.configure(mode, spectrum::Range{6, 6}));  // adjacent, no overlap
  ASSERT_TRUE(rx2.configure(mode, spectrum::Range{6, 6}));
  LightPath p1{&tx_, &rx_, {LinkHop{&mux_, fiber, 100}}};
  LightPath p2{&tx2, &rx2, {LinkHop{&mux_, fiber, 100}}};
  const auto results = sim.propagate({p1, p2});
  EXPECT_TRUE(results[0].delivered);
  EXPECT_TRUE(results[1].delivered);
}

TEST_F(LinkSimTest, AmplifiersInstalledPerSpanAndCounted) {
  LinkSim sim(model_);
  const int fiber = sim.add_fiber(400);  // 80 km spans -> 5 EDFAs
  EXPECT_EQ(sim.amplifiers(fiber).size(), 5u);
  EXPECT_EQ(sim.amplifiers(fiber)[0].info.model, "EDFA");
  const auto& mode = svt_mode(100, 75);
  ASSERT_TRUE(tx_.configure(mode, spectrum::Range{0, 6}));
  ASSERT_TRUE(rx_.configure(mode, spectrum::Range{0, 6}));
  ASSERT_TRUE(mux_.set_passband(0, spectrum::Range{0, 6}));
  LightPath p{&tx_, &rx_, {LinkHop{&mux_, fiber, 400}}};
  const auto results = sim.propagate({p});
  ASSERT_TRUE(results[0].delivered);
  EXPECT_EQ(results[0].amplifiers_traversed, 5);
}

TEST_F(LinkSimTest, CutFiberKillsSignal) {
  LinkSim sim(model_);
  const auto& mode = svt_mode(100, 75);
  const auto path = configured_path(sim, mode, 500, {0, 6});
  sim.cut_fiber(0);
  EXPECT_TRUE(sim.fiber_cut(0));
  const auto results = sim.propagate({path});
  EXPECT_FALSE(results[0].delivered);
  EXPECT_EQ(results[0].failure, "cut@fiber0");
}

TEST_F(LinkSimTest, IdleTransmitterReported) {
  LinkSim sim(model_);
  LightPath p;
  p.tx = &tx_;  // never configured
  p.rx = &rx_;
  p.hops.push_back(LinkHop{&mux_, sim.add_fiber(100), 100});
  const auto results = sim.propagate({p});
  EXPECT_FALSE(results[0].delivered);
  EXPECT_EQ(results[0].failure, "not_configured@10.0.1.1");
}

// --- testbed (§6): regenerate Table 2 ---------------------------------------

TEST(Testbed, SweepStopsAtFirstPositiveBer) {
  const auto model = phy::calibrate(transponder::svt_flexwan());
  Testbed testbed(model, 50.0);
  const auto m = testbed.measure(svt_mode(800, 112.5));
  EXPECT_GT(m.sweep_steps, 0);
  EXPECT_GT(m.measured_reach_km, 0.0);
  // The sweep's answer equals the model's reach by construction.
  EXPECT_DOUBLE_EQ(m.measured_reach_km,
                   model.predicted_reach_km(svt_mode(800, 112.5), 50.0));
}

TEST(Testbed, CatalogSweepReproducesTable2Shape) {
  const auto model = phy::calibrate(transponder::svt_flexwan());
  Testbed testbed(model);
  const auto rows = testbed.measure_catalog(transponder::svt_flexwan());
  ASSERT_EQ(rows.size(), transponder::svt_flexwan().size());
  double total_err = 0.0;
  for (const auto& r : rows) {
    ASSERT_GT(r.measured_reach_km, 0.0) << r.mode.describe();
    total_err += std::abs(r.measured_reach_km - r.table_reach_km) /
                 r.table_reach_km;
  }
  EXPECT_LT(total_err / static_cast<double>(rows.size()), 0.12);
}

TEST(Testbed, LongerReachForWiderSpacingAtSameRate) {
  // The sweep must reproduce the Fig. 11 trend: at a fixed rate, widening
  // the channel extends the measured reach.
  const auto model = phy::calibrate(transponder::svt_flexwan());
  Testbed testbed(model);
  const auto narrow = testbed.measure(svt_mode(400, 87.5));
  const auto wide = testbed.measure(svt_mode(400, 137.5));
  EXPECT_GT(wide.measured_reach_km, narrow.measured_reach_km);
}

}  // namespace
}  // namespace flexwan::hardware
