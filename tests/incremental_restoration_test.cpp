// Oracle-parity tests for the incremental re-restoration hot path
// (restoration/incremental.h, restoration/apply.h's transition_outcome, and
// the simulator's verify_incremental mode): the IncrementalRestorer must
// return *exactly* what the from-scratch Restorer returns — field-exact
// Outcomes and byte-identical plans — across cuts, repairs, cache replays,
// and plan growth.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "planning/heuristic.h"
#include "planning/incremental.h"
#include "planning/plan_io.h"
#include "restoration/apply.h"
#include "restoration/incremental.h"
#include "restoration/restorer.h"
#include "restoration/scenario.h"
#include "sim/simulator.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

namespace flexwan::restoration {
namespace {

using planning::HeuristicPlanner;

// Hexfloat rendering of every numeric field: equal fingerprints mean the
// outcomes are bit-identical, not merely within tolerance.
std::string fingerprint(const Outcome& o) {
  std::ostringstream os;
  os << std::hexfloat << o.affected_gbps << '|' << o.restored_gbps << '\n';
  for (const auto& lr : o.links) {
    os << lr.link << '|' << lr.affected_gbps << '|' << lr.restored_gbps << '|'
       << lr.spare_transponders << '|' << lr.used_transponders << '\n';
  }
  for (const auto& rw : o.wavelengths) {
    os << rw.link << '|' << rw.mode.data_rate_gbps << '|'
       << rw.mode.spacing_ghz << '|' << rw.mode.reach_km << '|'
       << rw.range.first << '+' << rw.range.count << '|'
       << rw.path.length_km << ':';
    for (auto f : rw.path.fibers) os << f << ',';
    os << '\n';
  }
  return os.str();
}

TEST(IncrementalRestorer, MatchesOracleOnEverySingleFiberCut) {
  const auto net = topology::make_tbackbone();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const Restorer oracle(transponder::svt_flexwan());
  IncrementalRestorer incremental(transponder::svt_flexwan());
  for (const auto& scenario : single_fiber_cuts(net.optical)) {
    const auto expected = oracle.restore(net, *plan, scenario);
    const auto& actual = incremental.restore(net, *plan, scenario);
    EXPECT_TRUE(actual == expected)
        << "cut fiber " << scenario.cut_fibers[0] << ":\n"
        << fingerprint(actual) << "vs oracle\n" << fingerprint(expected);
  }
}

TEST(IncrementalRestorer, MatchesOracleAcrossMultiCutSequence) {
  // A lifecycle-shaped sequence: overlapping cuts accumulate, then repairs
  // walk back through previously-seen failure states (cache replays).
  const auto net = topology::make_tbackbone();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const Restorer oracle(transponder::svt_flexwan());
  IncrementalRestorer incremental(transponder::svt_flexwan());
  const std::vector<std::vector<topology::FiberId>> states = {
      {0}, {0, 3}, {0, 3, 9}, {0, 9}, {0}, {0, 3}, {}, {5}};
  for (const auto& cuts : states) {
    const FailureScenario scenario{cuts, 1.0};
    const auto expected = oracle.restore(net, *plan, scenario);
    const auto& actual = incremental.restore(net, *plan, scenario);
    EXPECT_TRUE(actual == expected) << fingerprint(actual) << "vs oracle\n"
                                    << fingerprint(expected);
  }
}

TEST(IncrementalRestorer, SharedWavelengthAcrossTwoCutFibersCountedOnce) {
  // A wavelength whose path crosses *both* cut fibers appears in both
  // carried lists; the merge must dedup it or affected_gbps double-counts.
  topology::Network net;
  net.name = "line";
  for (int i = 0; i < 4; ++i) net.optical.add_node("n" + std::to_string(i));
  net.optical.add_fiber(0, 1, 200);  // fiber 0
  net.optical.add_fiber(1, 2, 200);  // fiber 1
  net.optical.add_fiber(2, 3, 200);  // fiber 2
  net.ip.add_link(0, 3, 400);        // rides fibers 0,1,2
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const Restorer oracle(transponder::svt_flexwan());
  IncrementalRestorer incremental(transponder::svt_flexwan());
  const FailureScenario scenario{{0, 2}, 1.0};
  const auto expected = oracle.restore(net, *plan, scenario);
  const auto& actual = incremental.restore(net, *plan, scenario);
  EXPECT_TRUE(actual == expected);
  EXPECT_DOUBLE_EQ(actual.affected_gbps, expected.affected_gbps);
}

TEST(IncrementalRestorer, CarriedIndexMatchesBruteForceScan) {
  const auto net = topology::make_tbackbone();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  IncrementalRestorer incremental(transponder::svt_flexwan());
  // Any restore builds the carried index.
  incremental.restore(net, *plan, FailureScenario{{0}, 1.0});
  const auto& delta = incremental.delta();
  ASSERT_EQ(static_cast<int>(delta.carried.size()), plan->fiber_count());

  // Brute force: rebuild fiber -> (link_pos, wl_index) from the plan.
  std::vector<std::vector<RestorationDelta::WavelengthRef>> expected(
      static_cast<std::size_t>(plan->fiber_count()));
  const auto links = plan->links();
  for (std::size_t lp = 0; lp < links.size(); ++lp) {
    for (std::size_t wi = 0; wi < links[lp].wavelengths.size(); ++wi) {
      const auto& wl = links[lp].wavelengths[wi];
      const auto& path =
          links[lp].paths[static_cast<std::size_t>(wl.path_index)];
      for (auto f : path.fibers) {
        expected[static_cast<std::size_t>(f)].push_back({lp, wi});
      }
    }
  }
  for (std::size_t f = 0; f < expected.size(); ++f) {
    ASSERT_EQ(delta.carried[f].size(), expected[f].size()) << "fiber " << f;
    EXPECT_TRUE(std::is_sorted(delta.carried[f].begin(),
                               delta.carried[f].end()));
    for (std::size_t i = 0; i < expected[f].size(); ++i) {
      EXPECT_TRUE(delta.carried[f][i] == expected[f][i]) << "fiber " << f;
    }
  }
}

TEST(IncrementalRestorer, RestorationPathFootprintTracksLatestOutcome) {
  const auto net = topology::make_tbackbone();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  IncrementalRestorer incremental(transponder::svt_flexwan());
  const auto& outcome =
      incremental.restore(net, *plan, FailureScenario{{0}, 1.0});
  ASSERT_FALSE(outcome.wavelengths.empty());
  const auto& delta = incremental.delta();
  // Every fiber of every restoration path is listed, and nothing else.
  std::set<std::pair<topology::FiberId, std::size_t>> expected;
  for (std::size_t i = 0; i < outcome.wavelengths.size(); ++i) {
    for (auto f : outcome.wavelengths[i].path.fibers) {
      expected.insert({f, i});
    }
  }
  std::set<std::pair<topology::FiberId, std::size_t>> actual;
  for (std::size_t f = 0; f < delta.restoration_paths.size(); ++f) {
    for (std::size_t idx : delta.restoration_paths[f]) {
      actual.insert({static_cast<topology::FiberId>(f), idx});
    }
  }
  EXPECT_EQ(actual, expected);
  // An unaffected scenario clears the footprint.
  incremental.restore(net, *plan, FailureScenario{{}, 1.0});
  for (const auto& indices : incremental.delta().restoration_paths) {
    EXPECT_TRUE(indices.empty());
  }
}

TEST(IncrementalRestorer, PlanGrowthInvalidatesButBackupPathsSurvive) {
  const auto net = topology::make_tbackbone();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const Restorer oracle(transponder::svt_flexwan());
  IncrementalRestorer incremental(transponder::svt_flexwan());
  const FailureScenario scenario{{0}, 1.0};
  ASSERT_TRUE(incremental.restore(net, *plan, scenario) ==
              oracle.restore(net, *plan, scenario));
  const auto ksp_entries = incremental.delta().backup_paths.size();
  ASSERT_GT(ksp_entries, 0u);

  // Grow one link, tell the restorer, and demand parity on the new plan.
  const auto grown =
      planning::extend_plan(*plan, net, 0, net.ip.link(0).demand_gbps * 0.1);
  ASSERT_TRUE(grown) << grown.error().message;
  incremental.notify_plan_changed();
  const auto expected = oracle.restore(net, *plan, scenario);
  const auto& actual = incremental.restore(net, *plan, scenario);
  EXPECT_TRUE(actual == expected) << fingerprint(actual) << "vs oracle\n"
                                  << fingerprint(expected);
  // KSP memo is a pure function of the topology: growth must not drop it.
  EXPECT_GE(incremental.delta().backup_paths.size(), ksp_entries);
}

TEST(IncrementalRestorer, StaleIndexWithoutNotifyIsDetectedByVerifyMode) {
  // Sanity for the oracle harness itself: verify mode exists because a
  // missing notify_plan_changed() silently desynchronizes the carried
  // index.  Growth without notify must make parity fail (if it didn't, the
  // whole verify machinery would be vacuous).
  const auto net = topology::make_tbackbone();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const Restorer oracle(transponder::svt_flexwan());
  IncrementalRestorer incremental(transponder::svt_flexwan());
  // Cut a fiber the first link's deployed wavelength actually rides, so
  // growth on that link changes what the cut affects.
  const auto& lp0 = plan->links().front();
  ASSERT_FALSE(lp0.wavelengths.empty());
  const auto cut_fiber =
      lp0.paths[static_cast<std::size_t>(lp0.wavelengths.front().path_index)]
          .fibers.front();
  const FailureScenario scenario{{cut_fiber}, 1.0};
  incremental.restore(net, *plan, scenario);
  const auto grown = planning::extend_plan(*plan, net, lp0.link,
                                           net.ip.link(lp0.link).demand_gbps);
  ASSERT_TRUE(grown) << grown.error().message;
  ASSERT_GT(grown->wavelengths_added, 0);
  // The extension reuses the link's candidate paths; at least one added
  // wavelength must ride the cut fiber for the staleness to be observable.
  bool growth_rides_cut = false;
  for (const auto& wl : plan->links().front().wavelengths) {
    const auto& path = plan->links().front().paths[static_cast<std::size_t>(
        wl.path_index)];
    growth_rides_cut |= path.uses_fiber(cut_fiber);
  }
  ASSERT_TRUE(growth_rides_cut);
  // No notify_plan_changed(): the cached outcome for the scenario is stale.
  const auto expected = oracle.restore(net, *plan, scenario);
  const auto& stale = incremental.restore(net, *plan, scenario);
  EXPECT_FALSE(stale == expected);
}

TEST(TransitionOutcome, StepsApplyAndRevertByteExactly) {
  const auto net = topology::make_tbackbone();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const std::string deployed = planning::save_plan(*plan);
  IncrementalRestorer incremental(transponder::svt_flexwan());
  std::optional<AppliedOutcome> applied;

  const auto step = [&](const std::vector<topology::FiberId>& cuts) {
    const FailureScenario scenario{cuts, 1.0};
    return transition_outcome(
        *plan, applied, scenario,
        [&](const planning::Plan& p) -> const Outcome& {
          return incremental.restore(net, p, scenario);
        });
  };

  // Cut -> wider cut -> repair back -> all clear.  Each step reverts the
  // previous application, so the mid-sequence plans stay loadable and the
  // final plan is byte-identical to the deployed one.
  const auto first = step({0});
  ASSERT_TRUE(first) << first.error().message;
  EXPECT_GT(first->affected_gbps, 0.0);
  EXPECT_TRUE(applied.has_value());
  EXPECT_NE(planning::save_plan(*plan), deployed);

  const auto second = step({0, 3});
  ASSERT_TRUE(second) << second.error().message;

  const auto third = step({3});
  ASSERT_TRUE(third) << third.error().message;

  const auto clear = step({});
  ASSERT_TRUE(clear) << clear.error().message;
  EXPECT_DOUBLE_EQ(clear->affected_gbps, 0.0);
  EXPECT_FALSE(applied.has_value());
  EXPECT_EQ(planning::save_plan(*plan), deployed);
}

TEST(TransitionOutcome, UntouchedScenarioSkipsApplyEntirely) {
  // All-clear fast path: an outcome that affects nothing leaves `applied`
  // disengaged and the plan bytes untouched.
  auto net = topology::Network{};
  net.name = "pair";
  net.optical.add_node("a");
  net.optical.add_node("b");
  net.optical.add_node("c");
  net.optical.add_fiber(0, 1, 200);
  net.optical.add_fiber(1, 2, 200);
  net.ip.add_link(0, 1, 200);
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const std::string deployed = planning::save_plan(*plan);
  IncrementalRestorer incremental(transponder::svt_flexwan());
  std::optional<AppliedOutcome> applied;
  const FailureScenario scenario{{1}, 1.0};  // fiber 1 carries nothing
  const auto outcome = transition_outcome(
      *plan, applied, scenario,
      [&](const planning::Plan& p) -> const Outcome& {
        return incremental.restore(net, p, scenario);
      });
  ASSERT_TRUE(outcome) << outcome.error().message;
  EXPECT_DOUBLE_EQ(outcome->affected_gbps, 0.0);
  EXPECT_FALSE(applied.has_value());
  EXPECT_EQ(planning::save_plan(*plan), deployed);
}

TEST(VerifyIncremental, LifecycleTrialPassesAndMatchesUncheckedRun) {
  // The sim's oracle mode re-solves from scratch after every event and
  // fails on divergence; a passing run must also be observably identical
  // to the unchecked run (verification is read-only).
  const auto net = topology::make_tbackbone();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  sim::LifecycleConfig config;
  config.trials = 2;
  config.seed = 7;
  config.timeline.horizon_days = 365.0;
  config.timeline.cut_rate_per_1000km_per_year = 6.0;

  const auto plain = sim::run_lifecycle(net, *plan, transponder::svt_flexwan(),
                                        config);
  ASSERT_TRUE(plain) << plain.error().message;

  config.restorer.verify_incremental = true;
  const auto checked = sim::run_lifecycle(net, *plan,
                                          transponder::svt_flexwan(), config);
  ASSERT_TRUE(checked) << checked.error().message;

  ASSERT_EQ(plain->trials.size(), checked->trials.size());
  EXPECT_EQ(plain->mean_availability, checked->mean_availability);
  EXPECT_EQ(plain->mean_lost_gbps_minutes, checked->mean_lost_gbps_minutes);
  EXPECT_EQ(plain->total_cuts, checked->total_cuts);
  EXPECT_EQ(plain->total_repairs, checked->total_repairs);
  for (std::size_t i = 0; i < plain->trials.size(); ++i) {
    EXPECT_EQ(plain->trials[i].availability, checked->trials[i].availability);
    EXPECT_EQ(plain->trials[i].restorations, checked->trials[i].restorations);
  }
}

}  // namespace
}  // namespace flexwan::restoration
