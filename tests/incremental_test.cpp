// Tests for incremental plan extension and spectrum defragmentation.
#include <gtest/gtest.h>

#include "planning/heuristic.h"
#include "planning/incremental.h"
#include "planning/metrics.h"
#include "topology/builders.h"
#include "transponder/catalog.h"
#include "util/rng.h"

namespace flexwan::planning {
namespace {

topology::Network pair_net(double km, double demand) {
  topology::Network net;
  const auto a = net.optical.add_node("a");
  const auto b = net.optical.add_node("b");
  net.optical.add_fiber(a, b, km);
  net.ip.add_link(a, b, demand);
  return net;
}

TEST(Extend, AddsCapacityWithoutMovingExistingWavelengths) {
  const auto net = pair_net(400, 600);
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const auto before = plan->links()[0].wavelengths;

  const auto r = extend_plan(*plan, net, 0, 800);
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_GE(r->capacity_added_gbps, 800.0);
  EXPECT_GT(r->wavelengths_added, 0);
  // Original wavelengths are untouched, in place, same ranges.
  const auto& after = plan->links()[0].wavelengths;
  ASSERT_GE(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].range, before[i].range);
    EXPECT_DOUBLE_EQ(after[i].mode.data_rate_gbps,
                     before[i].mode.data_rate_gbps);
  }
  // The extended plan still validates against the *extended* demand.
  topology::Network grown = net;
  grown.ip = topology::IpTopology();
  grown.ip.add_link(0, 1, 1400);
  const auto valid = validate_plan(*plan, grown);
  EXPECT_TRUE(valid) << valid.error().message;
}

TEST(Extend, ZeroOrNegativeIsNoop) {
  const auto net = pair_net(400, 600);
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const int txp = plan->transponder_count();
  ASSERT_TRUE(extend_plan(*plan, net, 0, 0.0));
  ASSERT_TRUE(extend_plan(*plan, net, 0, -100.0));
  EXPECT_EQ(plan->transponder_count(), txp);
}

TEST(Extend, UnknownLinkRejected) {
  const auto net = pair_net(400, 600);
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const auto r = extend_plan(*plan, net, 42, 100);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "unknown_link");
}

TEST(Extend, RollsBackAtomicallyWhenSpectrumRunsOut) {
  const auto net = pair_net(300, 800);
  PlannerConfig config;
  config.band_pixels = 20;  // one 800G@150 channel (12 px) + 8 spare pixels
  HeuristicPlanner planner(transponder::svt_flexwan(), config);
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const int txp = plan->transponder_count();
  const double ghz = plan->spectrum_usage_ghz();
  // 800 more Gbps cannot fit in 8 pixels (100 GHz carries <= 500G at 300km).
  const auto r = extend_plan(*plan, net, 0, 800, config);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "no_spectrum");
  // Atomic: nothing was left behind.
  EXPECT_EQ(plan->transponder_count(), txp);
  EXPECT_DOUBLE_EQ(plan->spectrum_usage_ghz(), ghz);
}

TEST(Extend, WorksAcrossWholeBackbone) {
  const auto net = topology::make_cernet();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  for (const auto& link : net.ip.links()) {
    const auto r = extend_plan(*plan, net, link.id, 200);
    ASSERT_TRUE(r) << link.name << ": " << r.error().message;
  }
  // Demand coverage now holds at +200 Gbps per link.
  topology::Network grown{net.name, net.optical, {}};
  for (const auto& link : net.ip.links()) {
    grown.ip.add_link(link.src, link.dst, link.demand_gbps + 200, link.name);
  }
  const auto valid = validate_plan(*plan, grown);
  EXPECT_TRUE(valid) << valid.error().message;
}

TEST(Defrag, CompactsAfterChurn) {
  // Plan, extend, then remove some of the *original* wavelengths to punch
  // holes, and defragment.
  const auto net = pair_net(300, 2400);
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  // Remove every second wavelength to fragment the band.
  auto& lp = plan->links()[0];
  std::vector<Wavelength> to_remove;
  for (std::size_t i = 0; i < lp.wavelengths.size(); i += 2) {
    to_remove.push_back(lp.wavelengths[i]);
  }
  for (const auto& wl : to_remove) {
    ASSERT_TRUE(plan->remove_wavelength(
        lp.paths[static_cast<std::size_t>(wl.path_index)], wl));
  }
  const int before_run = plan->fiber_occupancy(0).largest_free_run();

  const auto r = defragment(*plan);
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_GE(r->free_run_after, r->free_run_before);
  EXPECT_GE(plan->fiber_occupancy(0).largest_free_run(), before_run);
  // Wavelength multiset preserved: count and total capacity.
  EXPECT_EQ(plan->transponder_count(),
            static_cast<int>(lp.wavelengths.size()));
}

TEST(Defrag, IsIdempotentOnCompactPlans) {
  const auto net = topology::make_cernet();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const auto first = defragment(*plan);
  ASSERT_TRUE(first);
  const auto second = defragment(*plan);
  ASSERT_TRUE(second);
  EXPECT_EQ(second->wavelengths_moved, 0)
      << "a defragmented plan must be a fixed point";
  const auto valid = validate_plan(*plan, net);
  EXPECT_TRUE(valid) << valid.error().message;
}

TEST(Defrag, PreservesValidityOnRandomNetworks) {
  Rng rng(123);
  for (int trial = 0; trial < 6; ++trial) {
    topology::RandomBackboneParams params;
    params.nodes = 8;
    params.ip_links = 10;
    params.max_fiber_km = 800;
    const auto net = topology::random_backbone(params, rng);
    HeuristicPlanner planner(transponder::svt_flexwan(), {});
    auto plan = planner.plan(net);
    if (!plan) continue;
    const int txp = plan->transponder_count();
    const auto r = defragment(*plan);
    ASSERT_TRUE(r) << r.error().message;
    EXPECT_EQ(plan->transponder_count(), txp);
    const auto valid = validate_plan(*plan, net);
    EXPECT_TRUE(valid) << "trial " << trial << ": " << valid.error().message;
  }
}

}  // namespace
}  // namespace flexwan::planning
