// Full-stack integration tests: plan -> deploy -> physically propagate.
//
// Everything upstream claims the wavelengths will work: the planner
// enforced reach constraint (2), the controller configured consistent
// passbands, the audit found no conflicts.  These tests put the claims to
// the physical test — every deployed wavelength is launched through the
// simulated WSS chain and amplified fiber plant, and must arrive with
// post-FEC BER 0 wherever the calibrated model's reach agrees with the
// catalog's.
#include <gtest/gtest.h>

#include <map>

#include "controller/centralized.h"
#include "controller/fleet.h"
#include "hardware/link_sim.h"
#include "phy/calibration.h"
#include "planning/heuristic.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

namespace flexwan {
namespace {

// Builds LinkSim light paths from a deployed fleet: one fiber registration
// per topology fiber.  Each wavelength's hops follow its WSS targets — the
// add WSS launches into the first fiber, each line-degree WSS feeds its
// fiber, and the drop WSS filters before the receiver.
struct PhysicalDeployment {
  hardware::LinkSim sim;
  std::vector<hardware::LightPath> paths;

  PhysicalDeployment(const topology::Network& net, controller::Fleet& fleet,
                     const phy::CalibratedModel& model)
      : sim(model) {
    std::map<topology::FiberId, int> fiber_index;
    for (topology::FiberId f = 0; f < net.optical.fiber_count(); ++f) {
      fiber_index[f] = sim.add_fiber(net.optical.fiber(f).length_km);
    }
    for (auto& dw : fleet.wavelengths()) {
      hardware::LightPath lp;
      lp.tx = dw.tx;
      lp.rx = dw.rx;
      // wss_targets = [add, degree(f0), ..., degree(f_{k-1}), drop]: the
      // add WSS filters first (zero-length hop), each egress degree WSS
      // feeds its fiber, the drop WSS filters before the receiver.
      const int add_hop = sim.add_fiber(1e-6);
      lp.hops.push_back(hardware::LinkHop{dw.wss_targets.front().device,
                                          add_hop, 0.0,
                                          dw.wss_targets.front().port});
      for (std::size_t i = 0; i < dw.path.fibers.size(); ++i) {
        const topology::FiberId f = dw.path.fibers[i];
        lp.hops.push_back(hardware::LinkHop{
            dw.wss_targets[i + 1].device, fiber_index[f],
            net.optical.fiber(f).length_km, dw.wss_targets[i + 1].port});
      }
      const int tail = sim.add_fiber(1e-6);
      lp.hops.push_back(hardware::LinkHop{dw.wss_targets.back().device, tail,
                                          0.0, dw.wss_targets.back().port});
      paths.push_back(std::move(lp));
    }
  }
};

class EndToEndTest
    : public ::testing::TestWithParam<const transponder::Catalog*> {};

TEST_P(EndToEndTest, DeployedWavelengthsPhysicallyDecode) {
  const auto& catalog = *GetParam();
  const auto net = topology::make_cernet();
  planning::HeuristicPlanner planner(catalog, {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan) << catalog.name();

  controller::Fleet fleet(net, *plan,
                          controller::VendorAssignment::kPerRegionMixed,
                          /*pixel_wise_ols=*/true);
  controller::CentralizedController controller(net);
  ASSERT_TRUE(controller.deploy(fleet));
  ASSERT_TRUE(controller::audit_fleet(fleet, net).clean());

  const auto model = phy::calibrate(catalog);
  PhysicalDeployment phys(net, fleet, model);
  const auto results = phys.sim.propagate(phys.paths);
  ASSERT_EQ(results.size(), fleet.deployed().size());

  int delivered = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (r.delivered) {
      ++delivered;
      continue;
    }
    // The only acceptable physical failure is an SNR shortfall on a
    // wavelength whose catalog reach exceeds the calibrated model's reach
    // (the documented ~7 % model residual).  Control-plane failures —
    // inconsistency, conflict, misconfiguration — must never occur.
    EXPECT_EQ(r.failure, "snr_too_low")
        << catalog.name() << " wavelength " << i;
    const auto& mode = fleet.deployed()[i].wavelength.mode;
    EXPECT_LT(model.predicted_reach_km(mode), r.distance_km)
        << "SNR failure not explained by the model residual";
  }
  // The calibration residual only bites near the reach boundary; the large
  // majority of wavelengths must decode.
  EXPECT_GE(delivered, static_cast<int>(results.size() * 8 / 10))
      << catalog.name() << ": " << delivered << "/" << results.size();
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, EndToEndTest,
                         ::testing::Values(&transponder::svt_flexwan(),
                                           &transponder::bvt_radwan(),
                                           &transponder::fixed_grid_100g()));

TEST(EndToEnd, FiberCutKillsExactlyTheAffectedWavelengths) {
  const auto net = topology::make_cernet();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  controller::Fleet fleet(net, *plan,
                          controller::VendorAssignment::kSingleVendor, true);
  controller::CentralizedController controller(net);
  ASSERT_TRUE(controller.deploy(fleet));

  const auto model = phy::calibrate(transponder::svt_flexwan());
  PhysicalDeployment phys(net, fleet, model);

  const topology::FiberId cut = 0;
  phys.sim.cut_fiber(0);  // fiber_index[0] == 0 by construction
  const auto results = phys.sim.propagate(phys.paths);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const bool crosses = fleet.deployed()[i].path.uses_fiber(cut);
    if (crosses) {
      EXPECT_FALSE(results[i].delivered);
      EXPECT_EQ(results[i].failure.substr(0, 4), "cut@");
    } else {
      EXPECT_NE(results[i].failure.substr(0, 4), "cut@");
    }
  }
}

TEST(EndToEnd, MisconfiguredPassbandShowsUpInPropagation) {
  // Sabotage one WSS passband after a clean deployment: the audit and the
  // physical layer must agree on the failure.
  const auto net = topology::make_cernet();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  controller::Fleet fleet(net, *plan,
                          controller::VendorAssignment::kSingleVendor, true);
  controller::CentralizedController controller(net);
  ASSERT_TRUE(controller.deploy(fleet));

  // Narrow one filter port's passband.  The audit is per-port, so a
  // same-spectrum wavelength elsewhere cannot mask the misconfiguration.
  const std::size_t victim = 0;
  const auto& target = fleet.deployed()[victim].wss_targets.front();
  const auto original = target.device->passband(target.port);
  ASSERT_TRUE(original.has_value());
  spectrum::Range clipped = *original;
  clipped.count -= 1;
  ASSERT_TRUE(target.device->set_passband(target.port, clipped));

  EXPECT_EQ(controller::audit_fleet(fleet, net).inconsistencies, 1);

  const auto model = phy::calibrate(transponder::svt_flexwan());
  PhysicalDeployment phys(net, fleet, model);
  const auto results = phys.sim.propagate(phys.paths);
  EXPECT_FALSE(results[victim].delivered);
  EXPECT_EQ(results[victim].failure.substr(0, 14), "inconsistency@");
}

}  // namespace
}  // namespace flexwan
