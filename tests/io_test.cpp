// Tests for the network text format and graphviz export.
#include <gtest/gtest.h>

#include "topology/io.h"
#include "topology/ksp.h"

namespace flexwan::topology {
namespace {

constexpr const char* kSample = R"(# a comment
network demo

node a
node b
node c
fiber a b 120.5
fiber b c 300
link a c 400 a-to-c
link a b 200
)";

TEST(Io, LoadsWellFormedInput) {
  const auto net = load_network(kSample);
  ASSERT_TRUE(net) << net.error().message;
  EXPECT_EQ(net->name, "demo");
  EXPECT_EQ(net->optical.node_count(), 3);
  EXPECT_EQ(net->optical.fiber_count(), 2);
  EXPECT_EQ(net->ip.link_count(), 2);
  EXPECT_DOUBLE_EQ(net->optical.fiber(0).length_km, 120.5);
  EXPECT_EQ(net->ip.link(0).name, "a-to-c");
  EXPECT_EQ(net->ip.link(1).name, "link1");  // auto-named
  const auto p = shortest_path(net->optical, 0, 2);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->length_km, 420.5);
}

TEST(Io, RoundTripsThroughSave) {
  const auto original = load_network(kSample);
  ASSERT_TRUE(original);
  const auto reloaded = load_network(save_network(*original));
  ASSERT_TRUE(reloaded) << reloaded.error().message;
  EXPECT_EQ(reloaded->name, original->name);
  ASSERT_EQ(reloaded->optical.node_count(), original->optical.node_count());
  ASSERT_EQ(reloaded->optical.fiber_count(), original->optical.fiber_count());
  for (int f = 0; f < original->optical.fiber_count(); ++f) {
    EXPECT_DOUBLE_EQ(reloaded->optical.fiber(f).length_km,
                     original->optical.fiber(f).length_km);
  }
  ASSERT_EQ(reloaded->ip.link_count(), original->ip.link_count());
  for (int l = 0; l < original->ip.link_count(); ++l) {
    EXPECT_DOUBLE_EQ(reloaded->ip.link(l).demand_gbps,
                     original->ip.link(l).demand_gbps);
  }
}

TEST(Io, BuilderNetworksRoundTrip) {
  const auto original = make_cernet();
  const auto reloaded = load_network(save_network(original));
  ASSERT_TRUE(reloaded) << reloaded.error().message;
  EXPECT_EQ(reloaded->optical.node_count(), original.optical.node_count());
  EXPECT_EQ(reloaded->optical.fiber_count(), original.optical.fiber_count());
  EXPECT_EQ(reloaded->ip.link_count(), original.ip.link_count());
  EXPECT_DOUBLE_EQ(reloaded->ip.total_demand_gbps(),
                   original.ip.total_demand_gbps());
}

struct BadInput {
  const char* text;
  const char* reason;
};

class IoErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(IoErrorTest, MalformedInputRejected) {
  const auto net = load_network(GetParam().text);
  ASSERT_FALSE(net) << GetParam().reason;
  EXPECT_EQ(net.error().code, "parse_error") << GetParam().reason;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IoErrorTest,
    ::testing::Values(
        BadInput{"node a\nnode a\n", "duplicate node"},
        BadInput{"node a\nfiber a b 100\n", "unknown node in fiber"},
        BadInput{"node a\nnode b\nfiber a b\n", "missing fiber length"},
        BadInput{"node a\nnode b\nfiber a b -5\n", "negative length"},
        BadInput{"node a\nnode b\nlink a b\n", "missing demand"},
        BadInput{"node a\nnode b\nlink a b -100\n", "negative demand"},
        BadInput{"node a\nlink a z 100\n", "unknown node in link"},
        BadInput{"frobnicate x\n", "unknown keyword"},
        BadInput{"network\n", "missing network name"}));

TEST(Io, DotExportMentionsEverything) {
  const auto net = load_network(kSample);
  ASSERT_TRUE(net);
  const auto dot = to_dot(*net);
  EXPECT_NE(dot.find("graph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("\"a\" -- \"b\" [label=\"120.5km\"]"),
            std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("400G"), std::string::npos);
}

}  // namespace
}  // namespace flexwan::topology
