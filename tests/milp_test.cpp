// Tests for the MILP substrate: model, simplex LP, and branch-and-bound.
#include <gtest/gtest.h>

#include <cmath>

#include "milp/branch_and_bound.h"
#include "milp/model.h"
#include "milp/simplex.h"
#include "util/rng.h"

namespace flexwan::milp {
namespace {

TEST(Model, AddVarValidatesBounds) {
  Model m;
  EXPECT_THROW(m.add_var("x", VarType::kContinuous, 2.0, 1.0),
               std::invalid_argument);
}

TEST(Model, AddConstraintValidatesVarIds) {
  Model m;
  m.add_binary("x");
  EXPECT_THROW(m.add_constraint({Term{5, 1.0}}, Sense::kLe, 1.0),
               std::invalid_argument);
}

TEST(Model, ObjectiveAndFeasibility) {
  Model m;
  const VarId x = m.add_var("x", VarType::kContinuous, 0, 10, 2.0);
  const VarId y = m.add_var("y", VarType::kInteger, 0, 5, 3.0);
  m.add_constraint({Term{x, 1.0}, Term{y, 1.0}}, Sense::kLe, 6.0);
  EXPECT_DOUBLE_EQ(m.objective_value({2.0, 1.0}), 7.0);
  EXPECT_TRUE(m.feasible({2.0, 1.0}));
  EXPECT_FALSE(m.feasible({5.0, 2.0}));   // violates the row
  EXPECT_FALSE(m.feasible({2.0, 1.5}));   // fractional integer var
  EXPECT_FALSE(m.feasible({-1.0, 0.0}));  // bound violation
}

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, obj=36.
  Model m;
  m.set_direction(Direction::kMaximize);
  const VarId x = m.add_var("x", VarType::kContinuous, 0, 1e30, 3.0);
  const VarId y = m.add_var("y", VarType::kContinuous, 0, 1e30, 5.0);
  m.add_constraint({Term{x, 1.0}}, Sense::kLe, 4.0);
  m.add_constraint({Term{y, 2.0}}, Sense::kLe, 12.0);
  m.add_constraint({Term{x, 3.0}, Term{y, 2.0}}, Sense::kLe, 18.0);
  const auto sol = solve_lp_relaxation(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 36.0, 1e-6);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 2.0, 1e-6);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(y)], 6.0, 1e-6);
}

TEST(Simplex, SolvesMinimizationWithGeRows) {
  // min 2x + 3y st x + y >= 4, x >= 1 -> x=4 ... wait: cost favours x.
  // Optimal: y=0, x=4, obj=8.
  Model m;
  const VarId x = m.add_var("x", VarType::kContinuous, 0, 1e30, 2.0);
  const VarId y = m.add_var("y", VarType::kContinuous, 0, 1e30, 3.0);
  m.add_constraint({Term{x, 1.0}, Term{y, 1.0}}, Sense::kGe, 4.0);
  const auto sol = solve_lp_relaxation(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 8.0, 1e-6);
}

TEST(Simplex, HandlesEqualityRows) {
  // min x + y st x + 2y = 6, x - y = 0 -> x=y=2, obj=4.
  Model m;
  const VarId x = m.add_var("x", VarType::kContinuous, 0, 1e30, 1.0);
  const VarId y = m.add_var("y", VarType::kContinuous, 0, 1e30, 1.0);
  m.add_constraint({Term{x, 1.0}, Term{y, 2.0}}, Sense::kEq, 6.0);
  m.add_constraint({Term{x, 1.0}, Term{y, -1.0}}, Sense::kEq, 0.0);
  const auto sol = solve_lp_relaxation(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-6);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-6);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const VarId x = m.add_var("x", VarType::kContinuous, 0, 1e30, 1.0);
  m.add_constraint({Term{x, 1.0}}, Sense::kLe, 2.0);
  m.add_constraint({Term{x, 1.0}}, Sense::kGe, 5.0);
  EXPECT_EQ(solve_lp_relaxation(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  m.set_direction(Direction::kMaximize);
  m.add_var("x", VarType::kContinuous, 0, 1e30, 1.0);
  EXPECT_EQ(solve_lp_relaxation(m).status, LpStatus::kUnbounded);
}

TEST(Simplex, RespectsVariableBounds) {
  // max x with x <= 7 via upper bound only (no explicit row).
  Model m;
  m.set_direction(Direction::kMaximize);
  m.add_var("x", VarType::kContinuous, 2.0, 7.0, 1.0);
  const auto sol = solve_lp_relaxation(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 7.0, 1e-6);
  // Lower bounds shift correctly too.
  Model m2;
  m2.add_var("x", VarType::kContinuous, 2.0, 7.0, 1.0);
  const auto sol2 = solve_lp_relaxation(m2);
  ASSERT_EQ(sol2.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol2.objective, 2.0, 1e-6);
}

TEST(Simplex, ExtraConstraintsApplyWithoutModelCopy) {
  Model m;
  m.set_direction(Direction::kMaximize);
  const VarId x = m.add_var("x", VarType::kContinuous, 0, 10, 1.0);
  const auto base = solve_lp_relaxation(m);
  ASSERT_EQ(base.status, LpStatus::kOptimal);
  EXPECT_NEAR(base.objective, 10.0, 1e-6);
  const std::vector<Constraint> extra = {
      Constraint{{Term{x, 1.0}}, Sense::kLe, 3.0, "branch"}};
  const auto bounded = solve_lp_relaxation(m, extra);
  ASSERT_EQ(bounded.status, LpStatus::kOptimal);
  EXPECT_NEAR(bounded.objective, 3.0, 1e-6);
}

TEST(Mip, SolvesKnapsack) {
  // max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binary -> a=0? enumerate:
  // {a,c}=17 w5; {b,c}=20 w6; {a,b} w7 invalid -> optimum 20.
  Model m;
  m.set_direction(Direction::kMaximize);
  const VarId a = m.add_binary("a", 10);
  const VarId b = m.add_binary("b", 13);
  const VarId c = m.add_binary("c", 7);
  m.add_constraint({Term{a, 3.0}, Term{b, 4.0}, Term{c, 2.0}}, Sense::kLe,
                   6.0);
  const auto sol = solve_mip(m);
  ASSERT_EQ(sol.status, MipStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 20.0, 1e-6);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(b)], 1.0, 1e-9);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(c)], 1.0, 1e-9);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(a)], 0.0, 1e-9);
}

TEST(Mip, IntegerVariablesRound) {
  // min x st 2x >= 7, x integer -> x = 4 (LP gives 3.5).
  Model m;
  const VarId x = m.add_integer("x", 0, 100, 1.0);
  m.add_constraint({Term{x, 2.0}}, Sense::kGe, 7.0);
  const auto sol = solve_mip(m);
  ASSERT_EQ(sol.status, MipStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-9);
}

TEST(Mip, InfeasibleIntegrality) {
  // 2x = 5 has no integer solution in [0, 10].
  Model m;
  const VarId x = m.add_integer("x", 0, 10, 1.0);
  m.add_constraint({Term{x, 2.0}}, Sense::kEq, 5.0);
  EXPECT_EQ(solve_mip(m).status, MipStatus::kInfeasible);
}

TEST(Mip, MixedIntegerContinuous) {
  // min 5y + x st x + 10y >= 12, 0 <= x <= 3, y integer.
  // y=1 -> x=2 -> 7;  y=2 -> x=0 -> 10.  Optimal 7.
  Model m;
  const VarId x = m.add_var("x", VarType::kContinuous, 0, 3, 1.0);
  const VarId y = m.add_integer("y", 0, 10, 5.0);
  m.add_constraint({Term{x, 1.0}, Term{y, 10.0}}, Sense::kGe, 12.0);
  const auto sol = solve_mip(m);
  ASSERT_EQ(sol.status, MipStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 7.0, 1e-6);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(y)], 1.0, 1e-9);
}

TEST(Mip, GapIsZeroWhenProvenOptimal) {
  Model m;
  const VarId x = m.add_integer("x", 0, 10, 1.0);
  m.add_constraint({Term{x, 1.0}}, Sense::kGe, 3.0);
  const auto sol = solve_mip(m);
  ASSERT_EQ(sol.status, MipStatus::kOptimal);
  EXPECT_DOUBLE_EQ(sol.gap(), 0.0);
}

// Property: branch-and-bound matches brute force on random binary programs.
class RandomMipTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMipTest, MatchesBruteForceEnumeration) {
  Rng rng(GetParam());
  const int n = rng.uniform_int(4, 8);
  const int rows = rng.uniform_int(2, 5);
  Model m;
  m.set_direction(rng.chance(0.5) ? Direction::kMaximize
                                  : Direction::kMinimize);
  for (int i = 0; i < n; ++i) {
    m.add_binary("x" + std::to_string(i), rng.uniform(-5.0, 10.0));
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (int i = 0; i < n; ++i) {
      if (rng.chance(0.7)) terms.push_back(Term{i, rng.uniform(0.2, 4.0)});
    }
    if (terms.empty()) terms.push_back(Term{0, 1.0});
    // RHS chosen so the zero vector is always feasible for <= rows.
    m.add_constraint(std::move(terms), Sense::kLe, rng.uniform(1.0, 8.0));
  }

  // Brute force over all 2^n assignments.
  double best = m.direction() == Direction::kMaximize ? -1e18 : 1e18;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<double> x(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = (mask >> i) & 1;
    if (!m.feasible(x)) continue;
    const double obj = m.objective_value(x);
    best = m.direction() == Direction::kMaximize ? std::max(best, obj)
                                                 : std::min(best, obj);
  }

  const auto sol = solve_mip(m);
  ASSERT_EQ(sol.status, MipStatus::kOptimal) << "seed " << GetParam();
  EXPECT_NEAR(sol.objective, best, 1e-5) << "seed " << GetParam();
  EXPECT_TRUE(m.feasible(sol.x, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMipTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// Property: LP relaxation always bounds the MIP optimum.
class RelaxationBoundTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RelaxationBoundTest, LpBoundsMip) {
  Rng rng(GetParam());
  const int n = rng.uniform_int(3, 6);
  Model m;
  m.set_direction(Direction::kMaximize);
  for (int i = 0; i < n; ++i) {
    m.add_binary("x" + std::to_string(i), rng.uniform(1.0, 10.0));
  }
  std::vector<Term> terms;
  for (int i = 0; i < n; ++i) terms.push_back(Term{i, rng.uniform(1.0, 3.0)});
  m.add_constraint(std::move(terms), Sense::kLe, rng.uniform(2.0, 6.0));

  const auto lp = solve_lp_relaxation(m);
  const auto mip = solve_mip(m);
  ASSERT_EQ(lp.status, LpStatus::kOptimal);
  ASSERT_EQ(mip.status, MipStatus::kOptimal);
  EXPECT_GE(lp.objective + 1e-6, mip.objective);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelaxationBoundTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace flexwan::milp
