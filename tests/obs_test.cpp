// Observability layer tests: registry semantics, concurrent counter and
// histogram correctness under the engine at 8 threads, span nesting, trace
// JSON well-formedness (emitted files are parsed back with obs/json.h),
// metrics report structure, and the --metrics/--trace flag parser.
//
// Obs enablement is process-global state; every test that flips it
// restores the off state before returning (ObsGuard) so the rest of the
// suite still measures the disabled hot path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace flexwan::obs {
namespace {

class ObsGuard {
 public:
  ObsGuard(bool metrics, bool trace) {
    Registry::instance().reset();
    reset_trace();
    set_metrics_enabled(metrics);
    set_trace_enabled(trace);
  }
  ~ObsGuard() {
    set_metrics_enabled(false);
    set_trace_enabled(false);
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ObsRegistry, HandlesAreStableAndResetKeepsThem) {
  auto& registry = Registry::instance();
  Counter* a = registry.counter("test.registry.counter");
  Counter* b = registry.counter("test.registry.counter");
  EXPECT_EQ(a, b);
  a->add(3);
  EXPECT_EQ(b->value(), 3u);
  registry.reset();
  EXPECT_EQ(a->value(), 0u);
  EXPECT_EQ(registry.counter("test.registry.counter"), a);

  Gauge* g = registry.gauge("test.registry.gauge");
  g->set(2.5);
  g->add(1.5);
  EXPECT_DOUBLE_EQ(g->value(), 4.0);
}

TEST(ObsRegistry, DisabledMacrosRecordNothing) {
  ObsGuard guard(false, false);
  OBS_COUNTER_ADD("test.disabled.counter", 5);
  OBS_GAUGE_ADD("test.disabled.gauge", 1.0);
  OBS_HISTOGRAM_OBSERVE("test.disabled.hist", 1.0);
  EXPECT_EQ(Registry::instance().counter("test.disabled.counter")->value(), 0u);
  EXPECT_EQ(Registry::instance().gauge("test.disabled.gauge")->value(), 0.0);
}

TEST(ObsMetrics, HistogramBucketsCountAndBounds) {
  Histogram hist({1.0, 10.0, 100.0});
  for (double v : {0.5, 1.0, 5.0, 50.0, 500.0, 5000.0}) hist.observe(v);
  EXPECT_EQ(hist.count(), 6u);
  EXPECT_DOUBLE_EQ(hist.sum(), 5556.5);
  EXPECT_DOUBLE_EQ(hist.min(), 0.5);
  EXPECT_DOUBLE_EQ(hist.max(), 5000.0);
  // <=1: {0.5, 1.0}; <=10: {5.0}; <=100: {50.0}; overflow: {500, 5000}.
  EXPECT_EQ(hist.bucket_counts(),
            (std::vector<std::uint64_t>{2, 1, 1, 2}));
}

TEST(ObsMetrics, QuantilesInterpolateFromBucketsAndClampToObservedRange) {
  Histogram hist({10.0, 20.0, 30.0});
  for (double v : {5.0, 15.0, 25.0, 35.0}) hist.observe(v);
  // One sample per bucket: rank 2 lands at the top of the (10, 20] bucket.
  EXPECT_DOUBLE_EQ(hist.quantile(0.50), 20.0);
  // p90/p99 interpolate inside the overflow bucket, whose upper edge is
  // the observed max (35), never infinity.
  EXPECT_DOUBLE_EQ(hist.quantile(0.90), 33.0);
  EXPECT_NEAR(hist.quantile(0.99), 34.8, 1e-9);
  // Out-of-range q clamps; estimates never leave [min, max].
  EXPECT_LE(hist.quantile(1.5), 35.0);
  EXPECT_GE(hist.quantile(-0.5), 5.0);
}

TEST(ObsMetrics, QuantilesAreZeroWhenEmptyAndEqualForEqualBuckets) {
  Histogram empty({1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.50), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.99), 0.0);

  // The determinism contract: equal bucket counts (and min/max) => equal
  // quantiles, regardless of observation order.
  Histogram a({10.0, 20.0, 30.0});
  Histogram b({10.0, 20.0, 30.0});
  for (double v : {5.0, 15.0, 25.0, 35.0}) a.observe(v);
  for (double v : {35.0, 5.0, 25.0, 15.0}) b.observe(v);
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
  }
}

TEST(ObsMetrics, ToJsonCarriesQuantilesAndCanOmitEmptyHistograms) {
  ObsGuard guard(/*metrics=*/true, /*trace=*/false);
  Registry::instance().histogram("test.quantile.hist", {10.0, 20.0})
      ->observe(15.0);
  Registry::instance().histogram("test.empty.hist", {1.0});

  const std::string full = Registry::instance().to_json(true);
  EXPECT_NE(full.find("\"p50\""), std::string::npos);
  EXPECT_NE(full.find("\"p90\""), std::string::npos);
  EXPECT_NE(full.find("\"p99\""), std::string::npos);
  EXPECT_NE(full.find("test.empty.hist"), std::string::npos);

  // Bundles use include_empty_histograms = false so thread-count-dependent
  // registration sets never leak into metrics.json.
  const std::string trimmed = Registry::instance().to_json(false);
  EXPECT_NE(trimmed.find("test.quantile.hist"), std::string::npos);
  EXPECT_EQ(trimmed.find("test.empty.hist"), std::string::npos);
}

TEST(ObsMetrics, ConcurrentCountersAndHistogramsUnderEngineAt8Threads) {
  ObsGuard guard(/*metrics=*/true, /*trace=*/false);
  const engine::Engine engine(8);
  constexpr std::size_t kN = 20000;
  engine.parallel_for(kN, [](std::size_t i) {
    OBS_COUNTER_ADD("test.concurrent.counter", 1);
    OBS_GAUGE_ADD("test.concurrent.gauge", 1.0);
    OBS_HISTOGRAM_OBSERVE("test.concurrent.hist",
                          static_cast<double>(i % 7));
  });
  auto& registry = Registry::instance();
  EXPECT_EQ(registry.counter("test.concurrent.counter")->value(), kN);
  EXPECT_DOUBLE_EQ(registry.gauge("test.concurrent.gauge")->value(),
                   static_cast<double>(kN));
  Histogram* hist =
      registry.histogram("test.concurrent.hist", default_latency_bounds_us());
  EXPECT_EQ(hist->count(), kN);
  double expected_sum = 0.0;
  for (std::size_t i = 0; i < kN; ++i) expected_sum += static_cast<double>(i % 7);
  EXPECT_DOUBLE_EQ(hist->sum(), expected_sum);
  EXPECT_EQ(hist->min(), 0.0);
  EXPECT_EQ(hist->max(), 6.0);
  // The engine's own instrumentation saw every task exactly once.
  EXPECT_EQ(registry.counter("engine.tasks_executed")->value(), kN);
}

TEST(ObsTrace, SpanNestingProducesContainedEvents) {
  ObsGuard guard(/*metrics=*/true, /*trace=*/true);
  {
    OBS_SPAN("test.outer");
    {
      OBS_SPAN("test.inner");
    }
  }
  const auto parsed = json::parse(trace_json());
  ASSERT_TRUE(parsed) << parsed.error().message;
  const auto* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  double outer_ts = 0.0, outer_end = 0.0, inner_ts = 0.0, inner_end = 0.0;
  bool saw_outer = false, saw_inner = false;
  for (const auto& e : events->as_array()) {
    const auto* name = e.find("name");
    const auto* ph = e.find("ph");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    if (ph->as_string() != "X") continue;  // metadata events
    const double ts = e.find("ts")->as_number();
    const double dur = e.find("dur")->as_number();
    EXPECT_GE(dur, 0.0);
    if (name->as_string() == "test.outer") {
      saw_outer = true;
      outer_ts = ts;
      outer_end = ts + dur;
    } else if (name->as_string() == "test.inner") {
      saw_inner = true;
      inner_ts = ts;
      inner_end = ts + dur;
    }
  }
  ASSERT_TRUE(saw_outer);
  ASSERT_TRUE(saw_inner);
  // The inner span is contained in the outer one on the same thread.
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_end, outer_end);

  // Spans also fed the "<name>.us" latency histograms.
  Histogram* hist = Registry::instance().histogram(
      "test.outer.us", default_latency_bounds_us());
  EXPECT_EQ(hist->count(), 1u);
}

TEST(ObsTrace, ConcurrentSpansFromEngineThreadsAllRecorded) {
  ObsGuard guard(/*metrics=*/false, /*trace=*/true);
  const engine::Engine engine(8);
  constexpr std::size_t kN = 256;
  engine.parallel_for(kN, [](std::size_t) {
    OBS_SPAN("test.parallel.body");
  });
  const auto parsed = json::parse(trace_json());
  ASSERT_TRUE(parsed) << parsed.error().message;
  std::size_t body_events = 0;
  for (const auto& e : parsed->find("traceEvents")->as_array()) {
    const auto* name = e.find("name");
    if (name != nullptr && name->as_string() == "test.parallel.body") {
      ++body_events;
      // Every complete event carries a positive per-thread track id.
      EXPECT_GE(e.find("tid")->as_number(), 1.0);
    }
  }
  EXPECT_EQ(body_events, kN);
}

TEST(ObsReport, EmittedFilesParseBackAndContainRegisteredMetrics) {
  ObsGuard guard(/*metrics=*/true, /*trace=*/true);
  OBS_COUNTER_ADD("test.report.counter", 7);
  OBS_GAUGE_ADD("test.report.gauge", 2.25);
  OBS_HISTOGRAM_OBSERVE("test.report.hist", 42.0);
  {
    OBS_SPAN("test.report.span");
  }

  const std::string metrics_path = testing::TempDir() + "obs_metrics.json";
  const std::string trace_path = testing::TempDir() + "obs_trace.json";
  {
    RunReport report;
    report.set_metrics_path(metrics_path);
    report.set_trace_path(trace_path);
    const auto written = report.write();
    ASSERT_TRUE(written) << written.error().message;
    report.release();
  }

  const auto metrics = json::parse(read_file(metrics_path));
  ASSERT_TRUE(metrics) << metrics.error().message;
  const auto* counters = metrics->find("counters");
  ASSERT_NE(counters, nullptr);
  const auto* counter = counters->find("test.report.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->as_number(), 7.0);
  const auto* gauge = metrics->find("gauges")->find("test.report.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->as_number(), 2.25);
  const auto* hist = metrics->find("histograms")->find("test.report.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->as_number(), 1.0);
  EXPECT_EQ(hist->find("sum")->as_number(), 42.0);
  ASSERT_TRUE(hist->find("buckets")->is_array());
  // Last bucket is the overflow bucket, marked "+Inf".
  const auto& buckets = hist->find("buckets")->as_array();
  ASSERT_FALSE(buckets.empty());
  EXPECT_TRUE(buckets.back().find("le")->is_string());
  EXPECT_EQ(buckets.back().find("le")->as_string(), "+Inf");

  const auto trace = json::parse(read_file(trace_path));
  ASSERT_TRUE(trace) << trace.error().message;
  const auto* events = trace->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_span = false;
  for (const auto& e : events->as_array()) {
    const auto* name = e.find("name");
    if (name != nullptr && name->as_string() == "test.report.span") {
      saw_span = true;
      EXPECT_EQ(e.find("ph")->as_string(), "X");
    }
  }
  EXPECT_TRUE(saw_span);
}

TEST(ObsReport, FlagParserExtractsAndEnables) {
  ObsGuard guard(false, false);
  const std::string metrics_path = testing::TempDir() + "obs_flags_m.json";
  const std::string trace_path = testing::TempDir() + "obs_flags_t.json";
  std::string metrics_eq = "--metrics=" + metrics_path;
  char prog[] = "bench";
  char keep[] = "net.txt";
  char trace_flag[] = "--trace";
  std::vector<char> trace_val(trace_path.begin(), trace_path.end());
  trace_val.push_back('\0');
  std::vector<char> metrics_arg(metrics_eq.begin(), metrics_eq.end());
  metrics_arg.push_back('\0');
  char* argv[] = {prog, metrics_arg.data(), keep, trace_flag,
                  trace_val.data(), nullptr};
  int argc = 5;
  {
    RunReport report = report_from_flags(argc, argv);
    EXPECT_EQ(report.metrics_path(), metrics_path);
    EXPECT_EQ(report.trace_path(), trace_path);
    EXPECT_TRUE(metrics_enabled());
    EXPECT_TRUE(trace_enabled());
    EXPECT_EQ(argc, 2);
    EXPECT_STREQ(argv[0], "bench");
    EXPECT_STREQ(argv[1], "net.txt");
    // ~RunReport writes both files on scope exit.
  }
  EXPECT_FALSE(read_file(metrics_path).empty());
  EXPECT_FALSE(read_file(trace_path).empty());
}

TEST(ObsJson, RejectsMalformedDocuments) {
  EXPECT_FALSE(json::parse("{"));
  EXPECT_FALSE(json::parse("{\"a\": 1,}"));
  EXPECT_FALSE(json::parse("[1, 2"));
  EXPECT_FALSE(json::parse("\"unterminated"));
  EXPECT_FALSE(json::parse("nul"));
  EXPECT_FALSE(json::parse("{} trailing"));
  EXPECT_TRUE(json::parse(
      R"({"a": [1, -2.5e3, true, false, null, "s\nA"]})"));
}

TEST(ObsJson, ParsesExponentFormsExactly) {
  const auto doc = json::parse(R"([1e+308, 5E-3, -2.5e3, 1E2, 3.25e-1])");
  ASSERT_TRUE(doc) << doc.error().message;
  const auto& a = doc->as_array();
  ASSERT_EQ(a.size(), 5u);
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1e+308);
  EXPECT_DOUBLE_EQ(a[1].as_number(), 5e-3);
  EXPECT_DOUBLE_EQ(a[2].as_number(), -2500.0);
  EXPECT_DOUBLE_EQ(a[3].as_number(), 100.0);
  EXPECT_DOUBLE_EQ(a[4].as_number(), 0.325);
}

TEST(ObsJson, ParsesNestedStringEscapes) {
  const auto doc = json::parse(
      R"({"k\"ey": "a\\b\"c\n\t\/ A"})");
  ASSERT_TRUE(doc) << doc.error().message;
  const auto* v = doc->find("k\"ey");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->as_string(), "a\\b\"c\n\t/ A");
}

TEST(ObsJson, RejectsTruncatedDocuments) {
  // Every prefix of a valid document must fail, not crash or accept.
  const std::string full = R"({"a": [1, {"b": "c\n"}], "d": 2.5e-1})";
  for (std::size_t n = 0; n < full.size(); ++n) {
    EXPECT_FALSE(json::parse(full.substr(0, n))) << "prefix length " << n;
  }
  EXPECT_TRUE(json::parse(full));
}

TEST(ObsJson, EnforcesNestingDepthLimit) {
  // Exactly at the limit parses; one deeper errors out cleanly.
  std::string at_limit(static_cast<std::size_t>(json::kMaxNestingDepth), '[');
  at_limit.append(static_cast<std::size_t>(json::kMaxNestingDepth), ']');
  EXPECT_TRUE(json::parse(at_limit));

  std::string too_deep(static_cast<std::size_t>(json::kMaxNestingDepth) + 1,
                       '[');
  too_deep.append(static_cast<std::size_t>(json::kMaxNestingDepth) + 1, ']');
  EXPECT_FALSE(json::parse(too_deep));

  // Mixed nesting counts both object and array frames.
  std::string mixed;
  for (int i = 0; i < json::kMaxNestingDepth; ++i) mixed += "{\"a\":[";
  EXPECT_FALSE(json::parse(mixed + "1" + std::string(
      static_cast<std::size_t>(json::kMaxNestingDepth), ']') + "}"));
}

TEST(ObsJson, NumberToStringRoundTripsBoundaryValues) {
  // The old %.9g dropped precision for anything needing >9 significant
  // digits; these all demand exact round-trips.
  const double values[] = {
      9007199254740992.0,   // 2^53
      9007199254740991.0,   // 2^53 - 1 (largest odd-representable integer)
      1e-9,
      -0.0,
      1e+308,
      -1.7976931348623157e308,  // -DBL_MAX
      2.2250738585072014e-308,  // DBL_MIN
      0.1,
      1.0 / 3.0,
      123456789.123456789,
      4294967296.0,  // 2^32: first casualty of %.9g
      0.0,
  };
  for (double v : values) {
    const std::string s = json::number_to_string(v);
    const double back = std::strtod(s.c_str(), nullptr);
    EXPECT_EQ(back, v) << s;
    // Round-trip through the parser too, in a document context.
    const auto doc = json::parse("[" + s + "]");
    ASSERT_TRUE(doc) << s;
    EXPECT_EQ(doc->as_array()[0].as_number(), v) << s;
  }
  // -0.0 keeps its sign bit through serialization.
  EXPECT_TRUE(std::signbit(
      std::strtod(json::number_to_string(-0.0).c_str(), nullptr)));
  // Values that fit in few digits stay short (trailing zeros trimmed).
  EXPECT_EQ(json::number_to_string(2.0), "2");
  EXPECT_EQ(json::number_to_string(2.5), "2.5");
}

TEST(ObsReport, ParseRepCountAcceptsIntegersAndRejectsGarbage) {
  const auto ok = parse_rep_count("--reps", "12", 1);
  ASSERT_TRUE(ok);
  EXPECT_EQ(*ok, 12);
  const auto zero = parse_rep_count("--warmup", "0", 0);
  ASSERT_TRUE(zero);
  EXPECT_EQ(*zero, 0);

  EXPECT_FALSE(parse_rep_count("--reps", "0", 1));       // below minimum
  EXPECT_FALSE(parse_rep_count("--reps", "-3", 1));      // negative
  EXPECT_FALSE(parse_rep_count("--reps", "abc", 1));     // not a number
  EXPECT_FALSE(parse_rep_count("--reps", "3x", 1));      // trailing junk
  EXPECT_FALSE(parse_rep_count("--reps", "", 1));        // empty
  EXPECT_FALSE(parse_rep_count("--reps", "3.5", 1));     // not an integer
  EXPECT_FALSE(parse_rep_count("--reps", "99999999999999999999", 1));
  EXPECT_FALSE(parse_rep_count("--reps", "1000001", 1));  // over kMaxBenchReps
}

TEST(ObsReport, BenchFlagsParseAndDefaultsHold) {
  ObsGuard guard(false, false);
  // Defaults: harness disabled, warmup 1, reps 3.
  {
    char prog[] = "bench";
    char* argv[] = {prog, nullptr};
    int argc = 1;
    RunReport report = report_from_flags(argc, argv);
    EXPECT_FALSE(report.bench_options().enabled());
    EXPECT_EQ(report.bench_options().warmup, 1);
    EXPECT_EQ(report.bench_options().reps, 3);
    report.release();
  }
  // --bench-json (both forms) + --warmup/--reps are extracted and enable
  // metrics recording; unrelated args survive in order.
  const std::string bench_path = testing::TempDir() + "obs_flags_b.json";
  {
    std::string bench_eq = "--bench-json=" + bench_path;
    std::vector<char> bench_arg(bench_eq.begin(), bench_eq.end());
    bench_arg.push_back('\0');
    char prog[] = "bench";
    char keep[] = "net.txt";
    char warmup_flag[] = "--warmup";
    char warmup_val[] = "2";
    char reps_eq[] = "--reps=5";
    char* argv[] = {prog,       bench_arg.data(), warmup_flag,
                    warmup_val, keep,             reps_eq,
                    nullptr};
    int argc = 6;
    RunReport report = report_from_flags(argc, argv);
    EXPECT_EQ(report.bench_options().json_path, bench_path);
    EXPECT_EQ(report.bench_options().warmup, 2);
    EXPECT_EQ(report.bench_options().reps, 5);
    EXPECT_TRUE(report.bench_options().enabled());
    EXPECT_TRUE(metrics_enabled());
    EXPECT_EQ(argc, 2);
    EXPECT_STREQ(argv[0], "bench");
    EXPECT_STREQ(argv[1], "net.txt");
    report.release();
  }
}

}  // namespace
}  // namespace flexwan::obs
