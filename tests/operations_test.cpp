// Tests for the §9 operational procedures: smooth channel evolution,
// zero-touch misconnection recovery, and the replicated control plane.
#include <gtest/gtest.h>

#include "controller/operations.h"
#include "planning/heuristic.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

namespace flexwan::controller {
namespace {

// A deployed two-node network with one wavelength, ready for surgery.
struct Deployed {
  topology::Network net;
  planning::Plan plan;
  Fleet fleet;
  CentralizedController controller;

  static Deployed make(double km = 300, double demand = 400) {
    topology::Network net;
    net.name = "op";
    const auto a = net.optical.add_node("a");
    const auto b = net.optical.add_node("b");
    net.optical.add_fiber(a, b, km);
    net.ip.add_link(a, b, demand);
    planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
    auto plan = planner.plan(net);
    EXPECT_TRUE(plan);
    return Deployed(std::move(net), std::move(plan.value()));
  }

  Deployed(topology::Network n, planning::Plan p)
      : net(std::move(n)),
        plan(std::move(p)),
        fleet(net, plan, VendorAssignment::kSingleVendor, true),
        controller(net) {
    EXPECT_TRUE(controller.deploy(fleet));
    EXPECT_TRUE(audit_fleet(fleet, net).clean());
  }
};

const transponder::Mode& svt_mode(double rate, double spacing) {
  for (const auto& m : transponder::svt_flexwan().modes()) {
    if (m.data_rate_gbps == rate && m.spacing_ghz == spacing) return m;
  }
  throw std::logic_error("mode not in catalog");
}

TEST(Evolution, WidensChannelInSoftware) {
  auto d = Deployed::make(300, 400);  // planner picks 400G on 300 km
  const auto old_mode = d.fleet.deployed()[0].wavelength.mode;
  // Evolve to a wider 600G channel (reach 300 km at 87.5 GHz).
  const auto& wide = svt_mode(600, 87.5);
  const auto result = evolve_channel(d.fleet, d.net, 0, wide);
  ASSERT_TRUE(result) << result.error().message;
  EXPECT_DOUBLE_EQ(result->old_mode.data_rate_gbps,
                   old_mode.data_rate_gbps);
  EXPECT_EQ(result->new_range.count, wide.pixels());
  EXPECT_GT(result->reconfigured_devices, 2);  // pair + both site WSSs
  // The fleet is consistent again after the migration.
  EXPECT_TRUE(audit_fleet(d.fleet, d.net).clean());
  // Device state agrees with the bookkeeping.
  EXPECT_DOUBLE_EQ(d.fleet.deployed()[0].tx->mode().data_rate_gbps, 600);
  EXPECT_EQ(d.fleet.deployed()[0].tx->range(), result->new_range);
}

TEST(Evolution, RejectsModeBeyondHardware) {
  auto d = Deployed::make(2500, 200);  // long path
  const auto& fast = svt_mode(800, 112.5);  // reach 150 km only
  // The controller could configure it, but physics could not carry it;
  // evolution is still *applied* (the hardware accepts any catalog mode) —
  // the guard we test here is spectrum, so use an absurd index instead.
  const auto bad = evolve_channel(d.fleet, d.net, 7, fast);
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.error().code, "bad_index");
}

TEST(Evolution, FailsWhenSpectrumExhausted) {
  // Fill the band with a high demand, then try to widen one channel.
  topology::Network net;
  const auto a = net.optical.add_node("a");
  const auto b = net.optical.add_node("b");
  net.optical.add_fiber(a, b, 200);
  net.ip.add_link(a, b, 800);
  planning::PlannerConfig config;
  config.band_pixels = 10;  // barely fits one 112.5 GHz channel
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), config);
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  Fleet fleet(net, *plan, VendorAssignment::kSingleVendor, true);
  CentralizedController controller(net);
  ASSERT_TRUE(controller.deploy(fleet));
  // occupancy_from_fleet uses the full C-band, but the path carries all
  // other wavelengths; widening to 150 GHz (12 pixels) must still succeed
  // in the full band — so instead verify the bad_index + no_spectrum paths
  // by asking for a spacing wider than the whole band.
  transponder::Mode absurd = svt_mode(800, 150);
  absurd.spacing_ghz = spectrum::kCBandWidthGhz + 100.0;
  const auto r = evolve_channel(fleet, net, 0, absurd);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "no_spectrum");
}

TEST(Misconnection, InjectBreaksAuditRecoverHealsIt) {
  auto d = Deployed::make();
  const topology::NodeId node = d.fleet.deployed()[0].path.nodes.front();
  const int wrong_port = 3;

  ASSERT_TRUE(inject_misconnection(d.fleet, 0, node, wrong_port));
  const auto broken = audit_fleet(d.fleet, d.net);
  EXPECT_EQ(broken.inconsistencies, 1);

  ASSERT_TRUE(recover_misconnection(d.fleet, 0, node, wrong_port));
  const auto healed = audit_fleet(d.fleet, d.net);
  EXPECT_TRUE(healed.clean());
}

TEST(Misconnection, ValidatesInputs) {
  auto d = Deployed::make();
  EXPECT_EQ(inject_misconnection(d.fleet, 99, 0, 1).error().code,
            "bad_index");
  // Node 1 is on the path (two-node net), so use an out-of-path node by
  // building a bigger network: here both nodes are on the path, so check
  // recover's index guard instead.
  EXPECT_EQ(recover_misconnection(d.fleet, 99, 0, 1).error().code,
            "bad_index");
}

TEST(Misconnection, NotOnPathRejected) {
  topology::Network net;
  const auto a = net.optical.add_node("a");
  const auto b = net.optical.add_node("b");
  const auto c = net.optical.add_node("c");
  net.optical.add_fiber(a, b, 200);
  net.optical.add_fiber(b, c, 200);
  net.ip.add_link(a, b, 200);
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  Fleet fleet(net, *plan, VendorAssignment::kSingleVendor, true);
  CentralizedController controller(net);
  ASSERT_TRUE(controller.deploy(fleet));
  const auto r = inject_misconnection(fleet, 0, c, 1);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "not_on_path");
}

TEST(Cluster, LeaderCompletesWithoutFailures) {
  auto d = Deployed::make();
  Fleet fresh(d.net, d.plan, VendorAssignment::kSingleVendor, true);
  ControllerCluster cluster(d.net, 3);
  const auto r = cluster.deploy(fresh);
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->completed);
  EXPECT_EQ(r->attempts, 1);
  EXPECT_EQ(r->failovers, 0);
  EXPECT_TRUE(audit_fleet(fresh, d.net).clean());
}

TEST(Cluster, FailoverReplaysIdempotently) {
  auto d = Deployed::make();
  Fleet fresh(d.net, d.plan, VendorAssignment::kSingleVendor, true);
  ControllerCluster cluster(d.net, 3);
  // First leader dies after 1 RPC, second after 2; third completes.
  const auto r = cluster.deploy(fresh, {1, 2});
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_TRUE(r->completed);
  EXPECT_EQ(r->attempts, 3);
  EXPECT_EQ(r->failovers, 2);
  EXPECT_TRUE(audit_fleet(fresh, d.net).clean())
      << "replayed configuration must converge to the same device state";
}

TEST(Cluster, ExhaustedClusterReportsError) {
  auto d = Deployed::make();
  Fleet fresh(d.net, d.plan, VendorAssignment::kSingleVendor, true);
  ControllerCluster cluster(d.net, 2);
  const auto r = cluster.deploy(fresh, {1, 1});
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "cluster_exhausted");
}

TEST(Cluster, FullBackboneSurvivesMidDeploymentCrash) {
  const auto net = topology::make_cernet();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  Fleet fleet(net, *plan, VendorAssignment::kPerRegionMixed, true);
  ControllerCluster cluster(net, 2);
  // Crash halfway through the configuration push.
  const auto r = cluster.deploy(fleet, {plan->transponder_count()});
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_EQ(r->failovers, 1);
  EXPECT_TRUE(audit_fleet(fleet, net).clean());
}

}  // namespace
}  // namespace flexwan::controller
