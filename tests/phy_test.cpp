// Tests for the physical-layer model: link budget, Shannon limits, post-FEC
// BER cliff, and the calibration against Table 2.
#include <gtest/gtest.h>

#include <cmath>

#include "phy/ber.h"
#include "phy/calibration.h"
#include "phy/nonlinear.h"
#include "phy/link_budget.h"
#include "phy/shannon.h"
#include "transponder/catalog.h"

namespace flexwan::phy {
namespace {

TEST(LinkBudget, DbConversionsRoundTrip) {
  for (double db : {-10.0, 0.0, 3.0, 20.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9);
  }
  EXPECT_NEAR(db_to_linear(3.0), 2.0, 0.01);
}

TEST(LinkBudget, SpanCount) {
  PlantParams p;  // 80 km spans
  EXPECT_EQ(span_count(0, p), 1);
  EXPECT_EQ(span_count(79, p), 1);
  EXPECT_EQ(span_count(80, p), 1);
  EXPECT_EQ(span_count(81, p), 2);
  EXPECT_EQ(span_count(800, p), 10);
}

TEST(LinkBudget, OsnrDecreasesWithDistance) {
  PlantParams p;
  double prev = osnr_db(100, p);
  for (double d = 500; d <= 5000; d += 500) {
    const double cur = osnr_db(d, p);
    EXPECT_LT(cur, prev) << "OSNR must fall as spans accumulate";
    prev = cur;
  }
}

TEST(LinkBudget, OsnrDropsThreeDbPerDoubling) {
  // 10 log10(2N) - 10 log10(N) = 3 dB: doubling the span count halves OSNR.
  PlantParams p;
  EXPECT_NEAR(osnr_db(800, p) - osnr_db(1600, p), 3.0103, 1e-3);
}

TEST(LinkBudget, SnrScalesInverselyWithBaud) {
  PlantParams p;
  const double narrow = snr_linear(1000, 30.0, p);
  const double wide = snr_linear(1000, 60.0, p);
  EXPECT_NEAR(narrow / wide, 2.0, 1e-9);
}

TEST(Shannon, CapacityGrowsWithSpacingAndSnr) {
  EXPECT_GT(shannon_capacity_gbps(100, 10.0), shannon_capacity_gbps(75, 10.0));
  EXPECT_GT(shannon_capacity_gbps(75, 20.0), shannon_capacity_gbps(75, 10.0));
  EXPECT_DOUBLE_EQ(shannon_capacity_gbps(0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(shannon_capacity_gbps(75, 0.0), 0.0);
}

TEST(Shannon, RequiredSnrInvertsCapacity) {
  transponder::Mode m;
  m.data_rate_gbps = 400;
  m.spacing_ghz = 100;
  const double snr = shannon_required_snr(m);
  EXPECT_NEAR(shannon_capacity_gbps(m.spacing_ghz, snr), 400.0, 1e-6);
}

TEST(Shannon, WiderChannelNeedsLessSnrForSameRate) {
  // The core SVT insight (§3.3): widening the channel lowers the SNR needed
  // for the same data rate, buying reach on longer restoration paths.
  transponder::Mode narrow;
  narrow.data_rate_gbps = 400;
  narrow.spacing_ghz = 75;
  transponder::Mode wide = narrow;
  wide.spacing_ghz = 150;
  EXPECT_GT(shannon_required_snr(narrow), shannon_required_snr(wide));
}

TEST(Shannon, StrongerFecShrinksImplementationGap) {
  transponder::Mode weak;
  weak.fec_overhead = 0.15;
  transponder::Mode strong = weak;
  strong.fec_overhead = 0.27;
  EXPECT_GT(implementation_gap_db(weak), implementation_gap_db(strong));
}

TEST(Shannon, HighOrderFormatsPayExtraPenalty) {
  transponder::Mode qpsk;
  qpsk.modulation = transponder::Modulation::kQpsk;
  transponder::Mode pcs64 = qpsk;
  pcs64.modulation = transponder::Modulation::kPcs64Qam;
  EXPECT_GT(implementation_gap_db(pcs64), implementation_gap_db(qpsk));
}

TEST(Ber, CliffAtRequiredSnr) {
  transponder::Mode m;
  m.data_rate_gbps = 200;
  m.spacing_ghz = 75;
  const double needed = required_snr(m);
  EXPECT_DOUBLE_EQ(post_fec_ber(needed, m), 0.0);
  EXPECT_DOUBLE_EQ(post_fec_ber(needed * 2, m), 0.0);
  EXPECT_GT(post_fec_ber(needed * 0.99, m), 0.0);
  EXPECT_TRUE(decodes_error_free(needed, m));
  EXPECT_FALSE(decodes_error_free(needed * 0.5, m));
}

TEST(Ber, MonotoneInShortfallAndCapped) {
  transponder::Mode m;
  m.data_rate_gbps = 200;
  m.spacing_ghz = 75;
  const double needed = required_snr(m);
  double prev = 0.0;
  for (double f = 0.95; f >= 0.05; f -= 0.1) {
    const double ber = post_fec_ber(needed * f, m);
    EXPECT_GE(ber, prev);
    EXPECT_LE(ber, 0.5);
    prev = ber;
  }
  EXPECT_DOUBLE_EQ(post_fec_ber(1e-15, m), 0.5);
}

TEST(Nonlinear, SnrPeaksAtOptimalLaunchPower) {
  PlantParams plant;
  NonlinearParams nl;
  const double dist = 800.0;
  const double baud = 60.0;
  const double p_opt_dbm = optimal_launch_power_dbm(dist, baud, plant, nl);
  const double p_opt_mw = std::pow(10.0, p_opt_dbm / 10.0);
  const double best = snr_with_nli(p_opt_mw, dist, baud, plant, nl);
  // Concave around the optimum: both sides are strictly worse.
  EXPECT_GT(best, snr_with_nli(p_opt_mw * 0.5, dist, baud, plant, nl));
  EXPECT_GT(best, snr_with_nli(p_opt_mw * 2.0, dist, baud, plant, nl));
  EXPECT_DOUBLE_EQ(optimal_snr(dist, baud, plant, nl), best);
}

TEST(Nonlinear, NliAtOptimumIsHalfTheAse) {
  // The classic rule: at the optimum the NLI power equals half the ASE.
  PlantParams plant;
  NonlinearParams nl;
  const double dist = 1200.0;
  const double baud = 60.0;
  const double ase = ase_power_mw(dist, baud, plant);
  const double p_opt = std::pow(
      10.0, optimal_launch_power_dbm(dist, baud, plant, nl) / 10.0);
  const double spans = span_count(dist, plant);
  const double nli = nl.eta_per_span * spans * p_opt * p_opt * p_opt;
  EXPECT_NEAR(nli / ase, 0.5, 1e-9);
}

TEST(Nonlinear, OptimalSnrDegradesWithDistance) {
  PlantParams plant;
  NonlinearParams nl;
  double prev = optimal_snr(200, 60, plant, nl);
  for (double d = 600; d <= 3000; d += 600) {
    const double cur = optimal_snr(d, 60, plant, nl);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Nonlinear, ZeroPowerGivesZeroSnr) {
  PlantParams plant;
  NonlinearParams nl;
  EXPECT_DOUBLE_EQ(snr_with_nli(0.0, 500, 60, plant, nl), 0.0);
  EXPECT_DOUBLE_EQ(snr_with_nli(-1.0, 500, 60, plant, nl), 0.0);
}

TEST(Nonlinear, LinearModelMatchesNliModelAtLowPower) {
  // With NLI negligible (tiny launch power), SNR(P)/P approaches 1/N_ase —
  // the linear model's slope.
  PlantParams plant;
  NonlinearParams nl;
  const double ase = ase_power_mw(1000, 60, plant);
  const double tiny = 1e-4;
  EXPECT_NEAR(snr_with_nli(tiny, 1000, 60, plant, nl) / tiny, 1.0 / ase,
              1.0 / ase * 1e-3);
}

TEST(Calibration, ModelReproducesTable2Closely) {
  const auto& catalog = transponder::svt_flexwan();
  const auto model = calibrate(catalog);
  const auto report = evaluate(model, catalog);
  ASSERT_EQ(report.rows.size(), catalog.size());
  EXPECT_LT(report.mean_relative_error, 0.12)
      << "testbed model drifted from Table 2";
  EXPECT_LT(report.max_relative_error, 0.40);
}

TEST(Calibration, EveryRowGetsANonZeroModelReach) {
  const auto& catalog = transponder::svt_flexwan();
  const auto model = calibrate(catalog);
  for (const auto& row : evaluate(model, catalog).rows) {
    EXPECT_GT(row.model_reach_km, 0.0) << row.mode.describe();
  }
}

TEST(Calibration, ReachMonotoneInDistanceSweep) {
  // predicted_reach uses the same sweep the testbed does: once the BER goes
  // positive it stays positive for longer distances.
  const auto& catalog = transponder::svt_flexwan();
  const auto model = calibrate(catalog);
  for (const auto& mode : catalog.modes()) {
    const double reach = model.predicted_reach_km(mode);
    if (reach <= 0) continue;
    EXPECT_DOUBLE_EQ(model.post_fec_ber(mode, reach), 0.0);
    EXPECT_GT(model.post_fec_ber(mode, reach + 200.0), 0.0)
        << mode.describe();
  }
}

TEST(Calibration, BaselineCatalogsAlsoCalibrate) {
  for (const auto* catalog :
       {&transponder::bvt_radwan(), &transponder::fixed_grid_100g()}) {
    const auto model = calibrate(*catalog);
    const auto report = evaluate(model, *catalog);
    EXPECT_LT(report.mean_relative_error, 0.25) << catalog->name();
  }
}

// Property sweep: at any distance within a mode's model reach, the received
// SNR clears the requirement; beyond 1.5x the reach it does not.
class CalibratedModeTest : public ::testing::TestWithParam<int> {};

TEST_P(CalibratedModeTest, SnrBoundaryConsistent) {
  const auto& catalog = transponder::svt_flexwan();
  const auto model = calibrate(catalog);
  const auto& mode = catalog.modes()[static_cast<std::size_t>(GetParam())];
  const double reach = model.predicted_reach_km(mode);
  ASSERT_GT(reach, 0.0);
  EXPECT_DOUBLE_EQ(model.post_fec_ber(mode, reach * 0.5), 0.0);
  EXPECT_GT(model.post_fec_ber(mode, reach * 1.6 + 100), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllSvtModes, CalibratedModeTest,
                         ::testing::Range(0, 36));

}  // namespace
}  // namespace flexwan::phy
