// Tests for plan serialization.
#include <gtest/gtest.h>

#include "planning/heuristic.h"
#include "planning/metrics.h"
#include "planning/plan_io.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

namespace flexwan::planning {
namespace {

Plan make_plan(const topology::Network& net,
               const transponder::Catalog& catalog) {
  HeuristicPlanner planner(catalog, {});
  auto plan = planner.plan(net);
  EXPECT_TRUE(plan);
  return std::move(plan.value());
}

TEST(PlanIo, RoundTripsWholeBackbonePlan) {
  const auto net = topology::make_cernet();
  const auto original = make_plan(net, transponder::svt_flexwan());
  const auto reloaded = load_plan(save_plan(original));
  ASSERT_TRUE(reloaded) << reloaded.error().message;

  EXPECT_EQ(reloaded->scheme(), original.scheme());
  EXPECT_EQ(reloaded->fiber_count(), original.fiber_count());
  EXPECT_EQ(reloaded->band_pixels(), original.band_pixels());
  EXPECT_EQ(reloaded->transponder_count(), original.transponder_count());
  EXPECT_DOUBLE_EQ(reloaded->spectrum_usage_ghz(),
                   original.spectrum_usage_ghz());
  // The reloaded plan validates against the same network.
  const auto valid = validate_plan(*reloaded, net);
  EXPECT_TRUE(valid) << valid.error().message;
  // Spectrum occupancy matches fiber by fiber.
  for (topology::FiberId f = 0; f < original.fiber_count(); ++f) {
    EXPECT_EQ(reloaded->fiber_occupancy(f).used_pixels(),
              original.fiber_occupancy(f).used_pixels());
  }
}

TEST(PlanIo, RoundTripsEverySchemesModes) {
  const auto net = topology::make_tbackbone();
  for (const auto* catalog :
       {&transponder::svt_flexwan(), &transponder::bvt_radwan(),
        &transponder::fixed_grid_100g()}) {
    const auto original = make_plan(net, *catalog);
    const auto reloaded = load_plan(save_plan(original));
    ASSERT_TRUE(reloaded) << catalog->name();
    // Modes resolved back through the catalog carry the real reach.
    for (const auto& lp : reloaded->links()) {
      for (const auto& wl : lp.wavelengths) {
        EXPECT_GT(wl.mode.reach_km, 0.0);
      }
    }
  }
}

TEST(PlanIo, RejectsEmptyAndMalformed) {
  EXPECT_EQ(load_plan("").error().code, "parse_error");
  EXPECT_EQ(load_plan("nonsense 1 2 3\n").error().code, "parse_error");
  EXPECT_EQ(load_plan("plan FlexWAN 2 0\n").error().code, "parse_error");
  EXPECT_EQ(load_plan("plan FlexWAN 2 48\npath 100 0 ; 0 1\n").error().code,
            "parse_error");  // path before link
  EXPECT_EQ(
      load_plan("plan FlexWAN 2 48\nlink 0\nwavelength 0 100 50 3000 0\n")
          .error()
          .code,
      "parse_error");  // wavelength references missing path
  EXPECT_EQ(load_plan("plan FlexWAN 2 48\nlink 0\npath 100 0 ; 0\n")
                .error()
                .code,
            "parse_error");  // node/fiber count mismatch
}

TEST(PlanIo, RejectsDoubleBookedSpectrum) {
  // A hand-corrupted document placing two wavelengths on the same pixels of
  // the same fiber must not load.
  const std::string doc =
      "plan FlexWAN 1 48\n"
      "link 0\n"
      "path 100 0 ; 0 1\n"
      "wavelength 0 100 50 3000 0\n"
      "wavelength 0 100 50 3000 2\n";  // overlaps pixels [2,4) with [0,4)
  const auto r = load_plan(doc);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "conflict");
}

TEST(PlanIo, CommentsAndBlankLinesIgnored) {
  const std::string doc =
      "plan FlexWAN 1 48\n"
      "# a comment\n"
      "\n"
      "link 0\n"
      "path 100 0 ; 0 1\n"
      "wavelength 0 100 50 3000 4\n";
  const auto r = load_plan(doc);
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_EQ(r->transponder_count(), 1);
}

}  // namespace
}  // namespace flexwan::planning
