// Tests for the plan model, the DP mode selection, the heuristic planner,
// and the exact MILP formulation of Algorithm 1.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "planning/exact.h"
#include "restoration/metrics.h"
#include "planning/heuristic.h"
#include "planning/metrics.h"
#include "planning/plan.h"
#include "topology/builders.h"
#include "topology/ksp.h"
#include "transponder/catalog.h"
#include "util/rng.h"
#include "util/stats.h"

namespace flexwan::planning {
namespace {

using topology::Network;

Network two_node_net(double length_km, double demand_gbps) {
  Network net;
  net.name = "pair";
  const auto a = net.optical.add_node("a");
  const auto b = net.optical.add_node("b");
  net.optical.add_fiber(a, b, length_km);
  net.ip.add_link(a, b, demand_gbps);
  return net;
}

// --- best_mode_set (the per-path DP) ---------------------------------------

TEST(BestModeSet, ZeroDemandIsEmpty) {
  const auto set = best_mode_set(transponder::svt_flexwan(), 500, 0, 0.001);
  ASSERT_TRUE(set);
  EXPECT_TRUE(set->modes.empty());
  EXPECT_DOUBLE_EQ(set->cost, 0.0);
}

TEST(BestModeSet, UnreachableDistanceFails) {
  const auto set = best_mode_set(transponder::svt_flexwan(), 6000, 400, 0.001);
  ASSERT_FALSE(set);
  EXPECT_EQ(set.error().code, "unreachable_demand");
}

TEST(BestModeSet, SingleWavelengthWhenOneModeSuffices) {
  // 800 Gbps at 150 km: one SVT pair at 800G@112.5 (Fig. 3a's headline).
  const auto set = best_mode_set(transponder::svt_flexwan(), 150, 800, 0.001);
  ASSERT_TRUE(set);
  ASSERT_EQ(set->modes.size(), 1u);
  EXPECT_DOUBLE_EQ(set->modes[0].data_rate_gbps, 800);
}

TEST(BestModeSet, Fig3aTransponderCounts) {
  // Fig. 3(a): pairs of transponders to provision 800 Gbps.
  // BVT: 3 pairs below 1100 km (3 x 300G > 800), more beyond.
  // SVT: 1 pair below 300 km, 2 pairs at mid range.
  const auto& svt = transponder::svt_flexwan();
  const auto& bvt = transponder::bvt_radwan();
  EXPECT_EQ(best_mode_set(svt, 200, 800, 0.001)->modes.size(), 1u);
  EXPECT_EQ(best_mode_set(svt, 300, 800, 0.001)->modes.size(), 1u);
  EXPECT_EQ(best_mode_set(svt, 600, 800, 0.001)->modes.size(), 2u);
  EXPECT_EQ(best_mode_set(bvt, 200, 800, 0.001)->modes.size(), 3u);
  EXPECT_EQ(best_mode_set(bvt, 1000, 800, 0.001)->modes.size(), 3u);
  // At 1800 km BVT only has 200G/100G; needs 4 x 200G; SVT can use
  // 400G@137.5 (reach 1800) -> 2 pairs, half of BVT (the paper's example).
  EXPECT_EQ(best_mode_set(bvt, 1800, 800, 0.001)->modes.size(), 4u);
  EXPECT_EQ(best_mode_set(svt, 1800, 800, 0.001)->modes.size(), 2u);
}

TEST(BestModeSet, Fig3bSpectrumUsage) {
  // Fig. 3(b): spectrum for 800 Gbps under 300 km: BVT 3 x 75 = 225 GHz,
  // SVT <= 150 GHz (single pair).
  const auto bvt = best_mode_set(transponder::bvt_radwan(), 250, 800, 0.001);
  double bvt_ghz = 0;
  for (const auto& m : bvt->modes) bvt_ghz += m.spacing_ghz;
  EXPECT_DOUBLE_EQ(bvt_ghz, 225.0);
  const auto svt = best_mode_set(transponder::svt_flexwan(), 250, 800, 0.001);
  double svt_ghz = 0;
  for (const auto& m : svt->modes) svt_ghz += m.spacing_ghz;
  EXPECT_LE(svt_ghz, 150.0);
}

TEST(BestModeSet, MeetsDemandExactlyOrAbove) {
  Rng rng(5);
  const auto& catalog = transponder::svt_flexwan();
  for (int trial = 0; trial < 100; ++trial) {
    const double distance = rng.uniform(100, 4500);
    const double demand = 100.0 * rng.uniform_int(1, 30);
    const auto set = best_mode_set(catalog, distance, demand, 0.001);
    ASSERT_TRUE(set);
    EXPECT_GE(set->total_rate_gbps(), demand);
    for (const auto& m : set->modes) EXPECT_GE(m.reach_km, distance);
  }
}

TEST(BestModeSet, RespectsReachOnEveryChosenMode) {
  const auto set = best_mode_set(transponder::svt_flexwan(), 2000, 900, 0.001);
  ASSERT_TRUE(set);
  for (const auto& m : set->modes) EXPECT_GE(m.reach_km, 2000);
}

TEST(BestModeSet, EpsilonSteerstowardNarrowSpectrum) {
  // With a large epsilon, spectrum dominates the objective; the DP must not
  // pick wider channels than needed.  300 Gbps at 500 km: options include
  // 1 x 300@87.5 or wider rows; heavy epsilon keeps it thin.
  const auto thin = best_mode_set(transponder::svt_flexwan(), 500, 300, 1.0);
  ASSERT_TRUE(thin);
  double ghz = 0;
  for (const auto& m : thin->modes) ghz += m.spacing_ghz;
  EXPECT_LE(ghz, 87.5);
}

TEST(BestModeSet, DpMatchesGreedyOnSingleModeCatalog) {
  // 100G-WAN: covering D Gbps always takes ceil(D/100) wavelengths.
  const auto& c = transponder::fixed_grid_100g();
  for (double demand : {100.0, 250.0, 700.0, 1000.0}) {
    const auto set = best_mode_set(c, 1000, demand, 0.001);
    ASSERT_TRUE(set);
    EXPECT_EQ(set->modes.size(),
              static_cast<std::size_t>(std::ceil(demand / 100.0)));
  }
}

// --- Plan ------------------------------------------------------------------

TEST(Plan, PlaceWavelengthReservesWholePath) {
  auto net = topology::make_linear_chain(3, 100);
  Plan plan("FlexWAN", net.optical.fiber_count(), 48);
  auto& lp = plan.add_link_plan(0);
  const auto path = topology::shortest_path(net.optical, 0, 3).value();
  lp.paths.push_back(path);
  Wavelength wl{0, 0, transponder::svt_flexwan().modes()[3],
                spectrum::Range{0, 6}};
  ASSERT_TRUE(plan.place_wavelength(path, wl));
  for (topology::FiberId f : path.fibers) {
    EXPECT_FALSE(plan.fiber_occupancy(f).is_free(spectrum::Range{0, 6}));
  }
  EXPECT_EQ(plan.transponder_count(), 1);
}

TEST(Plan, PlaceWavelengthIsAtomicOnConflict) {
  auto net = topology::make_linear_chain(3, 100);
  Plan plan("FlexWAN", net.optical.fiber_count(), 48);
  plan.add_link_plan(0);
  const auto path = topology::shortest_path(net.optical, 0, 3).value();
  // Block the middle fiber only.
  ASSERT_TRUE(plan.fiber_occupancy(1).reserve(spectrum::Range{0, 6}));
  Wavelength wl{0, 0, transponder::svt_flexwan().modes()[3],
                spectrum::Range{0, 6}};
  const auto r = plan.place_wavelength(path, wl);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "conflict");
  // First and last fibers stay untouched.
  EXPECT_TRUE(plan.fiber_occupancy(0).is_free(spectrum::Range{0, 6}));
  EXPECT_TRUE(plan.fiber_occupancy(2).is_free(spectrum::Range{0, 6}));
}

TEST(Plan, RemoveWavelengthFreesSpectrum) {
  auto net = topology::make_linear_chain(2, 100);
  Plan plan("FlexWAN", net.optical.fiber_count(), 48);
  plan.add_link_plan(0);
  const auto path = topology::shortest_path(net.optical, 0, 2).value();
  Wavelength wl{0, 0, transponder::svt_flexwan().modes()[0],
                spectrum::Range{8, 4}};
  ASSERT_TRUE(plan.place_wavelength(path, wl));
  ASSERT_TRUE(plan.remove_wavelength(path, wl));
  EXPECT_EQ(plan.transponder_count(), 0);
  for (topology::FiberId f : path.fibers) {
    EXPECT_TRUE(plan.fiber_occupancy(f).is_free(spectrum::Range{8, 4}));
  }
}

TEST(Plan, SpectrumUsageSumsChannelSpacing) {
  auto net = topology::make_linear_chain(1, 100);
  Plan plan("FlexWAN", 1, 48);
  plan.add_link_plan(0);
  const auto path = topology::shortest_path(net.optical, 0, 1).value();
  const auto& modes = transponder::svt_flexwan().modes();
  ASSERT_TRUE(plan.place_wavelength(
      path, Wavelength{0, 0, modes[0], spectrum::Range{0, modes[0].pixels()}}));
  ASSERT_TRUE(plan.place_wavelength(
      path, Wavelength{0, 0, modes[2],
                       spectrum::Range{10, modes[2].pixels()}}));
  EXPECT_DOUBLE_EQ(plan.spectrum_usage_ghz(),
                   modes[0].spacing_ghz + modes[2].spacing_ghz);
}

// Property: after any sequence of placements and removals, the plan's
// incremental occupancy equals a from-scratch rebuild.
class PlanChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanChurnTest, OccupancyMatchesRebuildAfterChurn) {
  Rng rng(GetParam());
  auto net = topology::make_linear_chain(4, 150);
  Plan plan("FlexWAN", net.optical.fiber_count(), 96);
  plan.add_link_plan(0);
  const auto full_path = topology::shortest_path(net.optical, 0, 4).value();
  const auto half_path = topology::shortest_path(net.optical, 0, 2).value();
  const auto& modes = transponder::svt_flexwan().modes();

  struct Placed {
    topology::Path path;
    Wavelength wl;
  };
  std::vector<Placed> held;
  for (int step = 0; step < 120; ++step) {
    if (held.empty() || rng.chance(0.65)) {
      const auto& path = rng.chance(0.5) ? full_path : half_path;
      const auto& mode = modes[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(modes.size()) - 1))];
      const auto fit =
          common_first_fit(plan.fiber_occupancies(), path, mode.pixels());
      if (!fit) continue;
      Wavelength wl{0, 0, mode, *fit};
      ASSERT_TRUE(plan.place_wavelength(path, wl));
      held.push_back(Placed{path, wl});
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(held.size()) - 1));
      ASSERT_TRUE(plan.remove_wavelength(held[idx].path, held[idx].wl));
      held.erase(held.begin() + static_cast<long>(idx));
    }
  }
  // Rebuild from the held set and compare per fiber.
  std::vector<spectrum::Occupancy> rebuilt(
      static_cast<std::size_t>(plan.fiber_count()), spectrum::Occupancy(96));
  for (const auto& p : held) {
    for (topology::FiberId f : p.path.fibers) {
      ASSERT_TRUE(rebuilt[static_cast<std::size_t>(f)].reserve(p.wl.range));
    }
  }
  for (topology::FiberId f = 0; f < plan.fiber_count(); ++f) {
    EXPECT_EQ(plan.fiber_occupancy(f).used_pixels(),
              rebuilt[static_cast<std::size_t>(f)].used_pixels())
        << "fiber " << f << " seed " << GetParam();
  }
  EXPECT_EQ(plan.transponder_count(), static_cast<int>(held.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanChurnTest,
                         ::testing::Values(3, 14, 159, 2653));

// --- HeuristicPlanner -------------------------------------------------------

TEST(Planner, SingleLinkPlanMeetsDemand) {
  const auto net = two_node_net(400, 900);
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  ASSERT_TRUE(validate_plan(*plan, net));
  EXPECT_GE(plan->links()[0].provisioned_gbps(), 900);
}

TEST(Planner, FailsWhenPathExceedsReach) {
  const auto net = two_node_net(5500, 400);
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_FALSE(plan);
  EXPECT_EQ(plan.error().code, "unreachable_demand");
}

TEST(Planner, FailsWithNoSpectrumOnOverload) {
  // A 48-pixel band cannot carry 20 Tbps over one 2500 km fiber.
  auto net = two_node_net(2500, 20000);
  PlannerConfig config;
  config.band_pixels = 48;
  HeuristicPlanner planner(transponder::svt_flexwan(), config);
  const auto plan = planner.plan(net);
  ASSERT_FALSE(plan);
  EXPECT_EQ(plan.error().code, "no_spectrum");
}

TEST(Planner, SplitsAcrossPathsWhenOnePathIsFull) {
  // Diamond with two disjoint 2-hop routes; band sized so that one route
  // cannot hold the whole demand.
  topology::Network net;
  net.name = "diamond";
  for (int i = 0; i < 4; ++i) net.optical.add_node("n" + std::to_string(i));
  net.optical.add_fiber(0, 1, 100);
  net.optical.add_fiber(1, 3, 100);
  net.optical.add_fiber(0, 2, 150);
  net.optical.add_fiber(2, 3, 150);
  net.ip.add_link(0, 3, 2400);
  PlannerConfig config;
  config.k_paths = 2;
  config.band_pixels = 24;  // 300 GHz per fiber: 3 x 800G@112.5 does not fit
  HeuristicPlanner planner(transponder::svt_flexwan(), config);
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan) << plan.error().message;
  ASSERT_TRUE(validate_plan(*plan, net));
  // Both candidate paths must carry wavelengths.
  std::set<int> used_paths;
  for (const auto& wl : plan->links()[0].wavelengths) {
    used_paths.insert(wl.path_index);
  }
  EXPECT_GE(used_paths.size(), 2u);
}

TEST(Planner, SchemesRankAsInFig12) {
  const auto net = topology::make_tbackbone();
  HeuristicPlanner flex(transponder::svt_flexwan(), {});
  HeuristicPlanner rad(transponder::bvt_radwan(), {});
  HeuristicPlanner fixed(transponder::fixed_grid_100g(), {});
  const auto pf = flex.plan(net);
  const auto pr = rad.plan(net);
  const auto px = fixed.plan(net);
  ASSERT_TRUE(pf);
  ASSERT_TRUE(pr);
  ASSERT_TRUE(px);
  // Fig. 12: FlexWAN < RADWAN < 100G-WAN on both transponders and spectrum.
  EXPECT_LT(pf->transponder_count(), pr->transponder_count());
  EXPECT_LT(pr->transponder_count(), px->transponder_count());
  EXPECT_LT(pf->spectrum_usage_ghz(), pr->spectrum_usage_ghz());
  EXPECT_LT(pr->spectrum_usage_ghz(), px->spectrum_usage_ghz());
  // §7 headline: at least 57 % transponder savings vs 100G-WAN and
  // meaningful savings vs RADWAN.
  EXPECT_LE(pf->transponder_count(), px->transponder_count() * 0.45);
  EXPECT_LE(pf->transponder_count(), pr->transponder_count() * 0.85);
}

TEST(Planner, ValidatesOnBothReferenceTopologies) {
  for (const auto& net :
       {topology::make_tbackbone(), topology::make_cernet()}) {
    for (const auto* catalog :
         {&transponder::svt_flexwan(), &transponder::bvt_radwan(),
          &transponder::fixed_grid_100g()}) {
      HeuristicPlanner planner(*catalog, {});
      const auto plan = planner.plan(net);
      ASSERT_TRUE(plan) << net.name << " " << catalog->name();
      const auto valid = validate_plan(*plan, net);
      EXPECT_TRUE(valid) << valid.error().message;
    }
  }
}

TEST(Planner, MaxSupportedScaleOrdering) {
  const auto net = topology::make_tbackbone();
  HeuristicPlanner flex(transponder::svt_flexwan(), {});
  HeuristicPlanner rad(transponder::bvt_radwan(), {});
  HeuristicPlanner fixed(transponder::fixed_grid_100g(), {});
  const double sf = max_supported_scale(net, flex, 10.0, 1.0);
  const double sr = max_supported_scale(net, rad, 10.0, 1.0);
  const double sx = max_supported_scale(net, fixed, 10.0, 1.0);
  EXPECT_GT(sf, sr);
  EXPECT_GT(sr, sx);
  EXPECT_GE(sx, 1.0);
}

// Property: on random networks, every produced plan satisfies all of
// Algorithm 1's constraints (via validate_plan's independent re-check).
class PlannerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlannerPropertyTest, RandomNetworksValidate) {
  Rng rng(GetParam());
  topology::RandomBackboneParams params;
  params.nodes = rng.uniform_int(6, 14);
  params.ip_links = rng.uniform_int(4, 20);
  params.max_fiber_km = 900.0;  // keep within SVT reach after a few hops
  const auto net = topology::random_backbone(params, rng);
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  if (!plan) {
    // Only the documented failure modes are acceptable.
    EXPECT_TRUE(plan.error().code == "no_spectrum" ||
                plan.error().code == "unreachable_demand")
        << plan.error().code;
    return;
  }
  const auto valid = validate_plan(*plan, net);
  EXPECT_TRUE(valid) << valid.error().message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(Planner, ReservedProtectionSpectrumStaysFree) {
  const auto net = topology::make_tbackbone();
  PlannerConfig config;
  config.reserved_pixels = 48;  // top 600 GHz kept for restoration
  HeuristicPlanner planner(transponder::svt_flexwan(), config);
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan) << plan.error().message;
  const auto valid = validate_plan(*plan, net);
  ASSERT_TRUE(valid) << valid.error().message;
  const spectrum::Range protection{spectrum::kCBandPixels - 48, 48};
  for (topology::FiberId f = 0; f < plan->fiber_count(); ++f) {
    EXPECT_TRUE(plan->fiber_occupancy(f).is_free(protection))
        << "planner leaked into protection spectrum on fiber " << f;
  }
}

TEST(Planner, ReservationLowersMaxScale) {
  // Protection spectrum is capacity the planner cannot sell: the supported
  // demand scale must shrink monotonically with the reservation.
  const auto net = topology::make_tbackbone();
  double prev = 1e9;
  for (int reserved : {0, 48, 96, 192}) {
    PlannerConfig config;
    config.reserved_pixels = reserved;
    HeuristicPlanner planner(transponder::svt_flexwan(), config);
    const double scale = max_supported_scale(net, planner, 12.0, 0.5);
    EXPECT_LE(scale, prev + 1e-9) << "reserved " << reserved;
    prev = scale;
  }
}

TEST(Planner, ReservationImprovesRestorationHeadroom) {
  // The §8 trade: pixels withheld from planning stay available to the
  // restorer, lifting capability in the loaded network.
  const auto base = topology::make_tbackbone();
  const topology::Network net{base.name, base.optical, base.ip.scaled(3.0)};
  double cap_without = 0.0;
  double cap_with = 0.0;
  for (int reserved : {0, 72}) {
    PlannerConfig config;
    config.reserved_pixels = reserved;
    HeuristicPlanner planner(transponder::svt_flexwan(), config);
    const auto plan = planner.plan(net);
    ASSERT_TRUE(plan) << "reserved " << reserved;
    restoration::Restorer restorer(transponder::svt_flexwan());
    const auto scenarios = restoration::single_fiber_cuts(net.optical);
    const auto m =
        restoration::evaluate_scenarios(net, *plan, restorer, scenarios);
    (reserved == 0 ? cap_without : cap_with) = m.mean_capability;
  }
  EXPECT_GE(cap_with, cap_without - 1e-9);
}

TEST(Planner, EveryOrderingYieldsValidPlansWithEqualFormatCost) {
  // Link ordering changes spectrum packing only: formats (and thus the
  // transponder count and spectrum sum) are chosen per link, before packing.
  const auto net = topology::make_tbackbone();
  std::optional<int> txp;
  for (auto ordering :
       {LinkOrdering::kMostConstrainedFirst, LinkOrdering::kLongestPathFirst,
        LinkOrdering::kArbitrary}) {
    PlannerConfig config;
    config.ordering = ordering;
    HeuristicPlanner planner(transponder::svt_flexwan(), config);
    const auto plan = planner.plan(net);
    ASSERT_TRUE(plan);
    const auto valid = validate_plan(*plan, net);
    EXPECT_TRUE(valid) << valid.error().message;
    if (!txp) {
      txp = plan->transponder_count();
    } else {
      EXPECT_EQ(*txp, plan->transponder_count());
    }
  }
}

// --- metrics ----------------------------------------------------------------

TEST(Metrics, GapsAndEfficienciesPerWavelength) {
  const auto net = two_node_net(500, 600);
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const auto m = compute_metrics(*plan, net);
  ASSERT_EQ(m.reach_gaps_km.size(), m.spectral_efficiencies.size());
  ASSERT_EQ(static_cast<int>(m.reach_gaps_km.size()),
            plan->transponder_count());
  for (double gap : m.reach_gaps_km) EXPECT_GE(gap, 0.0);
  for (double se : m.spectral_efficiencies) EXPECT_GT(se, 0.0);
  EXPECT_GT(m.max_fiber_utilization, 0.0);
}

TEST(Metrics, FlexwanGapsSmallerThanFixed) {
  // Fig. 14(a): FlexWAN's reach gaps concentrate near zero while
  // 100G-WAN's are huge (3000 km reach on short paths).
  const auto net = topology::make_tbackbone();
  HeuristicPlanner flex(transponder::svt_flexwan(), {});
  HeuristicPlanner fixed(transponder::fixed_grid_100g(), {});
  const auto mf = compute_metrics(*flex.plan(net), net);
  const auto mx = compute_metrics(*fixed.plan(net), net);
  const auto sf = summarize(mf.reach_gaps_km);
  const auto sx = summarize(mx.reach_gaps_km);
  EXPECT_LT(sf.median, sx.median);
  EXPECT_LT(sf.mean, sx.mean);
}

TEST(Metrics, ValidateCatchesDemandViolation) {
  const auto net = two_node_net(400, 900);
  // An empty plan covers nothing.
  Plan empty("FlexWAN", net.optical.fiber_count(), spectrum::kCBandPixels);
  empty.add_link_plan(0);
  const auto r = validate_plan(empty, net);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "demand_violation");
}

TEST(Metrics, ValidateCatchesReachViolation) {
  const auto net = two_node_net(2000, 100);
  Plan plan("FlexWAN", net.optical.fiber_count(), spectrum::kCBandPixels);
  auto& lp = plan.add_link_plan(0);
  const auto path = topology::shortest_path(net.optical, 0, 1).value();
  lp.paths.push_back(path);
  // 800G@112.5 only reaches 150 km; placing it on a 2000 km path violates (2).
  transponder::Mode bad = *transponder::svt_flexwan().narrowest_mode(150, 800);
  ASSERT_TRUE(plan.place_wavelength(
      path, Wavelength{0, 0, bad, spectrum::Range{0, bad.pixels()}}));
  const auto r = validate_plan(plan, net);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "reach_violation");
}

// --- exact MILP vs heuristic -------------------------------------------------

// Exact validation uses a reduced SVT catalog: the full 36-format table at
// C-band width yields thousands of binaries per link, beyond what a dense
// tableau branch-and-bound should be asked to chew in a unit test.  Five
// representative formats keep the combinatorics honest and the runtime sane.
const transponder::Catalog& validation_catalog() {
  static const transponder::Catalog catalog(
      "FlexWAN-mini",
      [] {
        std::vector<transponder::Mode> modes;
        for (const auto& m : transponder::svt_flexwan().modes()) {
          if ((m.data_rate_gbps == 100 && m.spacing_ghz == 50) ||
              (m.data_rate_gbps == 200 && m.spacing_ghz == 75) ||
              (m.data_rate_gbps == 400 && m.spacing_ghz == 87.5) ||
              (m.data_rate_gbps == 400 && m.spacing_ghz == 112.5) ||
              (m.data_rate_gbps == 600 && m.spacing_ghz == 87.5)) {
            modes.push_back(m);
          }
        }
        return modes;
      }());
  return catalog;
}

TEST(Exact, MatchesHeuristicOnSingleLink) {
  const auto net = two_node_net(400, 600);
  ExactPlannerConfig config;
  config.band_pixels = 16;
  const auto exact = solve_exact_plan(net, validation_catalog(), config);
  ASSERT_TRUE(exact) << exact.error().message;
  EXPECT_EQ(exact->status, milp::MipStatus::kOptimal);
  const auto valid = validate_plan(exact->plan, net);
  EXPECT_TRUE(valid) << valid.error().message;

  PlannerConfig hconfig;
  hconfig.band_pixels = 16;
  HeuristicPlanner planner(validation_catalog(), hconfig);
  const auto heuristic = planner.plan(net);
  ASSERT_TRUE(heuristic);
  // The heuristic's per-path DP is exact for a single link on one path.
  EXPECT_EQ(heuristic->transponder_count(), exact->plan.transponder_count());
}

TEST(Exact, HeuristicNearOptimalOnSmallNets) {
  Rng rng(77);
  int solved = 0;
  for (int trial = 0; trial < 4; ++trial) {
    topology::RandomBackboneParams params;
    params.nodes = 4;
    params.ip_links = 2;
    params.max_fiber_km = 500;
    params.min_demand_gbps = 100;
    params.max_demand_gbps = 600;
    const auto net = topology::random_backbone(params, rng);
    ExactPlannerConfig config;
    config.band_pixels = 16;
    config.k_paths = 2;
    config.mip.max_nodes = 20000;
    const auto exact = solve_exact_plan(net, validation_catalog(), config);
    ASSERT_TRUE(exact) << exact.error().message;
    if (exact->status != milp::MipStatus::kOptimal) continue;  // node limit
    ++solved;
    PlannerConfig hconfig;
    hconfig.band_pixels = 16;
    hconfig.k_paths = 2;
    HeuristicPlanner planner(validation_catalog(), hconfig);
    const auto heuristic = planner.plan(net);
    ASSERT_TRUE(heuristic) << heuristic.error().message;
    EXPECT_LE(heuristic->transponder_count(),
              exact->plan.transponder_count() + 1)
        << "trial " << trial;
  }
  EXPECT_GT(solved, 0) << "no instance solved to proven optimality";
}

TEST(Exact, InfeasibleBandDetected) {
  const auto net = two_node_net(400, 2000);
  ExactPlannerConfig config;
  config.band_pixels = 8;  // one 100 GHz channel at most
  const auto exact = solve_exact_plan(net, validation_catalog(), config);
  ASSERT_FALSE(exact);
  EXPECT_EQ(exact.error().code, "infeasible");
}

TEST(Exact, TooLargeGuardTrips) {
  const auto net = topology::make_tbackbone();
  ExactPlannerConfig config;
  config.max_variables = 100;
  const auto exact = solve_exact_plan(net, transponder::svt_flexwan(), config);
  ASSERT_FALSE(exact);
  EXPECT_EQ(exact.error().code, "too_large");
}

}  // namespace
}  // namespace flexwan::planning
