// Tests for OEO regeneration planning.
#include <gtest/gtest.h>

#include "planning/metrics.h"
#include "planning/regeneration.h"
#include "topology/builders.h"
#include "topology/ksp.h"
#include "transponder/catalog.h"

namespace flexwan::planning {
namespace {

// A chain long enough to exceed every catalog's maximum reach end to end.
topology::Network long_chain(int hops, double span_km, double demand) {
  auto net = topology::make_linear_chain(hops, span_km);
  // make_linear_chain adds one zero-demand link; replace the IP overlay.
  net.ip = topology::IpTopology();
  net.ip.add_link(0, hops, demand, "end-to-end");
  return net;
}

TEST(Regeneration, NoopWhenEverythingIsWithinReach) {
  const auto net = topology::make_cernet();
  const auto r =
      plan_with_regeneration(net, transponder::svt_flexwan(), {});
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_TRUE(r->segments.empty());
  EXPECT_EQ(r->regenerator_sites, 0);
  EXPECT_EQ(r->effective_net.ip.link_count(), net.ip.link_count());
  const auto valid = validate_plan(r->plan, r->effective_net);
  EXPECT_TRUE(valid) << valid.error().message;
}

TEST(Regeneration, SplitsBeyondReachLink) {
  // 8000 km chain: SVT max reach 5000 km -> at least one regeneration.
  const auto net = long_chain(10, 800, 400);
  // The plain planner refuses...
  HeuristicPlanner plain(transponder::svt_flexwan(), {});
  const auto direct = plain.plan(net);
  ASSERT_FALSE(direct);
  EXPECT_EQ(direct.error().code, "unreachable_demand");
  // ...regeneration makes it feasible.
  const auto r = plan_with_regeneration(net, transponder::svt_flexwan(), {});
  ASSERT_TRUE(r) << r.error().message;
  ASSERT_EQ(r->segments.size(), 1u);
  EXPECT_GE(r->segments.at(0).size(), 2u);
  EXPECT_GE(r->regenerator_sites, 1);
  const auto valid = validate_plan(r->plan, r->effective_net);
  EXPECT_TRUE(valid) << valid.error().message;
  // Every segment link stays within reach.
  for (const auto& seg : r->effective_net.ip.links()) {
    const auto p = topology::shortest_path(r->effective_net.optical, seg.src,
                                           seg.dst);
    ASSERT_TRUE(p);
    EXPECT_LE(p->length_km, transponder::svt_flexwan().max_reach_km());
  }
}

TEST(Regeneration, SegmentsCarryTheFullDemand) {
  const auto net = long_chain(10, 800, 600);
  const auto r = plan_with_regeneration(net, transponder::svt_flexwan(), {});
  ASSERT_TRUE(r) << r.error().message;
  for (topology::LinkId seg : r->segments.at(0)) {
    const auto* lp = r->plan.find_link(seg);
    ASSERT_NE(lp, nullptr);
    EXPECT_GE(lp->provisioned_gbps(), 600.0);
  }
}

TEST(Regeneration, FixedGrid100GReachesAcrossCernetWithUrumqiExpress) {
  // The real-world case the builders dodge: Beijing-Urumqi is ~3.7 Mm,
  // beyond 100G-WAN's 3000 km reach, but one regeneration serves it.
  auto net = topology::make_cernet();
  const auto beijing = *net.optical.find_node("Beijing");
  const auto urumqi = *net.optical.find_node("Urumqi");
  net.ip.add_link(beijing, urumqi, 300, "Beijing-Urumqi");
  HeuristicPlanner plain(transponder::fixed_grid_100g(), {});
  ASSERT_FALSE(plain.plan(net));
  const auto r =
      plan_with_regeneration(net, transponder::fixed_grid_100g(), {});
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_GE(r->regenerator_sites, 1);
  const auto valid = validate_plan(r->plan, r->effective_net);
  EXPECT_TRUE(valid) << valid.error().message;
}

TEST(Regeneration, RegenerationCostsTransponders) {
  // The same demand served with SVT (no regeneration needed at 4000 km via
  // 100G@75) vs 100G-WAN (one regeneration): the fixed grid pays extra
  // pairs — the Shoofly-style OEO cost this module accounts for.
  const auto net = long_chain(10, 400, 300);  // 4000 km end to end
  const auto svt = plan_with_regeneration(net, transponder::svt_flexwan(), {});
  const auto fixed =
      plan_with_regeneration(net, transponder::fixed_grid_100g(), {});
  ASSERT_TRUE(svt) << svt.error().message;
  ASSERT_TRUE(fixed) << fixed.error().message;
  EXPECT_EQ(svt->regenerator_sites, 0);
  EXPECT_GE(fixed->regenerator_sites, 1);
  EXPECT_GT(fixed->plan.transponder_count(), svt->plan.transponder_count());
}

TEST(Regeneration, UnregenerableSingleSpan) {
  // One 6000 km fiber: no intermediate ROADM to regenerate at.
  topology::Network net;
  net.optical.add_node("a");
  net.optical.add_node("b");
  net.optical.add_fiber(0, 1, 6000);
  net.ip.add_link(0, 1, 100);
  const auto r = plan_with_regeneration(net, transponder::svt_flexwan(), {});
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "unregenerable");
}

}  // namespace
}  // namespace flexwan::planning
