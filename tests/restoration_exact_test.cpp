// Tests for the exact (branch-and-bound) restoration formulation, §8.
#include <gtest/gtest.h>

#include "planning/heuristic.h"
#include "restoration/exact.h"
#include "restoration/restorer.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

namespace flexwan::restoration {
namespace {

using planning::HeuristicPlanner;

topology::Network ring_net(double demand_gbps, double side_km) {
  topology::Network net;
  net.name = "ring";
  for (int i = 0; i < 4; ++i) net.optical.add_node("n" + std::to_string(i));
  net.optical.add_fiber(0, 1, side_km);
  net.optical.add_fiber(1, 2, side_km);
  net.optical.add_fiber(2, 3, side_km);
  net.optical.add_fiber(3, 0, side_km);
  net.ip.add_link(0, 1, demand_gbps);
  return net;
}

// A plan on a narrow band keeps the MIP small.
planning::Plan narrow_plan(const topology::Network& net, int band_pixels) {
  planning::PlannerConfig config;
  config.band_pixels = band_pixels;
  HeuristicPlanner planner(transponder::svt_flexwan(), config);
  auto plan = planner.plan(net);
  EXPECT_TRUE(plan);
  return std::move(plan.value());
}

ExactRestorerConfig small_config() {
  ExactRestorerConfig config;
  config.k_paths = 2;
  config.mip.max_nodes = 20000;
  return config;
}

TEST(ExactRestoration, UntouchedScenarioIsTrivial) {
  const auto net = ring_net(400, 300);
  const auto plan = narrow_plan(net, 24);
  const auto r = solve_exact_restoration(net, plan, FailureScenario{{2}, 1.0},
                                         transponder::svt_flexwan(),
                                         small_config());
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_DOUBLE_EQ(r->outcome.affected_gbps, 0.0);
  EXPECT_DOUBLE_EQ(r->outcome.capability(), 1.0);
}

TEST(ExactRestoration, FullyRestoresRing) {
  const auto net = ring_net(400, 300);
  const auto plan = narrow_plan(net, 24);
  const auto r = solve_exact_restoration(net, plan, FailureScenario{{0}, 1.0},
                                         transponder::svt_flexwan(),
                                         small_config());
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_EQ(r->status, milp::MipStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r->outcome.affected_gbps, 400.0);
  EXPECT_DOUBLE_EQ(r->outcome.restored_gbps, 400.0);
  for (const auto& rw : r->outcome.wavelengths) {
    EXPECT_FALSE(rw.path.uses_fiber(0));
    EXPECT_GE(rw.mode.reach_km, rw.path.length_km);
  }
}

TEST(ExactRestoration, RespectsCapacityAndSpareBounds) {
  const auto net = ring_net(600, 400);  // detour 1200 km, 1 spare SVT
  const auto plan = narrow_plan(net, 24);
  const auto r = solve_exact_restoration(net, plan, FailureScenario{{0}, 1.0},
                                         transponder::svt_flexwan(),
                                         small_config());
  ASSERT_TRUE(r) << r.error().message;
  for (const auto& lr : r->outcome.links) {
    EXPECT_LE(lr.restored_gbps, lr.affected_gbps + 1e-9);     // (7)
    EXPECT_LE(lr.used_transponders, lr.spare_transponders);   // (8)
  }
  // One 600G wavelength was lost; the best single mode on 1200 km is
  // 500G@125 — the exact solver must find exactly that.
  EXPECT_DOUBLE_EQ(r->outcome.restored_gbps, 500.0);
}

TEST(ExactRestoration, MatchesHeuristicOnRing) {
  // On the ring the heuristic is optimal; exact must agree.
  for (double demand : {200.0, 400.0, 800.0}) {
    const auto net = ring_net(demand, 300);
    const auto plan = narrow_plan(net, 32);
    const FailureScenario scenario{{0}, 1.0};
    Restorer heuristic(transponder::svt_flexwan(), {2});
    const auto h = heuristic.restore(net, plan, scenario);
    const auto e = solve_exact_restoration(net, plan, scenario,
                                           transponder::svt_flexwan(),
                                           small_config());
    ASSERT_TRUE(e) << e.error().message;
    EXPECT_NEAR(e->outcome.restored_gbps, h.restored_gbps, 1e-9)
        << "demand " << demand;
  }
}

TEST(ExactRestoration, NeverWorseThanHeuristicWithinConstraint7) {
  // The heuristic may cap a wavelength's credited rate at the remaining
  // demand (partial credit); the MIP's constraint (7) counts full rates.
  // Comparing on demands that are exact sums of catalog rates removes the
  // discrepancy, and then the exact optimum bounds the heuristic.
  const auto net = ring_net(1000, 300);  // 1000 = 500 + 500 on the detour
  const auto plan = narrow_plan(net, 48);
  const FailureScenario scenario{{0}, 1.0};
  Restorer heuristic(transponder::svt_flexwan(), {2});
  const auto h = heuristic.restore(net, plan, scenario);
  const auto e = solve_exact_restoration(net, plan, scenario,
                                         transponder::svt_flexwan(),
                                         small_config());
  ASSERT_TRUE(e) << e.error().message;
  EXPECT_GE(e->outcome.restored_gbps + 1e-9, h.restored_gbps);
}

TEST(ExactRestoration, RestoredSpectrumRespectsSurvivors) {
  // Rebuild the full spectrum map: survivors + exact-restored wavelengths
  // must be conflict-free (constraints 9, 11-13).
  const auto net = ring_net(800, 300);
  const auto plan = narrow_plan(net, 32);
  const FailureScenario scenario{{0}, 1.0};
  const auto e = solve_exact_restoration(net, plan, scenario,
                                         transponder::svt_flexwan(),
                                         small_config());
  ASSERT_TRUE(e) << e.error().message;
  std::vector<spectrum::Occupancy> map(
      static_cast<std::size_t>(net.optical.fiber_count()),
      spectrum::Occupancy(plan.band_pixels()));
  for (const auto& lp : plan.links()) {
    for (const auto& wl : lp.wavelengths) {
      const auto& path = lp.paths[static_cast<std::size_t>(wl.path_index)];
      if (path.uses_fiber(0)) continue;  // affected: spectrum released
      for (topology::FiberId f : path.fibers) {
        ASSERT_TRUE(map[static_cast<std::size_t>(f)].reserve(wl.range));
      }
    }
  }
  for (const auto& rw : e->outcome.wavelengths) {
    for (topology::FiberId f : rw.path.fibers) {
      ASSERT_TRUE(map[static_cast<std::size_t>(f)].reserve(rw.range))
          << "exact restoration double-booked fiber " << f;
    }
  }
}

TEST(ExactRestoration, TooLargeGuard) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  ExactRestorerConfig config;
  config.max_variables = 50;
  const auto r = solve_exact_restoration(net, *plan,
                                         FailureScenario{{0}, 1.0},
                                         transponder::svt_flexwan(), config);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "too_large");
}

}  // namespace
}  // namespace flexwan::restoration
